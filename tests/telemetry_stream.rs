//! Continuous telemetry under load: the paper's 168-hour week replayed
//! through a live Unix-socket server while a client scrapes `metrics`
//! frames mid-run. The scraped **work counters** must be bitwise
//! identical at 1 and 4 workers, and the final scrape must equal the
//! server's own [`ServeStats`] — the telemetry path is held to the same
//! determinism contract as the decisions themselves.

#![cfg(unix)]

use billcap::serve::{
    build_plan, read_frame, serve_unix, write_frame, ControlMsg, ReplayPlan, Response, ServeConfig,
    ServeStats, MAX_FRAME,
};
use billcap::sim::Scenario;
use billcap_obs::MetricsDoc;
use billcap_rt::run_workers;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::os::unix::net::UnixStream;
use std::sync::{Mutex, OnceLock, PoisonError};

const HOURS: usize = 168;
const MID_SCRAPE_AFTER: usize = 100;

fn plan() -> &'static ReplayPlan {
    static PLAN: OnceLock<ReplayPlan> = OnceLock::new();
    PLAN.get_or_init(|| {
        build_plan(1, 42, HOURS, Some(Scenario::STRINGENT_BUDGET)).expect("plan builds")
    })
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What the client thread hands back: mid-run doc, final doc, health
/// verdict and reasons.
type ClientOutcome = (MetricsDoc, MetricsDoc, bool, Vec<String>);

struct ScrapedRun {
    mid_doc: MetricsDoc,
    final_doc: MetricsDoc,
    health_ok: bool,
    health_reasons: Vec<String>,
    stats: ServeStats,
}

/// Replays the week through a socket server with `workers` deciders,
/// scraping once mid-stream and once after every decision response has
/// been read back.
fn run_scraped(workers: usize, stream_path: Option<&std::path::Path>) -> ScrapedRun {
    let plan = plan();
    let path = std::env::temp_dir().join(format!(
        "billcap-telemetry-{}-{workers}.sock",
        std::process::id()
    ));
    let cfg = ServeConfig {
        workers,
        window_requests: 16,
        // 168 data frames rotate 10 times, producing windows 0..=10.
        // Retain them all so the end-of-stream summary's merged latency
        // holds exactly HOURS observations regardless of which window
        // each solve happened to land in (with the default ring of 8,
        // a solve finishing early enough lands in an evicted window —
        // observed under BILLCAP_LINT=deny, where solves are slower).
        latency_windows: 16,
        metrics_stream: stream_path.map(|p| p.to_path_buf()),
        ..ServeConfig::default()
    };
    let path_server = path.clone();
    let outcome: Mutex<Option<ClientOutcome>> = Mutex::new(None);
    let server_stats: Mutex<Vec<ServeStats>> = Mutex::new(Vec::new());

    run_workers(2, |w| {
        if w == 0 {
            let stats = serve_unix(&cfg, &path_server, true).expect("server binds");
            *lock(&server_stats) = stats;
        } else {
            // Be very patient: on a loaded single-core runner the
            // server thread can be starved for seconds before it binds.
            let mut tries = 0u32;
            let stream = loop {
                match UnixStream::connect(&path) {
                    Ok(s) => break s,
                    Err(_) if tries < 60_000 => {
                        tries += 1;
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    Err(e) => panic!("connect: {e}"),
                }
            };
            let mut writer = stream.try_clone().expect("clone socket");
            let mut reader = stream;
            let send = |w: &mut UnixStream, payload: &str| {
                write_frame(w, payload.as_bytes()).expect("client write");
                w.flush().expect("client flush");
            };

            // First 100 hours, then a mid-run scrape, then the rest.
            for r in &plan.requests[..MID_SCRAPE_AFTER] {
                send(&mut writer, &r.to_value().render());
            }
            send(
                &mut writer,
                &ControlMsg::Metrics { id: Some(9_000) }.to_value().render(),
            );
            for r in &plan.requests[MID_SCRAPE_AFTER..] {
                send(&mut writer, &r.to_value().render());
            }

            // Read until all decisions and the mid-run doc arrived.
            let mut decisions = 0usize;
            let mut mid_doc = None;
            while decisions < HOURS || mid_doc.is_none() {
                let frame = read_frame(&mut reader, MAX_FRAME)
                    .expect("client read")
                    .expect("stream open");
                match Response::parse(&frame).expect("response parses") {
                    Response::Decision(_) => decisions += 1,
                    Response::Metrics { id, doc } => {
                        assert_eq!(id, Some(9_000));
                        mid_doc = Some(doc);
                    }
                    other => panic!("unexpected response: {other:?}"),
                }
            }

            // Every response is in: the final scrape sees final totals.
            send(
                &mut writer,
                &ControlMsg::Metrics { id: Some(9_001) }.to_value().render(),
            );
            let frame = read_frame(&mut reader, MAX_FRAME)
                .expect("client read")
                .expect("stream open");
            let final_doc = match Response::parse(&frame).expect("response parses") {
                Response::Metrics { id, doc } => {
                    assert_eq!(id, Some(9_001));
                    doc
                }
                other => panic!("unexpected response: {other:?}"),
            };

            send(
                &mut writer,
                &ControlMsg::Health { id: None }.to_value().render(),
            );
            let frame = read_frame(&mut reader, MAX_FRAME)
                .expect("client read")
                .expect("stream open");
            let (ok, reasons) = match Response::parse(&frame).expect("response parses") {
                Response::Health { ok, reasons, .. } => (ok, reasons),
                other => panic!("unexpected response: {other:?}"),
            };
            *lock(&outcome) = Some((mid_doc.expect("mid-run doc"), final_doc, ok, reasons));
            // Dropping both socket halves gives the server its EOF.
        }
    });
    let _ = std::fs::remove_file(&path);

    let (mid_doc, final_doc, health_ok, health_reasons) =
        lock(&outcome).take().expect("client finished");
    let stats = lock(&server_stats)
        .first()
        .cloned()
        .expect("server produced stats");
    ScrapedRun {
        mid_doc,
        final_doc,
        health_ok,
        health_reasons,
        stats,
    }
}

fn expected_final_counters(run: &ScrapedRun) {
    let c = &run.final_doc.counters;
    assert_eq!(c["serve.requests"], HOURS as u64);
    assert_eq!(c["serve.decisions"], HOURS as u64);
    assert_eq!(c["serve.errors"], 0);
    // 168 distinct hours: all misses, no hits, no evictions.
    assert_eq!(c["serve.cache.hit"], 0);
    assert_eq!(c["serve.cache.miss"], HOURS as u64);
    assert_eq!(c["serve.cache.evict"], 0);
    assert_eq!(c["serve.sink.dropped"], 0);
    assert!(
        c["core.engine.rebuilds_unique"] > 0,
        "the week must build at least one step model"
    );
    // Scrape equals the server's own books.
    assert_eq!(c["serve.requests"], run.stats.requests);
    assert_eq!(c["serve.decisions"], run.stats.decisions);
    assert_eq!(c["serve.errors"], run.stats.errors);
    assert_eq!(c["serve.cache.hit"], run.stats.cache_hits);
    assert_eq!(c["serve.cache.miss"], run.stats.cache_misses);
    assert_eq!(c["serve.cache.evict"], run.stats.cache_evictions);
}

#[test]
fn scraped_work_counters_are_thread_count_invariant() {
    let stream_path = std::env::temp_dir().join(format!(
        "billcap-telemetry-stream-{}.jsonl",
        std::process::id()
    ));
    let one = run_scraped(1, Some(&stream_path));
    let four = run_scraped(4, None);

    expected_final_counters(&one);
    expected_final_counters(&four);

    // The entire final counter map — not just a few fields — must be
    // bitwise-equal across worker counts.
    let c1: &BTreeMap<String, u64> = &one.final_doc.counters;
    let c4: &BTreeMap<String, u64> = &four.final_doc.counters;
    let strip_sink = |c: &BTreeMap<String, u64>| {
        // sink.emitted differs only by stream attachment (run `one`
        // streams to a file, run `four` does not), never by schedule.
        c.iter()
            .filter(|(k, _)| *k != "serve.sink.emitted")
            .map(|(k, v)| (k.clone(), *v))
            .collect::<BTreeMap<_, _>>()
    };
    assert_eq!(
        strip_sink(c1),
        strip_sink(c4),
        "work counters drifted between 1 and 4 workers"
    );

    // Mid-run scrapes are answered by the reader after it has enqueued
    // the first 100 data frames: the request counter is exact even
    // mid-flight, whatever the workers are doing.
    assert_eq!(
        one.mid_doc.counters["serve.requests"],
        MID_SCRAPE_AFTER as u64
    );
    assert_eq!(
        four.mid_doc.counters["serve.requests"],
        MID_SCRAPE_AFTER as u64
    );

    // A healthy server reports so in-band.
    assert!(one.health_ok, "degraded: {:?}", one.health_reasons);
    assert!(four.health_ok, "degraded: {:?}", four.health_reasons);

    // The streamed JSONL is parseable, tick-ordered, and reflects the
    // deterministic rotation schedule (one line per 16 data frames,
    // plus the end-of-stream summary line flushed after the pool
    // joins).
    let text = std::fs::read_to_string(&stream_path).expect("stream file written");
    let _ = std::fs::remove_file(&stream_path);
    let docs: Vec<MetricsDoc> = text
        .lines()
        .map(|l| MetricsDoc::parse_json(l).expect("stream line parses"))
        .collect();
    assert_eq!(docs.len(), HOURS / 16 + 1);
    for (i, d) in docs.iter().enumerate() {
        assert_eq!(d.tick, i as u64, "stream lines must be tick-ordered");
        assert_eq!(
            d.counters["serve.requests"],
            (((i + 1) * 16).min(HOURS)) as u64
        );
    }
    let summary = docs.last().expect("summary line");
    assert_eq!(summary.counters["serve.decisions"], HOURS as u64);
    assert_eq!(summary.latency["solve_us"].count, HOURS as u64);
    // Latency series carry real observations by the final scrape.
    assert!(one.final_doc.latency["solve_us"].count > 0);
    assert!(one.final_doc.latency["request_us"].count > 0);
}
