//! Differential test for the decision server: a 168-hour simulated week
//! (the paper's scenario under the stringent monthly budget) replayed
//! through `billcap::serve` must produce responses **bitwise-identical**
//! to sequential fresh-model `decide_hour` calls — at 1 and 4 workers,
//! with and without the decision cache. This is the server's whole
//! correctness contract: the daemon is never allowed to drift from the
//! CLI, not even in the last ulp.
//!
//! The expensive part — building the 168-hour ground-truth plan with a
//! fresh `BillCapper` per the simulator's budget-feedback loop — runs
//! once and is shared by every test via `OnceLock`.

use billcap::serve::{
    build_plan, encode_requests, read_frame, run_replay, verify_replay, Response, ServeConfig,
    MAX_FRAME,
};
use billcap::sim::Scenario;
use std::io::Cursor;
use std::sync::OnceLock;

const HOURS: usize = 168;

fn plan() -> &'static billcap::serve::ReplayPlan {
    static PLAN: OnceLock<billcap::serve::ReplayPlan> = OnceLock::new();
    PLAN.get_or_init(|| {
        build_plan(1, 42, HOURS, Some(Scenario::STRINGENT_BUDGET))
            .expect("ground-truth plan builds")
    })
}

fn config(workers: usize, cache: bool) -> ServeConfig {
    ServeConfig {
        workers,
        cache,
        ..ServeConfig::default()
    }
}

fn replay_and_verify(workers: usize, cache: bool) {
    let plan = plan();
    let outcome = run_replay(&config(workers, cache), plan).expect("replay runs");
    verify_replay(plan, &outcome).unwrap_or_else(|e| {
        panic!("workers={workers} cache={cache}: {e}");
    });
    assert_eq!(outcome.stats.decisions as usize, HOURS);
    assert_eq!(outcome.stats.errors, 0);
    // The cache counters are exact work counts: 168 distinct hours mean
    // 168 misses, zero hits, and (capacity 744 > 168) zero evictions —
    // at every worker count.
    if cache {
        assert_eq!(outcome.stats.cache_hits, 0, "workers={workers}");
        assert_eq!(
            outcome.stats.cache_misses, HOURS as u64,
            "workers={workers}"
        );
        assert_eq!(outcome.stats.cache_evictions, 0, "workers={workers}");
    } else {
        assert_eq!(outcome.stats.cache_hits, 0);
        assert_eq!(outcome.stats.cache_misses, 0);
        assert_eq!(outcome.stats.cache_evictions, 0);
    }
}

#[test]
fn one_worker_no_cache_is_bitwise_identical() {
    replay_and_verify(1, false);
}

#[test]
fn one_worker_with_cache_is_bitwise_identical() {
    replay_and_verify(1, true);
}

#[test]
fn four_workers_no_cache_is_bitwise_identical() {
    replay_and_verify(4, false);
}

#[test]
fn four_workers_with_cache_is_bitwise_identical() {
    replay_and_verify(4, true);
}

/// The same week submitted twice in one connection: the second pass must
/// be answered from the decision cache (every request is an exact bit
/// pattern repeat) and remain bitwise-identical to the fresh decisions.
#[test]
fn cached_second_pass_stays_bitwise_identical() {
    let plan = plan();
    let mut input = encode_requests(plan);
    let second = encode_requests(plan);
    input.extend_from_slice(&second);

    let mut out = Vec::new();
    let stats = billcap::serve::serve(&config(2, true), Cursor::new(input), &mut out);
    assert_eq!(stats.decisions as usize, 2 * HOURS);
    assert_eq!(stats.errors, 0);
    // Workers race hour-for-hour duplicates only within one pass's
    // in-flight window; the full second pass is all hits, so at least
    // HOURS of the 2*HOURS requests must have been served from cache.
    assert!(
        stats.cache_hits as usize >= HOURS,
        "expected >= {HOURS} cache hits, got {}",
        stats.cache_hits
    );
    // Every lookup is either a hit or a miss; nothing is ever evicted
    // (2*168 requests name only 168 distinct keys, capacity 744).
    assert_eq!(stats.cache_hits + stats.cache_misses, 2 * HOURS as u64);
    assert_eq!(stats.cache_evictions, 0);

    let mut per_hour_count = vec![0usize; HOURS];
    let mut cur = Cursor::new(out);
    while let Some(frame) = read_frame(&mut cur, MAX_FRAME).expect("server frames parse") {
        match Response::parse(&frame).expect("server responses parse") {
            Response::Decision(msg) => {
                let t = msg.id as usize;
                per_hour_count[t] += 1;
                msg.bitwise_matches(&plan.expected[t])
                    .unwrap_or_else(|e| panic!("hour {t} (cached={}): {e}", msg.cached));
            }
            Response::Error { id, message } => panic!("error for {id:?}: {message}"),
            other => panic!("unexpected control response: {other:?}"),
        }
    }
    assert!(
        per_hour_count.iter().all(|&c| c == 2),
        "every hour answered twice"
    );
}
