//! Static-analysis subsystem end to end: the model linter (M0xx) and
//! spec linter (S0xx) against a zoo of deliberately corrupted inputs,
//! the committed example systems staying Error-free, and the headline
//! payoff — root bound propagation shrinking the branch-and-bound tree
//! on the one-week reference workload without changing any decision.

#![forbid(unsafe_code)]

use billcap_core::{lint_system, BillCapper, DataCenterSystem};
use billcap_market::{PricingPolicySet, StepPolicy};
use billcap_milp::{lint_model, ConstraintOp, Model, Sense, Severity, VarType};
use billcap_sim::Scenario;

/// A well-formed toy model to corrupt per test, with its two variables.
fn clean_model() -> (Model, billcap_milp::VarId, billcap_milp::VarId) {
    let mut m = Model::new("toy", Sense::Minimize);
    let x = m.add_cont("x", 0.0, 10.0);
    let y = m.add_cont("y", 0.0, 10.0);
    m.add_constraint("sum", vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 12.0);
    m.set_objective(vec![(x, 2.0), (y, 3.0)], 0.0);
    (m, x, y)
}

fn codes(model: &Model) -> Vec<&'static str> {
    lint_model(model).findings.iter().map(|f| f.code).collect()
}

// ---------------------------------------------------------------------
// Corruption classes: each class of broken input maps to a stable code.
// ---------------------------------------------------------------------

/// Class 1 — loose big-M: an indicator row whose M dwarfs the variable's
/// own bound.
#[test]
fn corruption_loose_big_m_is_m002() {
    let mut m = Model::new("bigm", Sense::Minimize);
    let q = m.add_cont("q", 0.0, 5.0);
    let z = m.add_var("z", VarType::Binary, 0.0, 1.0);
    m.add_constraint("ind", vec![(q, 1.0), (z, -1e7)], ConstraintOp::Le, 0.0);
    m.set_objective(vec![(q, 1.0)], 0.0);
    assert!(codes(&m).contains(&"M002"), "{}", lint_model(&m));
}

/// Class 2 — broken exactly-one: a selection row whose participant is
/// not binary-like.
#[test]
fn corruption_broken_exactly_one_is_m003() {
    let mut m = Model::new("sel", Sense::Minimize);
    let z0 = m.add_var("z0", VarType::Binary, 0.0, 1.0);
    let z1 = m.add_cont("z1", 0.0, 10.0); // continuous, wide bounds
    m.add_constraint("one", vec![(z0, 1.0), (z1, 1.0)], ConstraintOp::Eq, 1.0);
    m.set_objective(vec![(z0, 1.0)], 0.0);
    let report = lint_model(&m);
    assert!(report.has("M003"));
    assert!(!report.is_clean());
}

/// Class 3 — contradictory parallel rows (same left-hand side, empty
/// right-hand-side interval) and its benign cousin, the duplicate row.
#[test]
fn corruption_contradictory_and_duplicate_rows_are_m004() {
    let (mut m, x, _) = clean_model();
    m.add_constraint("ge", vec![(x, 1.0)], ConstraintOp::Ge, 8.0);
    m.add_constraint("le", vec![(x, 1.0)], ConstraintOp::Le, 2.0);
    let report = lint_model(&m);
    let f = report
        .findings
        .iter()
        .find(|f| f.code == "M004")
        .expect("M004");
    assert_eq!(f.severity, Severity::Error, "{f}");

    let (mut m, x, _) = clean_model();
    m.add_constraint("dup1", vec![(x, 1.0)], ConstraintOp::Le, 7.0);
    m.add_constraint("dup2", vec![(x, 2.0)], ConstraintOp::Le, 14.0); // scaled copy
    let report = lint_model(&m);
    let f = report
        .findings
        .iter()
        .find(|f| f.code == "M004")
        .expect("M004");
    assert_eq!(f.severity, Severity::Warning, "{f}");
}

/// Class 4 — dangling variable: declared but referenced by neither a
/// constraint nor the objective.
#[test]
fn corruption_dangling_variable_is_m005() {
    let (mut m, _, _) = clean_model();
    let _loose = m.add_cont("loose", 0.0, 1.0);
    assert!(codes(&m).contains(&"M005"), "{}", lint_model(&m));
}

/// Class 5 — statically infeasible bounds, provable by propagation
/// without a single simplex pivot.
#[test]
fn corruption_static_infeasibility_is_m007() {
    let (mut m, x, y) = clean_model();
    // x + y <= 12 (from clean_model) but each must exceed 7.
    m.add_constraint("x_hi", vec![(x, 1.0)], ConstraintOp::Ge, 7.0);
    m.add_constraint("y_hi", vec![(y, 1.0)], ConstraintOp::Ge, 7.0);
    let report = lint_model(&m);
    assert!(report.has("M007"), "{report}");
    assert!(!report.is_clean());
}

/// Class 6 — non-monotone step-price breakpoints.
#[test]
fn corruption_non_monotone_breakpoints_is_s001() {
    let mut sys = DataCenterSystem::paper_system(1);
    sys.policies.policies[0] =
        StepPolicy::new_unchecked(vec![300.0, 100.0], vec![10.0, 20.0, 30.0]);
    let report = lint_system(&sys);
    assert!(report.has("S001"), "{report}");
    assert!(!report.is_clean());
}

/// Class 7 — budget weights that do not sum to 1.
#[test]
fn corruption_bad_budget_weights_is_s003() {
    let report = billcap_core::lint_budget_weights(&[0.3, 0.3, 0.3]);
    assert!(report.has("S003"));
    assert!(!report.is_clean());
}

/// Class 8 — power cap below the site's idle (QoS headroom) draw.
#[test]
fn corruption_cap_below_idle_power_is_s006() {
    let mut sys = DataCenterSystem::paper_system(1);
    sys.sites[0].power_cap_mw = 1e-6;
    let report = lint_system(&sys);
    assert!(report.has("S006"), "{report}");
    assert!(!report.is_clean());
}

/// Class 9 — premium fraction outside (0, 1].
#[test]
fn corruption_premium_fraction_is_s004() {
    assert!(!billcap_core::lint_premium_fraction(-0.2).is_clean());
    assert!(!billcap_core::lint_premium_fraction(7.0).is_clean());
}

// ---------------------------------------------------------------------
// Committed inputs stay Error-free.
// ---------------------------------------------------------------------

#[test]
fn committed_systems_have_zero_error_findings() {
    for policy in 0..4 {
        let sys = DataCenterSystem::paper_system(policy);
        let report = lint_system(&sys);
        assert!(report.is_clean(), "policy {policy}:\n{report}");
    }
    for (sites, levels) in [(2usize, 2usize), (5, 5), (10, 10)] {
        let report = lint_system(&DataCenterSystem::synthetic(sites, levels));
        assert!(report.is_clean(), "synthetic {sites}x{levels}:\n{report}");
    }
    let report = lint_system(&Scenario::paper_default(1, 42).system);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn pricing_policy_set_constructors_are_clean() {
    // The paper simulates three data centers; `paper_policy` is defined
    // for dc in 0..3, so that's the largest set we can build.
    for n in [1usize, 2, 3] {
        for set in [
            PricingPolicySet::policy0(n),
            PricingPolicySet::policy1(n),
            PricingPolicySet::policy2(n),
            PricingPolicySet::policy3(n),
        ] {
            for (i, p) in set.policies.iter().enumerate() {
                assert!(
                    StepPolicy::try_new(p.breakpoints().to_vec(), p.prices().to_vec()).is_ok(),
                    "policy {i} of a committed set fails validation"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// The payoff: root bound propagation shrinks the search on the
// one-week reference workload without changing any decision.
// ---------------------------------------------------------------------

#[test]
fn propagation_reduces_bnb_nodes_on_reference_week() {
    let scenario = Scenario::paper_default(1, 42);
    let hours = 168;
    let budget_per_hour = Scenario::STRINGENT_BUDGET / 720.0;

    let with = BillCapper::default();
    let mut without = BillCapper::default();
    without.minimizer.solver.root_propagation = false;
    without.maximizer.solver.root_propagation = false;

    let mut nodes_with = 0usize;
    let mut nodes_without = 0usize;
    let mut iters_with = 0usize;
    let mut iters_without = 0usize;
    for h in 0..hours {
        let offered = scenario.workload.values()[h];
        let premium = scenario.split.premium(offered);
        let background: Vec<f64> = scenario.background.iter().map(|b| b.values()[h]).collect();

        let a = with
            .decide_hour(
                &scenario.system,
                offered,
                premium,
                &background,
                budget_per_hour,
            )
            .expect("hour feasible");
        let b = without
            .decide_hour(
                &scenario.system,
                offered,
                premium,
                &background,
                budget_per_hour,
            )
            .expect("hour feasible");

        // Same decisions, to the dollar and request.
        assert_eq!(a.outcome, b.outcome, "hour {h}");
        assert!(
            (a.cost() - b.cost()).abs() <= 1e-6 * a.cost().abs().max(1.0),
            "hour {h}: cost {} vs {}",
            a.cost(),
            b.cost()
        );
        assert!(
            (a.premium_served - b.premium_served).abs() <= 1e-6 * offered,
            "hour {h}"
        );

        nodes_with += a.trace.nodes;
        nodes_without += b.trace.nodes;
        iters_with += a.trace.lp_iterations;
        iters_without += b.trace.lp_iterations;
    }

    assert!(
        nodes_with < nodes_without,
        "propagation must shrink the tree: {nodes_with} vs {nodes_without} nodes"
    );
    assert!(
        iters_with < iters_without,
        "fewer nodes must also mean less simplex work: \
         {iters_with} vs {iters_without} LP iterations"
    );
}
