//! Integration tests for the certification layer: the MILP certificate
//! checker ([`billcap::milp::certify_solution`]) and the first-principles
//! plan auditor ([`billcap::core::PlanAuditor`]) must accept everything
//! the real pipeline produces — optimizer allocations, capper decisions
//! across all three hour outcomes, full audited month simulations — and
//! reject deliberately corrupted artifacts of every class the paper's
//! invariants rule out. A discrete-event G/G/m simulation cross-validates
//! the Allen–Cunneen model the auditor recomputes response times with.

use billcap::core::{
    BillCapper, CostMinimizer, DataCenterSystem, HourOutcome, PlanAuditor, PlanViolation,
    ThroughputMaximizer,
};
use billcap::milp::{certify_solution, ConstraintOp, LpSolver, MipSolver, Model, Sense};
use billcap::queueing::{GgmModel, QueueSim};
use billcap::rt::{Rng, Xoshiro256pp};
use billcap::sim::{run_month_with, Scenario, Strategy};

fn system() -> DataCenterSystem {
    DataCenterSystem::paper_system(1)
}

/// Every genuine optimizer output and capper decision over seeded random
/// hours must pass both audit layers. This is the "existing experiment
/// outputs certify" half of the contract; corruption rejection is below.
#[test]
fn genuine_pipeline_outputs_audit_clean() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xA0D1);
    let sys = system();
    let auditor = PlanAuditor::default();
    let capper = BillCapper::default();
    for case in 0..24 {
        let lambda = rng.random_f64_in(1e7, 1.2e9);
        let d: Vec<f64> = (0..3).map(|_| rng.random_f64_in(150.0, 650.0)).collect();

        let alloc = CostMinimizer::default().solve(&sys, lambda, &d).unwrap();
        let report = auditor.audit_allocation(&sys, &alloc, &d);
        assert!(report.passed(), "case {case}: minimizer {report}");

        let budget = rng.random_f64_in(0.3, 1.2) * alloc.total_cost;
        if let Ok(max) = ThroughputMaximizer::default().solve(&sys, lambda, &d, budget) {
            let report = auditor.audit_allocation(&sys, &max, &d);
            assert!(report.passed(), "case {case}: maximizer {report}");
        }

        let premium = rng.random_f64_in(0.1, 0.9) * lambda;
        let dec = capper
            .decide_hour(&sys, lambda, premium, &d, budget)
            .unwrap();
        let report = auditor.audit_decision(&sys, &dec, &d);
        assert!(report.passed(), "case {case} ({:?}): {report}", dec.outcome);
    }
}

/// A full audited week of the simulated month is clean under a budget
/// tight enough to exercise all three hour outcomes.
#[test]
fn audited_simulation_week_is_clean() {
    let mut s = Scenario::paper_default(1, 7);
    s.workload = s.workload.slice(0, 168);
    s.background = s.background.iter().map(|b| b.slice(0, 168)).collect();
    let r = run_month_with(&s, Strategy::CostCapping, Some(80_000.0), true).unwrap();
    assert_eq!(r.audited_hours(), 168);
    assert!(
        r.audit_clean(),
        "first failure: {:?}",
        r.first_audit_failure()
    );
    // The tight budget must actually constrain some hours, so the audit
    // exercised more than the easy WithinBudget invariants.
    assert!(
        r.hours
            .iter()
            .any(|h| h.outcome != Some(HourOutcome::WithinBudget)),
        "budget not tight"
    );
}

/// Each corruption class from the paper's invariant list is rejected with
/// the matching violation, starting from a genuine decision.
#[test]
fn corrupted_plans_are_rejected() {
    let sys = system();
    let d = vec![330.0, 410.0, 280.0];
    let auditor = PlanAuditor::default();
    let dec = BillCapper::default()
        .decide_hour(&sys, 8e8, 0.8 * 8e8, &d, f64::INFINITY)
        .unwrap();
    assert!(auditor.audit_decision(&sys, &dec, &d).passed());

    // 1. Wrong price level: claim the cheaper adjacent step without
    //    moving any power.
    let mut bad = dec.clone();
    let k = bad.allocation.level[0].saturating_sub(1);
    bad.allocation.level[0] = k;
    let (_, _, price) = sys.policy(0).levels().nth(k).unwrap();
    bad.allocation.price[0] = price;
    bad.allocation.cost[0] = price * bad.allocation.power_mw[0];
    bad.allocation.total_cost = bad.allocation.cost.iter().sum();
    let report = auditor.audit_decision(&sys, &bad, &d);
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, PlanViolation::PriceLevel { .. })),
        "{report}"
    );

    // 2. QoS violation: a loaded site on a skeleton crew of servers.
    let mut bad = dec.clone();
    let busiest = (0..sys.len())
        .max_by(|&a, &b| bad.allocation.lambda[a].total_cmp(&bad.allocation.lambda[b]))
        .unwrap();
    bad.allocation.servers[busiest] =
        (bad.allocation.lambda[busiest] / sys.sites[busiest].queue.service_rate) as u64;
    let report = auditor.audit_decision(&sys, &bad, &d);
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, PlanViolation::ResponseTime { .. })),
        "{report}"
    );

    // 3. Budget bust without the premium exception: the hour claims
    //    WithinBudget while spending double its budget.
    let mut bad = dec.clone();
    bad.budget = bad.cost() * 0.5;
    assert_eq!(bad.outcome, HourOutcome::WithinBudget);
    let report = auditor.audit_decision(&sys, &bad, &d);
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, PlanViolation::BudgetExceeded { .. })),
        "{report}"
    );

    // 4. Infeasible power split: power shifted between sites with the
    //    request rates unchanged breaks the affine power identity twice.
    let mut bad = dec.clone();
    bad.allocation.power_mw[0] += 12.0;
    bad.allocation.power_mw[1] -= 12.0;
    let report = auditor.audit_decision(&sys, &bad, &d);
    let identity = report
        .violations
        .iter()
        .filter(|v| matches!(v, PlanViolation::PowerIdentity { .. }))
        .count();
    assert!(identity >= 2, "{report}");

    // 5. Premium shed: half the premium traffic silently dropped.
    let mut bad = dec.clone();
    bad.premium_served = 0.5 * bad.premium_offered;
    bad.ordinary_served = 0.0;
    let report = auditor.audit_decision(&sys, &bad, &d);
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, PlanViolation::PremiumShed { .. })),
        "{report}"
    );

    // 6. Over-admission: serving traffic nobody offered.
    let mut bad = dec.clone();
    bad.ordinary_served = bad.offered; // premium + offered > offered
    let report = auditor.audit_decision(&sys, &bad, &d);
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, PlanViolation::OverAdmission { .. })),
        "{report}"
    );
}

/// Solver outputs certify; a stale dual certificate — duals carried over
/// from a tighter instance — does not.
#[test]
fn certification_accepts_fresh_and_rejects_stale_duals() {
    let build = |rhs: f64| {
        let mut m = Model::new("cert_lp", Sense::Maximize);
        let x = m.add_cont("x", 0.0, f64::INFINITY);
        let y = m.add_cont("y", 0.0, f64::INFINITY);
        m.add_constraint("c1", vec![(x, 1.0)], ConstraintOp::Le, 4.0);
        m.add_constraint("c2", vec![(y, 2.0)], ConstraintOp::Le, 12.0);
        m.add_constraint("c3", vec![(x, 3.0), (y, 2.0)], ConstraintOp::Le, rhs);
        m.set_objective(vec![(x, 3.0), (y, 5.0)], 0.0);
        m
    };
    let tight = build(18.0);
    let loose = build(30.0);
    let tight_sol = LpSolver::default().solve(&tight).unwrap();
    let mut loose_sol = LpSolver::default().solve(&loose).unwrap();
    assert!(certify_solution(&tight, &tight_sol).certified());
    assert!(certify_solution(&loose, &loose_sol).certified());

    // Splice the tight instance's duals into the loosened solve: the
    // binding pattern changed, so duality/complementary slackness breaks.
    loose_sol.duals = tight_sol.duals.clone();
    let report = certify_solution(&loose, &loose_sol);
    assert!(!report.certified(), "stale duals certified: {report}");

    // And a MILP from the same family certifies end to end.
    let mut m = build(30.0);
    let z = m.add_var("z", billcap::milp::VarType::Integer, 0.0, 3.0);
    m.add_constraint("c4", vec![(z, 1.0)], ConstraintOp::Le, 2.0);
    let sol = MipSolver::default().solve(&m).unwrap();
    assert!(certify_solution(&m, &sol).certified());
}

/// The DES ground truth validates the Allen–Cunneen recomputation the
/// auditor relies on, at the utilization regime the paper's sizing rule
/// produces (ρ near 1, where the simplified and full forms converge).
#[test]
fn des_cross_validates_allen_cunneen_response_time() {
    let model = GgmModel::new(1.0, 1.0, 1.0);
    let target = 1.5; // 1.5x the bare service time, like the paper's Rs
    for (lambda, seed) in [(9.0f64, 31u64), (24.0, 32), (46.0, 33)] {
        let n = model.min_servers(lambda, target).unwrap();
        let analytic = model.response_time_full(n, lambda).unwrap();
        let sim = QueueSim::ggm(n, lambda, 1.0, 1.0, 1.0, seed).run(200_000);
        let rel = (analytic - sim.mean_response).abs() / sim.mean_response;
        // The paper reports the approximation within ~15% of simulation;
        // at M/M/m it is exact up to sampling noise, so hold a tighter band.
        assert!(
            rel < 0.05,
            "lambda {lambda}: analytic {analytic} vs sim {} (rel {rel})",
            sim.mean_response
        );
        // The sizing the auditor re-derives must actually meet the target
        // in the exact simulation, not just in the formula.
        assert!(
            sim.mean_response <= target * 1.02,
            "lambda {lambda}: simulated R {} misses target {target}",
            sim.mean_response
        );
    }
}
