//! Integration tests asserting the *qualitative shape* of every paper
//! figure — who wins, by roughly what factor, where crossovers fall —
//! exactly as EXPERIMENTS.md documents. These run the same experiment
//! code as the `paper_experiments` binary and the benches.

use billcap::sim::experiments::{self, DEFAULT_SEED};
use billcap::sim::Strategy;

/// Figure 1: the five-bus LMP sweep yields multi-level, rising,
/// location-differentiated step policies.
#[test]
fn fig1_policies_step_upward_and_differ_by_location() {
    let f = experiments::fig1();
    for (consumer, series, policy) in f
        .series
        .iter()
        .zip(&f.policies)
        .map(|((c, s), p)| (c, s, p))
    {
        assert!(policy.num_levels() >= 2, "{consumer:?}: single level");
        let first = series.first().unwrap().1;
        let last = series.last().unwrap().1;
        assert!(last > first, "{consumer:?}: prices did not rise");
        // At low load every bus prices at Brighton's $10 marginal cost.
        assert!(
            (first - 10.0).abs() < 0.5,
            "{consumer:?}: low-load LMP {first}"
        );
    }
    // Congestion must differentiate the buses somewhere in the sweep.
    let spread_exists = (0..f.series[0].1.len()).any(|i| {
        let prices: Vec<f64> = f.series.iter().map(|(_, s)| s[i].1).collect();
        let max = prices.iter().cloned().fold(f64::MIN, f64::max);
        let min = prices.iter().cloned().fold(f64::MAX, f64::min);
        max - min > 1.0
    });
    assert!(spread_exists, "LMPs never diverged across buses");
}

/// Figure 3: Cost Capping's bill is lowest; Min-Only (Low) is the worst,
/// with savings in the neighbourhood the paper reports (17.9% / 33.5%).
#[test]
fn fig3_cost_ordering_and_savings_bands() {
    let f = experiments::fig3(DEFAULT_SEED).unwrap();
    let capping = f.capping.total_cost();
    let avg = f.min_only_avg.total_cost();
    let low = f.min_only_low.total_cost();
    assert!(capping < avg, "capping {capping} !< avg {avg}");
    assert!(avg < low, "avg {avg} !< low {low}");
    let s_avg = f.savings_vs(&f.min_only_avg);
    let s_low = f.savings_vs(&f.min_only_low);
    assert!(
        (0.08..=0.30).contains(&s_avg),
        "savings vs Avg {s_avg} outside band (paper: 0.179)"
    );
    assert!(
        (0.20..=0.45).contains(&s_low),
        "savings vs Low {s_low} outside band (paper: 0.335)"
    );
    // Every strategy served everything (no budget): same QoS, lower bill.
    assert!((f.capping.premium_throughput() - 1.0).abs() < 1e-9);
    assert!((f.capping.ordinary_throughput() - 1.0).abs() < 1e-9);
}

/// Figure 4: under Policy 0 all strategies pay the same; under Policies
/// 1-3 the bills escalate and Cost Capping wins everywhere.
#[test]
fn fig4_policy_sweep_shapes() {
    let f = experiments::fig4(DEFAULT_SEED).unwrap();
    // Policy 0: flat prices mean price-maker awareness cannot help.
    let p0 = f.bills[0];
    assert!(
        (p0[0] - p0[1]).abs() / p0[0] < 0.01 && (p0[0] - p0[2]).abs() / p0[0] < 0.01,
        "Policy 0 bills should coincide: {p0:?}"
    );
    for p in 1..4 {
        let row = f.bills[p];
        assert!(row[0] < row[1], "policy {p}: capping !< avg ({row:?})");
        assert!(row[1] < row[2], "policy {p}: avg !< low ({row:?})");
    }
    // Steeper policies cost more for every strategy.
    for s in 0..3 {
        assert!(
            f.bills[2][s] > f.bills[1][s],
            "policy2 !> policy1 for strategy {s}"
        );
        assert!(
            f.bills[3][s] > f.bills[2][s],
            "policy3 !> policy2 for strategy {s}"
        );
    }
    // The baselines suffer *more* from steeper policies than capping does.
    let penalty = |p: usize, s: usize| f.bills[p][s] / f.bills[1][s];
    assert!(
        penalty(3, 2) > penalty(3, 0),
        "Low should degrade faster than capping"
    );
}

/// Figures 5/6: the abundant $2.5M budget serves everything and every
/// hour's cost stays within its (carry-over growing) budget.
#[test]
fn fig5_6_abundant_budget() {
    let f = experiments::fig5_6(DEFAULT_SEED).unwrap();
    assert!((f.report.premium_throughput() - 1.0).abs() < 1e-9);
    assert!((f.report.ordinary_throughput() - 1.0).abs() < 1e-9);
    assert_eq!(f.report.hourly_violations(), 0);
    assert!(!f.report.violates_monthly_budget());
    assert_eq!(f.starved_hours(), 0);
    // Carry-over grows the hourly budget within a week: the max budget in
    // a week should exceed the min noticeably.
    let budgets: Vec<f64> = f.report.hours[0..168]
        .iter()
        .map(|h| h.hourly_budget.unwrap())
        .collect();
    let max = budgets.iter().cloned().fold(f64::MIN, f64::max);
    let min = budgets.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max > 2.0 * min,
        "carry-over growth not visible: {min}..{max}"
    );
}

/// Figures 7/8: the stringent $1.5M budget trades ordinary throughput for
/// the cap; premium is untouched; some hours serve zero ordinary traffic;
/// a few hours violate their budget to protect premium QoS.
#[test]
fn fig7_8_stringent_budget() {
    let f = experiments::fig7_8(DEFAULT_SEED).unwrap();
    assert!((f.report.premium_throughput() - 1.0).abs() < 1e-9);
    let ord = f.report.ordinary_throughput();
    assert!(
        (0.4..1.0).contains(&ord),
        "ordinary throughput {ord} should be partial (paper: 0.803)"
    );
    assert!(f.starved_hours() > 0, "no hours starved ordinary traffic");
    assert!(
        f.report.hourly_violations() > 0,
        "premium QoS should force some hourly violations"
    );
    // The monthly bill lands near the budget (paper: 98.5% utilization).
    let util = f.report.budget_utilization().unwrap();
    assert!(
        (0.95..=1.10).contains(&util),
        "budget utilization {util} far from 1"
    );
}

/// Figure 9: at $1.5M the baselines blow through the budget while capping
/// pins the bill to it with premium fully served.
#[test]
fn fig9_normalized_comparison() {
    let f = experiments::fig9(DEFAULT_SEED).unwrap();
    let (capping_cost, capping_prem, _) = f.rows[0];
    let (avg_cost, _, avg_ord) = f.rows[1];
    let (low_cost, _, low_ord) = f.rows[2];
    assert!(
        capping_cost <= 1.1,
        "capping {capping_cost} not near budget"
    );
    assert!(avg_cost > 1.1, "Min-Only (Avg) should exceed the budget");
    assert!(low_cost > avg_cost, "Low should exceed Avg");
    assert!((capping_prem - 1.0).abs() < 1e-9);
    // Budget-unaware baselines serve everything.
    assert!((avg_ord - 1.0).abs() < 1e-9 && (low_ord - 1.0).abs() < 1e-9);
}

/// Figure 10: premium is pinned at 100% across the ladder; ordinary
/// throughput is monotone in the budget and saturates at the top.
#[test]
fn fig10_budget_ladder() {
    let f = experiments::fig10(DEFAULT_SEED).unwrap();
    assert_eq!(f.rows.len(), 5);
    let mut prev = -1.0;
    for &(budget, prem, ord, _) in &f.rows {
        assert!((prem - 1.0).abs() < 1e-9, "premium lost at {budget}");
        assert!(
            ord >= prev - 1e-9,
            "ordinary throughput not monotone at {budget}"
        );
        prev = ord;
    }
    let top = f.rows.last().unwrap();
    assert!(
        (top.2 - 1.0).abs() < 1e-6,
        "top budget should serve everything"
    );
    let bottom = f.rows.first().unwrap();
    assert!(
        bottom.2 < 0.5,
        "bottom budget should shed most ordinary traffic"
    );
}

/// Section IV-C: solve times stay in the paper's reported regime
/// (~milliseconds at 13 sites / 5 levels / 1e8 requests).
#[test]
fn solver_scaling_matches_paper_regime() {
    let s = experiments::solver_scaling(5);
    let thirteen = s.rows.iter().find(|r| r.0 == 13).unwrap();
    // Paper: <= ~2 ms. Allow 100 ms to absorb debug builds and CI noise —
    // the release bench records the honest number.
    assert!(
        thirteen.2 < 100_000.0,
        "13-site solve took {} us",
        thirteen.2
    );
}

/// Ablation: ignoring cooling and networking in the decision (while being
/// billed for them) must cost real money — the paper's motivation for
/// modeling them.
#[test]
fn power_model_ablation_shows_penalty() {
    let a = experiments::ablation_power_model(DEFAULT_SEED).unwrap();
    assert!(
        a.penalty() > 0.02,
        "server-only blindness should cost >2%, got {}",
        a.penalty()
    );
}

/// Strategy names are distinct and stable (they key the report tables).
#[test]
fn strategy_names() {
    let names: Vec<&str> = Strategy::ALL.iter().map(|s| s.name()).collect();
    assert_eq!(
        names,
        vec!["Cost Capping", "Min-Only (Avg)", "Min-Only (Low)"]
    );
}
