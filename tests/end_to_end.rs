//! Cross-crate integration tests: the full pipeline from market substrate
//! through the optimizer to realized billing, exercised through the
//! public `billcap` facade.

use billcap::core::{
    evaluate_allocation, BillCapper, CostMinimizer, DataCenterSpec, DataCenterSystem, HourOutcome,
    MinOnly, PriceAssumption, ThroughputMaximizer,
};
use billcap::market::{pjm_five_bus, OpfSolver, PricingPolicySet, StepPolicy};
use billcap::power::{CoolingModel, DcPowerModel, FatTree, ServerModel, SwitchPower};
use billcap::queueing::GgmModel;
use billcap::workload::{Budgeter, HourlyTrace, TraceConfig, TraceGenerator};

fn background() -> Vec<f64> {
    vec![360.0, 410.0, 430.0]
}

/// A pricing policy derived from the five-bus OPF can drive the optimizer
/// end to end: substrate -> policy -> MILP -> allocation -> billing.
#[test]
fn opf_derived_policies_drive_the_optimizer() {
    let derived = billcap::market::fivebus::derive_policies(900.0, 25.0).unwrap();
    let policies = PricingPolicySet {
        policies: derived.into_iter().map(|(_, _, p)| p).collect(),
    };
    let sites = (0..3).map(DataCenterSpec::paper_dc).collect();
    let system = DataCenterSystem::new(sites, policies).unwrap();
    let d = background();
    let alloc = CostMinimizer::default().solve(&system, 5e8, &d).unwrap();
    assert!((alloc.total_lambda - 5e8).abs() < 1.0);
    // Billing at the derived policies agrees with the MILP's own estimate.
    let real = evaluate_allocation(&system, &alloc.lambda, &d);
    let rel = (real.total_cost - alloc.total_cost).abs() / alloc.total_cost;
    assert!(rel < 0.01, "relative billing gap {rel}");
}

/// The OPF substrate and the policy fit agree pointwise: re-dispatching at
/// a load inside a fitted level reproduces the level's price.
#[test]
fn fitted_policy_matches_fresh_opf_solve() {
    let (grid, buses) = pjm_five_bus();
    let opf = OpfSolver::new(grid).unwrap();
    let mut loads = vec![0.0; 5];
    for b in [buses.b, buses.c, buses.d] {
        loads[b.0] = 150.0; // 450 MW system load
    }
    let lmp_b = opf.lmp(&loads, buses.b).unwrap();
    let derived = billcap::market::fivebus::derive_policies(900.0, 25.0).unwrap();
    let policy_b = &derived[0].2;
    assert!(
        (policy_b.price_at(450.0) - lmp_b).abs() < 1.0,
        "fitted {} vs fresh {}",
        policy_b.price_at(450.0),
        lmp_b
    );
}

/// Premium traffic survives a month of hourly decisions with a budgeter in
/// the loop, and the books balance: spend recorded equals costs incurred.
#[test]
fn budgeter_capper_loop_accounting() {
    let system = DataCenterSystem::paper_system(1);
    let history = TraceGenerator::new(TraceConfig {
        mean_rate: 7e8,
        seed: 11,
        ..Default::default()
    })
    .generate(336);
    let horizon = 72;
    let workload = TraceGenerator::new(TraceConfig {
        mean_rate: 7e8,
        seed: 12,
        ..Default::default()
    })
    .generate(horizon);
    let mut budgeter = Budgeter::from_history(80_000.0, &history, horizon);
    let capper = BillCapper::default();
    let mut total = 0.0;
    for t in 0..horizon {
        let offered = workload.at(t);
        let premium = 0.8 * offered;
        let d = background();
        let decision = capper
            .decide_hour(&system, offered, premium, &d, budgeter.hourly_budget())
            .unwrap();
        assert_eq!(decision.premium_served, premium, "hour {t}");
        let realized = evaluate_allocation(&system, &decision.allocation.lambda, &d);
        budgeter.record_spend(realized.total_cost);
        total += realized.total_cost;
    }
    assert!((budgeter.spent() - total).abs() < 1e-6);
    assert_eq!(budgeter.hours_elapsed(), horizon);
}

/// The two-step structure is internally consistent: whenever step 1 fits
/// the budget the capper reports WithinBudget, and a throttled hour's
/// spend never exceeds the budget.
#[test]
fn capper_outcomes_are_consistent_with_costs() {
    let system = DataCenterSystem::paper_system(1);
    let d = background();
    let offered = 8e8;
    let premium = 0.8 * offered;
    let min_cost = CostMinimizer::default()
        .solve(&system, offered, &d)
        .unwrap()
        .total_cost;
    for factor in [0.3, 0.6, 0.9, 1.1, 2.0] {
        let budget = factor * min_cost;
        let decision = BillCapper::default()
            .decide_hour(&system, offered, premium, &d, budget)
            .unwrap();
        match decision.outcome {
            HourOutcome::WithinBudget => {
                assert!(decision.cost() <= budget * (1.0 + 1e-9));
                assert!((decision.ordinary_served - 0.2 * offered).abs() < 1.0);
            }
            HourOutcome::Throttled => {
                assert!(decision.cost() <= budget * (1.0 + 1e-6));
                assert!(decision.ordinary_served < 0.2 * offered);
            }
            HourOutcome::PremiumOverride => {
                assert!(decision.cost() > budget);
                assert_eq!(decision.ordinary_served, 0.0);
            }
        }
    }
}

/// Step 2 at exactly the minimized cost admits everything — the two
/// problems agree at their boundary.
#[test]
fn step1_step2_boundary_agreement() {
    let system = DataCenterSystem::paper_system(1);
    let d = background();
    let lambda = 6e8;
    let step1 = CostMinimizer::default().solve(&system, lambda, &d).unwrap();
    let step2 = ThroughputMaximizer::default()
        .solve(&system, lambda, &d, step1.total_cost * (1.0 + 1e-9))
        .unwrap();
    assert!(
        (step2.total_lambda - lambda).abs() / lambda < 1e-6,
        "step2 admitted {} of {lambda}",
        step2.total_lambda
    );
}

/// A custom (non-paper) system exercises the same public API: one cheap
/// coal region and one expensive congested region.
#[test]
fn custom_two_site_system() {
    let cheap = DataCenterSpec {
        name: "coal-belt".into(),
        queue: GgmModel::new(600.0, 1.0, 1.0),
        power: DcPowerModel::new(
            ServerModel::at_operating_point(70.0, 1.0),
            1.0,
            FatTree::for_capacity(
                200_000,
                SwitchPower {
                    edge_w: 80.0,
                    aggregation_w: 80.0,
                    core_w: 250.0,
                },
            ),
            CoolingModel::new(2.2),
        ),
        response_target: 1.5 / 600.0,
        power_cap_mw: 30.0,
        max_servers: 200_000,
    };
    let mut pricey = cheap.clone();
    pricey.name = "metro".into();
    let policies = PricingPolicySet {
        policies: vec![
            StepPolicy::new(vec![300.0], vec![9.0, 11.0]),
            StepPolicy::new(vec![300.0], vec![25.0, 60.0]),
        ],
    };
    let system = DataCenterSystem::new(vec![cheap, pricey], policies).unwrap();
    let d = vec![200.0, 280.0];
    let lambda = 0.9 * system.sites[0].max_rate();
    let alloc = CostMinimizer::default().solve(&system, lambda, &d).unwrap();
    // Nearly everything should land on the cheap site.
    assert!(
        alloc.lambda[0] > 0.95 * lambda,
        "cheap site got only {:?}",
        alloc.lambda
    );
}

/// The baselines and the capper agree when prices are flat (Policy 0) and
/// the budget is generous: same bills within rounding.
#[test]
fn policy0_equalizes_strategies() {
    let system = DataCenterSystem::paper_system(0);
    let d = background();
    let lambda = 6e8;
    let capping = CostMinimizer::default().solve(&system, lambda, &d).unwrap();
    let capping_real = evaluate_allocation(&system, &capping.lambda, &d);
    for assumption in [PriceAssumption::Average, PriceAssumption::Lowest] {
        let mo = MinOnly::new(assumption).solve(&system, lambda).unwrap();
        let mo_real = evaluate_allocation(&system, &mo.lambda, &d);
        let rel = (capping_real.total_cost - mo_real.total_cost).abs() / mo_real.total_cost;
        assert!(rel < 0.01, "{assumption:?}: gap {rel}");
    }
}

/// Trace CSV round-trips through the facade (workload substrate).
#[test]
fn trace_roundtrip_through_facade() {
    let t = TraceGenerator::new(TraceConfig {
        mean_rate: 123.0,
        seed: 3,
        ..Default::default()
    })
    .generate(100);
    let csv = t.to_csv();
    let back = HourlyTrace::from_csv(&csv).unwrap();
    assert_eq!(t, back);
}
