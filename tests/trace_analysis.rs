//! Acceptance tests for the trace-analysis subsystem: a traced run's
//! profile must account for exactly the time and work the run reports,
//! the flamegraph export must round-trip losslessly, identical-seed
//! runs must diff clean, and injected regressions must trip the gate.
//!
//! The traced runs live in one `#[test]` because the global recorder
//! and the enable flag are process-wide state.

use billcap::obs;
use billcap::obs_analyze::{
    diff_snapshots, gate, parse_collapsed, to_collapsed, BenchPoint, BenchTrajectory, DiffConfig,
    GateConfig, Profile, TraceAggregates,
};
use billcap::sim::{run_month, MonthlyReport, Scenario, Strategy};

const HOURS: usize = 168;

fn week_scenario(seed: u64) -> Scenario {
    let mut scenario = Scenario::paper_default(1, seed);
    scenario.workload = scenario.workload.slice(0, HOURS);
    scenario.background = scenario
        .background
        .iter()
        .map(|b| b.slice(0, HOURS))
        .collect();
    scenario
}

fn traced_run(seed: u64) -> (obs::TraceSnapshot, MonthlyReport) {
    obs::set_enabled(true);
    obs::reset();
    let report = run_month(&week_scenario(seed), Strategy::CostCapping, Some(80_000.0)).unwrap();
    let snap = obs::snapshot();
    obs::set_enabled(false);
    (snap, report)
}

#[test]
fn profile_flame_and_diff_round_trip_a_traced_week() {
    let (snap_a, report) = traced_run(42);
    let (snap_b, _) = traced_run(42);

    // --- Profile: the synthetic root accounts for all top-level spans.
    let profile = Profile::from_snapshot(&snap_a);
    let top_level_sum: u64 = snap_a
        .spans
        .iter()
        .filter(|(path, _)| !path.contains('/'))
        .map(|(_, s)| s.total_ns)
        .sum();
    assert_eq!(profile.root().inclusive_ns, top_level_sum);
    assert_eq!(profile.node("hour").unwrap().count, HOURS as u64);
    // The hot path descends from the root through `hour` into the solver.
    let hot: Vec<&str> = profile.hot_path().iter().map(|n| n.path.as_str()).collect();
    assert_eq!(hot.first().copied(), Some("hour"));

    // --- Work aggregates agree with the MonthlyReport (both sides are
    // fed by the same MipStats, so equality is exact).
    let agg = TraceAggregates::from_snapshot(&snap_a);
    assert_eq!(agg.hours as usize, report.traced_hours());
    assert_eq!(agg.bnb_nodes as usize, report.total_bnb_nodes());
    assert_eq!(agg.lp_iterations as usize, report.total_lp_iterations());
    assert!(agg.hour_total_ns >= agg.step1_total_ns);

    // --- Flamegraph stacks re-parse to the same totals, node for node.
    let folded = to_collapsed(&profile);
    let back = parse_collapsed(&folded).expect("collapsed stacks parse");
    assert_eq!(back.root().inclusive_ns, profile.root().inclusive_ns);
    for node in profile.hot_path() {
        let twin = back.node(&node.path).expect("node survives round trip");
        assert_eq!(twin.inclusive_ns, node.inclusive_ns, "at {}", node.path);
        assert_eq!(twin.self_ns, node.self_ns, "at {}", node.path);
    }

    // --- Two identical-seed runs diff clean: work counters are
    // bit-identical (exact thresholds), wall times only have to stay
    // within a deliberately generous window.
    let cfg = DiffConfig {
        time_rel: 5.0,
        time_abs_ns: 50.0e6,
        ..DiffConfig::default()
    };
    let report_ab = diff_snapshots(&snap_a, &snap_b, &cfg);
    assert!(
        !report_ab.has_regressions(),
        "identical-seed runs must not regress:\n{}",
        report_ab.render()
    );

    // --- Injected span slowdown past the threshold is caught.
    let mut slowed = snap_b.clone();
    if let Some(s) = slowed.spans.get_mut("hour") {
        s.total_ns *= 10;
    }
    let report_slow = diff_snapshots(&snap_a, &slowed, &cfg);
    assert!(report_slow.has_regressions());
    assert!(
        report_slow.regressed().iter().any(|e| e.name == "hour"),
        "{}",
        report_slow.render()
    );

    // --- Injected counter inflation is caught exactly.
    let mut inflated = snap_b.clone();
    *inflated.counters.get_mut("milp.bnb.nodes").unwrap() *= 2;
    let report_inflated = diff_snapshots(&snap_a, &inflated, &cfg);
    assert!(report_inflated
        .regressed()
        .iter()
        .any(|e| e.name == "milp.bnb.nodes"));

    // --- The trajectory gate: a baseline built from this run passes
    // against itself and fails once a bench median slows past the
    // threshold or the node count inflates.
    let bench = BenchPoint {
        name: "decide_hour/paper".into(),
        median_ns: 2.0e6,
        min_ns: 1.8e6,
        mean_ns: 2.1e6,
        samples: 15,
        iters_per_sample: 25,
    };
    let base = BenchTrajectory::new(vec![bench.clone()], agg.clone());
    assert!(!gate(&base, &base.clone(), &GateConfig::default()).has_regressions());

    let mut slow_traj = base.clone();
    slow_traj.benches[0].median_ns *= 2.0;
    assert!(gate(&base, &slow_traj, &GateConfig::default()).has_regressions());

    let mut inflated_traj = base.clone();
    inflated_traj.aggregates.bnb_nodes *= 2;
    assert!(gate(&base, &inflated_traj, &GateConfig::default()).has_regressions());

    // --- The JSONL on-disk form feeds the same pipeline: parse back and
    // re-profile to identical totals.
    let jsonl = obs::export::to_jsonl(&snap_a);
    let reparsed = obs::export::parse_jsonl(&jsonl).expect("jsonl parses");
    let reprofile = Profile::from_snapshot(&reparsed);
    assert_eq!(reprofile.root().inclusive_ns, profile.root().inclusive_ns);
}
