//! End-to-end trace consistency: a traced week-long simulation must emit
//! a snapshot whose spans, counters and histograms agree with the
//! `MonthlyReport` the run returns — the trace is an *account* of the
//! run, not an independent estimate.
//!
//! Everything lives in one `#[test]` because the global recorder and the
//! enable flag are process-wide state.

use billcap::obs;
use billcap::sim::{run_month, Scenario, Strategy};

fn hour_field(fields: &[(String, f64)], name: &str) -> Option<f64> {
    fields.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
}

#[test]
fn traced_week_is_consistent_with_report() {
    // One-week scenario with a tight budget so all three outcome
    // branches (within / throttled / override) can appear.
    let mut scenario = Scenario::paper_default(1, 42);
    scenario.workload = scenario.workload.slice(0, 168);
    scenario.background = scenario
        .background
        .iter()
        .map(|b| b.slice(0, 168))
        .collect();

    obs::set_enabled(true);
    obs::reset();
    let report = run_month(&scenario, Strategy::CostCapping, Some(80_000.0)).unwrap();
    let snap = obs::snapshot();
    obs::set_enabled(false);

    // Span accounting: one "hour" span per simulated hour, each nesting
    // the capper's step spans and the MILP solve spans; nothing orphaned.
    assert_eq!(snap.orphans, 0, "unbalanced spans");
    assert_eq!(snap.spans["hour"].count, 168);
    assert_eq!(snap.counters["sim.hours"], 168);
    assert_eq!(snap.spans["hour/step1"].count, 168);
    assert!(snap.spans.contains_key("hour/step1/mip"));

    // Outcome counters partition the hours.
    let outcome_total: u64 = [
        "core.capper.within_budget",
        "core.capper.throttled",
        "core.capper.premium_override",
    ]
    .iter()
    .map(|k| snap.counters.get(*k).copied().unwrap_or(0))
    .sum();
    assert_eq!(outcome_total, 168);

    // The B&B node counter must equal the per-hour traces the report
    // carries (both are fed by the same MipStats).
    assert_eq!(report.traced_hours(), 168);
    assert_eq!(
        snap.counters["milp.bnb.nodes"] as usize,
        report.total_bnb_nodes()
    );
    assert_eq!(
        snap.counters["milp.lp.iterations"] as usize,
        report.total_lp_iterations()
    );

    // Per-hour span fields sum to the report's aggregates.
    let hour_events: Vec<_> = snap.events.iter().filter(|e| e.path == "hour").collect();
    assert_eq!(hour_events.len(), 168);
    let traced_cost: f64 = hour_events
        .iter()
        .map(|e| hour_field(&e.fields, "cost").expect("cost field"))
        .sum();
    assert!(
        (traced_cost - report.total_cost()).abs() < 1e-6 * report.total_cost(),
        "traced cost {traced_cost} vs report {}",
        report.total_cost()
    );
    let traced_premium: f64 = hour_events
        .iter()
        .map(|e| hour_field(&e.fields, "premium_served").expect("premium field"))
        .sum();
    let report_premium: f64 = report.hours.iter().map(|h| h.premium_served).sum();
    assert!((traced_premium - report_premium).abs() < 1e-6 * report_premium);

    // Each hour event names the price level chosen at every site, and it
    // matches the histogram's total observation count (one per site-hour).
    let sites = scenario.system.len();
    for e in &hour_events {
        for i in 0..sites {
            assert!(
                hour_field(&e.fields, &format!("level_s{i}")).is_some(),
                "missing level_s{i} on hour event"
            );
        }
    }
    let hist = &snap.histograms["core.capper.price_level"];
    assert_eq!(hist.count as usize, 168 * sites);

    // The JSONL exporter round-trips the whole snapshot losslessly.
    let jsonl = obs::export::to_jsonl(&snap);
    let back = obs::export::parse_jsonl(&jsonl).expect("parseable JSONL");
    assert_eq!(back, snap);
}
