//! Property-based invariants across the whole stack: for random workloads
//! and background demands, the algorithms must uphold the paper's
//! contracts — optimality of capping over the baselines at realized
//! prices, budget compliance of step 2, premium protection, and physical
//! feasibility of every allocation.

use billcap::core::{
    evaluate_allocation, BillCapper, CostMinimizer, DataCenterSystem, HourOutcome, MinOnly,
    PriceAssumption, ThroughputMaximizer,
};
use proptest::prelude::*;

fn system() -> DataCenterSystem {
    DataCenterSystem::paper_system(1)
}

/// Random per-site background demand in the policy-relevant band.
fn background_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(150.0f64..650.0, 3)
}

/// Random workloads within deliverable capacity (the paper system carries
/// ~1.45e9 req/h).
fn lambda_strategy() -> impl Strategy<Value = f64> {
    1e6f64..1.3e9
}

proptest! {
    // Each case runs one or more MILP solves; 32 cases per property keeps
    // the suite fast in debug builds while still sweeping the space.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cost Capping is never beaten by either baseline at realized prices.
    #[test]
    fn capping_dominates_baselines(lambda in lambda_strategy(), d in background_strategy()) {
        let sys = system();
        let capping = CostMinimizer::default().solve(&sys, lambda, &d).unwrap();
        let capping_real = evaluate_allocation(&sys, &capping.lambda, &d);
        for assumption in [PriceAssumption::Average, PriceAssumption::Lowest] {
            let mo = MinOnly::new(assumption).solve(&sys, lambda).unwrap();
            let mo_real = evaluate_allocation(&sys, &mo.lambda, &d);
            prop_assert!(
                capping_real.total_cost <= mo_real.total_cost * (1.0 + 2e-3),
                "{assumption:?}: capping {} > baseline {}",
                capping_real.total_cost, mo_real.total_cost
            );
        }
    }

    /// Step-1 allocations are physically feasible: demand met, site power
    /// caps respected, QoS server counts within inventory, and the MILP's
    /// believed cost tracks the realized bill.
    #[test]
    fn minimizer_allocations_are_feasible(lambda in lambda_strategy(), d in background_strategy()) {
        let sys = system();
        let alloc = CostMinimizer::default().solve(&sys, lambda, &d).unwrap();
        prop_assert!((alloc.total_lambda - lambda).abs() <= 1.0 + 1e-9 * lambda);
        for (i, site) in sys.sites.iter().enumerate() {
            prop_assert!(alloc.lambda[i] >= -1e-6);
            prop_assert!(alloc.power_mw[i] <= site.power_cap_mw + 1e-6,
                "site {i} power {} over cap", alloc.power_mw[i]);
            prop_assert!(alloc.servers[i] <= site.max_servers);
        }
        let real = evaluate_allocation(&sys, &alloc.lambda, &d);
        let rel = (real.total_cost - alloc.total_cost).abs() / alloc.total_cost.max(1.0);
        prop_assert!(rel < 0.01, "believed-vs-real gap {rel}");
    }

    /// Step 2 never exceeds its budget and is monotone: a bigger budget
    /// never yields less throughput.
    #[test]
    fn maximizer_respects_and_uses_budget(
        lambda in lambda_strategy(),
        d in background_strategy(),
        frac in 0.2f64..1.0,
    ) {
        let sys = system();
        let min_cost = CostMinimizer::default().solve(&sys, lambda, &d).unwrap().total_cost;
        let budget = frac * min_cost;
        let maximizer = ThroughputMaximizer::default();
        if let Ok(alloc) = maximizer.solve(&sys, lambda, &d, budget) {
            prop_assert!(alloc.total_cost <= budget * (1.0 + 1e-6),
                "cost {} over budget {budget}", alloc.total_cost);
            prop_assert!(alloc.total_lambda <= lambda * (1.0 + 1e-9));
            // Monotonicity in the budget.
            if let Ok(more) = maximizer.solve(&sys, lambda, &d, budget * 1.5) {
                prop_assert!(more.total_lambda >= alloc.total_lambda - 1.0);
            }
        }
    }

    /// The capper's three outcomes partition behaviour correctly for any
    /// budget, and premium is always served in full.
    #[test]
    fn capper_protects_premium(
        lambda in lambda_strategy(),
        d in background_strategy(),
        premium_frac in 0.1f64..0.95,
        budget in 1.0f64..50_000.0,
    ) {
        let sys = system();
        let premium = premium_frac * lambda;
        let decision = BillCapper::default()
            .decide_hour(&sys, lambda, premium, &d, budget)
            .unwrap();
        prop_assert_eq!(decision.premium_served, premium);
        prop_assert!(decision.ordinary_served <= lambda - premium + 1e-6);
        match decision.outcome {
            HourOutcome::WithinBudget | HourOutcome::Throttled => {
                prop_assert!(decision.cost() <= budget * (1.0 + 1e-6));
            }
            HourOutcome::PremiumOverride => {
                prop_assert_eq!(decision.ordinary_served, 0.0);
            }
        }
    }

    /// Realized billing is monotone in the allocation: serving more at a
    /// site cannot reduce that site's cost.
    #[test]
    fn realized_cost_monotone(
        d in background_strategy(),
        base in 1e6f64..2e8,
        extra in 1e6f64..1e8,
    ) {
        let sys = system();
        let small = evaluate_allocation(&sys, &[base, base, base], &d);
        let large = evaluate_allocation(&sys, &[base + extra, base, base], &d);
        prop_assert!(large.cost[0] >= small.cost[0] - 1e-9);
        prop_assert!(large.total_cost >= small.total_cost - 1e-9);
    }
}
