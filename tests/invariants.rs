//! Randomized invariants across the whole stack: for seeded random
//! workloads and background demands, the algorithms must uphold the
//! paper's contracts — optimality of capping over the baselines at
//! realized prices, budget compliance of step 2, premium protection, and
//! physical feasibility of every allocation.
//!
//! Cases come from a seeded [`billcap::rt`] generator, so every run
//! checks identical instances and failures reproduce deterministically.

use billcap::core::{
    evaluate_allocation, BillCapper, CostMinimizer, DataCenterSystem, HourOutcome, MinOnly,
    PriceAssumption, ThroughputMaximizer,
};
use billcap::rt::{Rng, Xoshiro256pp};

// Each case runs one or more MILP solves; 32 cases per property keeps
// the suite fast in debug builds while still sweeping the space.
const CASES: usize = 32;

fn system() -> DataCenterSystem {
    DataCenterSystem::paper_system(1)
}

/// Random per-site background demand in the policy-relevant band.
fn random_background(rng: &mut Xoshiro256pp) -> Vec<f64> {
    (0..3).map(|_| rng.random_f64_in(150.0, 650.0)).collect()
}

/// Random workload within deliverable capacity (the paper system carries
/// ~1.45e9 req/h).
fn random_lambda(rng: &mut Xoshiro256pp) -> f64 {
    rng.random_f64_in(1e6, 1.3e9)
}

/// Cost Capping is never beaten by either baseline at realized prices.
#[test]
fn capping_dominates_baselines() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xCAB1);
    for case in 0..CASES {
        let lambda = random_lambda(&mut rng);
        let d = random_background(&mut rng);
        let sys = system();
        let capping = CostMinimizer::default().solve(&sys, lambda, &d).unwrap();
        let capping_real = evaluate_allocation(&sys, &capping.lambda, &d);
        for assumption in [PriceAssumption::Average, PriceAssumption::Lowest] {
            let mo = MinOnly::new(assumption).solve(&sys, lambda).unwrap();
            let mo_real = evaluate_allocation(&sys, &mo.lambda, &d);
            assert!(
                capping_real.total_cost <= mo_real.total_cost * (1.0 + 2e-3),
                "case {case} {assumption:?}: capping {} > baseline {}",
                capping_real.total_cost,
                mo_real.total_cost
            );
        }
    }
}

/// Step-1 allocations are physically feasible: demand met, site power
/// caps respected, QoS server counts within inventory, and the MILP's
/// believed cost tracks the realized bill.
#[test]
fn minimizer_allocations_are_feasible() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xCAB2);
    for case in 0..CASES {
        let lambda = random_lambda(&mut rng);
        let d = random_background(&mut rng);
        let sys = system();
        let alloc = CostMinimizer::default().solve(&sys, lambda, &d).unwrap();
        assert!(
            (alloc.total_lambda - lambda).abs() <= 1.0 + 1e-9 * lambda,
            "case {case}"
        );
        for (i, site) in sys.sites.iter().enumerate() {
            assert!(alloc.lambda[i] >= -1e-6, "case {case}");
            assert!(
                alloc.power_mw[i] <= site.power_cap_mw + 1e-6,
                "case {case}: site {i} power {} over cap",
                alloc.power_mw[i]
            );
            assert!(alloc.servers[i] <= site.max_servers, "case {case}");
        }
        let real = evaluate_allocation(&sys, &alloc.lambda, &d);
        let rel = (real.total_cost - alloc.total_cost).abs() / alloc.total_cost.max(1.0);
        assert!(rel < 0.01, "case {case}: believed-vs-real gap {rel}");
    }
}

/// Step 2 never exceeds its budget and is monotone: a bigger budget
/// never yields less throughput.
#[test]
fn maximizer_respects_and_uses_budget() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xCAB3);
    for case in 0..CASES {
        let lambda = random_lambda(&mut rng);
        let d = random_background(&mut rng);
        let frac = rng.random_f64_in(0.2, 1.0);
        let sys = system();
        let min_cost = CostMinimizer::default()
            .solve(&sys, lambda, &d)
            .unwrap()
            .total_cost;
        let budget = frac * min_cost;
        let maximizer = ThroughputMaximizer::default();
        if let Ok(alloc) = maximizer.solve(&sys, lambda, &d, budget) {
            assert!(
                alloc.total_cost <= budget * (1.0 + 1e-6),
                "case {case}: cost {} over budget {budget}",
                alloc.total_cost
            );
            assert!(alloc.total_lambda <= lambda * (1.0 + 1e-9), "case {case}");
            // Monotonicity in the budget.
            if let Ok(more) = maximizer.solve(&sys, lambda, &d, budget * 1.5) {
                assert!(more.total_lambda >= alloc.total_lambda - 1.0, "case {case}");
            }
        }
    }
}

/// The capper's three outcomes partition behaviour correctly for any
/// budget, and premium is always served in full.
#[test]
fn capper_protects_premium() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xCAB4);
    for case in 0..CASES {
        let lambda = random_lambda(&mut rng);
        let d = random_background(&mut rng);
        let premium_frac = rng.random_f64_in(0.1, 0.95);
        let budget = rng.random_f64_in(1.0, 50_000.0);
        let sys = system();
        let premium = premium_frac * lambda;
        let decision = BillCapper::default()
            .decide_hour(&sys, lambda, premium, &d, budget)
            .unwrap();
        assert_eq!(decision.premium_served, premium, "case {case}");
        assert!(
            decision.ordinary_served <= lambda - premium + 1e-6,
            "case {case}"
        );
        match decision.outcome {
            HourOutcome::WithinBudget | HourOutcome::Throttled => {
                assert!(decision.cost() <= budget * (1.0 + 1e-6), "case {case}");
            }
            HourOutcome::PremiumOverride => {
                assert_eq!(decision.ordinary_served, 0.0, "case {case}");
            }
        }
    }
}

/// Realized billing is monotone in the allocation: serving more at a
/// site cannot reduce that site's cost.
#[test]
fn realized_cost_monotone() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xCAB5);
    for case in 0..CASES {
        let d = random_background(&mut rng);
        let base = rng.random_f64_in(1e6, 2e8);
        let extra = rng.random_f64_in(1e6, 1e8);
        let sys = system();
        let small = evaluate_allocation(&sys, &[base, base, base], &d);
        let large = evaluate_allocation(&sys, &[base + extra, base, base], &d);
        assert!(large.cost[0] >= small.cost[0] - 1e-9, "case {case}");
        assert!(large.total_cost >= small.total_cost - 1e-9, "case {case}");
    }
}
