//! # billcap
//!
//! A production-quality Rust reproduction of **"Electricity Bill Capping
//! for Cloud-Scale Data Centers that Impact the Power Markets"**
//! (Zhang, Wang & Wang, ICPP 2012).
//!
//! Cloud-scale data centers draw enough power to *move* locational
//! electricity prices (LMP): they are price makers, not price takers.
//! This crate implements the paper's two-step bill-capping algorithm —
//! price-aware cost minimization plus throughput maximization within a
//! monthly budget — together with every substrate the paper relies on:
//!
//! | module | contents |
//! |---|---|
//! | [`milp`] | two-phase simplex LP + branch-and-bound MILP solver |
//! | [`market`] | DC-OPF, the PJM five-bus system, step pricing policies |
//! | [`queueing`] | G/G/m Allen–Cunneen response-time model and sizing |
//! | [`power`] | server, k-ary fat-tree networking, and cooling power |
//! | [`workload`] | synthetic traces, background demand, the budgeter |
//! | [`core`] | cost minimizer, throughput maximizer, bill capper, baselines |
//! | [`sim`] | monthly simulation harness and per-figure experiments |
//! | [`serve`] | decide-hour daemon: framed JSON protocol, worker-pool server, differential replay |
//! | [`rt`] | deterministic RNG, worker pool, and bench harness (no external deps) |
//! | [`obs`] | tracing spans, counters and histograms (`BILLCAP_TRACE` / `--trace`) |
//! | [`obs_analyze`] | trace consumers: span-tree profiler, flamegraph export, trace diffing, perf-trajectory gate |
//!
//! ## Quickstart
//!
//! ```
//! use billcap::core::{BillCapper, DataCenterSystem};
//!
//! // The paper's three-data-center system under pricing Policy 1.
//! let system = DataCenterSystem::paper_system(1);
//!
//! // One hour: 600M requests offered, 80% premium, regional background
//! // demand per site, and a $2,000 budget for the hour.
//! let capper = BillCapper::default();
//! let decision = capper
//!     .decide_hour(&system, 6.0e8, 4.8e8, &[360.0, 410.0, 430.0], 2_000.0)
//!     .expect("feasible hour");
//!
//! // Premium customers are always served in full.
//! assert_eq!(decision.premium_served, 4.8e8);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `cargo run --release -p billcap-sim --bin paper_experiments` for the
//! full figure-by-figure reproduction.

#![forbid(unsafe_code)]

pub use billcap_core as core;
pub use billcap_market as market;
pub use billcap_milp as milp;
pub use billcap_obs as obs;
pub use billcap_obs_analyze as obs_analyze;
pub use billcap_power as power;
pub use billcap_queueing as queueing;
pub use billcap_rt as rt;
pub use billcap_serve as serve;
pub use billcap_sim as sim;
pub use billcap_workload as workload;
