//! # billcap-serve
//!
//! A zero-dependency decide-hour daemon. Clients send framed JSON
//! requests (4-byte big-endian length prefix + UTF-8 JSON body) over
//! stdio or a Unix socket; the server shards them across a
//! `billcap-rt` worker pool and answers with the same decision the CLI
//! `decide-hour` subcommand would print — bitwise-identical, by
//! construction, when the basis-reuse speedup is off (the default).
//!
//! Three layers:
//!
//! * [`protocol`] — framing, request/response schema, and the
//!   [`protocol::DecisionMsg::bitwise_matches`] differential check.
//! * [`server`] — the reader/worker pool: per-worker
//!   [`billcap_core::DecisionEngine`]s (incremental model reuse), a
//!   shared [`billcap_core::DecisionCache`], and in-band error
//!   responses for malformed input.
//! * [`replay`] — a differential harness that replays a simulated
//!   month through the server and verifies every response against
//!   sequential fresh-model decisions.
//!
//! ## Example
//!
//! Serve two requests over in-memory buffers:
//!
//! ```
//! use billcap_serve::protocol::{write_frame, read_frame, Request, Response, MAX_FRAME};
//! use billcap_serve::server::{serve, ServeConfig};
//! use std::io::Cursor;
//!
//! let req = Request {
//!     id: 1,
//!     policy: 1,
//!     offered: 5e8,
//!     premium_offered: 3e8,
//!     background_mw: vec![330.0, 410.0, 280.0],
//!     hourly_budget: f64::INFINITY,
//! };
//! let mut input = Vec::new();
//! write_frame(&mut input, req.to_value().render().as_bytes()).unwrap();
//!
//! let mut output = Vec::new();
//! let cfg = ServeConfig { workers: 1, ..ServeConfig::default() };
//! let stats = serve(&cfg, Cursor::new(input), &mut output);
//! assert_eq!(stats.decisions, 1);
//!
//! let frame = read_frame(&mut Cursor::new(output), MAX_FRAME).unwrap().unwrap();
//! match Response::parse(&frame).unwrap() {
//!     Response::Decision(msg) => assert_eq!(msg.id, 1),
//!     other => panic!("{other:?}"),
//! }
//! ```
//!
//! ## Telemetry
//!
//! The server continuously maintains exact work counters and windowed
//! latency histograms ([`server::ServerTelemetry`]). Clients scrape
//! them in-band with `{"op":"metrics"}` / `{"op":"health"}` control
//! frames ([`protocol::ControlMsg`]), answered by the reader thread
//! without touching the decision workers; a configured
//! `metrics_stream` additionally receives one JSONL
//! [`billcap_obs::MetricsDoc`] per window rotation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod protocol;
pub mod replay;
pub mod server;

pub use protocol::{
    read_frame, write_frame, ControlMsg, DecisionMsg, FrameError, Request, RequestError, Response,
    MAX_FRAME,
};
pub use replay::{
    build_plan, encode_requests, run_replay, verify_replay, ReplayOutcome, ReplayPlan,
};
pub use server::{serve, serve_with, ServeConfig, ServeStats, ServerTelemetry};

#[cfg(unix)]
pub use server::serve_unix;
