//! The wire protocol: length-prefixed JSON frames.
//!
//! Every message — request or response — is one *frame*: a 4-byte
//! big-endian payload length followed by that many bytes of UTF-8 JSON.
//! Frames are self-delimiting, so a stream of them needs no separators
//! and binary-safe transports (pipes, Unix sockets) carry them as-is.
//!
//! Floats ride on [`billcap_obs::json`], whose shortest-round-trip
//! rendering reproduces every finite `f64` bit-for-bit — the protocol
//! therefore transports decisions *exactly*, which is what lets the
//! differential tests compare served responses against in-process
//! solves with `to_bits` equality. The single non-finite value the
//! domain needs, an unlimited budget (`+∞`), is encoded as JSON `null`.
//!
//! A request names a paper pricing policy (0..=3) instead of shipping
//! the whole data-center spec; the server builds and retains one
//! [`billcap_core::DecisionEngine`] per (worker, policy).
//!
//! Responses carry only the deterministic parts of a decision: the
//! full allocation vectors, the served/offered scalars, and the
//! `solves`/`nodes`/`lp_iterations` counters. Wall-clock fields of
//! [`billcap_core::DecisionTrace`] are machine noise and never cross
//! the wire.

use billcap_core::{HourDecision, HourOutcome};
use billcap_obs::json::Value;
use billcap_obs::MetricsDoc;
use std::io::{Read, Write};

/// Default maximum frame payload (1 MiB) — far above any real request,
/// small enough that a hostile length prefix cannot balloon memory.
pub const MAX_FRAME: usize = 1 << 20;

/// Framing failures. Anything here poisons the *stream* (a frame
/// boundary was lost), as opposed to per-request JSON errors, which are
/// answered in-band and leave the stream usable.
#[derive(Debug)]
pub enum FrameError {
    /// The stream ended inside a header or payload.
    Truncated {
        /// Bytes the frame still owed.
        expected: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The header announced a payload larger than the configured cap.
    Oversized {
        /// Announced payload length.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
    /// The underlying transport failed.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { expected, got } => {
                write!(
                    f,
                    "truncated frame: expected {expected} more bytes, got {got}"
                )
            }
            FrameError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (EOF exactly at
/// a frame boundary); EOF anywhere else is [`FrameError::Truncated`].
pub fn read_frame<R: Read + ?Sized>(
    r: &mut R,
    max_payload: usize,
) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Truncated {
                    expected: 4 - filled,
                    got: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > max_payload {
        return Err(FrameError::Oversized {
            len,
            max: max_payload,
        });
    }
    let mut payload = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        match r.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(FrameError::Truncated {
                    expected: len - got,
                    got,
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(Some(payload))
}

/// Writes one frame (header + payload). The caller flushes.
pub fn write_frame<W: Write + ?Sized>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "frame payload exceeds u32::MAX",
        )
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)
}

/// Renders a maybe-infinite budget: `null` encodes `+∞`.
fn budget_to_value(budget: f64) -> Value {
    if budget.is_finite() {
        Value::Float(budget)
    } else {
        Value::Null
    }
}

/// Parses a maybe-null budget; absent and `null` both mean unlimited.
fn budget_from_value(v: Option<&Value>) -> Result<f64, String> {
    match v {
        None | Some(Value::Null) => Ok(f64::INFINITY),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| "budget must be a number or null".to_string()),
    }
}

fn require_f64(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field '{key}'"))
}

fn require_f64_vec(v: &Value, key: &str) -> Result<Vec<f64>, String> {
    let arr = v
        .get(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("missing or non-array field '{key}'"))?;
    arr.iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| format!("non-numeric element in '{key}'"))
        })
        .collect()
}

fn require_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

/// One decide-hour request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// Paper pricing-policy family (0..=3) selecting the system.
    pub policy: usize,
    /// Total offered rate (requests/hour).
    pub offered: f64,
    /// Premium share of the offered rate.
    pub premium_offered: f64,
    /// Regional background demand per site (MW).
    pub background_mw: Vec<f64>,
    /// Hourly budget ($); `f64::INFINITY` (JSON `null`) = unlimited.
    pub hourly_budget: f64,
}

/// Highest pricing-policy family index the server will instantiate.
pub const MAX_POLICY: usize = 3;

impl Request {
    /// Renders the request as a JSON payload.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("id".into(), Value::Int(self.id as i64)),
            ("policy".into(), Value::Int(self.policy as i64)),
            ("offered".into(), Value::Float(self.offered)),
            ("premium".into(), Value::Float(self.premium_offered)),
            (
                "background".into(),
                Value::Arr(
                    self.background_mw
                        .iter()
                        .map(|&d| Value::Float(d))
                        .collect(),
                ),
            ),
            ("budget".into(), budget_to_value(self.hourly_budget)),
        ])
    }

    /// Parses and validates a request payload. On failure the error
    /// carries the request id when one could be extracted, so the
    /// server can still correlate the error response.
    pub fn parse(payload: &[u8]) -> Result<Request, RequestError> {
        let text = std::str::from_utf8(payload).map_err(|e| RequestError {
            id: None,
            message: format!("payload is not UTF-8: {e}"),
        })?;
        let v = Value::parse(text).map_err(|e| RequestError {
            id: None,
            message: format!("payload is not JSON: {e}"),
        })?;
        let id = v.get("id").and_then(Value::as_u64);
        let fail = |message: String| RequestError { id, message };
        let id_val = id.ok_or_else(|| fail("missing or non-integer field 'id'".into()))?;
        let policy = v
            .get("policy")
            .and_then(Value::as_u64)
            .ok_or_else(|| fail("missing or non-integer field 'policy'".into()))?
            as usize;
        let offered = require_f64(&v, "offered").map_err(&fail)?;
        let premium_offered = require_f64(&v, "premium").map_err(&fail)?;
        let background_mw = require_f64_vec(&v, "background").map_err(&fail)?;
        let hourly_budget = budget_from_value(v.get("budget")).map_err(&fail)?;
        let req = Request {
            id: id_val,
            policy,
            offered,
            premium_offered,
            background_mw,
            hourly_budget,
        };
        req.validate().map_err(&fail)?;
        Ok(req)
    }

    /// Domain validation: everything that would panic or misbehave
    /// deeper in the stack is rejected here with a message instead.
    pub fn validate(&self) -> Result<(), String> {
        if self.policy > MAX_POLICY {
            return Err(format!(
                "policy {} out of range (0..={MAX_POLICY})",
                self.policy
            ));
        }
        if !self.offered.is_finite() || self.offered < 0.0 {
            return Err(format!(
                "offered rate {} must be finite and >= 0",
                self.offered
            ));
        }
        if !self.premium_offered.is_finite() || self.premium_offered < 0.0 {
            return Err(format!(
                "premium rate {} must be finite and >= 0",
                self.premium_offered
            ));
        }
        if self.premium_offered > self.offered {
            return Err(format!(
                "premium rate {} exceeds offered rate {}",
                self.premium_offered, self.offered
            ));
        }
        if self.background_mw.is_empty() {
            return Err("background demand vector is empty".into());
        }
        for (i, d) in self.background_mw.iter().enumerate() {
            if !d.is_finite() || *d < 0.0 {
                return Err(format!("background[{i}] = {d} must be finite and >= 0"));
            }
        }
        if self.hourly_budget.is_nan() || self.hourly_budget == f64::NEG_INFINITY {
            return Err("budget must be a finite number or null".into());
        }
        Ok(())
    }
}

/// A request that could not be parsed or validated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// The request id, when it could be extracted from the payload.
    pub id: Option<u64>,
    /// What went wrong.
    pub message: String,
}

/// An in-band control frame: `{"op":"metrics"}` or `{"op":"health"}`,
/// with an optional `id` echoed on the response.
///
/// Control frames are answered by the server's reader thread directly —
/// they never enter the decision queue, so a scrape observes the
/// workers instead of competing with them. The `"op"` key is reserved:
/// decide requests carry no string values at all, so the byte sequence
/// `"op"` can only appear in a control frame (see
/// [`maybe_control`](Self::maybe_control)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlMsg {
    /// Ask for the current [`MetricsDoc`].
    Metrics {
        /// Optional correlation id, echoed back.
        id: Option<u64>,
    },
    /// Ask for an ok/degraded health verdict.
    Health {
        /// Optional correlation id, echoed back.
        id: Option<u64>,
    },
}

impl ControlMsg {
    /// Cheap pre-filter: does the payload contain the byte sequence
    /// `"op"`? Decide requests never do (their only strings are the
    /// fixed field names, none of which contains `"op"` quoted), so the
    /// reader runs this O(n) scan instead of parsing JSON per frame.
    pub fn maybe_control(payload: &[u8]) -> bool {
        payload.windows(4).any(|w| w == b"\"op\"")
    }

    /// Parses a control frame. `Ok(None)` means the payload has no
    /// `"op"` key and should be treated as an ordinary request;
    /// `Err` means it names an op the server does not know.
    pub fn parse(payload: &[u8]) -> Result<Option<ControlMsg>, String> {
        let text = std::str::from_utf8(payload).map_err(|e| format!("not UTF-8: {e}"))?;
        let v = Value::parse(text).map_err(|e| format!("not JSON: {e}"))?;
        let Some(op) = v.get("op").and_then(Value::as_str) else {
            return Ok(None);
        };
        let id = v.get("id").and_then(Value::as_u64);
        match op {
            "metrics" => Ok(Some(ControlMsg::Metrics { id })),
            "health" => Ok(Some(ControlMsg::Health { id })),
            other => Err(format!("unknown control op '{other}'")),
        }
    }

    /// Renders the control frame (the client half).
    pub fn to_value(&self) -> Value {
        let (op, id) = match self {
            ControlMsg::Metrics { id } => ("metrics", id),
            ControlMsg::Health { id } => ("health", id),
        };
        let mut fields = vec![("op".to_string(), Value::Str(op.into()))];
        if let Some(i) = id {
            fields.push(("id".into(), Value::Int(*i as i64)));
        }
        Value::Obj(fields)
    }
}

fn outcome_tag(outcome: HourOutcome) -> &'static str {
    match outcome {
        HourOutcome::WithinBudget => "within_budget",
        HourOutcome::Throttled => "throttled",
        HourOutcome::PremiumOverride => "premium_override",
    }
}

fn outcome_from_tag(tag: &str) -> Result<HourOutcome, String> {
    match tag {
        "within_budget" => Ok(HourOutcome::WithinBudget),
        "throttled" => Ok(HourOutcome::Throttled),
        "premium_override" => Ok(HourOutcome::PremiumOverride),
        other => Err(format!("unknown outcome '{other}'")),
    }
}

/// The deterministic image of an [`HourDecision`], as shipped to the
/// client. Excludes the wall-clock trace fields (machine noise) and
/// includes the `cached` marker.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionMsg {
    /// Echoed request id.
    pub id: u64,
    /// Whether the decision was answered from the decision cache.
    pub cached: bool,
    /// Which branch of the algorithm produced the decision.
    pub outcome: HourOutcome,
    /// Offered rate after the capacity clamp.
    pub offered: f64,
    /// Premium share of the offered rate.
    pub premium_offered: f64,
    /// Premium requests served.
    pub premium_served: f64,
    /// Ordinary requests served.
    pub ordinary_served: f64,
    /// Budget the decision was made against (`∞` = unlimited).
    pub budget: f64,
    /// Per-site admitted rate (requests/hour).
    pub lambda: Vec<f64>,
    /// Per-site active server count.
    pub servers: Vec<u64>,
    /// Per-site power draw (MW).
    pub power_mw: Vec<f64>,
    /// Per-site electricity price ($/MWh).
    pub price: Vec<f64>,
    /// Per-site selected price level.
    pub level: Vec<usize>,
    /// Per-site cost ($).
    pub cost: Vec<f64>,
    /// Total cost ($).
    pub total_cost: f64,
    /// Total admitted rate (requests/hour).
    pub total_lambda: f64,
    /// MILP solves performed for this decision.
    pub solves: usize,
    /// Branch-and-bound nodes across the solves.
    pub nodes: usize,
    /// Simplex iterations across the solves.
    pub lp_iterations: usize,
}

impl DecisionMsg {
    /// Projects a finished decision onto the wire shape.
    pub fn from_decision(id: u64, d: &HourDecision, cached: bool) -> Self {
        Self {
            id,
            cached,
            outcome: d.outcome,
            offered: d.offered,
            premium_offered: d.premium_offered,
            premium_served: d.premium_served,
            ordinary_served: d.ordinary_served,
            budget: d.budget,
            lambda: d.allocation.lambda.clone(),
            servers: d.allocation.servers.clone(),
            power_mw: d.allocation.power_mw.clone(),
            price: d.allocation.price.clone(),
            level: d.allocation.level.clone(),
            cost: d.allocation.cost.clone(),
            total_cost: d.allocation.total_cost,
            total_lambda: d.allocation.total_lambda,
            solves: d.trace.solves,
            nodes: d.trace.nodes,
            lp_iterations: d.trace.lp_iterations,
        }
    }

    /// Renders the decision as a JSON payload.
    pub fn to_value(&self) -> Value {
        let farr = |v: &[f64]| Value::Arr(v.iter().map(|&f| Value::Float(f)).collect());
        Value::Obj(vec![
            ("type".into(), Value::Str("decision".into())),
            ("id".into(), Value::Int(self.id as i64)),
            ("cached".into(), Value::Bool(self.cached)),
            (
                "outcome".into(),
                Value::Str(outcome_tag(self.outcome).into()),
            ),
            ("offered".into(), Value::Float(self.offered)),
            ("premium_offered".into(), Value::Float(self.premium_offered)),
            ("premium_served".into(), Value::Float(self.premium_served)),
            ("ordinary_served".into(), Value::Float(self.ordinary_served)),
            ("budget".into(), budget_to_value(self.budget)),
            ("lambda".into(), farr(&self.lambda)),
            (
                "servers".into(),
                Value::Arr(self.servers.iter().map(|&s| Value::Int(s as i64)).collect()),
            ),
            ("power_mw".into(), farr(&self.power_mw)),
            ("price".into(), farr(&self.price)),
            (
                "level".into(),
                Value::Arr(self.level.iter().map(|&k| Value::Int(k as i64)).collect()),
            ),
            ("cost".into(), farr(&self.cost)),
            ("total_cost".into(), Value::Float(self.total_cost)),
            ("total_lambda".into(), Value::Float(self.total_lambda)),
            ("solves".into(), Value::Int(self.solves as i64)),
            ("nodes".into(), Value::Int(self.nodes as i64)),
            (
                "lp_iterations".into(),
                Value::Int(self.lp_iterations as i64),
            ),
        ])
    }

    /// Parses a decision payload (the client half of the protocol).
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let uvec = |key: &str| -> Result<Vec<u64>, String> {
            let arr = v
                .get(key)
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("missing or non-array field '{key}'"))?;
            arr.iter()
                .map(|x| {
                    x.as_u64()
                        .ok_or_else(|| format!("non-integer element in '{key}'"))
                })
                .collect()
        };
        Ok(Self {
            id: require_u64(v, "id")?,
            cached: matches!(v.get("cached"), Some(Value::Bool(true))),
            outcome: outcome_from_tag(
                v.get("outcome")
                    .and_then(Value::as_str)
                    .ok_or("missing field 'outcome'")?,
            )?,
            offered: require_f64(v, "offered")?,
            premium_offered: require_f64(v, "premium_offered")?,
            premium_served: require_f64(v, "premium_served")?,
            ordinary_served: require_f64(v, "ordinary_served")?,
            budget: budget_from_value(v.get("budget"))?,
            lambda: require_f64_vec(v, "lambda")?,
            servers: uvec("servers")?,
            power_mw: require_f64_vec(v, "power_mw")?,
            price: require_f64_vec(v, "price")?,
            level: uvec("level")?.into_iter().map(|k| k as usize).collect(),
            cost: require_f64_vec(v, "cost")?,
            total_cost: require_f64(v, "total_cost")?,
            total_lambda: require_f64(v, "total_lambda")?,
            solves: require_u64(v, "solves")? as usize,
            nodes: require_u64(v, "nodes")? as usize,
            lp_iterations: require_u64(v, "lp_iterations")? as usize,
        })
    }

    /// Checks this message against a locally computed decision with
    /// raw-bit float equality. Returns the first mismatching field.
    pub fn bitwise_matches(&self, d: &HourDecision) -> Result<(), String> {
        fn feq(name: &str, a: f64, b: f64) -> Result<(), String> {
            if a.to_bits() == b.to_bits() || (a == f64::INFINITY && b == f64::INFINITY) {
                Ok(())
            } else {
                Err(format!("{name}: served {a:?} != expected {b:?}"))
            }
        }
        fn veq(name: &str, a: &[f64], b: &[f64]) -> Result<(), String> {
            if a.len() != b.len() {
                return Err(format!("{name}: length {} != {}", a.len(), b.len()));
            }
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                feq(&format!("{name}[{i}]"), *x, *y)?;
            }
            Ok(())
        }
        if self.outcome != d.outcome {
            return Err(format!(
                "outcome: served {:?} != expected {:?}",
                self.outcome, d.outcome
            ));
        }
        feq("offered", self.offered, d.offered)?;
        feq("premium_offered", self.premium_offered, d.premium_offered)?;
        feq("premium_served", self.premium_served, d.premium_served)?;
        feq("ordinary_served", self.ordinary_served, d.ordinary_served)?;
        feq("budget", self.budget, d.budget)?;
        veq("lambda", &self.lambda, &d.allocation.lambda)?;
        if self.servers != d.allocation.servers {
            return Err("servers: vector mismatch".into());
        }
        veq("power_mw", &self.power_mw, &d.allocation.power_mw)?;
        veq("price", &self.price, &d.allocation.price)?;
        if self.level != d.allocation.level {
            return Err("level: vector mismatch".into());
        }
        veq("cost", &self.cost, &d.allocation.cost)?;
        feq("total_cost", self.total_cost, d.allocation.total_cost)?;
        feq("total_lambda", self.total_lambda, d.allocation.total_lambda)?;
        if self.solves != d.trace.solves {
            return Err(format!(
                "solves: served {} != expected {}",
                self.solves, d.trace.solves
            ));
        }
        if self.nodes != d.trace.nodes {
            return Err(format!(
                "nodes: served {} != expected {}",
                self.nodes, d.trace.nodes
            ));
        }
        if self.lp_iterations != d.trace.lp_iterations {
            return Err(format!(
                "lp_iterations: served {} != expected {}",
                self.lp_iterations, d.trace.lp_iterations
            ));
        }
        Ok(())
    }
}

/// A response frame: a decision, a structured error, or the answer to
/// an in-band [`ControlMsg`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A finished decision.
    Decision(DecisionMsg),
    /// A per-request or stream-level error.
    Error {
        /// The offending request's id, when known.
        id: Option<u64>,
        /// Human-readable cause.
        message: String,
    },
    /// The metrics document answering a `metrics` control frame.
    Metrics {
        /// Echoed control-frame id, when one was sent.
        id: Option<u64>,
        /// The scraped document.
        doc: MetricsDoc,
    },
    /// The verdict answering a `health` control frame.
    Health {
        /// Echoed control-frame id, when one was sent.
        id: Option<u64>,
        /// `true` when no degradation reason applies.
        ok: bool,
        /// Why the server considers itself degraded (empty when ok).
        reasons: Vec<String>,
    },
}

fn opt_id(id: Option<u64>) -> Value {
    id.map(|i| Value::Int(i as i64)).unwrap_or(Value::Null)
}

impl Response {
    /// Renders the response as a JSON payload.
    pub fn to_value(&self) -> Value {
        match self {
            Response::Decision(d) => d.to_value(),
            Response::Error { id, message } => Value::Obj(vec![
                ("type".into(), Value::Str("error".into())),
                ("id".into(), opt_id(*id)),
                ("message".into(), Value::Str(message.clone())),
            ]),
            Response::Metrics { id, doc } => Value::Obj(vec![
                ("type".into(), Value::Str("metrics".into())),
                ("id".into(), opt_id(*id)),
                ("doc".into(), doc.to_value()),
            ]),
            Response::Health { id, ok, reasons } => Value::Obj(vec![
                ("type".into(), Value::Str("health".into())),
                ("id".into(), opt_id(*id)),
                (
                    "status".into(),
                    Value::Str(if *ok { "ok" } else { "degraded" }.into()),
                ),
                (
                    "reasons".into(),
                    Value::Arr(reasons.iter().map(|r| Value::Str(r.clone())).collect()),
                ),
            ]),
        }
    }

    /// Parses a response payload.
    pub fn parse(payload: &[u8]) -> Result<Response, String> {
        let text = std::str::from_utf8(payload).map_err(|e| format!("not UTF-8: {e}"))?;
        let v = Value::parse(text).map_err(|e| format!("not JSON: {e}"))?;
        let id = v.get("id").and_then(Value::as_u64);
        match v.get("type").and_then(Value::as_str) {
            Some("decision") => DecisionMsg::from_value(&v).map(Response::Decision),
            Some("error") => Ok(Response::Error {
                id,
                message: v
                    .get("message")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
            }),
            Some("metrics") => Ok(Response::Metrics {
                id,
                doc: MetricsDoc::from_value(v.get("doc").ok_or("missing field 'doc'")?)?,
            }),
            Some("health") => {
                let status = v
                    .get("status")
                    .and_then(Value::as_str)
                    .ok_or("missing field 'status'")?;
                let reasons = v
                    .get("reasons")
                    .and_then(Value::as_arr)
                    .map(|arr| {
                        arr.iter()
                            .map(|r| r.as_str().unwrap_or("").to_string())
                            .collect()
                    })
                    .unwrap_or_default();
                Ok(Response::Health {
                    id,
                    ok: status == "ok",
                    reasons,
                })
            }
            other => Err(format!("unknown response type {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn request() -> Request {
        Request {
            id: 7,
            policy: 1,
            offered: 6.5e8,
            premium_offered: 3.9e8,
            background_mw: vec![330.5, 410.25, 280.125],
            hourly_budget: 25_000.0,
        }
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"world").unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur, MAX_FRAME).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cur, MAX_FRAME).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cur, MAX_FRAME).unwrap().unwrap(), b"world");
        assert!(read_frame(&mut cur, MAX_FRAME).unwrap().is_none());
    }

    #[test]
    fn truncated_header_and_payload_are_detected() {
        let mut full = Vec::new();
        write_frame(&mut full, b"payload").unwrap();
        // Cut inside the header.
        let mut cur = Cursor::new(full[..2].to_vec());
        assert!(matches!(
            read_frame(&mut cur, MAX_FRAME),
            Err(FrameError::Truncated { .. })
        ));
        // Cut inside the payload.
        let mut cur = Cursor::new(full[..full.len() - 3].to_vec());
        assert!(matches!(
            read_frame(&mut cur, MAX_FRAME),
            Err(FrameError::Truncated { .. })
        ));
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut cur = Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cur, MAX_FRAME),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn request_round_trips_bitwise() {
        let req = request();
        let rendered = req.to_value().render();
        let back = Request::parse(rendered.as_bytes()).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.offered.to_bits(), req.offered.to_bits());
        // Unlimited budget crosses as null.
        let unlimited = Request {
            hourly_budget: f64::INFINITY,
            ..req
        };
        let back = Request::parse(unlimited.to_value().render().as_bytes()).unwrap();
        assert_eq!(back.hourly_budget, f64::INFINITY);
    }

    #[test]
    fn invalid_requests_are_rejected_with_the_id() {
        let cases = [
            (r#"{"policy":1}"#, None),
            (
                r#"{"id":3,"policy":9,"offered":1.0,"premium":0.5,"background":[1.0]}"#,
                Some(3),
            ),
            (
                r#"{"id":4,"policy":1,"offered":1.0,"premium":2.0,"background":[1.0]}"#,
                Some(4),
            ),
            (
                r#"{"id":5,"policy":1,"offered":1e400,"premium":0.0,"background":[1.0]}"#,
                Some(5),
            ),
            (
                r#"{"id":6,"policy":1,"offered":1.0,"premium":0.5,"background":[]}"#,
                Some(6),
            ),
        ];
        for (payload, id) in cases {
            let err = Request::parse(payload.as_bytes()).unwrap_err();
            assert_eq!(err.id, id, "case {payload}");
        }
        assert!(Request::parse(&[0xff, 0xfe]).is_err());
        assert!(Request::parse(b"{not json").is_err());
    }

    #[test]
    fn decision_round_trips_via_response() {
        use billcap_core::{BillCapper, DataCenterSystem};
        let sys = DataCenterSystem::paper_system(1);
        let d = BillCapper::default()
            .decide_hour(&sys, 6e8, 3.6e8, &[330.0, 410.0, 280.0], f64::INFINITY)
            .unwrap();
        let msg = DecisionMsg::from_decision(9, &d, false);
        msg.bitwise_matches(&d).unwrap();
        let rendered = Response::Decision(msg.clone()).to_value().render();
        match Response::parse(rendered.as_bytes()).unwrap() {
            Response::Decision(back) => {
                assert_eq!(back, msg);
                back.bitwise_matches(&d).unwrap();
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn error_responses_round_trip() {
        for id in [Some(11), None] {
            let r = Response::Error {
                id,
                message: "bad request".into(),
            };
            let back = Response::parse(r.to_value().render().as_bytes()).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn control_frames_parse_and_round_trip() {
        for (ctl, op) in [
            (ControlMsg::Metrics { id: Some(3) }, "metrics"),
            (ControlMsg::Health { id: None }, "health"),
        ] {
            let rendered = ctl.to_value().render();
            assert!(rendered.contains(op));
            assert!(ControlMsg::maybe_control(rendered.as_bytes()));
            assert_eq!(ControlMsg::parse(rendered.as_bytes()).unwrap(), Some(ctl));
        }
        // Unknown ops are rejected; op-less payloads fall through.
        assert!(ControlMsg::parse(br#"{"op":"reboot"}"#).is_err());
        assert_eq!(ControlMsg::parse(br#"{"id":1}"#).unwrap(), None);
    }

    #[test]
    fn decide_requests_never_look_like_control_frames() {
        let rendered = request().to_value().render();
        assert!(!ControlMsg::maybe_control(rendered.as_bytes()));
        let unlimited = Request {
            hourly_budget: f64::INFINITY,
            ..request()
        };
        assert!(!ControlMsg::maybe_control(
            unlimited.to_value().render().as_bytes()
        ));
    }

    #[test]
    fn metrics_responses_round_trip() {
        let mut doc = billcap_obs::MetricsDoc::new(4, 1_000_000);
        doc.counters.insert("serve.requests".into(), 168);
        doc.gauges.insert("serve.queue_depth".into(), 2.0);
        let r = Response::Metrics { id: Some(9), doc };
        let back = Response::parse(r.to_value().render().as_bytes()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn health_responses_round_trip() {
        let ok = Response::Health {
            id: None,
            ok: true,
            reasons: Vec::new(),
        };
        let degraded = Response::Health {
            id: Some(2),
            ok: false,
            reasons: vec!["trace sink dropped 3 lines".into()],
        };
        for r in [ok, degraded] {
            let back = Response::parse(r.to_value().render().as_bytes()).unwrap();
            assert_eq!(back, r);
        }
    }
}
