//! The decision server: a reader thread fans frames out to a pool of
//! decision workers over a shared queue.
//!
//! Topology (all on [`billcap_rt::run_workers`], so no thread outlives
//! the call):
//!
//! ```text
//!  reader (worker 0) ──frames──▶ Mutex<VecDeque> ──▶ workers 1..=N
//!      │ answers control frames                        │ per-worker DecisionEngines
//!      ▼                                               ▼
//!  ServerTelemetry ◀──latency/counters  Mutex<W> ◀──response frames──┘
//! ```
//!
//! * Each worker owns one [`DecisionEngine`] per pricing policy, so
//!   model reuse never crosses threads and needs no locking.
//! * The decision cache (optional) is shared: one hour solved by any
//!   worker is a hit for every worker.
//! * Malformed requests get an in-band `error` response and the stream
//!   continues; framing errors (truncation, oversized length) poison
//!   the stream — the server emits one final `error` frame and shuts
//!   down cleanly. Neither ever panics a worker.
//!
//! ## Telemetry
//!
//! A [`ServerTelemetry`] instance accompanies every serve call (one
//! per *process* under [`serve_unix`], so counters survive across
//! connections). It splits observability into two strict tiers:
//!
//! * **Work counters** (`serve.requests`, `serve.decisions`,
//!   `serve.cache.*`, `core.engine.rebuilds_unique`, …) count events
//!   that are a pure function of the request stream — bitwise
//!   reproducible across thread counts on a fixed replay. Unique
//!   rebuilds are counted as the cardinality of the set of
//!   structure fingerprints drained from every engine
//!   ([`DecisionEngine::drain_built_keys`]); the *set* is
//!   schedule-invariant even though which worker built what is not.
//! * **Advisory signals** — windowed latency histograms
//!   (enqueue-to-respond and solve-only, microseconds), queue-depth
//!   gauges, uptime — are wall-clock and may differ run to run.
//!
//! In-band `{"op":"metrics"}` / `{"op":"health"}` control frames
//! ([`crate::protocol::ControlMsg`]) are answered by the *reader*
//! thread, never queued, so a scrape observes the workers instead of
//! competing with them. Every `window_requests` data frames the reader
//! rotates the latency windows and, when a metrics stream is
//! configured, appends one [`MetricsDoc`] JSONL line via a bounded
//! non-blocking [`TraceSink`] (drops are counted, memory never grows).
//!
//! Responses are written in completion order; clients correlate by
//! `id`. With the cache off and basis reuse off, every response body is
//! bitwise-identical to a fresh in-process
//! [`billcap_core::BillCapper::decide_hour`] on the same request.

use crate::protocol::{
    read_frame, write_frame, ControlMsg, DecisionMsg, FrameError, Request, Response, MAX_FRAME,
};
use billcap_core::{
    CapperConfig, DataCenterSystem, DecisionCache, DecisionEngine, DecisionKey, EngineStats,
};
use billcap_obs::{MetricsDoc, QuantileSummary, Stopwatch, TraceSink, WindowedHistogram};
use billcap_rt::run_workers;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};

/// Bucket upper bounds for the latency histograms, microseconds.
/// Solves land around 10²–10³ µs; the tail buckets catch stalls.
const LATENCY_BOUNDS_US: [f64; 12] = [
    50.0, 100.0, 200.0, 500.0, 1_000.0, 2_000.0, 5_000.0, 10_000.0, 20_000.0, 50_000.0, 100_000.0,
    500_000.0,
];

/// Pending-line capacity of the metrics trace sink.
const SINK_CAPACITY: usize = 256;

/// Queue depth beyond which a `health` scrape reports degradation.
const HEALTH_QUEUE_WARN: usize = 4096;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Decision workers (the reader thread is extra). Minimum 1.
    pub workers: usize,
    /// Share finished decisions through a [`DecisionCache`].
    pub cache: bool,
    /// Capacity of the shared decision cache.
    pub cache_capacity: usize,
    /// Carry root bases across solves inside each engine. Off by
    /// default: it trades the bitwise-identity guarantee for speed.
    pub reuse_basis: bool,
    /// Maximum accepted frame payload, bytes.
    pub max_frame: usize,
    /// Model server counts as integers inside the MILPs.
    pub integral_servers: bool,
    /// Record per-request latency and rotate metrics windows. Work
    /// counters are maintained regardless; this switch only gates the
    /// wall-clock instrumentation (the measurable overhead).
    pub telemetry: bool,
    /// Rotate the latency windows every this many data frames
    /// (logical tick — deterministic on a replay). `0` disables
    /// rotation (and therefore streaming).
    pub window_requests: u64,
    /// Number of retained latency windows (ring size `W`).
    pub latency_windows: usize,
    /// Append one metrics JSONL line per window rotation to this file.
    pub metrics_stream: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: billcap_rt::num_threads(),
            cache: true,
            cache_capacity: DecisionCache::DEFAULT_CAPACITY,
            reuse_basis: false,
            max_frame: MAX_FRAME,
            integral_servers: false,
            telemetry: true,
            window_requests: 64,
            latency_windows: 8,
            metrics_stream: None,
        }
    }
}

/// What one [`serve`] call processed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Frames received and dispatched to workers.
    pub requests: u64,
    /// Decision responses written.
    pub decisions: u64,
    /// Error responses written (malformed requests, solver errors).
    pub errors: u64,
    /// Decisions answered from the shared cache.
    pub cache_hits: u64,
    /// Cache lookups that fell through to a fresh solve.
    pub cache_misses: u64,
    /// Decisions evicted by the cache's FIFO bound.
    pub cache_evictions: u64,
    /// The framing error that terminated the stream, if any.
    pub frame_error: Option<String>,
}

/// Latency windows rotated together on the reader's logical tick.
struct LatencyWindows {
    /// Enqueue-to-respond latency, µs.
    request_us: WindowedHistogram,
    /// `decide_hour` solve time alone, µs.
    solve_us: WindowedHistogram,
}

/// Continuous-telemetry state for a server. One instance per [`serve`]
/// call, or one per *process* under [`serve_unix`] so counters and
/// latency windows accumulate across connections.
///
/// All counter updates happen before the corresponding response frame
/// is written, so a client that has read `N` decision responses and
/// then scrapes sees counters covering at least those `N`.
pub struct ServerTelemetry {
    epoch: Stopwatch,
    enabled: bool,
    latency: Mutex<LatencyWindows>,
    sink: TraceSink,
    stream: Mutex<Option<Box<dyn Write + Send>>>,
    /// Unique engine step-model structure fingerprints, across all
    /// workers. The set is thread-count-invariant; see the module docs.
    engine_keys: Mutex<HashSet<u64>>,
    requests: AtomicU64,
    control: AtomicU64,
    decisions: AtomicU64,
    errors: AtomicU64,
    frame_errors: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    engine_hits: AtomicU64,
    engine_misses: AtomicU64,
    engine_evictions: AtomicU64,
}

impl ServerTelemetry {
    /// Fresh telemetry configured from `cfg` (no stream attached).
    pub fn new(cfg: &ServeConfig) -> Self {
        let windows = cfg.latency_windows.max(1);
        Self {
            epoch: Stopwatch::start(),
            enabled: cfg.telemetry,
            latency: Mutex::new(LatencyWindows {
                request_us: WindowedHistogram::new(&LATENCY_BOUNDS_US, windows),
                solve_us: WindowedHistogram::new(&LATENCY_BOUNDS_US, windows),
            }),
            sink: TraceSink::new(SINK_CAPACITY),
            stream: Mutex::new(None),
            engine_keys: Mutex::new(HashSet::new()),
            requests: AtomicU64::new(0),
            control: AtomicU64::new(0),
            decisions: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            frame_errors: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_evictions: AtomicU64::new(0),
            engine_hits: AtomicU64::new(0),
            engine_misses: AtomicU64::new(0),
            engine_evictions: AtomicU64::new(0),
        }
    }

    /// Attaches the JSONL stream the sink drains to on each rotation.
    pub fn with_stream(self, out: Box<dyn Write + Send>) -> Self {
        *lock(&self.stream) = Some(out);
        self
    }

    /// Whether wall-clock instrumentation is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Metrics lines accepted by the sink so far.
    pub fn sink_emitted(&self) -> u64 {
        self.sink.emitted()
    }

    /// Metrics lines the sink had to drop (bounded-memory policy).
    pub fn sink_dropped(&self) -> u64 {
        self.sink.dropped()
    }

    /// Distinct engine step-model structures built so far.
    pub fn unique_rebuilds(&self) -> u64 {
        lock(&self.engine_keys).len() as u64
    }

    fn record_request_us(&self, us: f64) {
        lock(&self.latency).request_us.record(us);
    }

    fn record_solve_us(&self, us: f64) {
        lock(&self.latency).solve_us.record(us);
    }
}

struct Queue {
    /// Frames with their enqueue stamp (present iff telemetry is on).
    frames: VecDeque<(Vec<u8>, Option<Stopwatch>)>,
    done: bool,
}

struct Shared<'t, W: Write> {
    queue: Mutex<Queue>,
    available: Condvar,
    writer: Mutex<W>,
    cache: Option<Mutex<DecisionCache>>,
    tele: &'t ServerTelemetry,
    requests: AtomicU64,
    decisions: AtomicU64,
    errors: AtomicU64,
    frame_error: Mutex<Option<String>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<W: Write> Shared<'_, W> {
    fn respond(&self, response: &Response) {
        // Counters move *before* the frame is written so a scrape
        // issued after reading N responses always covers those N.
        match response {
            Response::Decision(_) => {
                self.decisions.fetch_add(1, Ordering::Relaxed);
                self.tele.decisions.fetch_add(1, Ordering::SeqCst);
            }
            Response::Error { .. } => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                self.tele.errors.fetch_add(1, Ordering::SeqCst);
            }
            Response::Metrics { .. } | Response::Health { .. } => {}
        }
        let payload = response.to_value().render();
        let mut w = lock(&self.writer);
        let ok = write_frame(&mut *w, payload.as_bytes()).and_then(|()| w.flush());
        drop(w);
        if ok.is_err() {
            // The client is gone; keep draining the queue so the call
            // terminates, but stop pretending writes matter.
            billcap_obs::counter("serve.write_failed", 1);
        }
    }
}

/// Builds the degradation reasons a `health` scrape reports.
fn health_reasons(queue_depth: usize, sink_dropped: u64, frame_errors: u64) -> Vec<String> {
    let mut reasons = Vec::new();
    if frame_errors > 0 {
        reasons.push(format!("{frame_errors} stream framing error(s)"));
    }
    if queue_depth > HEALTH_QUEUE_WARN {
        reasons.push(format!(
            "queue depth {queue_depth} exceeds {HEALTH_QUEUE_WARN}"
        ));
    }
    if sink_dropped > 0 {
        reasons.push(format!("trace sink dropped {sink_dropped} metrics line(s)"));
    }
    reasons
}

/// Assembles the versioned metrics document from the telemetry state
/// and the current connection's queue.
fn build_doc<W: Write>(
    cfg: &ServeConfig,
    shared: &Shared<'_, W>,
    queue_depth: usize,
) -> MetricsDoc {
    let t = shared.tele;
    let (tick, request_q, solve_q) = {
        let lat = lock(&t.latency);
        (
            lat.request_us.tick(),
            QuantileSummary::from_histogram(&lat.request_us.merged()),
            QuantileSummary::from_histogram(&lat.solve_us.merged()),
        )
    };
    let mut doc = MetricsDoc::new(tick, t.epoch.elapsed_ns());
    let load = |a: &AtomicU64| a.load(Ordering::SeqCst);
    // Exact work counters: reproducible across thread counts.
    doc.counters
        .insert("serve.requests".into(), load(&t.requests));
    doc.counters
        .insert("serve.control".into(), load(&t.control));
    doc.counters
        .insert("serve.decisions".into(), load(&t.decisions));
    doc.counters.insert("serve.errors".into(), load(&t.errors));
    doc.counters
        .insert("serve.cache.hit".into(), load(&t.cache_hits));
    doc.counters
        .insert("serve.cache.miss".into(), load(&t.cache_misses));
    doc.counters
        .insert("serve.cache.evict".into(), load(&t.cache_evictions));
    doc.counters
        .insert("core.engine.rebuilds_unique".into(), t.unique_rebuilds());
    doc.counters
        .insert("serve.sink.emitted".into(), t.sink_emitted());
    doc.counters
        .insert("serve.sink.dropped".into(), t.sink_dropped());
    // Advisory gauges: occupancy and schedule-dependent raw totals.
    doc.gauges
        .insert("serve.queue_depth".into(), queue_depth as f64);
    doc.gauges
        .insert("serve.workers".into(), cfg.workers.max(1) as f64);
    if let Some(cache) = &shared.cache {
        doc.gauges
            .insert("serve.cache.len".into(), lock(cache).len() as f64);
    }
    doc.gauges
        .insert("core.engine.cache.hit".into(), load(&t.engine_hits) as f64);
    doc.gauges.insert(
        "core.engine.cache.miss".into(),
        load(&t.engine_misses) as f64,
    );
    doc.gauges.insert(
        "core.engine.cache.evict".into(),
        load(&t.engine_evictions) as f64,
    );
    doc.latency.insert("request_us".into(), request_q);
    doc.latency.insert("solve_us".into(), solve_q);
    doc
}

/// Answers a control frame from the reader thread.
fn answer_control<W: Write>(cfg: &ServeConfig, shared: &Shared<'_, W>, ctl: ControlMsg) {
    match ctl {
        ControlMsg::Metrics { id } => {
            let depth = lock(&shared.queue).frames.len();
            let doc = build_doc(cfg, shared, depth);
            shared.respond(&Response::Metrics { id, doc });
        }
        ControlMsg::Health { id } => {
            let depth = lock(&shared.queue).frames.len();
            let reasons = health_reasons(
                depth,
                shared.tele.sink_dropped(),
                shared.tele.frame_errors.load(Ordering::SeqCst),
            );
            shared.respond(&Response::Health {
                id,
                ok: reasons.is_empty(),
                reasons,
            });
        }
    }
}

/// One window rotation: capture the completed window into a JSONL line
/// (when a stream is attached), then advance the ring.
fn emit_window<W: Write>(cfg: &ServeConfig, shared: &Shared<'_, W>) {
    let tele = shared.tele;
    let has_stream = lock(&tele.stream).is_some();
    if has_stream {
        let depth = lock(&shared.queue).frames.len();
        let doc = build_doc(cfg, shared, depth);
        tele.sink.push_line(doc.render_json());
        let mut stream = lock(&tele.stream);
        if let Some(out) = stream.as_mut() {
            let drained = tele.sink.drain_to(out).and_then(|_| out.flush());
            if drained.is_err() {
                billcap_obs::counter("serve.stream_write_failed", 1);
            }
        }
    }
    let mut lat = lock(&tele.latency);
    lat.request_us.rotate();
    lat.solve_us.rotate();
}

/// Runs the server over an arbitrary transport until the reader hits
/// end-of-stream (or a framing error), then drains the queue and
/// returns. Panics never escape worker threads for malformed input —
/// every bad request is answered in-band.
///
/// Telemetry is created fresh for this call; to share telemetry across
/// calls (as [`serve_unix`] does per process), use [`serve_with`].
pub fn serve<R, W>(cfg: &ServeConfig, reader: R, writer: W) -> ServeStats
where
    R: Read + Send,
    W: Write + Send,
{
    let mut tele = ServerTelemetry::new(cfg);
    if let Some(path) = &cfg.metrics_stream {
        match std::fs::File::create(path) {
            Ok(f) => tele = tele.with_stream(Box::new(f)),
            Err(_) => billcap_obs::counter("serve.stream_open_failed", 1),
        }
    }
    serve_with(cfg, reader, writer, &tele)
}

/// [`serve`] against caller-owned telemetry. Counters and latency
/// windows in `tele` accumulate across calls; the returned
/// [`ServeStats`] still covers only this call.
pub fn serve_with<R, W>(
    cfg: &ServeConfig,
    reader: R,
    writer: W,
    tele: &ServerTelemetry,
) -> ServeStats
where
    R: Read + Send,
    W: Write + Send,
{
    let workers = cfg.workers.max(1);
    let shared = Shared {
        queue: Mutex::new(Queue {
            frames: VecDeque::new(),
            done: false,
        }),
        available: Condvar::new(),
        writer: Mutex::new(writer),
        cache: cfg
            .cache
            .then(|| Mutex::new(DecisionCache::new(cfg.cache_capacity))),
        tele,
        requests: AtomicU64::new(0),
        decisions: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        frame_error: Mutex::new(None),
    };
    let reader_slot: Mutex<Option<R>> = Mutex::new(Some(reader));

    run_workers(workers + 1, |w| {
        if w == 0 {
            run_reader(cfg, &shared, &reader_slot);
        } else {
            run_decider(cfg, &shared);
        }
    });

    // Flush the tail window: work recorded since the last rotation
    // boundary (or everything, when rotation never fired) would
    // otherwise never reach the stream. The pool has joined, so this
    // final line carries the connection's complete counters and the
    // latency retained in the window ring — a deterministic
    // end-of-stream summary.
    if tele.enabled() && lock(&tele.stream).is_some() {
        emit_window(cfg, &shared);
    }

    let (cache_hits, cache_misses, cache_evictions) = shared
        .cache
        .as_ref()
        .map(|c| {
            let c = lock(c);
            (c.hits(), c.misses(), c.evictions())
        })
        .unwrap_or((0, 0, 0));
    let frame_error = lock(&shared.frame_error).clone();
    ServeStats {
        requests: shared.requests.load(Ordering::Relaxed),
        decisions: shared.decisions.load(Ordering::Relaxed),
        errors: shared.errors.load(Ordering::Relaxed),
        cache_hits,
        cache_misses,
        cache_evictions,
        frame_error,
    }
}

fn run_reader<R: Read, W: Write>(
    cfg: &ServeConfig,
    shared: &Shared<'_, W>,
    reader_slot: &Mutex<Option<R>>,
) {
    let mut reader = match lock(reader_slot).take() {
        Some(r) => r,
        None => return,
    };
    let instrumented = shared.tele.enabled();
    let mut data_frames: u64 = 0;
    loop {
        match read_frame(&mut reader, cfg.max_frame) {
            Ok(Some(frame)) => {
                if ControlMsg::maybe_control(&frame) {
                    match ControlMsg::parse(&frame) {
                        Ok(Some(ctl)) => {
                            shared.tele.control.fetch_add(1, Ordering::SeqCst);
                            answer_control(cfg, shared, ctl);
                            continue;
                        }
                        Ok(None) => {} // no "op" key after all: ordinary request
                        Err(message) => {
                            shared.respond(&Response::Error {
                                id: None,
                                message: format!("bad control frame: {message}"),
                            });
                            continue;
                        }
                    }
                }
                shared.requests.fetch_add(1, Ordering::Relaxed);
                shared.tele.requests.fetch_add(1, Ordering::SeqCst);
                data_frames += 1;
                let stamp = instrumented.then(Stopwatch::start);
                let mut q = lock(&shared.queue);
                q.frames.push_back((frame, stamp));
                if billcap_obs::enabled() {
                    billcap_obs::gauge("serve.queue_depth", q.frames.len() as f64);
                }
                drop(q);
                shared.available.notify_one();
                if instrumented
                    && cfg.window_requests > 0
                    && data_frames.is_multiple_of(cfg.window_requests)
                {
                    emit_window(cfg, shared);
                }
            }
            Ok(None) => break,
            Err(e) => {
                // The stream lost its frame boundaries: answer with one
                // terminal error and stop reading. Queued requests are
                // still served.
                let message = match &e {
                    FrameError::Io(io) => format!("stream error: {io}"),
                    other => format!("protocol error: {other}"),
                };
                billcap_obs::counter("serve.frame_errors", 1);
                shared.tele.frame_errors.fetch_add(1, Ordering::SeqCst);
                *lock(&shared.frame_error) = Some(message.clone());
                shared.respond(&Response::Error { id: None, message });
                break;
            }
        }
    }
    lock(&shared.queue).done = true;
    shared.available.notify_all();
}

/// A worker's engine plus the stats already folded into telemetry.
struct EngineState {
    engine: DecisionEngine,
    reported: EngineStats,
}

fn run_decider<W: Write>(cfg: &ServeConfig, shared: &Shared<'_, W>) {
    let mut engines: HashMap<usize, EngineState> = HashMap::new();
    loop {
        let entry = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(f) = q.frames.pop_front() {
                    break Some(f);
                }
                if q.done {
                    break None;
                }
                q = shared
                    .available
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some((frame, stamp)) = entry else { break };
        handle_request(cfg, shared, &mut engines, &frame, stamp);
    }
}

/// Folds the engine's LRU stat deltas and drained structure keys into
/// the shared telemetry. Draining is unconditional so the engine's
/// built-key buffer stays bounded on long-lived servers.
fn sync_engine_telemetry(tele: &ServerTelemetry, state: &mut EngineState) {
    let cur = state.engine.cache_stats();
    let hits = cur.hits.saturating_sub(state.reported.hits);
    let misses = cur.misses.saturating_sub(state.reported.misses);
    let evictions = cur.evictions.saturating_sub(state.reported.evictions);
    if hits > 0 {
        tele.engine_hits.fetch_add(hits, Ordering::SeqCst);
    }
    if misses > 0 {
        tele.engine_misses.fetch_add(misses, Ordering::SeqCst);
    }
    if evictions > 0 {
        tele.engine_evictions.fetch_add(evictions, Ordering::SeqCst);
    }
    state.reported = cur;
    let keys = state.engine.drain_built_keys();
    if !keys.is_empty() {
        lock(&tele.engine_keys).extend(keys);
    }
}

fn handle_request<W: Write>(
    cfg: &ServeConfig,
    shared: &Shared<'_, W>,
    engines: &mut HashMap<usize, EngineState>,
    frame: &[u8],
    stamp: Option<Stopwatch>,
) {
    handle_request_inner(cfg, shared, engines, frame);
    if let Some(sw) = stamp {
        shared
            .tele
            .record_request_us(sw.elapsed_ns() as f64 / 1_000.0);
    }
}

fn handle_request_inner<W: Write>(
    cfg: &ServeConfig,
    shared: &Shared<'_, W>,
    engines: &mut HashMap<usize, EngineState>,
    frame: &[u8],
) {
    let mut span = billcap_obs::span("serve.request");
    let req = match Request::parse(frame) {
        Ok(r) => r,
        Err(e) => {
            span.field("error", 1.0);
            drop(span);
            shared.respond(&Response::Error {
                id: e.id,
                message: e.message,
            });
            return;
        }
    };
    span.field("id", req.id as f64);
    span.field("policy", req.policy as f64);

    let state = engines.entry(req.policy).or_insert_with(|| {
        let system = DataCenterSystem::paper_system(req.policy);
        let mut e = DecisionEngine::new(
            system,
            CapperConfig {
                integral_servers: cfg.integral_servers,
            },
        );
        e.set_reuse_basis(cfg.reuse_basis);
        EngineState {
            engine: e,
            reported: EngineStats::default(),
        }
    });

    let key = shared.cache.as_ref().map(|_| {
        DecisionKey::new(
            state.engine.system(),
            cfg.integral_servers,
            req.offered,
            req.premium_offered,
            &req.background_mw,
            req.hourly_budget,
        )
    });
    if let (Some(cache), Some(key)) = (&shared.cache, &key) {
        let hit = lock(cache).get(key);
        if let Some(hit) = hit {
            shared.tele.cache_hits.fetch_add(1, Ordering::SeqCst);
            span.field("cached", 1.0);
            drop(span);
            shared.respond(&Response::Decision(DecisionMsg::from_decision(
                req.id, &hit, true,
            )));
            return;
        }
        shared.tele.cache_misses.fetch_add(1, Ordering::SeqCst);
    }

    let solve_watch = shared.tele.enabled().then(Stopwatch::start);
    let result = state.engine.decide_hour(
        req.offered,
        req.premium_offered,
        &req.background_mw,
        req.hourly_budget,
    );
    if let Some(sw) = solve_watch {
        shared
            .tele
            .record_solve_us(sw.elapsed_ns() as f64 / 1_000.0);
    }
    sync_engine_telemetry(shared.tele, state);

    match result {
        Ok(decision) => {
            span.field("cost", decision.allocation.total_cost);
            span.field("solves", decision.trace.solves as f64);
            drop(span);
            if let (Some(cache), Some(key)) = (&shared.cache, key) {
                let mut c = lock(cache);
                let before = c.evictions();
                c.insert(key, decision.clone());
                let evicted = c.evictions().saturating_sub(before);
                drop(c);
                if evicted > 0 {
                    shared
                        .tele
                        .cache_evictions
                        .fetch_add(evicted, Ordering::SeqCst);
                }
            }
            shared.respond(&Response::Decision(DecisionMsg::from_decision(
                req.id, &decision, false,
            )));
        }
        Err(e) => {
            span.field("error", 1.0);
            drop(span);
            shared.respond(&Response::Error {
                id: Some(req.id),
                message: format!("decision failed: {e}"),
            });
        }
    }
}

/// Binds a Unix socket at `path` and serves connections sequentially
/// (each connection gets the full worker pool). With `once`, returns
/// after the first connection closes — the mode the tests and the CLI's
/// one-shot invocations use. A pre-existing socket file at `path` is
/// replaced.
///
/// One [`ServerTelemetry`] spans every connection, so a later `watch`
/// connection scrapes counters and latency windows accumulated by
/// earlier replay connections.
#[cfg(unix)]
pub fn serve_unix(
    cfg: &ServeConfig,
    path: &std::path::Path,
    once: bool,
) -> std::io::Result<Vec<ServeStats>> {
    use std::os::unix::net::UnixListener;
    if path.exists() {
        std::fs::remove_file(path)?;
    }
    let listener = UnixListener::bind(path)?;
    let mut tele = ServerTelemetry::new(cfg);
    if let Some(stream_path) = &cfg.metrics_stream {
        tele = tele.with_stream(Box::new(std::fs::File::create(stream_path)?));
    }
    let mut all = Vec::new();
    loop {
        let (stream, _addr) = listener.accept()?;
        let reader = stream.try_clone()?;
        all.push(serve_with(cfg, reader, stream, &tele));
        if once {
            return Ok(all);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use billcap_core::BillCapper;
    use std::io::Cursor;

    fn one_worker() -> ServeConfig {
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        }
    }

    fn encode(requests: &[Request]) -> Vec<u8> {
        let mut buf = Vec::new();
        for r in requests {
            write_frame(&mut buf, r.to_value().render().as_bytes()).unwrap();
        }
        buf
    }

    fn responses(out: &[u8]) -> Vec<Response> {
        let mut cur = Cursor::new(out.to_vec());
        let mut all = Vec::new();
        while let Some(frame) = read_frame(&mut cur, MAX_FRAME).unwrap() {
            all.push(Response::parse(&frame).unwrap());
        }
        all
    }

    fn request(id: u64) -> Request {
        Request {
            id,
            policy: 1,
            offered: 5e8,
            premium_offered: 3e8,
            background_mw: vec![330.0, 410.0, 280.0],
            hourly_budget: f64::INFINITY,
        }
    }

    #[test]
    fn serves_a_decision_matching_the_fresh_capper() {
        let input = encode(&[request(42)]);
        let mut out = Vec::new();
        let stats = serve(&one_worker(), Cursor::new(input), &mut out);
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.decisions, 1);
        assert_eq!(stats.errors, 0);
        let rs = responses(&out);
        assert_eq!(rs.len(), 1);
        let sys = DataCenterSystem::paper_system(1);
        let expected = BillCapper::default()
            .decide_hour(&sys, 5e8, 3e8, &[330.0, 410.0, 280.0], f64::INFINITY)
            .unwrap();
        match &rs[0] {
            Response::Decision(msg) => {
                assert_eq!(msg.id, 42);
                assert!(!msg.cached);
                msg.bitwise_matches(&expected).unwrap();
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn repeated_request_hits_the_cache_and_stays_bitwise() {
        let input = encode(&[request(1), request(2), request(3)]);
        let mut out = Vec::new();
        let stats = serve(&one_worker(), Cursor::new(input), &mut out);
        assert_eq!(stats.decisions, 3);
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_evictions, 0);
        let sys = DataCenterSystem::paper_system(1);
        let expected = BillCapper::default()
            .decide_hour(&sys, 5e8, 3e8, &[330.0, 410.0, 280.0], f64::INFINITY)
            .unwrap();
        let mut cached_seen = 0;
        for r in responses(&out) {
            match r {
                Response::Decision(msg) => {
                    msg.bitwise_matches(&expected).unwrap();
                    cached_seen += usize::from(msg.cached);
                }
                other => panic!("got {other:?}"),
            }
        }
        assert_eq!(cached_seen, 2);
    }

    #[test]
    fn malformed_request_gets_an_error_and_the_stream_continues() {
        let mut input = Vec::new();
        write_frame(&mut input, b"{\"id\":10,\"policy\":99}").unwrap();
        write_frame(&mut input, request(11).to_value().render().as_bytes()).unwrap();
        let mut out = Vec::new();
        let stats = serve(&one_worker(), Cursor::new(input), &mut out);
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.decisions, 1);
        assert_eq!(stats.errors, 1);
        let rs = responses(&out);
        let error = rs
            .iter()
            .find_map(|r| match r {
                Response::Error { id, message } => Some((*id, message.clone())),
                _ => None,
            })
            .expect("one error response");
        assert_eq!(error.0, Some(10));
        assert!(
            rs.iter()
                .any(|r| matches!(r, Response::Decision(m) if m.id == 11)),
            "valid request after the bad one must still be answered"
        );
    }

    #[test]
    fn truncated_stream_reports_a_frame_error_but_serves_queued_work() {
        let mut input = encode(&[request(1)]);
        input.extend_from_slice(&[0, 0]); // half a header
        let mut out = Vec::new();
        let stats = serve(&one_worker(), Cursor::new(input), &mut out);
        assert_eq!(stats.decisions, 1);
        assert!(stats.frame_error.is_some());
        assert!(responses(&out)
            .iter()
            .any(|r| matches!(r, Response::Error { id: None, .. })));
    }

    #[test]
    fn multi_worker_answers_every_request() {
        let requests: Vec<Request> = (0..12).map(request).collect();
        let input = encode(&requests);
        let cfg = ServeConfig {
            workers: 4,
            cache: false,
            ..ServeConfig::default()
        };
        let mut out = Vec::new();
        let stats = serve(&cfg, Cursor::new(input), &mut out);
        assert_eq!(stats.decisions, 12);
        let mut ids: Vec<u64> = responses(&out)
            .into_iter()
            .map(|r| match r {
                Response::Decision(m) => m.id,
                other => panic!("got {other:?}"),
            })
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..12).collect::<Vec<u64>>());
    }

    #[test]
    fn metrics_frame_is_answered_in_band() {
        // Three decide requests then a metrics scrape. The reader has
        // enqueued (and counted) all three data frames before it can
        // read the scrape, so `serve.requests` is exact even though the
        // decisions may still be in flight at scrape time.
        let mut input = encode(&[request(1), request(2), request(3)]);
        write_frame(
            &mut input,
            ControlMsg::Metrics { id: Some(99) }
                .to_value()
                .render()
                .as_bytes(),
        )
        .unwrap();
        let mut out = Vec::new();
        let stats = serve(&one_worker(), Cursor::new(input), &mut out);
        assert_eq!(stats.requests, 3, "control frames are not data requests");
        assert_eq!(stats.decisions, 3);
        let doc = responses(&out)
            .into_iter()
            .find_map(|r| match r {
                Response::Metrics { id, doc } => {
                    assert_eq!(id, Some(99));
                    Some(doc)
                }
                _ => None,
            })
            .expect("a metrics response");
        assert_eq!(doc.version, billcap_obs::METRICS_VERSION);
        assert_eq!(doc.counters["serve.requests"], 3);
        assert_eq!(doc.counters["serve.control"], 1);
        assert!(doc.counters.contains_key("core.engine.rebuilds_unique"));
        assert!(doc.latency.contains_key("request_us"));
        assert!(doc.latency.contains_key("solve_us"));
    }

    #[test]
    fn health_frame_reports_ok_on_a_quiet_server() {
        let mut input = Vec::new();
        write_frame(
            &mut input,
            ControlMsg::Health { id: None }
                .to_value()
                .render()
                .as_bytes(),
        )
        .unwrap();
        let mut out = Vec::new();
        let stats = serve(&one_worker(), Cursor::new(input), &mut out);
        assert_eq!(stats.requests, 0);
        assert_eq!(stats.decisions, 0);
        match responses(&out).as_slice() {
            [Response::Health { ok, reasons, .. }] => {
                assert!(*ok, "unexpected degradation: {reasons:?}");
                assert!(reasons.is_empty());
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn unknown_control_op_is_answered_with_an_error() {
        let mut input = Vec::new();
        write_frame(&mut input, br#"{"op":"reboot"}"#).unwrap();
        let mut out = Vec::new();
        let stats = serve(&one_worker(), Cursor::new(input), &mut out);
        assert_eq!(stats.requests, 0);
        assert_eq!(stats.errors, 1);
        assert!(responses(&out)
            .iter()
            .any(|r| matches!(r, Response::Error { message, .. } if message.contains("control"))));
    }

    #[test]
    fn health_reasons_cover_every_degradation() {
        assert!(health_reasons(0, 0, 0).is_empty());
        let degraded = health_reasons(HEALTH_QUEUE_WARN + 1, 2, 1);
        assert_eq!(degraded.len(), 3);
        assert!(degraded[0].contains("framing"));
        assert!(degraded[1].contains("queue depth"));
        assert!(degraded[2].contains("dropped 2"));
    }

    #[test]
    fn window_rotation_streams_parseable_metrics_lines() {
        let path = std::env::temp_dir().join(format!(
            "billcap-metrics-stream-{}.jsonl",
            std::process::id()
        ));
        let cfg = ServeConfig {
            workers: 1,
            window_requests: 2,
            metrics_stream: Some(path.clone()),
            ..ServeConfig::default()
        };
        let input = encode(&(0..5).map(request).collect::<Vec<_>>());
        let mut out = Vec::new();
        let stats = serve(&cfg, Cursor::new(input), &mut out);
        assert_eq!(stats.decisions, 5);

        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let docs: Vec<MetricsDoc> = text
            .lines()
            .map(|l| MetricsDoc::parse_json(l).unwrap())
            .collect();
        // Rotations fire after data frames 2 and 4, and the tail
        // window (request 5 plus everything the deciders finished
        // after the last boundary) is flushed at end of stream.
        assert_eq!(docs.len(), 3);
        assert_eq!(docs[0].tick, 0);
        assert_eq!(docs[1].tick, 1);
        assert_eq!(docs[1].counters["serve.requests"], 4);
        assert_eq!(docs[1].counters["serve.sink.dropped"], 0);
        let last = &docs[2];
        assert_eq!(last.tick, 2);
        assert_eq!(last.counters["serve.requests"], 5);
        assert_eq!(last.counters["serve.decisions"], 5);
        // The pool joined before the final flush: the summary line
        // carries every latency observation. All five requests repeat
        // the same hour, so only the first actually solves — solve-only
        // latency excludes cache hits by design.
        assert_eq!(last.latency["request_us"].count, 5);
        assert_eq!(last.latency["solve_us"].count, 1);
        assert_eq!(last.counters["serve.cache.hit"], 4);
    }

    #[test]
    fn telemetry_disabled_still_counts_work_exactly() {
        let cfg = ServeConfig {
            workers: 1,
            telemetry: false,
            ..ServeConfig::default()
        };
        let mut input = encode(&[request(1), request(2)]);
        write_frame(
            &mut input,
            ControlMsg::Metrics { id: None }
                .to_value()
                .render()
                .as_bytes(),
        )
        .unwrap();
        let mut out = Vec::new();
        let stats = serve(&cfg, Cursor::new(input), &mut out);
        assert_eq!(stats.decisions, 2);
        assert_eq!(stats.cache_hits, 1);
        let doc = responses(&out)
            .into_iter()
            .find_map(|r| match r {
                Response::Metrics { doc, .. } => Some(doc),
                _ => None,
            })
            .expect("a metrics response");
        // Work counters stay exact with instrumentation off...
        assert_eq!(doc.counters["serve.requests"], 2);
        // ...only the wall-clock series go quiet.
        assert_eq!(doc.latency["request_us"].count, 0);
        assert_eq!(doc.latency["solve_us"].count, 0);
        assert_eq!(doc.tick, 0);
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trip() {
        use std::io::Write as _;
        use std::os::unix::net::UnixStream;
        let dir = std::env::temp_dir();
        let path = dir.join(format!("billcap-serve-test-{}.sock", std::process::id()));
        let path_clone = path.clone();
        let cfg = one_worker();
        // Client on a second thread via the workspace pool: connect,
        // send one request, read one response, close.
        let result: Mutex<Option<Response>> = Mutex::new(None);
        let server_stats: Mutex<Vec<ServeStats>> = Mutex::new(Vec::new());
        run_workers(2, |w| {
            if w == 0 {
                let stats = serve_unix(&cfg, &path_clone, true).unwrap();
                *lock(&server_stats) = stats;
            } else {
                // Wait for the socket file to appear.
                let mut tries = 0;
                let stream = loop {
                    match UnixStream::connect(&path) {
                        Ok(s) => break s,
                        Err(_) if tries < 200 => {
                            tries += 1;
                            std::thread::yield_now();
                        }
                        Err(e) => panic!("connect: {e}"),
                    }
                };
                let mut writer = stream.try_clone().unwrap();
                write_frame(&mut writer, request(5).to_value().render().as_bytes()).unwrap();
                writer.flush().unwrap();
                let mut reader = stream;
                let frame = read_frame(&mut reader, MAX_FRAME).unwrap().unwrap();
                *lock(&result) = Some(Response::parse(&frame).unwrap());
                drop(reader);
                drop(writer);
            }
        });
        let _ = std::fs::remove_file(&path);
        match lock(&result).take() {
            Some(Response::Decision(m)) => assert_eq!(m.id, 5),
            other => panic!("got {other:?}"),
        }
        assert_eq!(lock(&server_stats)[0].decisions, 1);
    }

    /// The acceptance shape in miniature: a client that has read every
    /// decision response and then scrapes sees counters equal to the
    /// final [`ServeStats`].
    #[cfg(unix)]
    #[test]
    fn scrape_after_all_responses_matches_serve_stats() {
        use std::io::Write as _;
        use std::os::unix::net::UnixStream;
        let path =
            std::env::temp_dir().join(format!("billcap-serve-scrape-{}.sock", std::process::id()));
        let path_clone = path.clone();
        let cfg = ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        };
        let scraped: Mutex<Option<MetricsDoc>> = Mutex::new(None);
        let server_stats: Mutex<Vec<ServeStats>> = Mutex::new(Vec::new());
        run_workers(2, |w| {
            if w == 0 {
                let stats = serve_unix(&cfg, &path_clone, true).unwrap();
                *lock(&server_stats) = stats;
            } else {
                let mut tries = 0;
                let stream = loop {
                    match UnixStream::connect(&path) {
                        Ok(s) => break s,
                        Err(_) if tries < 200 => {
                            tries += 1;
                            std::thread::yield_now();
                        }
                        Err(e) => panic!("connect: {e}"),
                    }
                };
                let mut writer = stream.try_clone().unwrap();
                let mut reader = stream;
                // Distinct requests (no cache hits), answered out of
                // order is fine — read until all six are in.
                for id in 0..6u64 {
                    let mut r = request(id);
                    r.offered += id as f64; // distinct keys
                    write_frame(&mut writer, r.to_value().render().as_bytes()).unwrap();
                }
                writer.flush().unwrap();
                for _ in 0..6 {
                    let frame = read_frame(&mut reader, MAX_FRAME).unwrap().unwrap();
                    match Response::parse(&frame).unwrap() {
                        Response::Decision(_) => {}
                        other => panic!("got {other:?}"),
                    }
                }
                // All responses read: the scrape must show final totals.
                write_frame(
                    &mut writer,
                    ControlMsg::Metrics { id: Some(1) }
                        .to_value()
                        .render()
                        .as_bytes(),
                )
                .unwrap();
                writer.flush().unwrap();
                let frame = read_frame(&mut reader, MAX_FRAME).unwrap().unwrap();
                match Response::parse(&frame).unwrap() {
                    Response::Metrics { doc, .. } => *lock(&scraped) = Some(doc),
                    other => panic!("got {other:?}"),
                }
            }
        });
        let _ = std::fs::remove_file(&path);
        let doc = lock(&scraped).take().expect("scrape arrived");
        let stats = lock(&server_stats)[0].clone();
        assert_eq!(doc.counters["serve.requests"], stats.requests);
        assert_eq!(doc.counters["serve.decisions"], stats.decisions);
        assert_eq!(doc.counters["serve.errors"], stats.errors);
        assert_eq!(doc.counters["serve.cache.hit"], stats.cache_hits);
        assert_eq!(doc.counters["serve.cache.miss"], stats.cache_misses);
        assert_eq!(doc.counters["serve.cache.evict"], stats.cache_evictions);
        assert_eq!(stats.decisions, 6);
    }
}
