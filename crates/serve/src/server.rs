//! The decision server: a reader thread fans frames out to a pool of
//! decision workers over a shared queue.
//!
//! Topology (all on [`billcap_rt::run_workers`], so no thread outlives
//! the call):
//!
//! ```text
//!  reader (worker 0) ──frames──▶ Mutex<VecDeque> ──▶ workers 1..=N
//!                                                      │ per-worker DecisionEngines
//!                                                      ▼
//!                                    Mutex<W> ◀──response frames──┘
//! ```
//!
//! * Each worker owns one [`DecisionEngine`] per pricing policy, so
//!   model reuse never crosses threads and needs no locking.
//! * The decision cache (optional) is shared: one hour solved by any
//!   worker is a hit for every worker.
//! * Malformed requests get an in-band `error` response and the stream
//!   continues; framing errors (truncation, oversized length) poison
//!   the stream — the server emits one final `error` frame and shuts
//!   down cleanly. Neither ever panics a worker.
//!
//! Responses are written in completion order; clients correlate by
//! `id`. With the cache off and basis reuse off, every response body is
//! bitwise-identical to a fresh in-process
//! [`billcap_core::BillCapper::decide_hour`] on the same request.

use crate::protocol::{
    read_frame, write_frame, DecisionMsg, FrameError, Request, Response, MAX_FRAME,
};
use billcap_core::{CapperConfig, DataCenterSystem, DecisionCache, DecisionEngine, DecisionKey};
use billcap_rt::run_workers;
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Decision workers (the reader thread is extra). Minimum 1.
    pub workers: usize,
    /// Share finished decisions through a [`DecisionCache`].
    pub cache: bool,
    /// Capacity of the shared decision cache.
    pub cache_capacity: usize,
    /// Carry root bases across solves inside each engine. Off by
    /// default: it trades the bitwise-identity guarantee for speed.
    pub reuse_basis: bool,
    /// Maximum accepted frame payload, bytes.
    pub max_frame: usize,
    /// Model server counts as integers inside the MILPs.
    pub integral_servers: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: billcap_rt::num_threads(),
            cache: true,
            cache_capacity: DecisionCache::DEFAULT_CAPACITY,
            reuse_basis: false,
            max_frame: MAX_FRAME,
            integral_servers: false,
        }
    }
}

/// What one [`serve`] call processed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Frames received and dispatched to workers.
    pub requests: u64,
    /// Decision responses written.
    pub decisions: u64,
    /// Error responses written (malformed requests, solver errors).
    pub errors: u64,
    /// Decisions answered from the shared cache.
    pub cache_hits: u64,
    /// The framing error that terminated the stream, if any.
    pub frame_error: Option<String>,
}

struct Queue {
    frames: VecDeque<Vec<u8>>,
    done: bool,
}

struct Shared<W: Write> {
    queue: Mutex<Queue>,
    available: Condvar,
    writer: Mutex<W>,
    cache: Option<Mutex<DecisionCache>>,
    requests: AtomicU64,
    decisions: AtomicU64,
    errors: AtomicU64,
    frame_error: Mutex<Option<String>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<W: Write> Shared<W> {
    fn respond(&self, response: &Response) {
        let payload = response.to_value().render();
        let mut w = lock(&self.writer);
        let ok = write_frame(&mut *w, payload.as_bytes()).and_then(|()| w.flush());
        drop(w);
        match response {
            Response::Decision(_) => self.decisions.fetch_add(1, Ordering::Relaxed),
            Response::Error { .. } => self.errors.fetch_add(1, Ordering::Relaxed),
        };
        if ok.is_err() {
            // The client is gone; keep draining the queue so the call
            // terminates, but stop pretending writes matter.
            billcap_obs::counter("serve.write_failed", 1);
        }
    }
}

/// Runs the server over an arbitrary transport until the reader hits
/// end-of-stream (or a framing error), then drains the queue and
/// returns. Panics never escape worker threads for malformed input —
/// every bad request is answered in-band.
pub fn serve<R, W>(cfg: &ServeConfig, reader: R, writer: W) -> ServeStats
where
    R: Read + Send,
    W: Write + Send,
{
    let workers = cfg.workers.max(1);
    let shared = Shared {
        queue: Mutex::new(Queue {
            frames: VecDeque::new(),
            done: false,
        }),
        available: Condvar::new(),
        writer: Mutex::new(writer),
        cache: cfg
            .cache
            .then(|| Mutex::new(DecisionCache::new(cfg.cache_capacity))),
        requests: AtomicU64::new(0),
        decisions: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        frame_error: Mutex::new(None),
    };
    let reader_slot: Mutex<Option<R>> = Mutex::new(Some(reader));

    run_workers(workers + 1, |w| {
        if w == 0 {
            run_reader(cfg, &shared, &reader_slot);
        } else {
            run_decider(cfg, &shared);
        }
    });

    let cache_hits = shared.cache.as_ref().map(|c| lock(c).hits()).unwrap_or(0);
    let frame_error = lock(&shared.frame_error).clone();
    ServeStats {
        requests: shared.requests.load(Ordering::Relaxed),
        decisions: shared.decisions.load(Ordering::Relaxed),
        errors: shared.errors.load(Ordering::Relaxed),
        cache_hits,
        frame_error,
    }
}

fn run_reader<R: Read, W: Write>(
    cfg: &ServeConfig,
    shared: &Shared<W>,
    reader_slot: &Mutex<Option<R>>,
) {
    let mut reader = match lock(reader_slot).take() {
        Some(r) => r,
        None => return,
    };
    loop {
        match read_frame(&mut reader, cfg.max_frame) {
            Ok(Some(frame)) => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                let mut q = lock(&shared.queue);
                q.frames.push_back(frame);
                if billcap_obs::enabled() {
                    billcap_obs::gauge("serve.queue_depth", q.frames.len() as f64);
                }
                drop(q);
                shared.available.notify_one();
            }
            Ok(None) => break,
            Err(e) => {
                // The stream lost its frame boundaries: answer with one
                // terminal error and stop reading. Queued requests are
                // still served.
                let message = match &e {
                    FrameError::Io(io) => format!("stream error: {io}"),
                    other => format!("protocol error: {other}"),
                };
                billcap_obs::counter("serve.frame_errors", 1);
                *lock(&shared.frame_error) = Some(message.clone());
                shared.respond(&Response::Error { id: None, message });
                break;
            }
        }
    }
    lock(&shared.queue).done = true;
    shared.available.notify_all();
}

fn run_decider<W: Write>(cfg: &ServeConfig, shared: &Shared<W>) {
    let mut engines: HashMap<usize, DecisionEngine> = HashMap::new();
    loop {
        let frame = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(f) = q.frames.pop_front() {
                    break Some(f);
                }
                if q.done {
                    break None;
                }
                q = shared
                    .available
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(frame) = frame else { break };
        handle_request(cfg, shared, &mut engines, &frame);
    }
}

fn handle_request<W: Write>(
    cfg: &ServeConfig,
    shared: &Shared<W>,
    engines: &mut HashMap<usize, DecisionEngine>,
    frame: &[u8],
) {
    let mut span = billcap_obs::span("serve.request");
    let req = match Request::parse(frame) {
        Ok(r) => r,
        Err(e) => {
            span.field("error", 1.0);
            drop(span);
            shared.respond(&Response::Error {
                id: e.id,
                message: e.message,
            });
            return;
        }
    };
    span.field("id", req.id as f64);
    span.field("policy", req.policy as f64);

    let engine = engines.entry(req.policy).or_insert_with(|| {
        let system = DataCenterSystem::paper_system(req.policy);
        let mut e = DecisionEngine::new(
            system,
            CapperConfig {
                integral_servers: cfg.integral_servers,
            },
        );
        e.set_reuse_basis(cfg.reuse_basis);
        e
    });

    let key = shared.cache.as_ref().map(|_| {
        DecisionKey::new(
            engine.system(),
            cfg.integral_servers,
            req.offered,
            req.premium_offered,
            &req.background_mw,
            req.hourly_budget,
        )
    });
    if let (Some(cache), Some(key)) = (&shared.cache, &key) {
        if let Some(hit) = lock(cache).get(key) {
            span.field("cached", 1.0);
            drop(span);
            shared.respond(&Response::Decision(DecisionMsg::from_decision(
                req.id, &hit, true,
            )));
            return;
        }
    }

    match engine.decide_hour(
        req.offered,
        req.premium_offered,
        &req.background_mw,
        req.hourly_budget,
    ) {
        Ok(decision) => {
            span.field("cost", decision.allocation.total_cost);
            span.field("solves", decision.trace.solves as f64);
            drop(span);
            if let (Some(cache), Some(key)) = (&shared.cache, key) {
                lock(cache).insert(key, decision.clone());
            }
            shared.respond(&Response::Decision(DecisionMsg::from_decision(
                req.id, &decision, false,
            )));
        }
        Err(e) => {
            span.field("error", 1.0);
            drop(span);
            shared.respond(&Response::Error {
                id: Some(req.id),
                message: format!("decision failed: {e}"),
            });
        }
    }
}

/// Binds a Unix socket at `path` and serves connections sequentially
/// (each connection gets the full worker pool). With `once`, returns
/// after the first connection closes — the mode the tests and the CLI's
/// one-shot invocations use. A pre-existing socket file at `path` is
/// replaced.
#[cfg(unix)]
pub fn serve_unix(
    cfg: &ServeConfig,
    path: &std::path::Path,
    once: bool,
) -> std::io::Result<Vec<ServeStats>> {
    use std::os::unix::net::UnixListener;
    if path.exists() {
        std::fs::remove_file(path)?;
    }
    let listener = UnixListener::bind(path)?;
    let mut all = Vec::new();
    loop {
        let (stream, _addr) = listener.accept()?;
        let reader = stream.try_clone()?;
        all.push(serve(cfg, reader, stream));
        if once {
            return Ok(all);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use billcap_core::BillCapper;
    use std::io::Cursor;

    fn one_worker() -> ServeConfig {
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        }
    }

    fn encode(requests: &[Request]) -> Vec<u8> {
        let mut buf = Vec::new();
        for r in requests {
            write_frame(&mut buf, r.to_value().render().as_bytes()).unwrap();
        }
        buf
    }

    fn responses(out: &[u8]) -> Vec<Response> {
        let mut cur = Cursor::new(out.to_vec());
        let mut all = Vec::new();
        while let Some(frame) = read_frame(&mut cur, MAX_FRAME).unwrap() {
            all.push(Response::parse(&frame).unwrap());
        }
        all
    }

    fn request(id: u64) -> Request {
        Request {
            id,
            policy: 1,
            offered: 5e8,
            premium_offered: 3e8,
            background_mw: vec![330.0, 410.0, 280.0],
            hourly_budget: f64::INFINITY,
        }
    }

    #[test]
    fn serves_a_decision_matching_the_fresh_capper() {
        let input = encode(&[request(42)]);
        let mut out = Vec::new();
        let stats = serve(&one_worker(), Cursor::new(input), &mut out);
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.decisions, 1);
        assert_eq!(stats.errors, 0);
        let rs = responses(&out);
        assert_eq!(rs.len(), 1);
        let sys = DataCenterSystem::paper_system(1);
        let expected = BillCapper::default()
            .decide_hour(&sys, 5e8, 3e8, &[330.0, 410.0, 280.0], f64::INFINITY)
            .unwrap();
        match &rs[0] {
            Response::Decision(msg) => {
                assert_eq!(msg.id, 42);
                assert!(!msg.cached);
                msg.bitwise_matches(&expected).unwrap();
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn repeated_request_hits_the_cache_and_stays_bitwise() {
        let input = encode(&[request(1), request(2), request(3)]);
        let mut out = Vec::new();
        let stats = serve(&one_worker(), Cursor::new(input), &mut out);
        assert_eq!(stats.decisions, 3);
        assert_eq!(stats.cache_hits, 2);
        let sys = DataCenterSystem::paper_system(1);
        let expected = BillCapper::default()
            .decide_hour(&sys, 5e8, 3e8, &[330.0, 410.0, 280.0], f64::INFINITY)
            .unwrap();
        let mut cached_seen = 0;
        for r in responses(&out) {
            match r {
                Response::Decision(msg) => {
                    msg.bitwise_matches(&expected).unwrap();
                    cached_seen += usize::from(msg.cached);
                }
                other => panic!("got {other:?}"),
            }
        }
        assert_eq!(cached_seen, 2);
    }

    #[test]
    fn malformed_request_gets_an_error_and_the_stream_continues() {
        let mut input = Vec::new();
        write_frame(&mut input, b"{\"id\":10,\"policy\":99}").unwrap();
        write_frame(&mut input, request(11).to_value().render().as_bytes()).unwrap();
        let mut out = Vec::new();
        let stats = serve(&one_worker(), Cursor::new(input), &mut out);
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.decisions, 1);
        assert_eq!(stats.errors, 1);
        let rs = responses(&out);
        let error = rs
            .iter()
            .find_map(|r| match r {
                Response::Error { id, message } => Some((*id, message.clone())),
                _ => None,
            })
            .expect("one error response");
        assert_eq!(error.0, Some(10));
        assert!(
            rs.iter()
                .any(|r| matches!(r, Response::Decision(m) if m.id == 11)),
            "valid request after the bad one must still be answered"
        );
    }

    #[test]
    fn truncated_stream_reports_a_frame_error_but_serves_queued_work() {
        let mut input = encode(&[request(1)]);
        input.extend_from_slice(&[0, 0]); // half a header
        let mut out = Vec::new();
        let stats = serve(&one_worker(), Cursor::new(input), &mut out);
        assert_eq!(stats.decisions, 1);
        assert!(stats.frame_error.is_some());
        assert!(responses(&out)
            .iter()
            .any(|r| matches!(r, Response::Error { id: None, .. })));
    }

    #[test]
    fn multi_worker_answers_every_request() {
        let requests: Vec<Request> = (0..12).map(request).collect();
        let input = encode(&requests);
        let cfg = ServeConfig {
            workers: 4,
            cache: false,
            ..ServeConfig::default()
        };
        let mut out = Vec::new();
        let stats = serve(&cfg, Cursor::new(input), &mut out);
        assert_eq!(stats.decisions, 12);
        let mut ids: Vec<u64> = responses(&out)
            .into_iter()
            .map(|r| match r {
                Response::Decision(m) => m.id,
                other => panic!("got {other:?}"),
            })
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..12).collect::<Vec<u64>>());
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trip() {
        use std::io::Write as _;
        use std::os::unix::net::UnixStream;
        let dir = std::env::temp_dir();
        let path = dir.join(format!("billcap-serve-test-{}.sock", std::process::id()));
        let path_clone = path.clone();
        let cfg = one_worker();
        // Client on a second thread via the workspace pool: connect,
        // send one request, read one response, close.
        let result: Mutex<Option<Response>> = Mutex::new(None);
        let server_stats: Mutex<Vec<ServeStats>> = Mutex::new(Vec::new());
        run_workers(2, |w| {
            if w == 0 {
                let stats = serve_unix(&cfg, &path_clone, true).unwrap();
                *lock(&server_stats) = stats;
            } else {
                // Wait for the socket file to appear.
                let mut tries = 0;
                let stream = loop {
                    match UnixStream::connect(&path) {
                        Ok(s) => break s,
                        Err(_) if tries < 200 => {
                            tries += 1;
                            std::thread::yield_now();
                        }
                        Err(e) => panic!("connect: {e}"),
                    }
                };
                let mut writer = stream.try_clone().unwrap();
                write_frame(&mut writer, request(5).to_value().render().as_bytes()).unwrap();
                writer.flush().unwrap();
                let mut reader = stream;
                let frame = read_frame(&mut reader, MAX_FRAME).unwrap().unwrap();
                *lock(&result) = Some(Response::parse(&frame).unwrap());
                drop(reader);
                drop(writer);
            }
        });
        let _ = std::fs::remove_file(&path);
        match lock(&result).take() {
            Some(Response::Decision(m)) => assert_eq!(m.id, 5),
            other => panic!("got {other:?}"),
        }
        assert_eq!(lock(&server_stats)[0].decisions, 1);
    }
}
