//! Differential replay: drive the server with a simulated month and
//! check every response bitwise against the sequential fresh-model
//! decisions the simulator would have made.
//!
//! [`build_plan`] replicates `billcap_sim::run_month`'s Cost Capping
//! loop exactly — same [`Scenario`], same [`Budgeter`] spend-feedback,
//! same per-hour inputs — but records the *requests* alongside the
//! expected [`HourDecision`]s. [`run_replay`] then fires the whole plan
//! through [`serve`] as one frame stream (a 168-hour "firehose"), and
//! [`verify_replay`] demands bitwise identity on every answer.
//!
//! Budget feedback is why the plan must be built sequentially: hour
//! `t`'s budget depends on the realized cost of hours `0..t`. The
//! server itself is order-free — each request carries its own budget.

use crate::protocol::{read_frame, write_frame, DecisionMsg, Response, MAX_FRAME};
use crate::server::{serve, ServeConfig, ServeStats};
use billcap_core::{evaluate_allocation, BillCapper, CoreError, DataCenterSystem, HourDecision};
use billcap_sim::Scenario;
use billcap_workload::Budgeter;
use std::io::Cursor;

/// A request stream plus the ground-truth decisions it must reproduce.
#[derive(Debug, Clone)]
pub struct ReplayPlan {
    /// Pricing-policy family the requests name (0..=3).
    pub policy: usize,
    /// One request per hour, `id == t`.
    pub requests: Vec<crate::protocol::Request>,
    /// Sequential fresh-model decisions, indexed by hour.
    pub expected: Vec<HourDecision>,
    /// The system the expectations were computed against.
    pub system: DataCenterSystem,
}

/// Builds an `hours`-long replay plan by running the simulator's Cost
/// Capping loop sequentially with a fresh [`BillCapper`].
///
/// `monthly_budget = None` means uncapped hours (budget `+∞`);
/// `Some(b)` engages the [`Budgeter`] with `hours` as its horizon, so
/// short replays see the same per-hour budgets a short month would.
pub fn build_plan(
    policy: usize,
    seed: u64,
    hours: usize,
    monthly_budget: Option<f64>,
) -> Result<ReplayPlan, CoreError> {
    let scenario = Scenario::paper_default(policy, seed);
    let hours = hours.min(scenario.horizon());
    let mut budgeter = monthly_budget.map(|b| Budgeter::from_history(b, &scenario.history, hours));
    let capper = BillCapper::default();

    let mut requests = Vec::with_capacity(hours);
    let mut expected = Vec::with_capacity(hours);
    for t in 0..hours {
        let offered = scenario.workload.at(t);
        let premium = scenario.split.premium(offered);
        let d = scenario.background_at(t);
        let hourly_budget = budgeter
            .as_ref()
            .map(Budgeter::hourly_budget)
            .unwrap_or(f64::INFINITY);

        let decision = capper.decide_hour(&scenario.system, offered, premium, &d, hourly_budget)?;
        let realized = evaluate_allocation(&scenario.system, &decision.allocation.lambda, &d);
        if let Some(b) = budgeter.as_mut() {
            b.record_spend(realized.total_cost);
        }

        requests.push(crate::protocol::Request {
            id: t as u64,
            policy,
            offered,
            premium_offered: premium,
            background_mw: d,
            hourly_budget,
        });
        expected.push(decision);
    }
    Ok(ReplayPlan {
        policy,
        requests,
        expected,
        system: scenario.system,
    })
}

/// Encodes every request in the plan as one contiguous frame stream.
pub fn encode_requests(plan: &ReplayPlan) -> Vec<u8> {
    let mut buf = Vec::new();
    for r in &plan.requests {
        let payload = r.to_value().render();
        // Writing to a Vec cannot fail.
        write_frame(&mut buf, payload.as_bytes()).unwrap_or_else(|e| {
            debug_assert!(false, "vec write failed: {e}");
        });
    }
    buf
}

/// What a replay run produced.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Decision responses, sorted by request id.
    pub decisions: Vec<DecisionMsg>,
    /// Error responses `(id, message)` in arrival order.
    pub errors: Vec<(Option<u64>, String)>,
    /// Server-side counters for the run.
    pub stats: ServeStats,
    /// Wall-clock time for the whole stream, submit to last response.
    pub elapsed_ns: u64,
}

impl ReplayOutcome {
    /// Decisions per wall-clock second over the run.
    pub fn decisions_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.decisions.len() as f64 / (self.elapsed_ns as f64 / 1e9)
    }
}

/// Fires the plan's request stream through an in-process [`serve`] call
/// and collects the responses. Fails on unparseable response frames —
/// the server must never emit those.
pub fn run_replay(cfg: &ServeConfig, plan: &ReplayPlan) -> Result<ReplayOutcome, String> {
    let input = encode_requests(plan);
    let mut out: Vec<u8> = Vec::new();
    let watch = billcap_obs::Stopwatch::start();
    let stats = serve(cfg, Cursor::new(input), &mut out);
    let elapsed_ns = watch.elapsed_ns();

    let mut decisions = Vec::new();
    let mut errors = Vec::new();
    let mut cur = Cursor::new(out);
    while let Some(frame) = read_frame(&mut cur, MAX_FRAME).map_err(|e| e.to_string())? {
        match Response::parse(&frame)? {
            Response::Decision(msg) => decisions.push(msg),
            Response::Error { id, message } => errors.push((id, message)),
            // The replay stream sends no control frames; a control
            // response here means the server misrouted something.
            Response::Metrics { .. } | Response::Health { .. } => {
                return Err("unexpected control response in replay stream".into())
            }
        }
    }
    decisions.sort_by_key(|m| m.id);
    Ok(ReplayOutcome {
        decisions,
        errors,
        stats,
        elapsed_ns,
    })
}

/// Checks a replay outcome against its plan: no errors, one response
/// per request, and every decision bitwise-identical to the sequential
/// fresh-model expectation. Returns the first mismatch, described.
pub fn verify_replay(plan: &ReplayPlan, outcome: &ReplayOutcome) -> Result<(), String> {
    if let Some((id, message)) = outcome.errors.first() {
        return Err(format!("server error for id {id:?}: {message}"));
    }
    if let Some(fe) = &outcome.stats.frame_error {
        return Err(format!("frame error: {fe}"));
    }
    if outcome.decisions.len() != plan.expected.len() {
        return Err(format!(
            "expected {} decisions, got {}",
            plan.expected.len(),
            outcome.decisions.len()
        ));
    }
    for (t, msg) in outcome.decisions.iter().enumerate() {
        if msg.id != t as u64 {
            return Err(format!("hour {t}: response id {} out of order", msg.id));
        }
        msg.bitwise_matches(&plan.expected[t])
            .map_err(|e| format!("hour {t}: {e}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_replay_is_bitwise_identical() {
        let plan = build_plan(1, 42, 6, Some(Scenario::STRINGENT_BUDGET)).unwrap();
        assert_eq!(plan.requests.len(), 6);
        let cfg = ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        };
        let outcome = run_replay(&cfg, &plan).unwrap();
        verify_replay(&plan, &outcome).unwrap();
        assert_eq!(outcome.stats.decisions, 6);
    }

    #[test]
    fn plan_budgets_follow_recorded_spend() {
        let plan = build_plan(1, 42, 8, Some(Scenario::STRINGENT_BUDGET)).unwrap();
        // Budgets must vary hour to hour (spend feedback), and stay finite.
        let budgets: Vec<f64> = plan.requests.iter().map(|r| r.hourly_budget).collect();
        assert!(budgets.iter().all(|b| b.is_finite()));
        assert!(
            budgets.windows(2).any(|w| w[0] != w[1]),
            "budgets never moved: {budgets:?}"
        );
    }

    #[test]
    fn uncapped_plan_ships_infinite_budgets() {
        let plan = build_plan(0, 7, 3, None).unwrap();
        assert!(plan
            .requests
            .iter()
            .all(|r| r.hourly_budget == f64::INFINITY));
        let outcome = run_replay(
            &ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            &plan,
        )
        .unwrap();
        verify_replay(&plan, &outcome).unwrap();
    }
}
