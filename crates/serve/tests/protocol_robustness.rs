//! Protocol robustness: the server must survive arbitrary garbage on
//! the wire. Malformed requests get structured `error` responses;
//! broken framing terminates the stream cleanly after one terminal
//! error frame; valid requests interleaved with junk are still
//! answered. Nothing here may panic, deadlock, or poison the pool.

use billcap_rt::{Rng, Xoshiro256pp};
use billcap_serve::protocol::{read_frame, write_frame, Request, Response, MAX_FRAME};
use billcap_serve::server::{serve, ServeConfig, ServeStats};
use std::io::Cursor;

fn cfg(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        ..ServeConfig::default()
    }
}

fn valid_request(id: u64) -> Request {
    Request {
        id,
        policy: 1,
        offered: 5e8,
        premium_offered: 3e8,
        background_mw: vec![330.0, 410.0, 280.0],
        hourly_budget: f64::INFINITY,
    }
}

fn frame_of(req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, req.to_value().render().as_bytes()).unwrap();
    buf
}

fn raw_frame(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, payload).unwrap();
    buf
}

fn run(input: Vec<u8>, workers: usize) -> (Vec<Response>, ServeStats) {
    let mut out = Vec::new();
    let stats = serve(&cfg(workers), Cursor::new(input), &mut out);
    let mut responses = Vec::new();
    let mut cur = Cursor::new(out);
    while let Some(frame) = read_frame(&mut cur, MAX_FRAME).expect("server frames are well-formed")
    {
        responses.push(Response::parse(&frame).expect("server responses parse"));
    }
    (responses, stats)
}

fn decision_ids(responses: &[Response]) -> Vec<u64> {
    let mut ids: Vec<u64> = responses
        .iter()
        .filter_map(|r| match r {
            Response::Decision(m) => Some(m.id),
            _ => None,
        })
        .collect();
    ids.sort_unstable();
    ids
}

#[test]
fn truncated_header_after_valid_request() {
    let mut input = frame_of(&valid_request(1));
    input.extend_from_slice(&[0, 0, 1]); // 3 of 4 header bytes
    let (responses, stats) = run(input, 2);
    assert_eq!(decision_ids(&responses), vec![1]);
    assert!(stats.frame_error.is_some(), "truncation must be reported");
    assert!(responses
        .iter()
        .any(|r| matches!(r, Response::Error { id: None, .. })));
}

#[test]
fn truncated_payload_is_a_frame_error_not_a_hang() {
    let mut input = Vec::new();
    input.extend_from_slice(&100u32.to_be_bytes());
    input.extend_from_slice(b"only a few bytes");
    let (responses, stats) = run(input, 1);
    assert_eq!(decision_ids(&responses), Vec::<u64>::new());
    let fe = stats.frame_error.expect("frame error recorded");
    assert!(fe.contains("truncated"), "got: {fe}");
}

#[test]
fn oversized_length_is_rejected_without_allocation() {
    let mut input = Vec::new();
    input.extend_from_slice(&u32::MAX.to_be_bytes());
    input.extend_from_slice(&[0xAB; 64]);
    let (responses, stats) = run(input, 1);
    let fe = stats.frame_error.expect("frame error recorded");
    assert!(fe.contains("exceeds"), "got: {fe}");
    assert_eq!(responses.len(), 1); // the terminal error frame
}

#[test]
fn invalid_utf8_payload_gets_structured_error() {
    let mut input = raw_frame(&[0xFF, 0xFE, 0x80, 0x80]);
    input.extend(frame_of(&valid_request(7)));
    let (responses, stats) = run(input, 1);
    assert_eq!(decision_ids(&responses), vec![7]);
    assert_eq!(stats.errors, 1);
    assert!(
        stats.frame_error.is_none(),
        "bad payload is not a frame error"
    );
}

#[test]
fn malformed_json_payloads_get_errors_and_never_kill_the_stream() {
    let bad: [&[u8]; 6] = [
        b"",
        b"{",
        b"[1,2,3]",
        b"\"just a string\"",
        b"{\"id\":}",
        b"{\"id\":1,\"policy\":0,\"offered\":1e8,\"premium\":2e8,\
          \"background\":[1.0],\"budget\":null}", // premium > offered
    ];
    let mut input = Vec::new();
    for payload in bad {
        input.extend(raw_frame(payload));
    }
    input.extend(frame_of(&valid_request(99)));
    let (responses, stats) = run(input, 2);
    assert_eq!(decision_ids(&responses), vec![99]);
    assert_eq!(stats.errors as usize, bad.len());
    assert_eq!(stats.decisions, 1);
}

#[test]
fn semantic_errors_carry_the_request_id() {
    let cases = [
        (10u64, "{\"id\":10,\"policy\":99,\"offered\":1.0,\"premium\":0.5,\"background\":[1.0],\"budget\":null}"),
        (11u64, "{\"id\":11,\"policy\":1,\"offered\":-1.0,\"premium\":0.0,\"background\":[1.0],\"budget\":null}"),
        (12u64, "{\"id\":12,\"policy\":1,\"offered\":1.0,\"premium\":0.5,\"background\":[],\"budget\":null}"),
        (13u64, "{\"id\":13,\"policy\":1,\"offered\":1.0,\"premium\":0.5,\"background\":[-2.0],\"budget\":null}"),
    ];
    let mut input = Vec::new();
    for (_, payload) in &cases {
        input.extend(raw_frame(payload.as_bytes()));
    }
    let (responses, stats) = run(input, 1);
    assert_eq!(stats.errors as usize, cases.len());
    let mut error_ids: Vec<u64> = responses
        .iter()
        .filter_map(|r| match r {
            Response::Error { id, .. } => *id,
            _ => None,
        })
        .collect();
    error_ids.sort_unstable();
    assert_eq!(error_ids, vec![10, 11, 12, 13]);
}

#[test]
fn mid_request_disconnect_drops_cleanly() {
    // A client that vanishes halfway through a payload: the bytes sent
    // so far look like a truncated frame. Requests already queued are
    // served; the server returns instead of blocking forever.
    let full = frame_of(&valid_request(1));
    let mut input = frame_of(&valid_request(0));
    input.extend_from_slice(&full[..full.len() / 2]);
    let (responses, stats) = run(input, 4);
    assert_eq!(decision_ids(&responses), vec![0]);
    assert!(stats.frame_error.is_some());
}

#[test]
fn zero_length_frame_is_a_parse_error_not_a_crash() {
    let mut input = raw_frame(b"");
    input.extend(frame_of(&valid_request(3)));
    let (responses, stats) = run(input, 1);
    assert_eq!(decision_ids(&responses), vec![3]);
    assert_eq!(stats.errors, 1);
}

#[test]
fn randomized_garbage_interleaved_with_valid_requests() {
    // Seeded fuzz loop: random byte blobs, random corrupted frames, and
    // valid requests shuffled together. Every valid request must be
    // answered with a decision; nothing may panic or deadlock. Frame
    // corruption may legitimately terminate a stream early, so valid
    // requests are only required to be answered when the stream's
    // framing stayed intact up to that point.
    let mut rng = Xoshiro256pp::seed_from_u64(0x5eed);
    for round in 0..20 {
        let mut input = Vec::new();
        let mut expected_ids = Vec::new();
        let mut framing_intact = true;
        for slot in 0..8 {
            match rng.random_usize_in(0, 3) {
                0 => {
                    // Valid request (only counted if framing unbroken so far).
                    let id = round * 100 + slot as u64;
                    input.extend(frame_of(&valid_request(id)));
                    if framing_intact {
                        expected_ids.push(id);
                    }
                }
                1 => {
                    // Well-framed garbage payload: structured error, stream
                    // survives.
                    let n = rng.random_usize_in(0, 64);
                    let blob: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
                    input.extend(raw_frame(&blob));
                }
                2 => {
                    // Corrupt framing: random bytes straight on the wire.
                    // Whatever the reader makes of them, the stream is no
                    // longer trustworthy past this point.
                    let n = rng.random_usize_in(1, 16);
                    for _ in 0..n {
                        input.push(rng.next_u64() as u8);
                    }
                    framing_intact = false;
                }
                _ => {
                    // Truncated valid frame.
                    let full = frame_of(&valid_request(round * 100 + slot as u64));
                    let cut = rng.random_usize_in(1, full.len().saturating_sub(1).max(1));
                    input.extend_from_slice(&full[..cut]);
                    framing_intact = false;
                }
            }
            if !framing_intact {
                break; // everything after a framing break is undefined input
            }
        }
        let workers = rng.random_usize_in(1, 4);
        let (responses, stats) = run(input, workers);
        let ids = decision_ids(&responses);
        assert_eq!(
            ids, expected_ids,
            "round {round}: valid requests before any framing break must be answered"
        );
        if !framing_intact {
            // The reader noticed the break in every case where bytes
            // remained: either a frame error or a clean EOF consumed it.
            let _ = stats.frame_error;
        }
    }
}

#[test]
fn burst_of_valid_requests_across_worker_counts_never_loses_one() {
    for workers in [1usize, 2, 4] {
        let mut input = Vec::new();
        for id in 0..25u64 {
            input.extend(frame_of(&valid_request(id)));
        }
        let (responses, stats) = run(input, workers);
        assert_eq!(stats.decisions, 25, "workers={workers}");
        assert_eq!(decision_ids(&responses), (0..25).collect::<Vec<u64>>());
    }
}
