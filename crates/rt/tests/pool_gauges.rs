//! The pool's advisory gauges reach the global recorder when tracing
//! is enabled. Lives in its own integration test (= its own process)
//! because it toggles the process-global tracing state.

use billcap_rt::par_map_threads;

#[test]
fn pool_emits_gauges_when_tracing_enabled() {
    billcap_obs::set_enabled(true);
    let items: Vec<u64> = (0..64).collect();
    let out = par_map_threads(&items, 4, |&x| x + 1);
    assert_eq!(out.len(), 64);

    // Worker threads joined (explicitly) inside par_map_threads, so
    // their thread-local collectors have already merged.
    let snap = billcap_obs::snapshot();
    assert_eq!(snap.gauges["rt.pool.workers"].last, 4.0);
    // One set per worker, even for workers that claimed nothing.
    assert_eq!(snap.gauges["rt.pool.worker_items"].sets, 4);
    // One set per claimed item: 63 remaining after the first claim,
    // 0 after the last.
    let depth = &snap.gauges["rt.pool.queue_depth"];
    assert_eq!(depth.sets, 64);
    assert_eq!(depth.min, 0.0);
    assert_eq!(depth.max, 63.0);

    billcap_obs::set_enabled(false);
    billcap_obs::reset();
}
