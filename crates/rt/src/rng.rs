//! Deterministic, seedable pseudo-random number generation.
//!
//! The workspace must build and test with no network access, so this
//! module replaces the `rand`/`rand_chacha` stack with a self-contained
//! generator pair:
//!
//! * [`SplitMix64`] — a 64-bit state expander (Steele, Lea & Flood,
//!   OOPSLA 2014). Used to turn a single `u64` seed into the full
//!   xoshiro state, exactly as the xoshiro authors recommend.
//! * [`Xoshiro256pp`] — xoshiro256++ (Blackman & Vigna, 2019): a fast,
//!   well-equidistributed generator whose statistical quality is far
//!   beyond what the simulations here require.
//!
//! The API surface deliberately mirrors the small subset of `rand` the
//! call sites used (`seed_from_u64`, `rng.random::<f64>()`, generic
//! `R: Rng` bounds) so the substitution stays mechanical. Streams are
//! stable: the golden-value tests below pin the exact output sequence,
//! and every simulation seeded the same way reproduces bit-for-bit.

/// Minimal random-source trait: everything derives from [`Rng::next_u64`].
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of a primitive type; `f64`/`f32`
    /// land in `[0, 1)`.
    fn random<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Uniform `u64` in `[0, n)` (modulo reduction; the bias is below
    /// `n / 2^64`, negligible for the ranges used here).
    fn random_below(&mut self, n: u64) -> u64
    where
        Self: Sized,
    {
        assert!(n > 0, "range must be non-empty");
        self.next_u64() % n
    }

    /// Uniform `i64` in the inclusive range `[lo, hi]`.
    fn random_i64_in(&mut self, lo: i64, hi: i64) -> i64
    where
        Self: Sized,
    {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let span = (hi - lo) as u64 + 1;
        lo + self.random_below(span) as i64
    }

    /// Uniform `usize` in `[lo, hi]`.
    fn random_usize_in(&mut self, lo: usize, hi: usize) -> usize
    where
        Self: Sized,
    {
        self.random_i64_in(lo as i64, hi as i64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    fn random_f64_in(&mut self, lo: f64, hi: f64) -> f64
    where
        Self: Sized,
    {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.random::<f64>()
    }
}

/// Types drawable uniformly from an [`Rng`].
pub trait FromRng {
    /// Draws one value.
    fn from_rng<R: Rng>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for bool {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl FromRng for f64 {
    /// Uniform in `[0, 1)` with the full 53 bits of mantissa precision.
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// The SplitMix64 state increment (the golden-ratio constant). Public so
/// [`SeedStream`] can document its random-access identity in terms of it.
pub const SPLITMIX64_GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64: one multiply-xorshift pass per output. Primarily a seed
/// expander for [`Xoshiro256pp`], but a valid standalone generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the expander.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(SPLITMIX64_GOLDEN);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A deterministic stream of sub-seeds split from one root seed.
///
/// `seed(i)` is defined as the `(i + 1)`-th output of a [`SplitMix64`]
/// generator seeded with the root — but computed in O(1) by exploiting
/// SplitMix64's counter structure (its state after `i` steps is exactly
/// `root + (i + 1) * GOLDEN`, wrapping). The two properties that matter
/// to callers:
///
/// * **Order-free determinism.** `seed(i)` depends only on `(root, i)`,
///   never on how many other seeds were drawn or on which thread drew
///   them. A Monte-Carlo fan-out that assigns sample `i` the seed
///   `stream.seed(i)` is bitwise-reproducible at any worker count.
/// * **Stream quality.** Outputs are full SplitMix64 outputs, the
///   construction the xoshiro authors recommend for seeding child
///   generators; feeding them to [`Xoshiro256pp::seed_from_u64`] gives
///   well-separated child streams.
///
/// ```
/// use billcap_rt::{Rng, SeedStream, SplitMix64};
/// let stream = SeedStream::new(42);
/// let mut sequential = SplitMix64::seed_from_u64(42);
/// for i in 0..4 {
///     assert_eq!(stream.seed(i), sequential.next_u64());
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    root: u64,
}

impl SeedStream {
    /// Creates the stream rooted at `root`.
    pub fn new(root: u64) -> Self {
        Self { root }
    }

    /// The root seed this stream was split from.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// The `index`-th sub-seed (O(1), independent of access order).
    pub fn seed(&self, index: u64) -> u64 {
        let mut sm = SplitMix64::seed_from_u64(
            self.root
                .wrapping_add(SPLITMIX64_GOLDEN.wrapping_mul(index)),
        );
        sm.next_u64()
    }
}

/// xoshiro256++: 256 bits of state, period `2^256 - 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the full 256-bit state from a single `u64` via
    /// [`SplitMix64`], the initialization the xoshiro authors specify.
    /// Every seed (including 0) yields a usable, distinct stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::seed_from_u64(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Constructs from a raw state; at least one word must be nonzero
    /// (the all-zero state is the generator's single fixed point).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "state must not be all zero");
        Self { s }
    }

    /// The jump function: advances the stream by `2^128` steps, giving a
    /// statistically independent substream. Useful for handing one seed
    /// to many workers without overlap.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_6616_1496_15DB,
            0x3982_3AEF_40DB_6381,
        ];
        let mut acc = [0u64; 4];
        for word in JUMP {
            for bit in 0..64 {
                if word & (1 << bit) != 0 {
                    for (a, s) in acc.iter_mut().zip(self.s) {
                        *a ^= s;
                    }
                }
                self.next_u64();
            }
        }
        self.s = acc;
    }
}

impl Rng for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // First outputs of the C reference implementation seeded with 0:
        // any deviation breaks every stream downstream.
        let mut rng = SplitMix64::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_matches_reference_vector() {
        // SplitMix64-seeded xoshiro256++ with seed 0: the same vector the
        // `rand_xoshiro` crate pins, so streams survive any refactor.
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 0x5317_5D61_490B_23DF);
        assert_eq!(rng.next_u64(), 0x61DA_6F3D_C380_D507);
        assert_eq!(rng.next_u64(), 0x5C0F_DF91_EC9A_7BFC);
    }

    #[test]
    fn golden_streams_are_stable() {
        // Workspace-pinned golden values: seeds 42 and 0x5eed are the ones
        // the simulations actually use. A change here silently reshuffles
        // every trace, DES run, and randomized test in the workspace.
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        assert_eq!(rng.next_u64(), 0xD076_4D4F_4476_689F);
        assert_eq!(rng.next_u64(), 0x519E_4174_576F_3791);
        assert_eq!(rng.next_u64(), 0xFBE0_7CFB_0C24_ED8C);
        let mut rng = Xoshiro256pp::seed_from_u64(0x5eed);
        assert_eq!(rng.next_u64(), 0x8EB2_871B_24AE_0C00);
        assert_eq!(rng.next_u64(), 0xFDD2_C14D_7560_F757);
    }

    #[test]
    fn golden_f64_stream_is_stable() {
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        assert_eq!(rng.random::<f64>(), 0.8143051451229099);
        assert_eq!(rng.random::<f64>(), 0.3188210400616611);
        assert_eq!(rng.random::<f64>(), 0.9838941681774888);
        assert_eq!(rng.random::<f64>(), 0.7011355981347556);
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let a: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn f64_draws_live_in_unit_interval() {
        let mut r = Xoshiro256pp::seed_from_u64(99);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut r = Xoshiro256pp::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = Xoshiro256pp::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.random_i64_in(-3, 5);
            assert!((-3..=5).contains(&v));
            let u = r.random_below(7);
            assert!(u < 7);
            let x = r.random_f64_in(2.5, 3.5);
            assert!((2.5..3.5).contains(&x));
        }
    }

    #[test]
    fn jump_produces_disjoint_prefix() {
        let mut a = Xoshiro256pp::seed_from_u64(42);
        let mut b = a.clone();
        b.jump();
        let pa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let pb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(pa, pb);
    }

    #[test]
    #[should_panic(expected = "all zero")]
    fn zero_state_rejected() {
        Xoshiro256pp::from_state([0; 4]);
    }

    #[test]
    fn seed_stream_matches_sequential_splitmix() {
        // The random-access identity: seed(i) is the (i+1)-th output of
        // the root SplitMix64 stream, for every root tested.
        for root in [0u64, 42, 0x5eed, u64::MAX] {
            let stream = SeedStream::new(root);
            let mut sm = SplitMix64::seed_from_u64(root);
            for i in 0..64 {
                assert_eq!(stream.seed(i), sm.next_u64(), "root={root:#x} i={i}");
            }
        }
    }

    #[test]
    fn seed_stream_is_order_free() {
        let stream = SeedStream::new(7);
        let forward: Vec<u64> = (0..16).map(|i| stream.seed(i)).collect();
        let backward: Vec<u64> = (0..16).rev().map(|i| stream.seed(i)).collect();
        let mut backward = backward;
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    fn seed_stream_seeds_are_distinct() {
        let stream = SeedStream::new(42);
        let mut seen: Vec<u64> = (0..1000).map(|i| stream.seed(i)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 1000, "collision within the first 1000 seeds");
    }
}
