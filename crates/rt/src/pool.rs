//! Scoped worker-pool execution: the workspace's replacement for rayon.
//!
//! Everything is built on `std::thread::scope`, so borrowed data flows
//! into workers without `Arc` gymnastics and no thread outlives its
//! call. The two entry points cover the workspace's fan-out patterns:
//!
//! * [`par_map`] — map a function over a slice in parallel, results in
//!   input order (what `par_iter().map().collect::<Vec<_>>()` did).
//! * [`try_par_map`] — the fallible variant; returns the error of the
//!   *earliest* failing item, so outcomes are deterministic even though
//!   scheduling is not (what `collect::<Result<Vec<_>, _>>()` did).
//!
//! Work is distributed by an atomic cursor over the input slice, which
//! balances uneven item costs (month simulations vary severalfold) at
//! the price of one fetch-add per item — noise next to the multi-ms
//! items this pool runs.
//!
//! [`run_workers`] is the low-level escape hatch for custom topologies;
//! the MILP solver's shared-frontier branch-and-bound runs on it.
//!
//! ## Telemetry
//!
//! When `billcap-obs` tracing is enabled, the parallel map paths set
//! three advisory gauges (no-ops otherwise, behind one relaxed atomic
//! load): `rt.pool.workers` (pool size), `rt.pool.queue_depth` (items
//! still unclaimed at each claim), and `rt.pool.worker_items` (items
//! each worker processed — the gauge's min/max spread is the
//! utilization imbalance). Gauges are wall-clock-free but reflect
//! scheduling, so they are advisory, never part of the deterministic
//! work-counter set.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Default worker count: `BILLCAP_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism (1 if unknown).
pub fn num_threads() -> usize {
    // detlint-allow(D004): BILLCAP_THREADS sizes the pool; results are thread-count-invariant by contract
    if let Ok(raw) = std::env::var("BILLCAP_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Spawns `threads` scoped workers running `body(worker_index)` and
/// joins them all. Panics in workers propagate to the caller.
pub fn run_workers<F>(threads: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    let threads = threads.max(1);
    if threads == 1 {
        body(0);
        return;
    }
    std::thread::scope(|scope| {
        let body = &body;
        // Join each worker explicitly rather than relying on the scope's
        // implicit wait: the implicit wait is signalled when the worker
        // closure returns, *before* the OS thread has torn down its
        // thread-locals, while an explicit join targets the native
        // thread and therefore also waits for TLS destructors. Callers
        // (notably billcap-obs) rely on destructors having run — e.g.
        // per-thread metric buffers that flush on thread exit — by the
        // time this function returns.
        let handles: Vec<_> = (0..threads).map(|w| scope.spawn(move || body(w))).collect();
        for h in handles {
            if let Err(panic) = h.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });
}

/// Maps `f` over `items` on `threads` workers; results are returned in
/// input order. `threads == 1` degenerates to a plain sequential map
/// (no threads spawned), so callers can keep one code path.
pub fn par_map_threads<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    match try_par_map_threads(items, threads, |item| Ok::<U, Never>(f(item))) {
        Ok(v) => v,
        Err(never) => match never {},
    }
}

/// [`par_map_threads`] with the default worker count.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_threads(items, num_threads(), f)
}

/// Uninhabited error type for the infallible wrappers.
enum Never {}

/// Fallible parallel map. On success returns results in input order; on
/// failure returns the error produced by the failing item with the
/// smallest index (so the outcome matches what a sequential loop that
/// stops at the first error would report). Remaining items may be
/// skipped once a failure is observed.
pub fn try_par_map_threads<T, U, E, F>(items: &[T], threads: usize, f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(&T) -> Result<U, E> + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    // Index of the earliest error seen so far; workers stop claiming
    // items past it. usize::MAX = no error.
    let first_error_idx = AtomicUsize::new(usize::MAX);
    let error: Mutex<Option<(usize, E)>> = Mutex::new(None);
    let results: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(items.len()));

    billcap_obs::gauge("rt.pool.workers", threads as f64);
    run_workers(threads, |_| {
        let mut local: Vec<(usize, U)> = Vec::new();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= items.len() || i > first_error_idx.load(Ordering::Acquire) {
                break;
            }
            billcap_obs::gauge("rt.pool.queue_depth", (items.len() - i - 1) as f64);
            match f(&items[i]) {
                Ok(v) => local.push((i, v)),
                Err(e) => {
                    first_error_idx.fetch_min(i, Ordering::AcqRel);
                    let mut slot = error.lock().unwrap_or_else(PoisonError::into_inner);
                    if slot.as_ref().map(|(j, _)| i < *j).unwrap_or(true) {
                        *slot = Some((i, e));
                    }
                }
            }
        }
        billcap_obs::gauge("rt.pool.worker_items", local.len() as f64);
        results
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .extend(local);
    });

    if let Some((_, e)) = error.into_inner().unwrap_or_else(PoisonError::into_inner) {
        return Err(e);
    }
    let mut collected = results.into_inner().unwrap_or_else(PoisonError::into_inner);
    collected.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(collected.len(), items.len());
    Ok(collected.into_iter().map(|(_, v)| v).collect())
}

/// [`try_par_map_threads`] with the default worker count.
pub fn try_par_map<T, U, E, F>(items: &[T], f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(&T) -> Result<U, E> + Sync,
{
    try_par_map_threads(items, num_threads(), f)
}

/// [`par_map_threads`] with reusable per-worker state: each worker calls
/// `init()` once and threads the resulting scratch value through every
/// item it claims. The per-item closure therefore takes `&mut S`, which
/// plain [`par_map_threads`] cannot offer (its closure is `Fn`).
///
/// Results are in input order, so as long as each item's output depends
/// only on the item (the scratch being a pure accelerator — buffers,
/// warm models — whose contents never leak into results), the returned
/// vector is identical at every thread count.
pub fn par_map_init_threads<T, U, S, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> U + Sync,
{
    match try_par_map_init_threads(items, threads, init, |s, item| Ok::<U, Never>(f(s, item))) {
        Ok(v) => v,
        Err(never) => match never {},
    }
}

/// Fallible [`par_map_init_threads`]. Error selection matches
/// [`try_par_map_threads`]: the failing item with the smallest index
/// wins, so the outcome is what a sequential loop stopping at the first
/// error would report.
pub fn try_par_map_init_threads<T, U, S, E, I, F>(
    items: &[T],
    threads: usize,
    init: I,
    f: F,
) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> Result<U, E> + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let first_error_idx = AtomicUsize::new(usize::MAX);
    let error: Mutex<Option<(usize, E)>> = Mutex::new(None);
    let results: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(items.len()));

    billcap_obs::gauge("rt.pool.workers", threads as f64);
    run_workers(threads, |_| {
        let mut state = init();
        let mut local: Vec<(usize, U)> = Vec::new();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= items.len() || i > first_error_idx.load(Ordering::Acquire) {
                break;
            }
            billcap_obs::gauge("rt.pool.queue_depth", (items.len() - i - 1) as f64);
            match f(&mut state, &items[i]) {
                Ok(v) => local.push((i, v)),
                Err(e) => {
                    first_error_idx.fetch_min(i, Ordering::AcqRel);
                    let mut slot = error.lock().unwrap_or_else(PoisonError::into_inner);
                    if slot.as_ref().map(|(j, _)| i < *j).unwrap_or(true) {
                        *slot = Some((i, e));
                    }
                }
            }
        }
        billcap_obs::gauge("rt.pool.worker_items", local.len() as f64);
        results
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .extend(local);
    });

    if let Some((_, e)) = error.into_inner().unwrap_or_else(PoisonError::into_inner) {
        return Err(e);
    }
    let mut collected = results.into_inner().unwrap_or_else(PoisonError::into_inner);
    collected.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(collected.len(), items.len());
    Ok(collected.into_iter().map(|(_, v)| v).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = par_map_threads(&items, 8, |&x| x * x);
        let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn single_thread_matches_parallel() {
        let items: Vec<i64> = (-50..50).collect();
        let seq = par_map_threads(&items, 1, |&x| x * 3 - 1);
        let par = par_map_threads(&items, 7, |&x| x * 3 - 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = Vec::new();
        assert!(par_map_threads(&items, 4, |&x| x).is_empty());
    }

    #[test]
    fn error_is_earliest_failing_index() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 8] {
            let r: Result<Vec<usize>, usize> =
                try_par_map_threads(
                    &items,
                    threads,
                    |&x| {
                        if x % 7 == 3 {
                            Err(x)
                        } else {
                            Ok(x)
                        }
                    },
                );
            assert_eq!(r.unwrap_err(), 3, "threads={threads}");
        }
    }

    #[test]
    fn success_collects_everything() {
        let items: Vec<usize> = (0..64).collect();
        let r: Result<Vec<usize>, ()> = try_par_map_threads(&items, 5, |&x| Ok(x + 1));
        assert_eq!(r.unwrap(), (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn run_workers_covers_all_ids() {
        let seen = Mutex::new(Vec::new());
        run_workers(6, |w| seen.lock().unwrap().push(w));
        let mut ids = seen.into_inner().unwrap();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn init_map_reuses_state_and_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 4, 9] {
            // The scratch counts items seen by this worker; results must
            // not depend on it, and the order must match the input.
            let out = par_map_init_threads(
                &items,
                threads,
                || 0u64,
                |seen, &x| {
                    *seen += 1;
                    assert!(*seen >= 1);
                    x * 2
                },
            );
            let expect: Vec<u64> = items.iter().map(|&x| x * 2).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn init_map_error_is_earliest_failing_index() {
        let items: Vec<usize> = (0..80).collect();
        for threads in [1, 3, 8] {
            let r: Result<Vec<usize>, usize> = try_par_map_init_threads(
                &items,
                threads,
                || (),
                |(), &x| if x % 11 == 5 { Err(x) } else { Ok(x) },
            );
            assert_eq!(r.unwrap_err(), 5, "threads={threads}");
        }
    }

    #[test]
    fn init_runs_once_per_worker() {
        use std::sync::atomic::AtomicUsize;
        let items: Vec<u32> = (0..64).collect();
        let inits = AtomicUsize::new(0);
        let _ = par_map_init_threads(
            &items,
            4,
            || inits.fetch_add(1, Ordering::Relaxed),
            |_, &x| x,
        );
        assert!(inits.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn uneven_work_balances() {
        // Items with wildly different costs still all complete.
        let items: Vec<u64> = (0..40).collect();
        let out = par_map_threads(&items, 4, |&x| {
            let spin = if x % 13 == 0 { 20_000 } else { 10 };
            (0..spin).fold(x, |acc, i| acc.wrapping_mul(31).wrapping_add(i))
        });
        assert_eq!(out.len(), 40);
    }
}
