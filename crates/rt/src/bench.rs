//! Minimal benchmarking harness (the workspace's criterion replacement).
//!
//! Each bench target is a plain binary with `harness = false` that
//! builds a [`Harness`], registers closures with [`Harness::bench`],
//! and calls [`Harness::finish`]. The harness warms each closure up,
//! picks an iteration count targeting a fixed per-sample wall time,
//! collects a batch of samples, and reports min / median / mean — the
//! median being the headline number, since it is robust to scheduler
//! noise on shared machines.
//!
//! Invocation matches `cargo bench` conventions: any non-flag argument
//! is a substring filter on bench names; flags that cargo forwards
//! (`--bench`, `--exact`, …) are ignored. `BILLCAP_BENCH_FAST=1`
//! shrinks warm-up and sample counts so a smoke run stays fast in CI.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Tunable measurement parameters.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Wall time each sample should take; the iteration count per
    /// sample is derived from a calibration pass.
    pub sample_time: Duration,
    /// Samples collected per benchmark.
    pub samples: usize,
    /// Warm-up time before calibration.
    pub warmup: Duration,
}

impl Default for BenchConfig {
    fn default() -> Self {
        // detlint-allow(D004): BILLCAP_BENCH_FAST shortens harness budgets; not decision state
        if std::env::var("BILLCAP_BENCH_FAST")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            Self {
                sample_time: Duration::from_millis(10),
                samples: 5,
                warmup: Duration::from_millis(20),
            }
        } else {
            Self {
                sample_time: Duration::from_millis(50),
                samples: 15,
                warmup: Duration::from_millis(200),
            }
        }
    }
}

/// One benchmark's aggregate timing, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub name: String,
    pub median_ns: f64,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
    /// Iterations per sample used for the measurement.
    pub iters_per_sample: u64,
    pub samples: usize,
}

impl BenchResult {
    /// Human formatting: picks ns/µs/ms/s to keep 3-4 significant digits.
    fn fmt_ns(ns: f64) -> String {
        if ns < 1e3 {
            format!("{ns:.1} ns")
        } else if ns < 1e6 {
            format!("{:.2} µs", ns / 1e3)
        } else if ns < 1e9 {
            format!("{:.2} ms", ns / 1e6)
        } else {
            format!("{:.3} s", ns / 1e9)
        }
    }
}

/// Registers and runs benchmarks, printing a table at the end.
pub struct Harness {
    config: BenchConfig,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Harness {
    /// Builds a harness from `std::env::args`: the first argument that
    /// does not start with `-` is a substring filter on bench names.
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Self {
            config: BenchConfig::default(),
            filter,
            results: Vec::new(),
        }
    }

    /// Harness with explicit measurement parameters (tests use this).
    pub fn with_config(config: BenchConfig) -> Self {
        Self {
            config,
            filter: None,
            results: Vec::new(),
        }
    }

    /// True when `name` passes the command-line filter.
    pub fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Measures `f`, printing one progress line. The closure's return
    /// value is passed through [`black_box`] so the computation cannot
    /// be optimized away.
    pub fn bench<R, F: FnMut() -> R>(&mut self, name: &str, mut f: F) {
        if !self.selected(name) {
            return;
        }
        // Warm-up: run until the warm-up budget elapses (at least once).
        // detlint-allow(D003): benchmark harness measures wall time by design
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut one_iter_ns = loop {
            // detlint-allow(D003): benchmark harness measures wall time by design
            let t = Instant::now();
            black_box(f());
            let ns = t.elapsed().as_nanos() as f64;
            warm_iters += 1;
            if warm_start.elapsed() >= self.config.warmup || warm_iters >= 1_000_000 {
                break ns.max(1.0);
            }
        };
        // Calibration: average over the whole warm-up when possible.
        if warm_iters > 1 {
            one_iter_ns = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        }
        let iters = ((self.config.sample_time.as_nanos() as f64 / one_iter_ns).ceil() as u64)
            .clamp(1, 100_000_000);

        let mut per_iter_ns: Vec<f64> = (0..self.config.samples.max(1))
            .map(|_| {
                // detlint-allow(D003): benchmark harness measures wall time by design
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter_ns.sort_by(f64::total_cmp);

        let n = per_iter_ns.len();
        let median_ns = if n % 2 == 1 {
            per_iter_ns[n / 2]
        } else {
            0.5 * (per_iter_ns[n / 2 - 1] + per_iter_ns[n / 2])
        };
        let result = BenchResult {
            name: name.to_string(),
            median_ns,
            // detlint-allow(D006): sequential fixed-order mean over timing samples; reporting only
            mean_ns: per_iter_ns.iter().sum::<f64>() / n as f64,
            min_ns: per_iter_ns[0],
            max_ns: per_iter_ns[n - 1],
            iters_per_sample: iters,
            samples: n,
        };
        println!(
            "bench {:<44} median {:>12}  (min {}, mean {}, {} x {} iters)",
            result.name,
            BenchResult::fmt_ns(result.median_ns),
            BenchResult::fmt_ns(result.min_ns),
            BenchResult::fmt_ns(result.mean_ns),
            result.samples,
            result.iters_per_sample,
        );
        self.results.push(result);
    }

    /// Results measured so far (for programmatic consumers / tests).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the summary table and consumes the harness.
    pub fn finish(self) {
        if self.results.is_empty() {
            println!("no benchmarks matched the filter");
            return;
        }
        println!("\n{:<46} {:>14} {:>14}", "benchmark", "median", "min");
        for r in &self.results {
            println!(
                "{:<46} {:>14} {:>14}",
                r.name,
                BenchResult::fmt_ns(r.median_ns),
                BenchResult::fmt_ns(r.min_ns),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> BenchConfig {
        BenchConfig {
            sample_time: Duration::from_micros(200),
            samples: 3,
            warmup: Duration::from_micros(100),
        }
    }

    #[test]
    fn measures_something_positive() {
        let mut h = Harness::with_config(fast_config());
        h.bench("sum_1000", || (0..1000u64).sum::<u64>());
        let r = &h.results()[0];
        assert!(r.median_ns > 0.0);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.median_ns <= r.max_ns);
        assert_eq!(r.samples, 3);
    }

    #[test]
    fn slower_work_measures_slower() {
        let mut h = Harness::with_config(fast_config());
        h.bench("small", || (0..100u64).product::<u64>());
        h.bench("large", || {
            (0..50_000u64).fold(1u64, |a, b| a.wrapping_mul(b | 1))
        });
        let small = h.results()[0].median_ns;
        let large = h.results()[1].median_ns;
        assert!(large > small, "large {large} vs small {small}");
    }

    #[test]
    fn filter_selects_by_substring() {
        let h = Harness {
            config: fast_config(),
            filter: Some("solver".into()),
            results: Vec::new(),
        };
        assert!(h.selected("solver_scalability/8"));
        assert!(!h.selected("figures/fig3"));
    }
}
