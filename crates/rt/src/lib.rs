//! # billcap-rt
//!
//! The workspace runtime: deterministic random number generation, scoped
//! worker-pool execution, and a minimal benchmarking harness — all in
//! plain `std`, so the entire `billcap` workspace builds and tests with
//! **zero external dependencies** (hermetic, offline, reproducible).
//!
//! The crate exists because the reproduction's workloads are
//! scenario-sweep shaped: the bill capper solves two MILPs every hour,
//! and the evaluation re-runs whole months of hourly instances across
//! policies, budgets, and seeds. That demands (a) bit-for-bit
//! reproducible randomness so every figure is replayable from a seed,
//! and (b) cheap data-parallel fan-out for the sweeps and the solver's
//! branch-and-bound search.
//!
//! * [`rng`] — SplitMix64-seeded xoshiro256++ behind a small
//!   `rand`-style trait ([`Rng`], `random::<f64>()`, `seed_from_u64`).
//! * [`pool`] — `std::thread::scope` worker pools: [`par_map`],
//!   [`try_par_map`], and the raw [`run_workers`].
//! * [`bench`](mod@bench) — a self-contained benchmark harness for
//!   `harness = false` bench targets.

#![forbid(unsafe_code)]

pub mod bench;
pub mod pool;
pub mod rng;

pub use bench::{BenchConfig, BenchResult, Harness};
pub use pool::{
    num_threads, par_map, par_map_init_threads, par_map_threads, run_workers, try_par_map,
    try_par_map_init_threads, try_par_map_threads,
};
pub use rng::{FromRng, Rng, SeedStream, SplitMix64, Xoshiro256pp};
