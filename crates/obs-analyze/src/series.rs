//! Time-series analysis of a streamed metrics log.
//!
//! The decision server's telemetry stream is a JSONL file: one
//! [`MetricsDoc`] per rotated window, tick-ordered. [`MetricsSeries`]
//! parses that log back into per-window series — cumulative counters,
//! per-window counter deltas, gauges, and latency quantile summaries —
//! and [`SloSpec`] evaluates a service-level objective against a
//! latency series with an error-budget ("burn") semantics:
//!
//! ```text
//! <series>.<quantile><=<threshold_us> [over <N>] [allow <frac>]
//! ```
//!
//! e.g. `request_us.p99<=5000 over 12 allow 0.1` — over the last 12
//! windows, the p99 of `request_us` must stay within 5000µs in at
//! least 90% of the windows that carried data. Windows with no
//! observations are skipped, never counted as violations.

use billcap_obs::json::Value;
use billcap_obs::{MetricsDoc, QuantileSummary};

/// A tick-ordered sequence of metrics documents, one per window.
#[derive(Debug, Clone, Default)]
pub struct MetricsSeries {
    /// The parsed documents, in file order.
    pub docs: Vec<MetricsDoc>,
}

impl MetricsSeries {
    /// Parses a JSONL metrics log (one [`MetricsDoc`] per non-blank
    /// line). Errors carry the 1-based line number.
    pub fn parse_jsonl(text: &str) -> Result<Self, String> {
        let mut docs = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let doc = MetricsDoc::parse_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            docs.push(doc);
        }
        Ok(Self { docs })
    }

    /// Number of windows in the series.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the series holds no windows.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Cumulative values of a counter, one entry per window (0 where
    /// the window does not carry the counter).
    pub fn counter(&self, name: &str) -> Vec<u64> {
        self.docs
            .iter()
            .map(|d| d.counters.get(name).copied().unwrap_or(0))
            .collect()
    }

    /// Per-window increments of a counter (saturating, so a counter
    /// reset between windows reads as a zero delta rather than a
    /// wrap-around).
    pub fn counter_deltas(&self, name: &str) -> Vec<u64> {
        let cum = self.counter(name);
        let mut prev = 0u64;
        cum.iter()
            .map(|&c| {
                let d = c.saturating_sub(prev);
                prev = c;
                d
            })
            .collect()
    }

    /// Gauge values, one entry per window (NaN where absent, so gaps
    /// stay visible instead of reading as zero).
    pub fn gauge(&self, name: &str) -> Vec<f64> {
        self.docs
            .iter()
            .map(|d| d.gauges.get(name).copied().unwrap_or(f64::NAN))
            .collect()
    }

    /// Latency summaries for a series, one entry per window that
    /// carries it, paired with the window index.
    pub fn latency(&self, name: &str) -> Vec<(usize, QuantileSummary)> {
        self.docs
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.latency.get(name).map(|q| (i, *q)))
            .collect()
    }

    /// Names of every latency series appearing anywhere in the log.
    pub fn latency_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .docs
            .iter()
            .flat_map(|d| d.latency.keys().cloned())
            .collect();
        names.sort();
        names.dedup();
        names
    }
}

/// A quantile (or summary statistic) of a latency series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantile {
    /// Median.
    P50,
    /// 95th percentile.
    P95,
    /// 99th percentile.
    P99,
    /// Largest observation.
    Max,
    /// Arithmetic mean.
    Mean,
}

impl Quantile {
    /// Parses `p50` / `p95` / `p99` / `max` / `mean`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "p50" => Ok(Self::P50),
            "p95" => Ok(Self::P95),
            "p99" => Ok(Self::P99),
            "max" => Ok(Self::Max),
            "mean" => Ok(Self::Mean),
            other => Err(format!(
                "unknown quantile '{other}' (expected p50, p95, p99, max, or mean)"
            )),
        }
    }

    /// The statistic's name as it appears in a spec.
    pub fn name(self) -> &'static str {
        match self {
            Self::P50 => "p50",
            Self::P95 => "p95",
            Self::P99 => "p99",
            Self::Max => "max",
            Self::Mean => "mean",
        }
    }

    /// Extracts this statistic from a summary.
    pub fn of(self, q: &QuantileSummary) -> f64 {
        match self {
            Self::P50 => q.p50,
            Self::P95 => q.p95,
            Self::P99 => q.p99,
            Self::Max => q.max,
            Self::Mean => q.mean,
        }
    }
}

/// A service-level objective over a latency series.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Latency series name (e.g. `request_us`).
    pub series: String,
    /// Which statistic of each window to test.
    pub quantile: Quantile,
    /// Upper bound, in the series' native unit (microseconds for the
    /// server's `*_us` series).
    pub threshold: f64,
    /// Evaluate only the last `N` windows (`None` = the whole log).
    pub over: Option<usize>,
    /// Fraction of data-carrying windows allowed to violate before the
    /// verdict flips (the error budget). Default 0.
    pub allow: f64,
}

impl SloSpec {
    /// Parses `<series>.<quantile><=<threshold>[ over <N>][ allow <frac>]`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut tokens = spec.split_whitespace();
        let head = tokens.next().ok_or_else(|| "empty SLO spec".to_string())?;
        let (target, threshold) = head
            .split_once("<=")
            .ok_or_else(|| format!("'{head}': expected <series>.<quantile><=<threshold>"))?;
        let (series, quantile) = target
            .rsplit_once('.')
            .ok_or_else(|| format!("'{target}': expected <series>.<quantile>"))?;
        if series.is_empty() {
            return Err(format!("'{target}': empty series name"));
        }
        let quantile = Quantile::parse(quantile)?;
        let threshold: f64 = threshold
            .parse()
            .map_err(|_| format!("'{threshold}' is not a number"))?;
        if !threshold.is_finite() || threshold < 0.0 {
            return Err(format!("threshold {threshold} must be finite and >= 0"));
        }

        let mut over = None;
        let mut allow = 0.0f64;
        while let Some(word) = tokens.next() {
            let arg = tokens
                .next()
                .ok_or_else(|| format!("'{word}' needs a value"))?;
            match word {
                "over" => {
                    let n: usize = arg
                        .parse()
                        .map_err(|_| format!("over '{arg}' is not an integer"))?;
                    if n == 0 {
                        return Err("over 0 evaluates nothing".into());
                    }
                    over = Some(n);
                }
                "allow" => {
                    let f: f64 = arg
                        .parse()
                        .map_err(|_| format!("allow '{arg}' is not a number"))?;
                    if !(0.0..=1.0).contains(&f) {
                        return Err(format!("allow {f} must be within [0, 1]"));
                    }
                    allow = f;
                }
                other => return Err(format!("unknown SLO clause '{other}'")),
            }
        }
        Ok(Self {
            series: series.to_string(),
            quantile,
            threshold,
            over,
            allow,
        })
    }

    /// The canonical spec string this was parsed from.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{}.{}<={}",
            self.series,
            self.quantile.name(),
            self.threshold
        );
        if let Some(n) = self.over {
            s.push_str(&format!(" over {n}"));
        }
        if self.allow > 0.0 {
            s.push_str(&format!(" allow {}", self.allow));
        }
        s
    }

    /// Evaluates the objective against a series.
    pub fn evaluate(&self, series: &MetricsSeries) -> SloReport {
        let start = self
            .over
            .map(|n| series.docs.len().saturating_sub(n))
            .unwrap_or(0);
        let mut windows = 0usize;
        let mut violations = 0usize;
        let mut worst = f64::NAN;
        for doc in &series.docs[start..] {
            let Some(q) = doc.latency.get(&self.series) else {
                continue;
            };
            if q.count == 0 {
                continue; // no observations: not evidence either way
            }
            let v = self.quantile.of(q);
            windows += 1;
            if worst.is_nan() || v > worst {
                worst = v;
            }
            if v > self.threshold {
                violations += 1;
            }
        }
        let burn = if windows == 0 {
            0.0
        } else {
            violations as f64 / windows as f64
        };
        SloReport {
            spec: self.render(),
            windows,
            violations,
            burn,
            worst,
            ok: burn <= self.allow,
        }
    }
}

/// The outcome of evaluating an [`SloSpec`] against a series.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// The canonical spec string evaluated.
    pub spec: String,
    /// Windows that carried observations and were tested.
    pub windows: usize,
    /// Windows whose statistic exceeded the threshold.
    pub violations: usize,
    /// `violations / windows` (0 when no window carried data).
    pub burn: f64,
    /// Worst observed value of the statistic (NaN when no data).
    pub worst: f64,
    /// Whether the burn stayed within the allowed fraction.
    pub ok: bool,
}

impl SloReport {
    /// Machine-readable verdict document.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("slo".into(), Value::Str(self.spec.clone())),
            ("windows".into(), Value::Int(self.windows as i64)),
            ("violations".into(), Value::Int(self.violations as i64)),
            ("burn".into(), Value::Float(self.burn)),
            (
                "worst".into(),
                if self.worst.is_nan() {
                    Value::Null
                } else {
                    Value::Float(self.worst)
                },
            ),
            (
                "verdict".into(),
                Value::Str(if self.ok { "ok" } else { "violated" }.into()),
            ),
        ])
    }

    /// Renders the verdict as one compact JSON line.
    pub fn render_json(&self) -> String {
        self.to_value().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use billcap_obs::metrics::HistogramSnapshot;
    use billcap_obs::WindowedHistogram;

    /// A doc whose `request_us` summary is built from real histogram
    /// observations around `center_us`.
    fn doc(tick: u64, requests: u64, center_us: f64) -> MetricsDoc {
        let mut d = MetricsDoc::new(tick, tick * 1_000_000);
        d.counters.insert("serve.requests".into(), requests);
        d.gauges.insert("serve.queue_depth".into(), 2.0);
        let mut h = WindowedHistogram::new(&[100.0, 1_000.0, 10_000.0, 100_000.0], 1);
        for i in 0..20 {
            h.record(center_us + i as f64);
        }
        d.latency.insert(
            "request_us".into(),
            QuantileSummary::from_histogram(&h.merged()),
        );
        d
    }

    fn log(centers: &[f64]) -> MetricsSeries {
        let text: String = centers
            .iter()
            .enumerate()
            .map(|(i, &c)| doc(i as u64, (i as u64 + 1) * 16, c).render_json() + "\n")
            .collect();
        MetricsSeries::parse_jsonl(&text).unwrap()
    }

    #[test]
    fn jsonl_round_trips_counters_gauges_and_latency() {
        let s = log(&[200.0, 300.0, 400.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.counter("serve.requests"), vec![16, 32, 48]);
        assert_eq!(s.counter_deltas("serve.requests"), vec![16, 16, 16]);
        assert!(s.gauge("serve.queue_depth").iter().all(|&g| g == 2.0));
        assert!(s.gauge("missing").iter().all(|g| g.is_nan()));
        assert_eq!(s.latency("request_us").len(), 3);
        assert_eq!(s.latency_names(), vec!["request_us".to_string()]);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let mut text = doc(0, 16, 200.0).render_json();
        text.push('\n');
        text.push_str("{not json");
        let err = MetricsSeries::parse_jsonl(&text).unwrap_err();
        assert!(err.starts_with("line 2:"), "got: {err}");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = format!("\n{}\n\n", doc(0, 16, 200.0).render_json());
        assert_eq!(MetricsSeries::parse_jsonl(&text).unwrap().len(), 1);
    }

    #[test]
    fn spec_grammar_round_trips() {
        let spec = SloSpec::parse("request_us.p99<=5000 over 12 allow 0.1").unwrap();
        assert_eq!(spec.series, "request_us");
        assert_eq!(spec.quantile, Quantile::P99);
        assert_eq!(spec.threshold, 5000.0);
        assert_eq!(spec.over, Some(12));
        assert_eq!(spec.allow, 0.1);
        assert_eq!(spec.render(), "request_us.p99<=5000 over 12 allow 0.1");

        let bare = SloSpec::parse("solve_us.max<=250.5").unwrap();
        assert_eq!(bare.over, None);
        assert_eq!(bare.allow, 0.0);
        assert_eq!(bare.render(), "solve_us.max<=250.5");
    }

    #[test]
    fn spec_grammar_rejects_junk() {
        for bad in [
            "",
            "request_us.p99",
            "request_us<=5000",
            ".p99<=5000",
            "request_us.p42<=5000",
            "request_us.p99<=fast",
            "request_us.p99<=-1",
            "request_us.p99<=inf",
            "request_us.p99<=5000 over",
            "request_us.p99<=5000 over 0",
            "request_us.p99<=5000 over x",
            "request_us.p99<=5000 allow 1.5",
            "request_us.p99<=5000 sideways 3",
        ] {
            assert!(SloSpec::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn clean_baseline_passes() {
        let s = log(&[200.0, 250.0, 300.0, 280.0]);
        let report = SloSpec::parse("request_us.p99<=100000")
            .unwrap()
            .evaluate(&s);
        assert!(report.ok);
        assert_eq!(report.windows, 4);
        assert_eq!(report.violations, 0);
        assert_eq!(report.burn, 0.0);
        let json = report.render_json();
        assert!(json.contains("\"verdict\":\"ok\""), "got: {json}");
    }

    #[test]
    fn injected_violation_is_flagged() {
        // One window's latency jumps past the threshold bucket.
        let s = log(&[200.0, 200.0, 50_000.0, 200.0]);
        let report = SloSpec::parse("request_us.p99<=10000")
            .unwrap()
            .evaluate(&s);
        assert!(!report.ok);
        assert_eq!(report.windows, 4);
        assert_eq!(report.violations, 1);
        assert!(report.worst > 10_000.0);
        assert!(report.render_json().contains("\"verdict\":\"violated\""));
    }

    #[test]
    fn allow_fraction_tolerates_budgeted_burn() {
        let s = log(&[200.0, 200.0, 50_000.0, 200.0]);
        let report = SloSpec::parse("request_us.p99<=10000 allow 0.25")
            .unwrap()
            .evaluate(&s);
        assert_eq!(report.violations, 1);
        assert!(report.ok, "1/4 burn is within the 0.25 budget");
    }

    #[test]
    fn over_restricts_to_the_tail() {
        // The violation is old history; the last two windows are clean.
        let s = log(&[50_000.0, 200.0, 200.0]);
        let tail = SloSpec::parse("request_us.p99<=10000 over 2")
            .unwrap()
            .evaluate(&s);
        assert!(tail.ok);
        assert_eq!(tail.windows, 2);
        let full = SloSpec::parse("request_us.p99<=10000")
            .unwrap()
            .evaluate(&s);
        assert!(!full.ok);
    }

    #[test]
    fn windows_without_observations_are_skipped() {
        let mut empty = MetricsDoc::new(0, 0);
        empty.latency.insert(
            "request_us".into(),
            QuantileSummary::from_histogram(&HistogramSnapshot::new(&[100.0])),
        );
        let text = format!(
            "{}\n{}\n",
            empty.render_json(),
            doc(1, 16, 200.0).render_json()
        );
        let s = MetricsSeries::parse_jsonl(&text).unwrap();
        let report = SloSpec::parse("request_us.p99<=10000")
            .unwrap()
            .evaluate(&s);
        assert_eq!(report.windows, 1, "the empty window must not count");
        assert!(report.ok);
    }

    #[test]
    fn missing_series_yields_zero_windows_and_passes() {
        let s = log(&[200.0]);
        let report = SloSpec::parse("absent_us.p50<=1").unwrap().evaluate(&s);
        assert_eq!(report.windows, 0);
        assert_eq!(report.burn, 0.0);
        assert!(report.ok);
        assert!(report.render_json().contains("\"worst\":null"));
    }
}
