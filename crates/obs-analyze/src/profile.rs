//! Span-tree reconstruction: from a flat [`TraceSnapshot`] to a
//! hierarchical profile with inclusive/self time, call counts, and
//! hot-path extraction.
//!
//! The recorder stores one [`SpanStats`](billcap_obs::SpanStats) per
//! `/`-joined path (`hour/step1/mip`). Because spans nest strictly per
//! thread, a path's total wall time is *inclusive* of everything
//! recorded under it; the profiler recovers the tree from the paths and
//! derives *self* time as inclusive time minus the children's inclusive
//! time.

use billcap_obs::TraceSnapshot;
use std::collections::BTreeMap;

/// One node of the reconstructed span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileNode {
    /// Full `/`-joined path; the empty string for the synthetic root.
    pub path: String,
    /// Last path segment (`"mip"` for `hour/step1/mip`).
    pub name: String,
    /// Parent node index; `None` only for the root.
    pub parent: Option<usize>,
    /// Child node indices, in path order.
    pub children: Vec<usize>,
    /// Completed spans at this path (0 for synthetic nodes the trace
    /// never recorded directly, including the root).
    pub count: u64,
    /// Total wall time at this path including everything beneath it.
    pub inclusive_ns: u64,
    /// Wall time at this path not attributed to any child.
    pub self_ns: u64,
    /// Shortest recorded span at this path (0 when `count == 0`).
    pub min_ns: u64,
    /// Longest recorded span at this path (0 when `count == 0`).
    pub max_ns: u64,
}

/// A hierarchical profile reconstructed from one trace snapshot.
///
/// Node 0 is a synthetic root whose inclusive time is the sum of the
/// top-level spans, so `profile.root().inclusive_ns` is the traced wall
/// time of the whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// All nodes; index 0 is the synthetic root.
    pub nodes: Vec<ProfileNode>,
    /// Counters copied from the snapshot (work aggregates such as
    /// `milp.bnb.nodes` belong with the profile they explain).
    pub counters: BTreeMap<String, u64>,
    /// Orphaned spans reported by the snapshot (non-zero means the
    /// trace, and therefore this profile, is incomplete).
    pub orphans: u64,
}

impl Profile {
    /// Reconstructs the span tree from a snapshot.
    pub fn from_snapshot(snap: &TraceSnapshot) -> Profile {
        let mut profile = Self::from_path_values(
            snap.spans
                .iter()
                .map(|(path, s)| (path.as_str(), s.total_ns)),
            true,
        );
        // Attach per-path call counts and min/max where recorded.
        for (path, s) in &snap.spans {
            if let Some(idx) = profile.index_of(path) {
                let node = &mut profile.nodes[idx];
                node.count = s.count;
                node.min_ns = s.min_ns;
                node.max_ns = s.max_ns;
            }
        }
        profile.counters = snap.counters.clone();
        profile.orphans = snap.orphans;
        profile
    }

    /// Builds a tree from `(path, ns)` pairs. When `inclusive` is true
    /// the values are inclusive times (snapshot `total_ns`); otherwise
    /// they are self times (collapsed-stack values) and inclusive times
    /// are derived bottom-up.
    pub(crate) fn from_path_values<'a, I>(pairs: I, inclusive: bool) -> Profile
    where
        I: IntoIterator<Item = (&'a str, u64)>,
    {
        let mut nodes = vec![ProfileNode {
            path: String::new(),
            name: String::new(),
            parent: None,
            children: Vec::new(),
            count: 0,
            inclusive_ns: 0,
            self_ns: 0,
            min_ns: 0,
            max_ns: 0,
        }];
        let mut index: BTreeMap<String, usize> = BTreeMap::new();
        index.insert(String::new(), 0);

        // BTreeMap iteration hands parents before children ("hour" sorts
        // before "hour/..."), but intermediate paths may be absent, so
        // ensure the whole ancestor chain exists for every path.
        let ensure = |nodes: &mut Vec<ProfileNode>,
                      index: &mut BTreeMap<String, usize>,
                      path: &str|
         -> usize {
            if let Some(&idx) = index.get(path) {
                return idx;
            }
            let mut parent = 0usize;
            let mut prefix = String::new();
            for seg in path.split('/') {
                if !prefix.is_empty() {
                    prefix.push('/');
                }
                prefix.push_str(seg);
                parent = match index.get(&prefix) {
                    Some(&idx) => idx,
                    None => {
                        let idx = nodes.len();
                        nodes.push(ProfileNode {
                            path: prefix.clone(),
                            name: seg.to_string(),
                            parent: Some(parent),
                            children: Vec::new(),
                            count: 0,
                            inclusive_ns: 0,
                            self_ns: 0,
                            min_ns: 0,
                            max_ns: 0,
                        });
                        nodes[parent].children.push(idx);
                        index.insert(prefix.clone(), idx);
                        idx
                    }
                };
            }
            parent
        };

        for (path, ns) in pairs {
            if path.is_empty() {
                continue;
            }
            let idx = ensure(&mut nodes, &mut index, path);
            if inclusive {
                nodes[idx].inclusive_ns = ns;
            } else {
                nodes[idx].self_ns = ns;
            }
        }

        let mut profile = Profile {
            nodes,
            counters: BTreeMap::new(),
            orphans: 0,
        };
        profile.finish(inclusive);
        profile
    }

    /// Bottom-up pass deriving the missing one of inclusive/self time.
    /// Children always have larger indices than synthetic ancestors is
    /// *not* guaranteed (a recorded parent precedes its children, but a
    /// synthetic ancestor is created on first descendant), so walk in
    /// post-order explicitly.
    fn finish(&mut self, inclusive: bool) {
        let order = self.post_order();
        for idx in order {
            let child_sum: u64 = self.nodes[idx]
                .children
                .iter()
                .map(|&c| self.nodes[c].inclusive_ns)
                .sum();
            if inclusive {
                // Synthetic nodes (count 0, never recorded) cover their
                // children; recorded nodes keep their measured time.
                if self.nodes[idx].inclusive_ns == 0 {
                    self.nodes[idx].inclusive_ns = child_sum;
                }
                self.nodes[idx].self_ns = self.nodes[idx].inclusive_ns.saturating_sub(child_sum);
            } else {
                self.nodes[idx].inclusive_ns = self.nodes[idx].self_ns + child_sum;
            }
        }
    }

    /// Node indices in post-order (children before parents).
    fn post_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![(0usize, false)];
        while let Some((idx, expanded)) = stack.pop() {
            if expanded {
                order.push(idx);
            } else {
                stack.push((idx, true));
                for &c in &self.nodes[idx].children {
                    stack.push((c, false));
                }
            }
        }
        order
    }

    /// The synthetic root node.
    pub fn root(&self) -> &ProfileNode {
        &self.nodes[0]
    }

    /// Index of the node at `path`, if the trace recorded it (or an
    /// ancestor chain created it).
    pub fn index_of(&self, path: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.path == path)
    }

    /// The node at `path`, if present.
    pub fn node(&self, path: &str) -> Option<&ProfileNode> {
        self.nodes.iter().find(|n| n.path == path)
    }

    /// The critical path: from the root, repeatedly descend into the
    /// child with the largest inclusive time (ties broken by path, so
    /// the result is deterministic). The root itself is not included.
    pub fn hot_path(&self) -> Vec<&ProfileNode> {
        let mut out = Vec::new();
        let mut idx = 0usize;
        while let Some(&next) = self.nodes[idx].children.iter().max_by(|&&a, &&b| {
            let (na, nb) = (&self.nodes[a], &self.nodes[b]);
            na.inclusive_ns
                .cmp(&nb.inclusive_ns)
                .then_with(|| nb.path.cmp(&na.path))
        }) {
            out.push(&self.nodes[next]);
            idx = next;
        }
        out
    }

    /// The `n` non-root nodes with the largest self time, descending
    /// (ties broken by path).
    pub fn top_self(&self, n: usize) -> Vec<&ProfileNode> {
        let mut all: Vec<&ProfileNode> = self.nodes[1..].iter().collect();
        all.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.path.cmp(&b.path)));
        all.truncate(n);
        all
    }

    /// Renders the profile as an indented tree table (path, count,
    /// inclusive, self, share of the root's inclusive time).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let root_ns = self.root().inclusive_ns.max(1) as f64;
        out.push_str(&format!(
            "{:<40} {:>8} {:>10} {:>10} {:>7}\n",
            "span", "count", "incl", "self", "incl%"
        ));
        self.render_node(0, 0, root_ns, &mut out);
        out
    }

    fn render_node(&self, idx: usize, depth: usize, root_ns: f64, out: &mut String) {
        if idx != 0 {
            let n = &self.nodes[idx];
            let label = format!("{}{}", "  ".repeat(depth - 1), n.name);
            out.push_str(&format!(
                "{:<40} {:>8} {:>10} {:>10} {:>6.1}%\n",
                label,
                n.count,
                crate::fmt_ns(n.inclusive_ns),
                crate::fmt_ns(n.self_ns),
                100.0 * n.inclusive_ns as f64 / root_ns,
            ));
        }
        let mut children = self.nodes[idx].children.clone();
        children.sort_by(|&a, &b| {
            self.nodes[b]
                .inclusive_ns
                .cmp(&self.nodes[a].inclusive_ns)
                .then_with(|| self.nodes[a].path.cmp(&self.nodes[b].path))
        });
        for c in children {
            self.render_node(c, depth + 1, root_ns, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use billcap_obs::Recorder;

    fn sleepless_snapshot() -> TraceSnapshot {
        // Build a deterministic snapshot by hand so timing doesn't
        // matter: hour(100) -> step1(60) -> mip(25), hour -> step2(30).
        let mut snap = TraceSnapshot::default();
        let stats = |count: u64, total: u64| billcap_obs::SpanStats {
            count,
            total_ns: total,
            min_ns: total / count.max(1),
            max_ns: total / count.max(1),
        };
        snap.spans.insert("hour".into(), stats(2, 100));
        snap.spans.insert("hour/step1".into(), stats(2, 60));
        snap.spans.insert("hour/step1/mip".into(), stats(3, 25));
        snap.spans.insert("hour/step2".into(), stats(2, 30));
        snap.counters.insert("milp.bnb.nodes".into(), 7);
        snap
    }

    #[test]
    fn inclusive_self_and_root_accounting() {
        let p = Profile::from_snapshot(&sleepless_snapshot());
        assert_eq!(p.root().inclusive_ns, 100);
        let hour = p.node("hour").unwrap();
        assert_eq!(hour.inclusive_ns, 100);
        assert_eq!(hour.self_ns, 100 - 60 - 30);
        assert_eq!(hour.count, 2);
        let step1 = p.node("hour/step1").unwrap();
        assert_eq!(step1.self_ns, 60 - 25);
        let mip = p.node("hour/step1/mip").unwrap();
        assert_eq!(mip.inclusive_ns, 25);
        assert_eq!(mip.self_ns, 25);
        assert_eq!(p.counters["milp.bnb.nodes"], 7);
    }

    #[test]
    fn hot_path_follows_max_inclusive_child() {
        let p = Profile::from_snapshot(&sleepless_snapshot());
        let hot: Vec<&str> = p.hot_path().iter().map(|n| n.path.as_str()).collect();
        assert_eq!(hot, ["hour", "hour/step1", "hour/step1/mip"]);
    }

    #[test]
    fn top_self_orders_by_self_time() {
        let p = Profile::from_snapshot(&sleepless_snapshot());
        let top: Vec<(&str, u64)> = p
            .top_self(2)
            .iter()
            .map(|n| (n.path.as_str(), n.self_ns))
            .collect();
        assert_eq!(top, [("hour/step1", 35), ("hour/step2", 30)]);
    }

    #[test]
    fn missing_intermediate_paths_are_synthesized() {
        let mut snap = TraceSnapshot::default();
        snap.spans.insert(
            "a/b/c".into(),
            billcap_obs::SpanStats {
                count: 1,
                total_ns: 10,
                min_ns: 10,
                max_ns: 10,
            },
        );
        let p = Profile::from_snapshot(&snap);
        let b = p.node("a/b").unwrap();
        assert_eq!(b.count, 0);
        assert_eq!(b.inclusive_ns, 10);
        assert_eq!(b.self_ns, 0);
        assert_eq!(p.root().inclusive_ns, 10);
    }

    #[test]
    fn real_recorder_trace_profiles() {
        let r = Recorder::new();
        for _ in 0..3 {
            let _h = r.span("hour");
            let _s = r.span("step1");
        }
        let p = Profile::from_snapshot(&r.snapshot());
        assert_eq!(p.node("hour").unwrap().count, 3);
        assert_eq!(p.node("hour/step1").unwrap().count, 3);
        // Children are nested inside parents, so inclusive ordering holds.
        assert!(p.node("hour").unwrap().inclusive_ns >= p.node("hour/step1").unwrap().inclusive_ns);
        assert_eq!(p.root().inclusive_ns, p.node("hour").unwrap().inclusive_ns);
        let table = p.to_table();
        assert!(table.contains("hour"));
        assert!(table.contains("step1"));
    }
}
