//! `perf-gate` — compare a current `BENCH_*.json` performance
//! trajectory against the committed baseline and fail on regressions.
//!
//! ```text
//! perf-gate BASE.json CURRENT.json [--threshold PCT] [--count-threshold PCT] [--warn-only]
//! ```
//!
//! Exit codes: 0 = no regression, 1 = regression past threshold,
//! 2 = usage or I/O error. Timing regressions gate on `--threshold`
//! (default 25 %); deterministic work counters (B&B nodes, LP
//! iterations) gate on `--count-threshold` (default 2 %).
//! `--warn-only` downgrades *timing* regressions to warnings — wall
//! clocks are apples-to-oranges across machine classes — but work
//! counters are deterministic, so a regression in one still fails.

#![forbid(unsafe_code)]

use billcap_obs_analyze::trajectory::{gate, BenchTrajectory, GateConfig};
use std::process::ExitCode;

const USAGE: &str =
    "usage: perf-gate BASE.json CURRENT.json [--threshold PCT] [--count-threshold PCT] [--warn-only]";

fn load(path: &str) -> Result<BenchTrajectory, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    BenchTrajectory::parse_json(&text).map_err(|e| format!("parsing {path:?}: {e}"))
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut paths: Vec<&String> = Vec::new();
    let mut cfg = GateConfig::default();
    let mut warn_only = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                let v: f64 = it
                    .next()
                    .ok_or("--threshold needs a percent value")?
                    .parse()
                    .map_err(|_| "--threshold: not a number".to_string())?;
                cfg.time_rel = v / 100.0;
            }
            "--count-threshold" => {
                let v: f64 = it
                    .next()
                    .ok_or("--count-threshold needs a percent value")?
                    .parse()
                    .map_err(|_| "--count-threshold: not a number".to_string())?;
                cfg.count_rel = v / 100.0;
            }
            "--warn-only" => warn_only = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other:?}\n{USAGE}"))
            }
            _ => paths.push(a),
        }
    }
    let [base_path, cur_path] = paths.as_slice() else {
        return Err(USAGE.to_string());
    };
    let base = load(base_path)?;
    let cur = load(cur_path)?;
    if base.machine != cur.machine {
        eprintln!(
            "perf-gate: note: machines differ (base {}x {}/{}, current {}x {}/{}) — timings are apples-to-oranges",
            base.machine.threads, base.machine.os, base.machine.arch,
            cur.machine.threads, cur.machine.os, cur.machine.arch,
        );
    }
    let report = gate(&base, &cur, &cfg);
    print!("{}", report.render());
    if report.has_regressions() {
        // --warn-only forgives wall-clock regressions only: timings are
        // machine-dependent, but the work counters are deterministic,
        // so a regressed counter is a real algorithmic change.
        let work = report
            .regressed()
            .iter()
            .filter(|e| !e.kind.is_wall_clock())
            .count();
        if warn_only && work == 0 {
            eprintln!(
                "perf-gate: WARNING: {} timing regression(s) past threshold (warn-only mode)",
                report.regressed().len()
            );
            return Ok(true);
        }
        if warn_only {
            eprintln!(
                "perf-gate: FAIL: {work} deterministic work metric(s) regressed \
                 (--warn-only covers timing metrics only)"
            );
        }
        return Ok(false);
    }
    Ok(true)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("perf-gate: FAIL: performance regressed past threshold");
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
