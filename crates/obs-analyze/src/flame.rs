//! Collapsed-stack ("folded") export and import.
//!
//! The format is the one `flamegraph.pl` / `inferno` consume: one line
//! per stack, frames joined by `;`, then a space and a count. The
//! profiler emits **self time in nanoseconds** as the count, one line
//! per node, so the total of a frame's own line plus its descendants'
//! lines reconstructs the frame's inclusive time exactly — the
//! round-trip invariant [`parse_collapsed`] is tested against.

use crate::profile::Profile;

/// Renders a profile as collapsed stacks (`hour;step1;mip 12345`).
///
/// Every non-root node gets one line (zero-self nodes included, so the
/// tree shape survives the round trip); lines are in path order.
pub fn to_collapsed(profile: &Profile) -> String {
    let mut lines: Vec<(String, u64)> = profile
        .nodes
        .iter()
        .skip(1)
        .map(|n| (n.path.replace('/', ";"), n.self_ns))
        .collect();
    lines.sort();
    let mut out = String::new();
    for (stack, ns) in lines {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

/// A malformed collapsed-stack line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollapsedError {
    /// 1-based line number of the malformed line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CollapsedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "collapsed stack line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CollapsedError {}

/// Parses collapsed stacks back into a [`Profile`].
///
/// The counts are interpreted as self time; inclusive times are derived
/// bottom-up, so `parse_collapsed(&to_collapsed(p))` preserves every
/// node's inclusive and self totals (call counts and min/max are not
/// representable in this format and come back as zero).
pub fn parse_collapsed(text: &str) -> Result<Profile, CollapsedError> {
    let mut pairs: Vec<(String, u64)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let (stack, count) = line.rsplit_once(' ').ok_or_else(|| CollapsedError {
            line: i + 1,
            message: "expected `frame;frame;... COUNT`".into(),
        })?;
        let stack = stack.trim_end();
        if stack.is_empty() || stack.split(';').any(str::is_empty) {
            return Err(CollapsedError {
                line: i + 1,
                message: "empty frame in stack".into(),
            });
        }
        let ns: u64 = count.parse().map_err(|_| CollapsedError {
            line: i + 1,
            message: format!("bad count {count:?}"),
        })?;
        pairs.push((stack.replace(';', "/"), ns));
    }
    Ok(Profile::from_path_values(
        pairs.iter().map(|(p, n)| (p.as_str(), *n)),
        false,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use billcap_obs::{SpanStats, TraceSnapshot};

    fn sample_profile() -> Profile {
        let mut snap = TraceSnapshot::default();
        let stats = |count: u64, total: u64| SpanStats {
            count,
            total_ns: total,
            min_ns: total / count.max(1),
            max_ns: total / count.max(1),
        };
        snap.spans.insert("hour".into(), stats(2, 100));
        snap.spans.insert("hour/step1".into(), stats(2, 60));
        snap.spans.insert("hour/step1/mip".into(), stats(3, 25));
        snap.spans.insert("hour/step2".into(), stats(2, 30));
        Profile::from_snapshot(&snap)
    }

    #[test]
    fn collapsed_round_trip_preserves_totals() {
        let p = sample_profile();
        let folded = to_collapsed(&p);
        assert!(folded.contains("hour;step1;mip 25\n"));
        assert!(folded.contains("hour;step1 35\n"));
        let back = parse_collapsed(&folded).unwrap();
        assert_eq!(back.root().inclusive_ns, p.root().inclusive_ns);
        for n in &p.nodes[1..] {
            let b = back.node(&n.path).expect("node survives round trip");
            assert_eq!(b.inclusive_ns, n.inclusive_ns, "inclusive at {}", n.path);
            assert_eq!(b.self_ns, n.self_ns, "self at {}", n.path);
        }
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        let err = parse_collapsed("hour;step1 10\nnocount\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_collapsed("hour;;bad 10\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse_collapsed("hour x\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn parse_derives_inclusive_for_missing_parents() {
        // Only leaves listed: the parent's inclusive is the leaf sum.
        let p = parse_collapsed("a;b 10\na;c 5\n").unwrap();
        assert_eq!(p.node("a").unwrap().inclusive_ns, 15);
        assert_eq!(p.node("a").unwrap().self_ns, 0);
        assert_eq!(p.root().inclusive_ns, 15);
    }
}
