//! The benched performance trajectory: a committed JSON baseline
//! (`BENCH_solver.json`) produced from `crates/bench` results plus
//! trace aggregates, and the gate that compares a fresh run against it.
//!
//! The baseline carries machine metadata so a regression on a different
//! machine class is recognizable as an apples-to-oranges comparison;
//! the CI gate runs warn-only for exactly that reason (see DESIGN.md
//! §"Trace analysis").

use crate::diff::{classify, DiffClass, DiffConfig, DiffEntry, DiffReport, MetricKind};
use billcap_obs::json::{JsonError, Value};
use billcap_obs::TraceSnapshot;

/// One benchmark's recorded timing.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPoint {
    /// Stable benchmark name (`step1_milp_by_sites/13`).
    pub name: String,
    /// Median ns/iteration — the headline, robust to scheduler noise.
    pub median_ns: f64,
    /// Fastest sample, ns/iteration.
    pub min_ns: f64,
    /// Mean ns/iteration.
    pub mean_ns: f64,
    /// Samples collected.
    pub samples: u64,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// Deterministic work aggregates from a traced reference run — these
/// regress only when the *algorithm* changes, never from timer noise.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceAggregates {
    /// Hours in the reference run.
    pub hours: u64,
    /// Total branch-and-bound nodes across the run.
    pub bnb_nodes: u64,
    /// Total simplex iterations across the run.
    pub lp_iterations: u64,
    /// Total wall ns in `hour` spans.
    pub hour_total_ns: u64,
    /// Total wall ns in `hour/step1` spans (cost minimization).
    pub step1_total_ns: u64,
    /// Total wall ns in `hour/step2` spans (throughput maximization).
    pub step2_total_ns: u64,
    /// Total wall ns in MILP solve spans under step 1.
    pub mip_total_ns: u64,
    /// Retained-model rebuilds in the decision engine (`core.engine.
    /// rebuilds`). The allocation-reuse contract keeps this far below
    /// the hour count; a jump means cap/level keys are churning and
    /// models are being rebuilt per hour again.
    pub engine_rebuilds: u64,
}

impl TraceAggregates {
    /// Extracts the aggregates from a traced run's snapshot.
    pub fn from_snapshot(snap: &TraceSnapshot) -> Self {
        let span_total = |path: &str| snap.spans.get(path).map(|s| s.total_ns).unwrap_or(0);
        Self {
            hours: snap.counters.get("sim.hours").copied().unwrap_or(0),
            bnb_nodes: snap.counters.get("milp.bnb.nodes").copied().unwrap_or(0),
            lp_iterations: snap
                .counters
                .get("milp.lp.iterations")
                .copied()
                .unwrap_or(0),
            hour_total_ns: span_total("hour"),
            step1_total_ns: span_total("hour/step1"),
            step2_total_ns: span_total("hour/step2"),
            mip_total_ns: span_total("hour/step1/mip"),
            engine_rebuilds: snap
                .counters
                .get("core.engine.rebuilds")
                .copied()
                .unwrap_or(0),
        }
    }
}

/// Where the baseline was measured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Machine {
    /// Available hardware threads.
    pub threads: u64,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
}

impl Machine {
    /// Detects the current machine.
    pub fn detect() -> Self {
        Self {
            threads: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
        }
    }
}

/// A full performance-trajectory record (the `BENCH_solver.json` schema).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchTrajectory {
    /// Format version; bumped on breaking schema changes.
    pub schema_version: u64,
    /// Machine the numbers were measured on.
    pub machine: Machine,
    /// Benchmark medians, in registration order.
    pub benches: Vec<BenchPoint>,
    /// Work aggregates from the traced reference run.
    pub aggregates: TraceAggregates,
}

/// Current schema version written by [`BenchTrajectory::render_json`].
/// v2 added `aggregates.engine_rebuilds` (the retained-model rebuild
/// counter recorded by the allocation-reuse hot path).
pub const SCHEMA_VERSION: u64 = 2;

fn err(message: impl Into<String>) -> JsonError {
    JsonError {
        line: 0,
        offset: 0,
        message: message.into(),
    }
}

fn get_u64(v: &Value, key: &str) -> Result<u64, JsonError> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| err(format!("missing or non-integer field {key:?}")))
}

fn get_f64(v: &Value, key: &str) -> Result<f64, JsonError> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| err(format!("missing or non-numeric field {key:?}")))
}

fn get_str(v: &Value, key: &str) -> Result<String, JsonError> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| err(format!("missing or non-string field {key:?}")))
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

impl BenchTrajectory {
    /// Assembles a trajectory for the current machine.
    pub fn new(benches: Vec<BenchPoint>, aggregates: TraceAggregates) -> Self {
        Self {
            schema_version: SCHEMA_VERSION,
            machine: Machine::detect(),
            benches,
            aggregates,
        }
    }

    /// Renders as pretty-stable JSON (one bench per line, diff-friendly).
    pub fn render_json(&self) -> String {
        let benches = Value::Arr(
            self.benches
                .iter()
                .map(|b| {
                    obj(vec![
                        ("name", Value::Str(b.name.clone())),
                        ("median_ns", Value::Float(b.median_ns)),
                        ("min_ns", Value::Float(b.min_ns)),
                        ("mean_ns", Value::Float(b.mean_ns)),
                        ("samples", Value::Int(b.samples as i64)),
                        ("iters_per_sample", Value::Int(b.iters_per_sample as i64)),
                    ])
                })
                .collect(),
        );
        let a = &self.aggregates;
        let doc = obj(vec![
            ("type", Value::Str("bench_trajectory".into())),
            ("schema_version", Value::Int(self.schema_version as i64)),
            (
                "machine",
                obj(vec![
                    ("threads", Value::Int(self.machine.threads as i64)),
                    ("os", Value::Str(self.machine.os.clone())),
                    ("arch", Value::Str(self.machine.arch.clone())),
                ]),
            ),
            ("benches", benches),
            (
                "aggregates",
                obj(vec![
                    ("hours", Value::Int(a.hours as i64)),
                    ("bnb_nodes", Value::Int(a.bnb_nodes as i64)),
                    ("lp_iterations", Value::Int(a.lp_iterations as i64)),
                    ("hour_total_ns", Value::Int(a.hour_total_ns as i64)),
                    ("step1_total_ns", Value::Int(a.step1_total_ns as i64)),
                    ("step2_total_ns", Value::Int(a.step2_total_ns as i64)),
                    ("mip_total_ns", Value::Int(a.mip_total_ns as i64)),
                    ("engine_rebuilds", Value::Int(a.engine_rebuilds as i64)),
                ]),
            ),
        ]);
        // Re-indent the compact rendering lightly: one top-level key per
        // line and one bench per line keeps `git diff` reviewable.
        let mut out = String::new();
        out.push_str("{\n");
        if let Value::Obj(pairs) = &doc {
            for (i, (k, v)) in pairs.iter().enumerate() {
                let sep = if i + 1 < pairs.len() { "," } else { "" };
                if k == "benches" {
                    out.push_str("  \"benches\": [\n");
                    if let Value::Arr(items) = v {
                        for (j, item) in items.iter().enumerate() {
                            let bsep = if j + 1 < items.len() { "," } else { "" };
                            out.push_str(&format!("    {}{}\n", item.render(), bsep));
                        }
                    }
                    out.push_str(&format!("  ]{sep}\n"));
                } else {
                    out.push_str(&format!(
                        "  {}: {}{}\n",
                        Value::Str(k.clone()).render(),
                        v.render(),
                        sep
                    ));
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// Parses a trajectory back from JSON.
    pub fn parse_json(text: &str) -> Result<Self, JsonError> {
        let doc = Value::parse(text)?;
        if get_str(&doc, "type")? != "bench_trajectory" {
            return Err(err("not a bench_trajectory document"));
        }
        let machine = doc.get("machine").ok_or_else(|| err("missing machine"))?;
        let benches = doc
            .get("benches")
            .and_then(Value::as_arr)
            .ok_or_else(|| err("missing benches array"))?
            .iter()
            .map(|b| {
                Ok(BenchPoint {
                    name: get_str(b, "name")?,
                    median_ns: get_f64(b, "median_ns")?,
                    min_ns: get_f64(b, "min_ns")?,
                    mean_ns: get_f64(b, "mean_ns")?,
                    samples: get_u64(b, "samples")?,
                    iters_per_sample: get_u64(b, "iters_per_sample")?,
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        let a = doc
            .get("aggregates")
            .ok_or_else(|| err("missing aggregates"))?;
        Ok(Self {
            schema_version: get_u64(&doc, "schema_version")?,
            machine: Machine {
                threads: get_u64(machine, "threads")?,
                os: get_str(machine, "os")?,
                arch: get_str(machine, "arch")?,
            },
            benches,
            aggregates: TraceAggregates {
                hours: get_u64(a, "hours")?,
                bnb_nodes: get_u64(a, "bnb_nodes")?,
                lp_iterations: get_u64(a, "lp_iterations")?,
                hour_total_ns: get_u64(a, "hour_total_ns")?,
                step1_total_ns: get_u64(a, "step1_total_ns")?,
                step2_total_ns: get_u64(a, "step2_total_ns")?,
                mip_total_ns: get_u64(a, "mip_total_ns")?,
                engine_rebuilds: get_u64(a, "engine_rebuilds")?,
            },
        })
    }
}

/// Gate thresholds. Timing uses `time_rel` (generous — bench medians on
/// shared runners jitter), work counts use `count_rel` (tight — node
/// and iteration counts are deterministic for fixed seeds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateConfig {
    /// Relative threshold on bench medians and phase wall times.
    pub time_rel: f64,
    /// Absolute ns floor under which timing deltas are ignored.
    pub time_abs_ns: f64,
    /// Relative threshold on work counters.
    pub count_rel: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self {
            time_rel: 0.25,
            time_abs_ns: 50_000.0, // 50µs floor on per-iteration medians
            count_rel: 0.02,
        }
    }
}

/// Compares a current trajectory against the committed baseline.
///
/// Bench medians and per-phase wall totals gate on `time_rel`; B&B node
/// and LP iteration totals gate on `count_rel`. A bench present on only
/// one side is reported as new/missing, never as a regression.
pub fn gate(base: &BenchTrajectory, cur: &BenchTrajectory, cfg: &GateConfig) -> DiffReport {
    let dc = DiffConfig {
        time_rel: cfg.time_rel,
        time_abs_ns: cfg.time_abs_ns,
        count_rel: cfg.count_rel,
        count_abs: 0.0,
    };
    let mut report = DiffReport::default();
    fn push(
        report: &mut DiffReport,
        dc: &DiffConfig,
        kind: MetricKind,
        name: &str,
        b: f64,
        c: f64,
    ) {
        report.entries.push(DiffEntry {
            kind,
            name: name.to_string(),
            base: b,
            current: c,
            class: classify(kind, b, c, dc),
        });
    }

    for b in &base.benches {
        match cur.benches.iter().find(|c| c.name == b.name) {
            Some(c) => push(
                &mut report,
                &dc,
                MetricKind::Bench,
                &b.name,
                b.median_ns,
                c.median_ns,
            ),
            None => report.entries.push(DiffEntry {
                kind: MetricKind::Bench,
                name: b.name.clone(),
                base: b.median_ns,
                current: 0.0,
                class: DiffClass::Missing,
            }),
        }
    }
    for c in &cur.benches {
        if !base.benches.iter().any(|b| b.name == c.name) {
            report.entries.push(DiffEntry {
                kind: MetricKind::Bench,
                name: c.name.clone(),
                base: 0.0,
                current: c.median_ns,
                class: DiffClass::New,
            });
        }
    }

    let (ab, ac) = (&base.aggregates, &cur.aggregates);
    push(
        &mut report,
        &dc,
        MetricKind::Counter,
        "aggregates.bnb_nodes",
        ab.bnb_nodes as f64,
        ac.bnb_nodes as f64,
    );
    push(
        &mut report,
        &dc,
        MetricKind::Counter,
        "aggregates.lp_iterations",
        ab.lp_iterations as f64,
        ac.lp_iterations as f64,
    );
    push(
        &mut report,
        &dc,
        MetricKind::Counter,
        "aggregates.hours",
        ab.hours as f64,
        ac.hours as f64,
    );
    push(
        &mut report,
        &dc,
        MetricKind::Counter,
        "aggregates.engine_rebuilds",
        ab.engine_rebuilds as f64,
        ac.engine_rebuilds as f64,
    );
    for (name, b, c) in [
        (
            "aggregates.hour_total_ns",
            ab.hour_total_ns,
            ac.hour_total_ns,
        ),
        (
            "aggregates.step1_total_ns",
            ab.step1_total_ns,
            ac.step1_total_ns,
        ),
        (
            "aggregates.step2_total_ns",
            ab.step2_total_ns,
            ac.step2_total_ns,
        ),
        ("aggregates.mip_total_ns", ab.mip_total_ns, ac.mip_total_ns),
    ] {
        push(
            &mut report,
            &dc,
            MetricKind::SpanTime,
            name,
            b as f64,
            c as f64,
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchTrajectory {
        BenchTrajectory {
            schema_version: SCHEMA_VERSION,
            machine: Machine {
                threads: 4,
                os: "linux".into(),
                arch: "x86_64".into(),
            },
            benches: vec![
                BenchPoint {
                    name: "step1_milp_by_sites/13".into(),
                    median_ns: 2.5e6,
                    min_ns: 2.2e6,
                    mean_ns: 2.6e6,
                    samples: 15,
                    iters_per_sample: 20,
                },
                BenchPoint {
                    name: "decide_hour/paper".into(),
                    median_ns: 8.1e5,
                    min_ns: 7.9e5,
                    mean_ns: 8.3e5,
                    samples: 15,
                    iters_per_sample: 60,
                },
            ],
            aggregates: TraceAggregates {
                hours: 168,
                bnb_nodes: 5000,
                lp_iterations: 40000,
                hour_total_ns: 1_500_000_000,
                step1_total_ns: 1_100_000_000,
                step2_total_ns: 300_000_000,
                mip_total_ns: 900_000_000,
                engine_rebuilds: 12,
            },
        }
    }

    #[test]
    fn json_round_trip() {
        let t = sample();
        let text = t.render_json();
        let back = BenchTrajectory::parse_json(&text).unwrap();
        assert_eq!(back, t);
        assert!(BenchTrajectory::parse_json("{\"type\":\"other\"}").is_err());
        assert!(BenchTrajectory::parse_json("not json").is_err());
    }

    #[test]
    fn identical_trajectories_pass_the_gate() {
        let t = sample();
        let r = gate(&t, &t.clone(), &GateConfig::default());
        assert!(!r.has_regressions(), "{}", r.render());
    }

    #[test]
    fn slowdown_past_threshold_fails_the_gate() {
        let base = sample();
        let mut cur = base.clone();
        cur.benches[0].median_ns *= 1.5; // +50% > 25% default
        let r = gate(&base, &cur, &GateConfig::default());
        assert!(r.has_regressions());
        assert_eq!(r.regressed()[0].name, "step1_milp_by_sites/13");
        // Mild jitter stays under the gate.
        let mut mild = base.clone();
        mild.benches[0].median_ns *= 1.1;
        assert!(!gate(&base, &mild, &GateConfig::default()).has_regressions());
    }

    #[test]
    fn node_inflation_fails_the_gate() {
        let base = sample();
        let mut cur = base.clone();
        cur.aggregates.bnb_nodes = (base.aggregates.bnb_nodes as f64 * 1.10) as u64;
        let r = gate(&base, &cur, &GateConfig::default());
        assert!(r.has_regressions());
        assert!(r
            .regressed()
            .iter()
            .any(|e| e.name == "aggregates.bnb_nodes"));
    }

    #[test]
    fn renamed_bench_is_missing_plus_new_not_regressed() {
        let base = sample();
        let mut cur = base.clone();
        cur.benches[1].name = "decide_hour/renamed".into();
        let r = gate(&base, &cur, &GateConfig::default());
        assert!(!r.has_regressions());
        assert_eq!(r.with_class(DiffClass::Missing).len(), 1);
        assert_eq!(r.with_class(DiffClass::New).len(), 1);
    }

    #[test]
    fn aggregates_from_snapshot_reads_counters_and_spans() {
        let mut snap = TraceSnapshot::default();
        snap.counters.insert("sim.hours".into(), 168);
        snap.counters.insert("milp.bnb.nodes".into(), 123);
        snap.counters.insert("milp.lp.iterations".into(), 456);
        snap.counters.insert("core.engine.rebuilds".into(), 7);
        snap.spans.insert(
            "hour".into(),
            billcap_obs::SpanStats {
                count: 168,
                total_ns: 99,
                min_ns: 0,
                max_ns: 9,
            },
        );
        let a = TraceAggregates::from_snapshot(&snap);
        assert_eq!(a.hours, 168);
        assert_eq!(a.bnb_nodes, 123);
        assert_eq!(a.lp_iterations, 456);
        assert_eq!(a.hour_total_ns, 99);
        assert_eq!(a.step1_total_ns, 0);
        assert_eq!(a.engine_rebuilds, 7);
    }
}
