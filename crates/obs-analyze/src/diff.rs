//! Run-to-run trace comparison.
//!
//! [`diff_snapshots`] compares two [`TraceSnapshot`]s metric by metric
//! and classifies each as regressed / improved / new / missing /
//! changed / unchanged under configurable relative and absolute
//! thresholds. Wall-clock metrics (span totals, histogram means over
//! durations) are judged with the *time* thresholds — they are noisy,
//! especially on shared single-core machines — while work metrics
//! (counters, span counts, histogram counts) are deterministic for a
//! fixed seed and get the tighter *count* thresholds.

use billcap_obs::TraceSnapshot;

/// What kind of metric a [`DiffEntry`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// A span path's total wall time (`total_ns`), time thresholds.
    SpanTime,
    /// A span path's completion count, count thresholds.
    SpanCount,
    /// A monotone counter, count thresholds.
    Counter,
    /// A histogram's observation count, count thresholds.
    HistogramCount,
    /// A histogram's mean value, time thresholds.
    HistogramMean,
    /// A gauge's last value; direction-less, classified [`DiffClass::Changed`].
    Gauge,
    /// A benchmark median from a perf trajectory, time thresholds.
    Bench,
}

impl MetricKind {
    /// True for metrics measured in wall-clock time, which jitter
    /// between runs and machines. Gates use this to decide whether a
    /// regression may be downgraded to a warning: work metrics
    /// (counters, span/histogram counts) are deterministic for a fixed
    /// seed, so a regression in one is never noise.
    pub fn is_wall_clock(self) -> bool {
        matches!(
            self,
            MetricKind::SpanTime | MetricKind::HistogramMean | MetricKind::Bench
        )
    }

    fn label(self) -> &'static str {
        match self {
            MetricKind::SpanTime => "span.time",
            MetricKind::SpanCount => "span.count",
            MetricKind::Counter => "counter",
            MetricKind::HistogramCount => "hist.count",
            MetricKind::HistogramMean => "hist.mean",
            MetricKind::Gauge => "gauge",
            MetricKind::Bench => "bench",
        }
    }
}

/// Classification of one compared metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffClass {
    /// Grew past the threshold — for time and work metrics, more is worse.
    Regressed,
    /// Shrank past the threshold.
    Improved,
    /// Present only in the current run.
    New,
    /// Present only in the base run.
    Missing,
    /// Direction-less metric (gauge) moved past the threshold.
    Changed,
    /// Within the threshold.
    Unchanged,
}

/// Thresholds for [`diff_snapshots`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffConfig {
    /// Relative threshold for wall-clock metrics (0.10 = 10 %).
    pub time_rel: f64,
    /// Absolute floor for wall-clock deltas, in nanoseconds; changes
    /// smaller than this never classify, however large relatively.
    pub time_abs_ns: f64,
    /// Relative threshold for work metrics (0.0 = exact).
    pub count_rel: f64,
    /// Absolute floor for work-metric deltas.
    pub count_abs: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        Self {
            time_rel: 0.10,
            time_abs_ns: 1.0e6, // ignore sub-millisecond wobble
            count_rel: 0.0,
            count_abs: 0.0,
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Which facet of the trace this row compares.
    pub kind: MetricKind,
    /// Metric name (span path, counter/gauge/histogram name).
    pub name: String,
    /// Base-run value (0 for [`DiffClass::New`]).
    pub base: f64,
    /// Current-run value (0 for [`DiffClass::Missing`]).
    pub current: f64,
    /// Classification under the configured thresholds.
    pub class: DiffClass,
}

impl DiffEntry {
    /// Relative change in percent, when both sides exist and the base
    /// is non-zero.
    pub fn delta_pct(&self) -> Option<f64> {
        (matches!(
            self.class,
            DiffClass::Regressed | DiffClass::Improved | DiffClass::Changed | DiffClass::Unchanged
        ) && self.base != 0.0)
            .then(|| 100.0 * (self.current - self.base) / self.base)
    }
}

/// The result of comparing two runs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DiffReport {
    /// Every compared metric, including unchanged ones.
    pub entries: Vec<DiffEntry>,
}

impl DiffReport {
    /// Entries with the given classification.
    pub fn with_class(&self, class: DiffClass) -> Vec<&DiffEntry> {
        self.entries.iter().filter(|e| e.class == class).collect()
    }

    /// Regressed entries, the gate signal.
    pub fn regressed(&self) -> Vec<&DiffEntry> {
        self.with_class(DiffClass::Regressed)
    }

    /// True when at least one metric regressed.
    pub fn has_regressions(&self) -> bool {
        self.entries.iter().any(|e| e.class == DiffClass::Regressed)
    }

    /// One-line summary (`3 regressed, 1 improved, 0 new, ...`).
    pub fn summary(&self) -> String {
        let count = |c| self.with_class(c).len();
        format!(
            "{} regressed, {} improved, {} new, {} missing, {} changed, {} unchanged",
            count(DiffClass::Regressed),
            count(DiffClass::Improved),
            count(DiffClass::New),
            count(DiffClass::Missing),
            count(DiffClass::Changed),
            count(DiffClass::Unchanged),
        )
    }

    /// Human-readable report: the summary plus one row per non-unchanged
    /// metric, regressions first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.summary());
        out.push('\n');
        let order = [
            DiffClass::Regressed,
            DiffClass::Missing,
            DiffClass::New,
            DiffClass::Changed,
            DiffClass::Improved,
        ];
        for class in order {
            for e in self.with_class(class) {
                let delta = e
                    .delta_pct()
                    .map(|p| format!("{p:+.1}%"))
                    .unwrap_or_else(|| "-".into());
                out.push_str(&format!(
                    "  {:<10} {:<12} {:<40} base {:>14.1}  cur {:>14.1}  {}\n",
                    format!("{:?}", class).to_lowercase(),
                    e.kind.label(),
                    e.name,
                    e.base,
                    e.current,
                    delta
                ));
            }
        }
        out
    }
}

fn thresholds(kind: MetricKind, cfg: &DiffConfig) -> (f64, f64) {
    match kind {
        MetricKind::SpanTime | MetricKind::HistogramMean | MetricKind::Bench => {
            (cfg.time_rel, cfg.time_abs_ns)
        }
        MetricKind::SpanCount | MetricKind::Counter | MetricKind::HistogramCount => {
            (cfg.count_rel, cfg.count_abs)
        }
        MetricKind::Gauge => (cfg.count_rel, cfg.count_abs),
    }
}

/// Classifies one `(base, current)` pair under the kind's thresholds.
pub(crate) fn classify(kind: MetricKind, base: f64, current: f64, cfg: &DiffConfig) -> DiffClass {
    let (rel, abs) = thresholds(kind, cfg);
    let delta = current - base;
    let past = delta.abs() > abs && delta.abs() > rel * base.abs();
    if !past || delta == 0.0 {
        return DiffClass::Unchanged;
    }
    match kind {
        MetricKind::Gauge => DiffClass::Changed,
        _ if delta > 0.0 => DiffClass::Regressed,
        _ => DiffClass::Improved,
    }
}

fn compare<'a, K, I, J>(
    report: &mut DiffReport,
    kind: MetricKind,
    base: I,
    cur: J,
    cfg: &DiffConfig,
) where
    K: Ord + std::fmt::Display + ?Sized + 'a,
    I: IntoIterator<Item = (&'a K, f64)>,
    J: IntoIterator<Item = (&'a K, f64)>,
{
    use std::collections::BTreeMap;
    let base: BTreeMap<&K, f64> = base.into_iter().collect();
    let mut cur: BTreeMap<&K, f64> = cur.into_iter().collect();
    for (name, b) in &base {
        match cur.remove(name) {
            Some(c) => report.entries.push(DiffEntry {
                kind,
                name: name.to_string(),
                base: *b,
                current: c,
                class: classify(kind, *b, c, cfg),
            }),
            None => report.entries.push(DiffEntry {
                kind,
                name: name.to_string(),
                base: *b,
                current: 0.0,
                class: DiffClass::Missing,
            }),
        }
    }
    for (name, c) in cur {
        report.entries.push(DiffEntry {
            kind,
            name: name.to_string(),
            base: 0.0,
            current: c,
            class: DiffClass::New,
        });
    }
}

/// Compares two trace snapshots.
///
/// Span paths are compared twice — total wall time (time thresholds)
/// and completion count (count thresholds) — counters once, histograms
/// twice (count and mean), and gauges on their last value.
pub fn diff_snapshots(base: &TraceSnapshot, cur: &TraceSnapshot, cfg: &DiffConfig) -> DiffReport {
    let mut report = DiffReport::default();
    compare(
        &mut report,
        MetricKind::SpanTime,
        base.spans.iter().map(|(k, s)| (k, s.total_ns as f64)),
        cur.spans.iter().map(|(k, s)| (k, s.total_ns as f64)),
        cfg,
    );
    compare(
        &mut report,
        MetricKind::SpanCount,
        base.spans.iter().map(|(k, s)| (k, s.count as f64)),
        cur.spans.iter().map(|(k, s)| (k, s.count as f64)),
        cfg,
    );
    compare(
        &mut report,
        MetricKind::Counter,
        base.counters.iter().map(|(k, v)| (k, *v as f64)),
        cur.counters.iter().map(|(k, v)| (k, *v as f64)),
        cfg,
    );
    compare(
        &mut report,
        MetricKind::HistogramCount,
        base.histograms.iter().map(|(k, h)| (k, h.count as f64)),
        cur.histograms.iter().map(|(k, h)| (k, h.count as f64)),
        cfg,
    );
    compare(
        &mut report,
        MetricKind::HistogramMean,
        base.histograms
            .iter()
            .map(|(k, h)| (k, h.mean().unwrap_or(0.0))),
        cur.histograms
            .iter()
            .map(|(k, h)| (k, h.mean().unwrap_or(0.0))),
        cfg,
    );
    compare(
        &mut report,
        MetricKind::Gauge,
        base.gauges.iter().map(|(k, g)| (k, g.last)),
        cur.gauges.iter().map(|(k, g)| (k, g.last)),
        cfg,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use billcap_obs::{GaugeStat, SpanStats};

    fn snap(total_ns: u64, nodes: u64, gauge: f64) -> TraceSnapshot {
        let mut s = TraceSnapshot::default();
        s.spans.insert(
            "hour".into(),
            SpanStats {
                count: 168,
                total_ns,
                min_ns: 1,
                max_ns: total_ns,
            },
        );
        s.counters.insert("milp.bnb.nodes".into(), nodes);
        s.gauges
            .insert("core.capper.budget_slack".into(), GaugeStat::single(gauge));
        s
    }

    #[test]
    fn identical_snapshots_have_no_regressions() {
        let a = snap(1_000_000_000, 5000, -3.0);
        let r = diff_snapshots(&a, &a.clone(), &DiffConfig::default());
        assert!(!r.has_regressions());
        assert!(r.entries.iter().all(|e| e.class == DiffClass::Unchanged));
        assert!(r.summary().starts_with("0 regressed"));
    }

    #[test]
    fn slower_span_past_threshold_regresses() {
        let a = snap(1_000_000_000, 5000, -3.0);
        let b = snap(1_200_000_000, 5000, -3.0);
        let r = diff_snapshots(&a, &b, &DiffConfig::default());
        let reg = r.regressed();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg[0].kind, MetricKind::SpanTime);
        assert_eq!(reg[0].name, "hour");
        assert!((reg[0].delta_pct().unwrap() - 20.0).abs() < 1e-9);
        // The reverse direction is an improvement, not a regression.
        let r = diff_snapshots(&b, &a, &DiffConfig::default());
        assert!(!r.has_regressions());
        assert_eq!(r.with_class(DiffClass::Improved).len(), 1);
    }

    #[test]
    fn small_time_wobble_is_absorbed_by_thresholds() {
        let a = snap(1_000_000_000, 5000, -3.0);
        let b = snap(1_050_000_000, 5000, -3.0); // +5% < 10% default
        let r = diff_snapshots(&a, &b, &DiffConfig::default());
        assert!(!r.has_regressions());
        // Sub-absolute-floor changes never classify even at huge rel.
        let a = snap(1_000, 1, 0.0);
        let b = snap(2_000, 1, 0.0); // +100% but only 1µs
        let r = diff_snapshots(&a, &b, &DiffConfig::default());
        assert!(!r.has_regressions());
    }

    #[test]
    fn counter_inflation_regresses_exactly() {
        let a = snap(1_000_000_000, 5000, -3.0);
        let b = snap(1_000_000_000, 5001, -3.0);
        let r = diff_snapshots(&a, &b, &DiffConfig::default());
        let reg = r.regressed();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg[0].kind, MetricKind::Counter);
    }

    #[test]
    fn new_and_missing_metrics_are_reported() {
        let a = snap(1_000_000_000, 5000, -3.0);
        let mut b = a.clone();
        b.counters.remove("milp.bnb.nodes");
        b.counters.insert("milp.bnb.solves".into(), 1);
        let r = diff_snapshots(&a, &b, &DiffConfig::default());
        assert_eq!(r.with_class(DiffClass::Missing).len(), 1);
        assert_eq!(r.with_class(DiffClass::New).len(), 1);
        assert!(!r.has_regressions());
        let rendered = r.render();
        assert!(rendered.contains("missing"));
        assert!(rendered.contains("milp.bnb.nodes"));
    }

    #[test]
    fn gauge_movement_is_neutral() {
        let a = snap(1_000_000_000, 5000, -3.0);
        let b = snap(1_000_000_000, 5000, 7.0);
        let r = diff_snapshots(&a, &b, &DiffConfig::default());
        assert!(!r.has_regressions());
        assert_eq!(r.with_class(DiffClass::Changed).len(), 1);
    }
}
