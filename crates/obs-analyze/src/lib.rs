//! # billcap-obs-analyze
//!
//! Consumers for `billcap-obs` traces: where the obs crate *emits*
//! spans, counters and histograms, this crate turns them into
//! actionable signals — a hierarchical profile, flamegraph input,
//! run-to-run diffs, and a committed performance trajectory with a
//! regression gate. Zero external dependencies, like the rest of the
//! workspace.
//!
//! * [`profile::Profile`] — span-tree reconstruction from a
//!   [`TraceSnapshot`](billcap_obs::TraceSnapshot) (e.g. the output of
//!   [`billcap_obs::export::parse_jsonl`]): inclusive/self time, call
//!   counts, hot-path extraction, table rendering.
//! * [`flame`] — collapsed-stack (`a;b;c N`) export compatible with
//!   `flamegraph.pl`/`inferno`, plus a parser whose round trip
//!   preserves every node's totals.
//! * [`diff`] — compares two runs with configurable relative/absolute
//!   thresholds into a structured [`diff::DiffReport`]
//!   (regressed / improved / new / missing).
//! * [`series`] — the continuous-telemetry consumer: parses the
//!   decision server's streamed metrics JSONL into per-window series
//!   ([`series::MetricsSeries`]) and evaluates SLO burn against them
//!   ([`series::SloSpec`], machine-readable [`series::SloReport`]).
//! * [`trajectory`] — the `BENCH_solver.json` schema
//!   ([`trajectory::BenchTrajectory`]): bench medians plus trace work
//!   aggregates, and [`trajectory::gate`] for the perf-regression gate
//!   (see the `perf-gate` binary).
//!
//! ## Example
//!
//! ```
//! use billcap_obs::Recorder;
//! use billcap_obs_analyze::{diff, flame, profile::Profile};
//!
//! let rec = Recorder::new();
//! {
//!     let _hour = rec.span("hour");
//!     let _mip = rec.span("mip");
//!     rec.counter("milp.bnb.nodes", 42);
//! }
//! let snap = rec.snapshot();
//!
//! // Profile: the synthetic root covers all top-level spans.
//! let profile = Profile::from_snapshot(&snap);
//! assert_eq!(profile.root().inclusive_ns, snap.spans["hour"].total_ns);
//! assert_eq!(profile.counters["milp.bnb.nodes"], 42);
//!
//! // Flamegraph stacks round-trip the totals.
//! let folded = flame::to_collapsed(&profile);
//! let back = flame::parse_collapsed(&folded).unwrap();
//! assert_eq!(back.root().inclusive_ns, profile.root().inclusive_ns);
//!
//! // A run diffed against itself has no regressions.
//! let report = diff::diff_snapshots(&snap, &snap, &diff::DiffConfig::default());
//! assert!(!report.has_regressions());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod flame;
pub mod profile;
pub mod series;
pub mod trajectory;

pub use diff::{diff_snapshots, DiffClass, DiffConfig, DiffEntry, DiffReport, MetricKind};
pub use flame::{parse_collapsed, to_collapsed};
pub use profile::{Profile, ProfileNode};
pub use series::{MetricsSeries, Quantile, SloReport, SloSpec};
pub use trajectory::{gate, BenchPoint, BenchTrajectory, GateConfig, Machine, TraceAggregates};

/// Human formatting for nanosecond quantities (`1.5us`, `2.50ms`, …).
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::fmt_ns;

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
