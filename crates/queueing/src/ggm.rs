//! The G/G/m model of a data center (paper Section IV-B).

use crate::mmm::erlang_c;
use std::fmt;

/// Errors from the queueing model.
#[derive(Debug, Clone, PartialEq)]
pub enum QueueingError {
    /// The target response time is not achievable at any server count
    /// (it is at or below the bare service time `1/μ`).
    UnreachableTarget {
        /// The requested response-time target.
        target: f64,
        /// The bare service time `1/μ` it cannot beat.
        service_time: f64,
    },
    /// The system is unstable: arrivals exceed the service capacity.
    Unstable {
        /// Offered arrival rate.
        arrival_rate: f64,
        /// Total service capacity `nμ`.
        capacity: f64,
    },
}

impl fmt::Display for QueueingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueingError::UnreachableTarget {
                target,
                service_time,
            } => write!(
                f,
                "response-time target {target} is not above the service time {service_time}"
            ),
            QueueingError::Unstable {
                arrival_rate,
                capacity,
            } => write!(
                f,
                "arrival rate {arrival_rate} exceeds service capacity {capacity}"
            ),
        }
    }
}

impl std::error::Error for QueueingError {}

/// A G/G/m data-center model with homogeneous servers.
///
/// Units are the caller's choice but must be consistent: if `service_rate`
/// is requests/hour/server, arrival rates are requests/hour and response
/// times are hours. The `billcap` experiments use hours throughout.
///
/// ```
/// use billcap_queueing::GgmModel;
///
/// // Paper DC1: 500 requests/hour/server, Poisson-ish traffic.
/// let model = GgmModel::new(500.0, 1.0, 1.0);
/// let target = 1.5 / 500.0; // 50% above the bare service time
///
/// // The local optimizer's sizing rule (paper eq. 3 solved for n):
/// let servers = model.min_servers(1.0e8, target).unwrap();
/// assert!(model.response_time(servers, 1.0e8).unwrap() <= target);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GgmModel {
    /// Service rate `μ` of a single server (requests per unit time).
    pub service_rate: f64,
    /// Squared coefficient of variation of inter-arrival times (`C²_A`).
    pub scv_arrival: f64,
    /// Squared coefficient of variation of service times (`C²_B`).
    pub scv_service: f64,
}

impl GgmModel {
    /// Creates a model; panics on non-positive service rate or negative SCVs.
    pub fn new(service_rate: f64, scv_arrival: f64, scv_service: f64) -> Self {
        assert!(service_rate > 0.0, "service rate must be positive");
        assert!(
            scv_arrival >= 0.0 && scv_service >= 0.0,
            "SCVs must be non-negative"
        );
        Self {
            service_rate,
            scv_arrival,
            scv_service,
        }
    }

    /// An M/M/m model (both SCVs equal one).
    pub fn markovian(service_rate: f64) -> Self {
        Self::new(service_rate, 1.0, 1.0)
    }

    /// The variability factor `K = (C²_A + C²_B) / 2`.
    pub fn variability(&self) -> f64 {
        (self.scv_arrival + self.scv_service) / 2.0
    }

    /// Bare service time `1/μ`.
    pub fn service_time(&self) -> f64 {
        1.0 / self.service_rate
    }

    /// Mean response time with `servers` active and arrival rate `lambda`,
    /// using the paper's simplified Allen–Cunneen form (eq. 3 with `ρ ≈ 1`):
    /// `R = 1/μ + K/(nμ − λ)`.
    ///
    /// Errors with [`QueueingError::Unstable`] when `λ ≥ nμ`.
    pub fn response_time(&self, servers: u64, lambda: f64) -> Result<f64, QueueingError> {
        let capacity = servers as f64 * self.service_rate;
        if lambda >= capacity {
            return Err(QueueingError::Unstable {
                arrival_rate: lambda,
                capacity,
            });
        }
        if lambda <= 0.0 {
            return Ok(self.service_time());
        }
        Ok(self.service_time() + self.variability() / (capacity - lambda))
    }

    /// Mean response time using the full Allen–Cunneen approximation,
    /// `R = 1/μ + K · C(m, λ/μ) / (mμ − λ)` with `C` the Erlang-C waiting
    /// probability. Used to validate the simplified form (the two agree as
    /// utilization approaches one, which the local optimizer enforces).
    pub fn response_time_full(&self, servers: u64, lambda: f64) -> Result<f64, QueueingError> {
        let capacity = servers as f64 * self.service_rate;
        if lambda >= capacity {
            return Err(QueueingError::Unstable {
                arrival_rate: lambda,
                capacity,
            });
        }
        if lambda <= 0.0 {
            return Ok(self.service_time());
        }
        let offered = lambda / self.service_rate;
        let p_wait = erlang_c(servers, offered);
        Ok(self.service_time() + self.variability() * p_wait / (capacity - lambda))
    }

    /// Minimum number of servers needed to meet mean response-time target
    /// `target` at arrival rate `lambda`, per the paper's closed form:
    /// `n = ceil(λ/μ + K / (μ·(Rs − 1/μ)))`.
    ///
    /// This is exactly what each data center's *local optimizer* computes.
    pub fn min_servers(&self, lambda: f64, target: f64) -> Result<u64, QueueingError> {
        let headroom = self.servers_fractional(lambda, target)?;
        Ok(headroom.ceil().max(0.0) as u64)
    }

    /// The continuous (un-rounded) server requirement `λ/μ + c`, where
    /// `c = K/(μ·(Rs − 1/μ))` is the QoS headroom constant. This is the
    /// quantity the MILP uses directly (power is proportional to it).
    pub fn servers_fractional(&self, lambda: f64, target: f64) -> Result<f64, QueueingError> {
        if lambda < 0.0 {
            return Err(QueueingError::Unstable {
                arrival_rate: lambda,
                capacity: 0.0,
            });
        }
        Ok(lambda / self.service_rate + self.qos_headroom(target)?)
    }

    /// The constant `c = K/(μ·(Rs − 1/μ))` — extra (fractional) servers
    /// needed beyond the pure capacity term to meet the QoS target.
    pub fn qos_headroom(&self, target: f64) -> Result<f64, QueueingError> {
        let slack = target - self.service_time();
        if slack <= 0.0 {
            return Err(QueueingError::UnreachableTarget {
                target,
                service_time: self.service_time(),
            });
        }
        Ok(self.variability() / (self.service_rate * slack))
    }

    /// True when `servers` meet the mean response-time `target` at arrival
    /// rate `lambda`, treating an unstable system (`λ ≥ nμ`) as a miss.
    /// This is the audit layer's QoS primitive: a plan whose server count
    /// cannot even stabilize the queue must not pass on a technicality.
    pub fn meets_target(&self, servers: u64, lambda: f64, target: f64) -> bool {
        self.response_time(servers, lambda)
            .is_ok_and(|r| r <= target)
    }

    /// Maximum arrival rate `n` servers can carry while meeting `target`:
    /// the inverse of [`GgmModel::servers_fractional`],
    /// `λ_max = nμ − K/(Rs − 1/μ)` (clamped at zero).
    pub fn max_arrival_rate(&self, servers: u64, target: f64) -> Result<f64, QueueingError> {
        let headroom = self.qos_headroom(target)?;
        Ok(((servers as f64 - headroom) * self.service_rate).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> GgmModel {
        GgmModel::new(500.0, 1.0, 1.0) // paper DC1: 500 req/h per server
    }

    #[test]
    fn response_time_has_service_time_floor() {
        let m = model();
        let r = m.response_time(100, 0.0).unwrap();
        assert_eq!(r, 1.0 / 500.0);
    }

    #[test]
    fn response_time_increases_with_load() {
        let m = model();
        let r1 = m.response_time(100, 10_000.0).unwrap();
        let r2 = m.response_time(100, 40_000.0).unwrap();
        assert!(r2 > r1);
    }

    #[test]
    fn response_time_decreases_with_servers() {
        let m = model();
        let r1 = m.response_time(100, 40_000.0).unwrap();
        let r2 = m.response_time(200, 40_000.0).unwrap();
        assert!(r2 < r1);
    }

    #[test]
    fn unstable_system_is_an_error() {
        let m = model();
        assert!(matches!(
            m.response_time(10, 5_000.0),
            Err(QueueingError::Unstable { .. })
        ));
        assert!(matches!(
            m.response_time(10, 6_000.0),
            Err(QueueingError::Unstable { .. })
        ));
    }

    #[test]
    fn min_servers_meets_target() {
        let m = model();
        let target = 2.0 * m.service_time();
        let lambda = 123_456.0;
        let n = m.min_servers(lambda, target).unwrap();
        let r = m.response_time(n, lambda).unwrap();
        assert!(r <= target + 1e-12, "R = {r} > {target}");
    }

    #[test]
    fn min_servers_is_tight() {
        // One server fewer must violate the target (or be unstable).
        let m = model();
        let target = 1.5 * m.service_time();
        let lambda = 98_765.0;
        let n = m.min_servers(lambda, target).unwrap();
        assert!(n > 0);
        match m.response_time(n - 1, lambda) {
            Ok(r) => assert!(r > target),
            Err(QueueingError::Unstable { .. }) => {}
            Err(e) => panic!("unexpected: {e}"),
        }
    }

    #[test]
    fn unreachable_target_is_rejected() {
        let m = model();
        let err = m.min_servers(1000.0, m.service_time());
        assert!(matches!(err, Err(QueueingError::UnreachableTarget { .. })));
    }

    #[test]
    fn meets_target_bounds_min_servers() {
        let m = model();
        let target = 2.0 * m.service_time();
        let lambda = 123_456.0;
        let n = m.min_servers(lambda, target).unwrap();
        assert!(m.meets_target(n, lambda, target));
        assert!(!m.meets_target(n.saturating_sub(1), lambda, target));
        // An unstable configuration is a miss, not an error.
        assert!(!m.meets_target(1, lambda, target));
        // A zero-load site meets any target above the bare service time.
        assert!(m.meets_target(1, 0.0, target));
    }

    #[test]
    fn max_arrival_rate_inverts_min_servers() {
        let m = model();
        let target = 2.0 * m.service_time();
        let n = 1000;
        let lambda = m.max_arrival_rate(n, target).unwrap();
        // That arrival rate must be servable by exactly n servers.
        let needed = m.min_servers(lambda, target).unwrap();
        assert!(needed <= n, "needed {needed} > {n}");
        // And a slightly higher rate must need more than n.
        let needed_more = m.min_servers(lambda + 1.0, target).unwrap();
        assert!(needed_more >= n, "needed_more {needed_more} < {n}");
    }

    #[test]
    fn full_allen_cunneen_close_to_simplified_at_high_utilization() {
        let m = model();
        let n = 200u64;
        let target_util = 0.999;
        let lambda = target_util * n as f64 * m.service_rate;
        let simplified = m.response_time(n, lambda).unwrap();
        let full = m.response_time_full(n, lambda).unwrap();
        // As utilization approaches 1 the Erlang-C waiting probability
        // approaches 1, so the forms converge.
        let rel = (simplified - full).abs() / full;
        assert!(rel < 0.02, "relative gap {rel}");
    }

    #[test]
    fn full_form_never_exceeds_simplified() {
        // Erlang-C is a probability <= 1, so the full form's waiting term
        // is at most the simplified one's.
        let m = model();
        for util in [0.3, 0.6, 0.9, 0.99] {
            let n = 150u64;
            let lambda = util * n as f64 * m.service_rate;
            let s = m.response_time(n, lambda).unwrap();
            let f = m.response_time_full(n, lambda).unwrap();
            assert!(f <= s + 1e-12, "util {util}: full {f} > simplified {s}");
        }
    }

    #[test]
    fn higher_variability_needs_more_servers() {
        let smooth = GgmModel::new(500.0, 0.5, 0.5);
        let bursty = GgmModel::new(500.0, 4.0, 2.0);
        let target = 2.0 * smooth.service_time();
        let lambda = 50_000.0;
        let n_smooth = smooth.min_servers(lambda, target).unwrap();
        let n_bursty = bursty.min_servers(lambda, target).unwrap();
        assert!(n_bursty >= n_smooth);
    }

    #[test]
    fn markovian_constructor_sets_unit_scvs() {
        let m = GgmModel::markovian(300.0);
        assert_eq!(m.variability(), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_service_rate_rejected() {
        GgmModel::new(0.0, 1.0, 1.0);
    }
}
