//! Discrete-event simulation of a FCFS multi-server queue.
//!
//! The paper's entire performance model rests on the (simplified)
//! Allen–Cunneen approximation; this module provides the ground truth it
//! approximates: an exact event-driven simulation of a G/G/m queue with
//! first-come-first-served dispatch to the earliest-available server.
//! The validation tests compare simulated mean response times against the
//! analytic M/M/m formulas and check that the paper's conservative server
//! sizing actually meets its response-time targets.

use billcap_rt::{Rng, Xoshiro256pp};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A non-negative inter-arrival / service time distribution, chosen by
/// mean and squared coefficient of variation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Point mass at `value` (SCV 0).
    Deterministic {
        /// The constant time.
        value: f64,
    },
    /// Exponential with the given mean (SCV 1).
    Exponential {
        /// Mean time.
        mean: f64,
    },
    /// Erlang-k: sum of `k` exponentials (SCV `1/k`).
    Erlang {
        /// Number of exponential phases.
        k: u32,
        /// Mean of the whole sum.
        mean: f64,
    },
    /// Two-phase balanced-means hyperexponential (SCV > 1).
    HyperExp {
        /// Probability of drawing from phase 1.
        p: f64,
        /// Mean of phase 1.
        mean1: f64,
        /// Mean of phase 2.
        mean2: f64,
    },
}

impl Distribution {
    /// Builds a distribution matching a mean and SCV:
    /// SCV 0 → deterministic, SCV < 1 → Erlang (nearest `1/k`),
    /// SCV 1 → exponential, SCV > 1 → balanced H₂.
    pub fn from_mean_scv(mean: f64, scv: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        assert!(scv >= 0.0, "SCV must be non-negative");
        if scv == 0.0 {
            Distribution::Deterministic { value: mean }
        } else if (scv - 1.0).abs() < 1e-9 {
            Distribution::Exponential { mean }
        } else if scv < 1.0 {
            let k = (1.0 / scv).round().max(1.0) as u32;
            Distribution::Erlang { k, mean }
        } else {
            // Balanced-means H2 (Whitt): p chosen to hit the SCV.
            let p = 0.5 * (1.0 + ((scv - 1.0) / (scv + 1.0)).sqrt());
            Distribution::HyperExp {
                p,
                mean1: mean / (2.0 * p),
                mean2: mean / (2.0 * (1.0 - p)),
            }
        }
    }

    /// The distribution's mean.
    pub fn mean(&self) -> f64 {
        match *self {
            Distribution::Deterministic { value } => value,
            Distribution::Exponential { mean } => mean,
            Distribution::Erlang { mean, .. } => mean,
            Distribution::HyperExp { p, mean1, mean2 } => p * mean1 + (1.0 - p) * mean2,
        }
    }

    /// Draws a sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        match *self {
            Distribution::Deterministic { value } => value,
            Distribution::Exponential { mean } => exp_sample(rng, mean),
            Distribution::Erlang { k, mean } => {
                let phase_mean = mean / k as f64;
                (0..k).map(|_| exp_sample(rng, phase_mean)).sum()
            }
            Distribution::HyperExp { p, mean1, mean2 } => {
                if rng.random::<f64>() < p {
                    exp_sample(rng, mean1)
                } else {
                    exp_sample(rng, mean2)
                }
            }
        }
    }
}

fn exp_sample<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.random::<f64>().max(1e-15);
    -mean * u.ln()
}

/// Aggregate statistics from a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimStats {
    /// Mean response (sojourn) time.
    pub mean_response: f64,
    /// Mean queueing delay (response minus service).
    pub mean_wait: f64,
    /// Fraction of requests that waited at all.
    pub wait_probability: f64,
    /// Requests simulated (after warm-up).
    pub completed: u64,
    /// Response-time percentiles, sampled exactly: `(0.50, 0.95, 0.99)`.
    pub response_percentiles: (f64, f64, f64),
}

impl SimStats {
    /// Median response time.
    pub fn p50(&self) -> f64 {
        self.response_percentiles.0
    }

    /// 95th-percentile response time.
    pub fn p95(&self) -> f64 {
        self.response_percentiles.1
    }

    /// 99th-percentile response time.
    pub fn p99(&self) -> f64 {
        self.response_percentiles.2
    }
}

/// FCFS G/G/m queue simulator.
#[derive(Debug, Clone)]
pub struct QueueSim {
    /// Number of identical servers.
    pub servers: u64,
    /// Inter-arrival time distribution.
    pub interarrival: Distribution,
    /// Service time distribution.
    pub service: Distribution,
    /// Requests discarded as warm-up before statistics collection.
    pub warmup: u64,
    /// RNG seed (runs are deterministic per seed).
    pub seed: u64,
}

impl QueueSim {
    /// Convenience constructor for an M/M/m system.
    pub fn mmm(servers: u64, lambda: f64, mu: f64, seed: u64) -> Self {
        assert!(lambda > 0.0 && mu > 0.0);
        Self {
            servers,
            interarrival: Distribution::Exponential { mean: 1.0 / lambda },
            service: Distribution::Exponential { mean: 1.0 / mu },
            warmup: 10_000,
            seed,
        }
    }

    /// A G/G/m system specified the way the paper's model is: arrival
    /// rate, service rate, and the two SCVs.
    pub fn ggm(servers: u64, lambda: f64, mu: f64, scv_a: f64, scv_b: f64, seed: u64) -> Self {
        Self {
            servers,
            interarrival: Distribution::from_mean_scv(1.0 / lambda, scv_a),
            service: Distribution::from_mean_scv(1.0 / mu, scv_b),
            warmup: 10_000,
            seed,
        }
    }

    /// Runs the simulation for `requests` completed requests (after the
    /// warm-up period) and returns aggregate statistics.
    ///
    /// FCFS to the earliest-free server is simulated with a min-heap of
    /// server-free times, which is exact for this discipline and runs in
    /// `O(n log m)`.
    pub fn run(&self, requests: u64) -> SimStats {
        assert!(self.servers > 0, "need at least one server");
        let mut rng = Xoshiro256pp::seed_from_u64(self.seed);
        // Min-heap of times at which servers become free.
        let mut free_at: BinaryHeap<Reverse<OrderedF64>> = (0..self.servers)
            .map(|_| Reverse(OrderedF64(0.0)))
            .collect();
        let mut clock = 0.0f64;
        let mut total_response = 0.0;
        let mut total_wait = 0.0;
        let mut waited = 0u64;
        let mut completed = 0u64;
        let mut responses: Vec<f64> = Vec::with_capacity(requests as usize);
        let total = requests + self.warmup;
        for i in 0..total {
            clock += self.interarrival.sample(&mut rng);
            let service = self.service.sample(&mut rng);
            // repolint-allow(unwrap): the heap always holds exactly `servers` entries
            let Reverse(OrderedF64(earliest)) = free_at.pop().expect("non-empty heap");
            let start = earliest.max(clock);
            let finish = start + service;
            free_at.push(Reverse(OrderedF64(finish)));
            if i >= self.warmup {
                let wait = start - clock;
                let response = finish - clock;
                total_response += response;
                total_wait += wait;
                responses.push(response);
                if wait > 1e-12 {
                    waited += 1;
                }
                completed += 1;
            }
        }
        responses.sort_by(f64::total_cmp);
        let pct = |q: f64| -> f64 {
            if responses.is_empty() {
                return 0.0;
            }
            let idx = ((responses.len() as f64 * q).ceil() as usize).clamp(1, responses.len()) - 1;
            responses[idx]
        };
        SimStats {
            mean_response: total_response / completed as f64,
            mean_wait: total_wait / completed as f64,
            wait_probability: waited as f64 / completed as f64,
            completed,
            response_percentiles: (pct(0.50), pct(0.95), pct(0.99)),
        }
    }
}

/// Total-order wrapper for the event heap (times are never NaN).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}
impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ggm::GgmModel;
    use crate::mmm::mmm_mean_response_time;

    const N: u64 = 200_000;

    #[test]
    fn distribution_means_match() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for scv in [0.0, 0.25, 0.5, 1.0, 2.0, 4.0] {
            let d = Distribution::from_mean_scv(3.0, scv);
            assert!(
                (d.mean() - 3.0).abs() < 1e-9,
                "scv {scv}: mean {}",
                d.mean()
            );
            let sample_mean: f64 =
                (0..100_000).map(|_| d.sample(&mut rng)).sum::<f64>() / 100_000.0;
            assert!(
                (sample_mean - 3.0).abs() / 3.0 < 0.03,
                "scv {scv}: sample mean {sample_mean}"
            );
        }
    }

    #[test]
    fn sampled_scv_matches_request() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        for scv in [0.25, 1.0, 3.0] {
            let d = Distribution::from_mean_scv(1.0, scv);
            let samples: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
            let est = crate::scv::squared_coefficient_of_variation(&samples).unwrap();
            assert!(
                (est - scv).abs() / scv.max(0.5) < 0.1,
                "scv {scv}: estimated {est}"
            );
        }
    }

    #[test]
    fn mm1_matches_closed_form() {
        // M/M/1 at rho = 0.7: R = 1/(mu - lambda).
        let sim = QueueSim::mmm(1, 0.7, 1.0, 42).run(N);
        let expect = 1.0 / (1.0 - 0.7);
        let rel = (sim.mean_response - expect).abs() / expect;
        assert!(rel < 0.03, "sim {} vs {expect}", sim.mean_response);
    }

    #[test]
    fn mmm_matches_erlang_c_formula() {
        // M/M/10 at rho = 0.8.
        let (m, mu) = (10u64, 1.0);
        let lambda = 8.0;
        let sim = QueueSim::mmm(m, lambda, mu, 7).run(N);
        let expect = mmm_mean_response_time(m, lambda, mu).unwrap();
        let rel = (sim.mean_response - expect).abs() / expect;
        assert!(rel < 0.03, "sim {} vs analytic {expect}", sim.mean_response);
    }

    #[test]
    fn deterministic_service_halves_the_wait() {
        // M/D/1: Wq is half of M/M/1's (PK formula).
        let lambda = 0.8;
        let mm1 = QueueSim::mmm(1, lambda, 1.0, 5).run(N);
        let md1 = QueueSim {
            service: Distribution::Deterministic { value: 1.0 },
            ..QueueSim::mmm(1, lambda, 1.0, 5)
        }
        .run(N);
        let ratio = md1.mean_wait / mm1.mean_wait;
        assert!((ratio - 0.5).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn bursty_arrivals_increase_delay() {
        let smooth = QueueSim::ggm(4, 3.0, 1.0, 0.25, 1.0, 11).run(N);
        let bursty = QueueSim::ggm(4, 3.0, 1.0, 4.0, 1.0, 11).run(N);
        assert!(
            bursty.mean_wait > 1.5 * smooth.mean_wait,
            "bursty {} vs smooth {}",
            bursty.mean_wait,
            smooth.mean_wait
        );
    }

    #[test]
    fn allen_cunneen_full_form_tracks_simulation() {
        // The proper Allen-Cunneen approximation (with Erlang-C) should be
        // within ~15% of simulated G/G/m at moderate-to-high utilization.
        let model = GgmModel::new(1.0, 2.0, 0.5);
        for (m, lambda) in [(5u64, 4.0f64), (10, 8.5), (20, 18.0)] {
            let sim = QueueSim::ggm(m, lambda, 1.0, 2.0, 0.5, 13).run(N);
            let approx = model.response_time_full(m, lambda).unwrap();
            let rel = (approx - sim.mean_response).abs() / sim.mean_response;
            assert!(
                rel < 0.15,
                "m={m} lambda={lambda}: approx {approx} vs sim {} (rel {rel})",
                sim.mean_response
            );
        }
    }

    #[test]
    fn paper_sizing_meets_target_empirically() {
        // The paper's simplified sizing (rho ~ 1 bound) is conservative:
        // the server count it picks must meet the response-time target in
        // the exact simulation.
        let model = GgmModel::new(1.0, 1.0, 1.0);
        let target = 1.5; // 1.5x the bare service time
        for lambda in [3.0, 17.0, 49.0] {
            let n = model.min_servers(lambda, target).unwrap();
            let sim = QueueSim::ggm(n, lambda, 1.0, 1.0, 1.0, 17).run(N);
            assert!(
                sim.mean_response <= target * 1.02,
                "lambda {lambda}: n={n} gives simulated R {} > target {target}",
                sim.mean_response
            );
        }
    }

    #[test]
    fn wait_probability_sane() {
        let light = QueueSim::mmm(10, 2.0, 1.0, 3).run(N);
        let heavy = QueueSim::mmm(10, 9.5, 1.0, 3).run(N);
        assert!(light.wait_probability < 0.05, "{}", light.wait_probability);
        assert!(heavy.wait_probability > 0.6, "{}", heavy.wait_probability);
    }

    #[test]
    fn deterministic_seeds_reproduce() {
        let a = QueueSim::mmm(4, 3.0, 1.0, 99).run(50_000);
        let b = QueueSim::mmm(4, 3.0, 1.0, 99).run(50_000);
        assert_eq!(a, b);
    }

    #[test]
    fn percentiles_are_ordered_and_bracket_the_mean() {
        let s = QueueSim::mmm(4, 3.2, 1.0, 21).run(N);
        assert!(s.p50() <= s.p95());
        assert!(s.p95() <= s.p99());
        // For right-skewed response distributions the median sits below
        // the mean and the p99 above it.
        assert!(s.p50() < s.mean_response);
        assert!(s.p99() > s.mean_response);
    }

    #[test]
    fn mm1_p99_matches_exponential_sojourn() {
        // M/M/1 sojourn time is Exp(mu - lambda): p99 = ln(100)/(mu-lambda).
        let (lambda, mu) = (0.6, 1.0);
        let s = QueueSim::mmm(1, lambda, mu, 23).run(N);
        let expect = (100.0f64).ln() / (mu - lambda);
        let rel = (s.p99() - expect).abs() / expect;
        assert!(rel < 0.05, "p99 {} vs {expect}", s.p99());
    }
}
