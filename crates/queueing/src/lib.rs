//! # billcap-queueing
//!
//! Queueing-theoretic performance models for the `billcap` reproduction of
//! *Electricity Bill Capping for Cloud-Scale Data Centers that Impact the
//! Power Markets* (ICPP 2012).
//!
//! The paper models each data center as a **G/G/m queue**: `m` homogeneous
//! servers with service rate `μ`, generally distributed inter-arrival times
//! (squared coefficient of variation `C²_A`) and service times (`C²_B`).
//! Its equation (3) is the Allen–Cunneen approximation, further simplified
//! with the observation that a local optimizer keeps active servers near
//! full utilization (`ρ ≈ 1`):
//!
//! ```text
//! R  =  1/μ  +  (C²_A + C²_B)/2 · 1/(nμ − λ)
//! ```
//!
//! That form is linear in `λ` once solved for the server count `n`, which
//! is what makes the paper's cost-minimization MILP linear:
//!
//! ```text
//! R ≤ Rs   ⇔   n ≥ λ/μ + K/(μ·(Rs − 1/μ)),   K = (C²_A + C²_B)/2
//! ```
//!
//! This crate provides that simplified model ([`GgmModel`]), the *full*
//! Allen–Cunneen approximation with the Erlang-C waiting probability
//! ([`GgmModel::response_time_full`], used to validate how tight the
//! simplification is), exact M/M/m formulas for cross-checks ([`mmm`]),
//! SCV estimators for characterizing traces ([`scv`]), and an exact
//! discrete-event G/G/m simulator ([`des`]) that serves as ground truth:
//! its tests confirm that the full Allen–Cunneen form tracks simulation
//! within ~15 % and that the paper's conservative server sizing meets its
//! response-time targets empirically.
//!
//! ## Example
//!
//! Size a site for an offered rate and check the resulting response time:
//!
//! ```
//! use billcap_queueing::GgmModel;
//!
//! // 1000 requests/hour/server, C²_A = 4 (bursty), C²_B = 1.
//! let model = GgmModel::new(1000.0, 4.0, 1.0);
//! let target = 2.0 * model.service_time(); // twice the bare service time
//!
//! // Servers the local optimizer starts for 1M requests/hour...
//! let servers = model.min_servers(1e6, target).unwrap();
//! // ...and the simplified Allen–Cunneen response time they achieve.
//! let response = model.response_time(servers, 1e6).unwrap();
//! assert!(response <= target);
//! // One server fewer misses the target (or is outright unstable).
//! let worse = model.response_time(servers - 1, 1e6).unwrap_or(f64::INFINITY);
//! assert!(worse > target);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod des;
pub mod ggm;
pub mod mmm;
pub mod scv;

pub use des::{Distribution, QueueSim, SimStats};
pub use ggm::{GgmModel, QueueingError};
pub use mmm::{erlang_c, mmm_mean_response_time};
pub use scv::squared_coefficient_of_variation;
