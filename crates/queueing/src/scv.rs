//! Squared-coefficient-of-variation estimation.
//!
//! The paper's bill capper monitors request inter-arrival times and request
//! sizes to characterize `C²_A` and `C²_B` online (Section IV-B). This
//! module provides the estimator those components use.

/// Estimates the squared coefficient of variation `Var(X)/E[X]²` of a
/// sample. Uses the unbiased (n−1) variance estimator.
///
/// Returns `None` for samples with fewer than two points or a zero mean
/// (the SCV is undefined there).
pub fn squared_coefficient_of_variation(samples: &[f64]) -> Option<f64> {
    if samples.len() < 2 {
        return None;
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return None;
    }
    let var = samples
        .iter()
        .map(|x| {
            let d = x - mean;
            d * d
        })
        .sum::<f64>()
        / (n - 1.0);
    Some(var / (mean * mean))
}

/// Streaming SCV estimator (Welford's algorithm), suitable for the online
/// monitoring loop of the bill capper.
#[derive(Debug, Clone, Default)]
pub struct ScvEstimator {
    count: u64,
    mean: f64,
    m2: f64,
}

impl ScvEstimator {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current SCV estimate (`None` with fewer than two observations or a
    /// zero mean).
    pub fn scv(&self) -> Option<f64> {
        if self.count < 2 || self.mean == 0.0 {
            return None;
        }
        let var = self.m2 / (self.count - 1) as f64;
        Some(var / (self.mean * self.mean))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_sample_has_zero_scv() {
        let s = vec![3.0; 10];
        assert_eq!(squared_coefficient_of_variation(&s), Some(0.0));
    }

    #[test]
    fn known_small_sample() {
        // Sample {1, 3}: mean 2, var (unbiased) 2, SCV = 2/4 = 0.5.
        let scv = squared_coefficient_of_variation(&[1.0, 3.0]).unwrap();
        assert!((scv - 0.5).abs() < 1e-12);
    }

    #[test]
    fn too_small_or_zero_mean_is_none() {
        assert_eq!(squared_coefficient_of_variation(&[1.0]), None);
        assert_eq!(squared_coefficient_of_variation(&[]), None);
        assert_eq!(squared_coefficient_of_variation(&[-1.0, 1.0]), None);
    }

    #[test]
    fn streaming_matches_batch() {
        let data = [0.4, 1.7, 2.2, 0.9, 3.1, 1.5, 0.2, 2.8];
        let batch = squared_coefficient_of_variation(&data).unwrap();
        let mut est = ScvEstimator::new();
        for &x in &data {
            est.push(x);
        }
        let streaming = est.scv().unwrap();
        assert!((batch - streaming).abs() < 1e-12);
        assert_eq!(est.count(), data.len() as u64);
    }

    #[test]
    fn exponential_like_sample_has_scv_near_one() {
        // Deterministic stand-in for Exp(1) via inverse-CDF at quantile
        // midpoints; its SCV is close to 1 (the M in M/M/m).
        let n = 10_000;
        let sample: Vec<f64> = (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                -(1.0 - u).ln()
            })
            .collect();
        let scv = squared_coefficient_of_variation(&sample).unwrap();
        assert!((scv - 1.0).abs() < 0.05, "scv {scv}");
    }
}
