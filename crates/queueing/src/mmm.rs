//! Exact M/M/m formulas, used to cross-check the G/G/m approximations.

/// Erlang-C formula: probability that an arriving request must wait in an
/// M/M/m queue with `m` servers and offered load `a = λ/μ` (in Erlangs).
///
/// Computed with the numerically stable iterative form of the Erlang-B
/// recursion followed by the B→C conversion, which avoids factorials and
/// is exact for all practical `m`.
///
/// Returns 1.0 when the system is saturated (`a >= m`).
pub fn erlang_c(m: u64, a: f64) -> f64 {
    assert!(a >= 0.0, "offered load must be non-negative");
    if m == 0 {
        return 1.0;
    }
    let m_f = m as f64;
    if a >= m_f {
        return 1.0;
    }
    if a == 0.0 {
        return 0.0;
    }
    // Erlang-B by recursion: B(0) = 1; B(k) = a*B(k-1) / (k + a*B(k-1)).
    let mut b = 1.0;
    for k in 1..=m {
        b = a * b / (k as f64 + a * b);
    }
    // C = B / (1 - (a/m)(1 - B)).
    let rho = a / m_f;
    b / (1.0 - rho * (1.0 - b))
}

/// Mean response time of an M/M/m queue: `1/μ + C(m, a)/(mμ − λ)`.
///
/// Returns `None` when unstable (`λ >= mμ`).
pub fn mmm_mean_response_time(m: u64, lambda: f64, mu: f64) -> Option<f64> {
    assert!(mu > 0.0);
    let capacity = m as f64 * mu;
    if lambda >= capacity {
        return None;
    }
    if lambda <= 0.0 {
        return Some(1.0 / mu);
    }
    let c = erlang_c(m, lambda / mu);
    Some(1.0 / mu + c / (capacity - lambda))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erlang_c_single_server_is_utilization() {
        // For M/M/1, P(wait) = rho.
        for rho in [0.1, 0.5, 0.9] {
            let c = erlang_c(1, rho);
            assert!((c - rho).abs() < 1e-12, "rho {rho}: {c}");
        }
    }

    #[test]
    fn erlang_c_known_value() {
        // Classic tabulated value: m = 10, a = 7 Erlangs -> C ≈ 0.2217.
        let c = erlang_c(10, 7.0);
        assert!((c - 0.2217).abs() < 5e-4, "{c}");
    }

    #[test]
    fn erlang_c_monotone_in_load() {
        let mut prev = 0.0;
        for i in 1..20 {
            let a = i as f64;
            let c = erlang_c(20, a);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn erlang_c_bounds() {
        for m in [1u64, 5, 50, 500] {
            for frac in [0.1, 0.5, 0.9, 0.99] {
                let a = frac * m as f64;
                let c = erlang_c(m, a);
                assert!((0.0..=1.0).contains(&c), "m={m} a={a}: {c}");
            }
        }
    }

    #[test]
    fn saturated_system_always_waits() {
        assert_eq!(erlang_c(10, 10.0), 1.0);
        assert_eq!(erlang_c(10, 15.0), 1.0);
        assert_eq!(erlang_c(0, 0.5), 1.0);
    }

    #[test]
    fn mm1_response_time_matches_closed_form() {
        // M/M/1: R = 1/(μ − λ).
        let mu = 2.0;
        let lambda = 1.5;
        let r = mmm_mean_response_time(1, lambda, mu).unwrap();
        assert!((r - 1.0 / (mu - lambda)).abs() < 1e-12);
    }

    #[test]
    fn unstable_returns_none() {
        assert!(mmm_mean_response_time(2, 5.0, 2.0).is_none());
    }

    #[test]
    fn zero_load_is_pure_service_time() {
        assert_eq!(mmm_mean_response_time(4, 0.0, 2.0), Some(0.5));
    }

    #[test]
    fn large_server_count_is_stable_numerically() {
        // 300k servers (paper scale): must not overflow or lose precision.
        let c = erlang_c(300_000, 299_000.0);
        assert!((0.0..=1.0).contains(&c));
        let c2 = erlang_c(300_000, 100_000.0);
        assert!(
            c2 < 1e-6,
            "lightly loaded huge farm should rarely queue: {c2}"
        );
    }
}
