//! Lexical pass: strips comments and literals, tracks `#[cfg(test)]`
//! regions by brace depth, and collects `detlint-allow` waivers.
//!
//! The downstream passes only ever look at [`Line::code`], so string
//! literals can never fake a call, a brace, or a taint token, and
//! comments can never hide one. Waiver directives are recognized in
//! plain `//` comments only — doc comments (`///`, `//!`) are prose and
//! stay inert, so documentation may *mention* a waiver without minting
//! one.

/// A determinism-lint waiver: `// detlint-allow(D003): reason`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// The waived finding code, e.g. `"D003"`.
    pub code: String,
    /// The rationale after the colon. Empty when the author omitted it
    /// (which is itself a D008 finding).
    pub reason: String,
    /// 1-based line the waiver comment sits on.
    pub line: usize,
}

/// One source line after lexical stripping.
#[derive(Debug, Clone)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// The code with string/char literals blanked and comments removed.
    pub code: String,
    /// Waivers in effect on this line (written here or on the directly
    /// preceding comment line).
    pub waivers: Vec<Waiver>,
    /// Whether the line is inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// Parses `detlint-allow(CODE): reason` out of a comment body.
fn parse_waiver(comment: &str, line: usize) -> Option<Waiver> {
    let pos = comment.find("detlint-allow(")?;
    let tail = &comment[pos + "detlint-allow(".len()..];
    let end = tail.find(')')?;
    let code = tail[..end].trim().to_string();
    let rest = &tail[end + 1..];
    let reason = rest
        .strip_prefix(':')
        .map(|r| r.trim().to_string())
        .unwrap_or_default();
    Some(Waiver { code, reason, line })
}

/// Lexes a file into [`Line`]s.
pub fn lex(text: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut depth: i64 = 0;
    // While `Some(d)`, we are inside a `#[cfg(test)]` item whose body
    // opened at depth `d`.
    let mut test_until: Option<i64> = None;
    // A `#[cfg(test)]` attribute was seen; the next `{` opens its body.
    let mut pending_test = false;
    let mut in_block_comment = false;
    let mut prev_waivers: Vec<Waiver> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let number = idx + 1;
        let in_test_at_start = test_until.is_some();
        let mut code = String::new();
        let mut waivers = prev_waivers.clone();
        let mut chars = raw.chars().peekable();
        while let Some(c) = chars.next() {
            if in_block_comment {
                if c == '*' && chars.peek() == Some(&'/') {
                    chars.next();
                    in_block_comment = false;
                }
                continue;
            }
            match c {
                '/' if chars.peek() == Some(&'/') => {
                    chars.next();
                    let comment: String = chars.collect();
                    // `///` and `//!` are documentation, not directives.
                    let is_doc = comment.starts_with('/') || comment.starts_with('!');
                    if !is_doc {
                        if let Some(w) = parse_waiver(&comment, number) {
                            waivers.push(w);
                        }
                    }
                    break;
                }
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    in_block_comment = true;
                }
                '"' => {
                    // String literal: skip to the unescaped closing quote.
                    code.push('"');
                    let mut escaped = false;
                    for s in chars.by_ref() {
                        if escaped {
                            escaped = false;
                        } else if s == '\\' {
                            escaped = true;
                        } else if s == '"' {
                            break;
                        }
                    }
                    code.push('"');
                }
                '\'' => {
                    // Char literal or lifetime. A char literal closes
                    // within a few characters; a lifetime has no close.
                    let lookahead: String = chars.clone().take(3).collect();
                    let mut la = lookahead.chars();
                    match (la.next(), la.next(), la.next()) {
                        (Some('\\'), _, _) => {
                            for s in chars.by_ref() {
                                if s == '\'' {
                                    break;
                                }
                            }
                        }
                        (Some(_), Some('\''), _) => {
                            chars.next();
                            chars.next();
                        }
                        _ => {} // lifetime: keep lexing normally
                    }
                    code.push('\'');
                }
                _ => code.push(c),
            }
        }

        if code.contains("#[cfg(test)]") {
            pending_test = true;
        }
        let mut touched_test = false;
        for c in code.chars() {
            match c {
                '{' => {
                    if pending_test && test_until.is_none() {
                        test_until = Some(depth);
                        pending_test = false;
                        touched_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_until.is_some_and(|d| depth <= d) {
                        test_until = None;
                    }
                }
                _ => {}
            }
        }

        // Waivers written on their own comment line apply to the next
        // code line as well.
        prev_waivers = if code.trim().is_empty() {
            waivers.clone()
        } else {
            Vec::new()
        };

        out.push(Line {
            number,
            code,
            waivers,
            in_test: in_test_at_start || test_until.is_some() || touched_test,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_strings_and_comments() {
        let ls = lex("let x = \"Instant::now\"; // Instant::now\n");
        assert_eq!(ls[0].code, "let x = \"\"; ");
    }

    #[test]
    fn waiver_with_reason_parses() {
        let ls = lex("foo(); // detlint-allow(D003): advisory only\n");
        assert_eq!(ls[0].waivers.len(), 1);
        assert_eq!(ls[0].waivers[0].code, "D003");
        assert_eq!(ls[0].waivers[0].reason, "advisory only");
        assert_eq!(ls[0].waivers[0].line, 1);
    }

    #[test]
    fn waiver_without_reason_has_empty_reason() {
        let ls = lex("foo(); // detlint-allow(D001)\n");
        assert_eq!(ls[0].waivers[0].reason, "");
    }

    #[test]
    fn waiver_on_preceding_line_carries_forward() {
        let ls = lex("// detlint-allow(D004): config switch\nread_env();\n");
        assert_eq!(ls[1].waivers.len(), 1);
        assert_eq!(ls[1].waivers[0].line, 1);
    }

    #[test]
    fn doc_comments_do_not_mint_waivers() {
        let ls = lex("/// use `// detlint-allow(D001): why` to waive\nfn f() {}\n");
        assert!(ls[0].waivers.is_empty());
        assert!(ls[1].waivers.is_empty());
    }

    #[test]
    fn cfg_test_regions_are_tracked() {
        let src = "fn a() {}\n#[cfg(test)]\nmod t {\n  fn b() {}\n}\nfn c() {}\n";
        let ls = lex(src);
        assert!(!ls[0].in_test);
        assert!(ls[3].in_test);
        assert!(ls[4].in_test);
        assert!(!ls[5].in_test);
    }
}
