//! Item pass: a lightweight Rust item parser producing a per-crate
//! symbol table.
//!
//! The parser is *lexical*, not grammatical: it walks the stripped
//! [`crate::lex::Line`]s of a file, tracks brace depth, and recognizes
//! `mod` / `impl` / `trait` / `fn` item declarations by their leading
//! keyword tokens. Every function (free, method, trait default) becomes
//! a [`Symbol`] carrying its signature header and body lines, tagged
//! with the enclosing impl/trait type. That is enough for the
//! conservative call graph in [`crate::analyze`]: over-approximation is
//! always safe there, so the parser prefers "attach the line to the
//! innermost open function" over full expression parsing.
//!
//! `use` declarations are also collected (last segment → full path) so
//! free-function calls can prefer an exact cross-crate target before
//! falling back to match-by-name.

use crate::lex::{Line, Waiver};
use std::collections::HashMap;

/// One line of a function body (stripped code + active waivers).
#[derive(Debug, Clone)]
pub struct BodyLine {
    /// 1-based line number in the file.
    pub number: usize,
    /// Stripped code.
    pub code: String,
    /// Waivers in effect on this line.
    pub waivers: Vec<Waiver>,
}

/// A parsed function.
#[derive(Debug, Clone)]
pub struct Symbol {
    /// Crate directory name (e.g. `core`), or `billcap` for the root.
    pub crate_name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based declaration line.
    pub line: usize,
    /// Enclosing `impl`/`trait` self type, when the fn is a method.
    pub impl_type: Option<String>,
    /// The function's simple name.
    pub name: String,
    /// Whether the fn sits inside a `#[cfg(test)]` region.
    pub is_test: bool,
    /// Signature text accumulated up to the opening brace.
    pub header: String,
    /// Body lines, declaration line included.
    pub body: Vec<BodyLine>,
    /// Module path inside the crate (nested `mod` names).
    pub modules: Vec<String>,
}

impl Symbol {
    /// `crate::module::Type::name`-style display path.
    pub fn path(&self) -> String {
        let mut parts = vec![self.crate_name.clone()];
        parts.extend(self.modules.iter().cloned());
        if let Some(t) = &self.impl_type {
            parts.push(t.clone());
        }
        parts.push(self.name.clone());
        parts.join("::")
    }
}

/// Everything the parser extracts from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// Parsed functions.
    pub symbols: Vec<Symbol>,
    /// `use` imports: simple name → full path (`Foo` → `billcap_milp::Foo`).
    pub imports: HashMap<String, String>,
    /// Identifiers declared with a `HashMap`/`HashSet` type anywhere in
    /// the file (struct fields, params, locals).
    pub hash_idents: Vec<String>,
    /// Every waiver written in the file, at its origin line.
    pub waivers: Vec<Waiver>,
}

/// What kind of item a pending declaration opens.
#[derive(Debug, Clone, PartialEq)]
enum Decl {
    Mod(String),
    Trait(String),
    /// Header text accumulated until the opening brace.
    Impl(String),
    /// (name, symbol header accumulated until the opening brace).
    Fn(String, String),
}

/// An open brace-delimited item context.
#[derive(Debug)]
enum Ctx {
    Mod { name: String, open_depth: i64 },
    TypeBlock { ty: String, open_depth: i64 },
    Fn { sym: usize, open_depth: i64 },
}

/// Splits stripped code into identifier tokens with byte columns.
fn tokens(code: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut start: Option<usize> = None;
    for (i, c) in code.char_indices() {
        if c.is_alphanumeric() || c == '_' {
            if start.is_none() {
                start = Some(i);
            }
        } else if let Some(s) = start.take() {
            out.push((s, &code[s..i]));
        }
    }
    if let Some(s) = start {
        out.push((s, &code[s..]));
    }
    out
}

/// Extracts the self type from an accumulated `impl` header: the last
/// path segment of the type after `for` (trait impls) or of the first
/// type otherwise, generics stripped.
fn impl_self_type(header: &str) -> Option<String> {
    // Drop the generic parameter list right after `impl`.
    let mut rest = header.trim_start();
    rest = rest.strip_prefix("impl")?;
    let rest = skip_generics(rest.trim_start());
    // `impl Trait for Type {` → take the part after ` for `.
    let type_part = match rest.find(" for ") {
        Some(p) => &rest[p + 5..],
        None => rest,
    };
    let type_part = type_part
        .split(['{', '<'])
        .next()
        .unwrap_or("")
        .trim()
        .trim_end_matches("where")
        .trim();
    let seg = type_part.rsplit("::").next().unwrap_or("").trim();
    let seg: String = seg
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if seg.is_empty() {
        None
    } else {
        Some(seg)
    }
}

/// Skips a balanced `<...>` generic list at the start of `s`.
fn skip_generics(s: &str) -> &str {
    if !s.starts_with('<') {
        return s;
    }
    let mut depth = 0i32;
    for (i, c) in s.char_indices() {
        match c {
            '<' => depth += 1,
            '>' => {
                depth -= 1;
                if depth == 0 {
                    return s[i + 1..].trim_start();
                }
            }
            _ => {}
        }
    }
    s
}

/// Whether a `fn` token at this position declares an item (as opposed
/// to a `fn(...)` pointer type): the next token must be an identifier.
fn fn_name_after(code: &str, fn_end: usize) -> Option<String> {
    let rest = code[fn_end..].trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(name)
    }
}

/// Collects identifiers declared with a hash-ordered collection type on
/// this line: `name: ... HashMap<...>` / `let name = HashSet::new()`.
fn hash_decls(code: &str, out: &mut Vec<String>) {
    if !code.contains("HashMap") && !code.contains("HashSet") {
        return;
    }
    // `name : Type` declarations where Type mentions HashMap/HashSet
    // before the next declaration boundary.
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b':' {
            continue;
        }
        // Skip `::` path separators.
        if i + 1 < bytes.len() && bytes[i + 1] == b':' {
            continue;
        }
        if i > 0 && bytes[i - 1] == b':' {
            continue;
        }
        let name_end = code[..i].trim_end();
        let name: String = name_end
            .chars()
            .rev()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect::<String>()
            .chars()
            .rev()
            .collect();
        if name.is_empty() {
            continue;
        }
        let ty = &code[i + 1..];
        let ty_end = ty.find([';', '=']).map(|p| &ty[..p]).unwrap_or(ty);
        if ty_end.contains("HashMap") || ty_end.contains("HashSet") {
            out.push(name);
        }
    }
    // `let [mut] name = HashMap::new()` without a type annotation.
    if let Some(pos) = code.find("let ") {
        let rest = code[pos + 4..].trim_start();
        let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() {
            let after = &rest[name.len()..];
            if !after.trim_start().starts_with(':')
                && (after.contains("HashMap::") || after.contains("HashSet::"))
            {
                out.push(name);
            }
        }
    }
}

/// Parses a `use` declaration into (simple name → full path) pairs.
/// Handles plain paths, `as` renames, and one level of `{a, b as c}`
/// grouping — the forms rustfmt produces in this workspace.
fn parse_use(code: &str, imports: &mut HashMap<String, String>) {
    let rest = code.trim_start();
    let Some(rest) = rest
        .strip_prefix("pub use ")
        .or_else(|| rest.strip_prefix("use "))
    else {
        return;
    };
    let rest = rest.trim_end().trim_end_matches(';');
    let (prefix, names) = match rest.find('{') {
        Some(p) if rest.ends_with('}') => (
            rest[..p].to_string(),
            rest[p + 1..rest.len() - 1].to_string(),
        ),
        Some(_) => return, // multi-line use group: skip conservatively
        None => (String::new(), rest.to_string()),
    };
    for item in names.split(',') {
        let item = item.trim();
        if item.is_empty() || item == "*" {
            continue;
        }
        let (path, alias) = match item.find(" as ") {
            Some(p) => (item[..p].trim(), Some(item[p + 4..].trim())),
            None => (item, None),
        };
        let full = format!("{prefix}{path}");
        let simple = alias
            .unwrap_or_else(|| path.rsplit("::").next().unwrap_or(path))
            .to_string();
        if !simple.is_empty() && simple != "self" {
            imports.insert(simple, full);
        }
    }
}

/// Parses one file's lexed lines into symbols, imports, hash-typed
/// identifier declarations, and the waiver registry.
pub fn parse_file(crate_name: &str, file: &str, lines: &[Line]) -> FileItems {
    let mut items = FileItems::default();
    let mut depth: i64 = 0;
    let mut ctx: Vec<Ctx> = Vec::new();
    let mut pending: Option<Decl> = None;
    let mut seen_waivers: Vec<(usize, String)> = Vec::new();

    for line in lines {
        let code = line.code.as_str();
        hash_decls(code, &mut items.hash_idents);
        if code.trim_start().starts_with("use ") || code.trim_start().starts_with("pub use ") {
            parse_use(code, &mut items.imports);
        }
        for w in &line.waivers {
            if !seen_waivers.contains(&(w.line, w.code.clone())) {
                seen_waivers.push((w.line, w.code.clone()));
                items.waivers.push(w.clone());
            }
        }

        // Accumulate a pending impl/fn header until its brace opens.
        if let Some(Decl::Impl(h) | Decl::Fn(_, h)) = &mut pending {
            h.push(' ');
            h.push_str(code);
        }

        // Scan for item declarations on this line, in order.
        let toks = tokens(code);
        let mut decls: Vec<(usize, Decl)> = Vec::new();
        for (ti, &(col, tok)) in toks.iter().enumerate() {
            match tok {
                "fn" => {
                    if let Some(name) = fn_name_after(code, col + 2) {
                        decls.push((col, Decl::Fn(name, code[col..].to_string())));
                    }
                }
                // Only a leading `impl` declares an item; `-> impl
                // Trait` and `impl Fn(...)` bounds appear mid-line.
                "impl" if ti == 0 => {
                    decls.push((col, Decl::Impl(code[col..].to_string())));
                }
                "mod" | "trait" => {
                    let leading = ti == 0
                        || toks[..ti]
                            .iter()
                            .all(|&(_, t)| matches!(t, "pub" | "crate" | "super" | "in"));
                    if leading {
                        if let Some(name) = toks.get(ti + 1).map(|&(_, n)| n.to_string()) {
                            decls.push((
                                col,
                                if tok == "mod" {
                                    Decl::Mod(name)
                                } else {
                                    Decl::Trait(name)
                                },
                            ));
                        }
                    }
                }
                _ => {}
            }
        }
        let mut decl_iter = decls.into_iter().peekable();

        // Walk the braces, opening/closing contexts.
        for (col, c) in code.char_indices() {
            // Promote any declaration that starts before this position.
            while decl_iter.peek().is_some_and(|&(dc, _)| dc < col) {
                let (_, d) = decl_iter.next().unwrap_or((0, Decl::Mod(String::new())));
                // A later decl on the same line replaces an unopened
                // earlier one only if the earlier one already closed
                // with `;` — handled below. Otherwise queue it.
                pending = Some(d);
            }
            match c {
                '{' => {
                    match pending.take() {
                        Some(Decl::Mod(name)) => ctx.push(Ctx::Mod {
                            name,
                            open_depth: depth,
                        }),
                        Some(Decl::Trait(ty)) => ctx.push(Ctx::TypeBlock {
                            ty,
                            open_depth: depth,
                        }),
                        Some(Decl::Impl(header)) => {
                            let ty = impl_self_type(&header).unwrap_or_default();
                            ctx.push(Ctx::TypeBlock {
                                ty,
                                open_depth: depth,
                            });
                        }
                        Some(Decl::Fn(name, header)) => {
                            let impl_type = ctx.iter().rev().find_map(|c| match c {
                                Ctx::TypeBlock { ty, .. } if !ty.is_empty() => Some(ty.clone()),
                                _ => None,
                            });
                            let modules = ctx
                                .iter()
                                .filter_map(|c| match c {
                                    Ctx::Mod { name, .. } => Some(name.clone()),
                                    _ => None,
                                })
                                .collect();
                            let header_end = header.find('{').map(|p| header[..p].to_string());
                            items.symbols.push(Symbol {
                                crate_name: crate_name.to_string(),
                                file: file.to_string(),
                                line: line.number,
                                impl_type,
                                name,
                                is_test: line.in_test,
                                header: header_end.unwrap_or(header),
                                body: Vec::new(),
                                modules,
                            });
                            ctx.push(Ctx::Fn {
                                sym: items.symbols.len() - 1,
                                open_depth: depth,
                            });
                        }
                        None => {}
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    while ctx.last().is_some_and(|c| {
                        let od = match c {
                            Ctx::Mod { open_depth, .. }
                            | Ctx::TypeBlock { open_depth, .. }
                            | Ctx::Fn { open_depth, .. } => *open_depth,
                        };
                        depth <= od
                    }) {
                        ctx.pop();
                    }
                }
                ';' => {
                    // A semicolon closes an unopened declaration
                    // (trait method signature, `mod name;`).
                    pending = None;
                }
                _ => {}
            }
        }
        // Declarations after the last brace stay pending for the next line.
        if let Some((_, d)) = decl_iter.next() {
            pending = Some(d);
        }

        // Attribute the line to the innermost open function.
        if let Some(sym) = ctx.iter().rev().find_map(|c| match c {
            Ctx::Fn { sym, .. } => Some(*sym),
            _ => None,
        }) {
            items.symbols[sym].body.push(BodyLine {
                number: line.number,
                code: line.code.clone(),
                waivers: line.waivers.clone(),
            });
        }
    }
    items.hash_idents.sort();
    items.hash_idents.dedup();
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn parse(src: &str) -> FileItems {
        parse_file("demo", "src/lib.rs", &lex(src))
    }

    #[test]
    fn free_and_method_fns_are_found() {
        let src = "\
pub fn free(x: u64) -> u64 {
    x + 1
}
impl Engine {
    pub fn decide(&self) -> f64 {
        self.solve()
    }
}
impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Ok(())
    }
}
";
        let items = parse(src);
        let names: Vec<(Option<&str>, &str)> = items
            .symbols
            .iter()
            .map(|s| (s.impl_type.as_deref(), s.name.as_str()))
            .collect();
        assert_eq!(
            names,
            vec![
                (None, "free"),
                (Some("Engine"), "decide"),
                (Some("Engine"), "fmt"),
            ]
        );
        assert_eq!(items.symbols[1].path(), "demo::Engine::decide");
    }

    #[test]
    fn bodies_attach_to_the_innermost_fn() {
        let src = "\
fn outer() {
    let x = 1;
    fn inner() {
        let y = 2;
    }
    let z = 3;
}
";
        let items = parse(src);
        let outer = &items.symbols[0];
        let inner = &items.symbols[1];
        assert!(outer.body.iter().any(|l| l.code.contains("let x")));
        assert!(outer.body.iter().any(|l| l.code.contains("let z")));
        assert!(!outer.body.iter().any(|l| l.code.contains("let y")));
        assert!(inner.body.iter().any(|l| l.code.contains("let y")));
    }

    #[test]
    fn multi_line_signatures_keep_their_header() {
        let src = "\
pub fn decide_hour(
    &mut self,
    offered: f64,
    background: &HashMap<String, f64>,
) -> Result<(), Error> {
    Ok(())
}
";
        let items = parse(src);
        assert_eq!(items.symbols.len(), 1);
        let s = &items.symbols[0];
        assert_eq!(s.name, "decide_hour");
        assert!(s.header.contains("offered: f64"));
        assert!(s.header.contains("background"));
    }

    #[test]
    fn trait_method_signatures_do_not_become_symbols() {
        let src = "\
trait Backend {
    fn solve(&self) -> f64;
    fn name(&self) -> &str {
        \"default\"
    }
}
";
        let items = parse(src);
        let names: Vec<&str> = items.symbols.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["name"]);
        assert_eq!(items.symbols[0].impl_type.as_deref(), Some("Backend"));
    }

    #[test]
    fn impl_self_type_handles_generics_and_for() {
        assert_eq!(impl_self_type("impl Engine {"), Some("Engine".into()));
        assert_eq!(
            impl_self_type("impl<T: Ord> Wrap<T> {"),
            Some("Wrap".into())
        );
        assert_eq!(
            impl_self_type("impl<W: Write> Shared<'_, W> {"),
            Some("Shared".into())
        );
        assert_eq!(
            impl_self_type("impl fmt::Debug for Recorder {"),
            Some("Recorder".into())
        );
    }

    #[test]
    fn return_position_impl_is_not_a_decl() {
        let src = "\
fn make() -> impl Iterator<Item = u64> {
    (0..3).map(|x| x)
}
fn after() {}
";
        let items = parse(src);
        let names: Vec<&str> = items.symbols.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["make", "after"]);
        assert!(items.symbols[1].impl_type.is_none());
    }

    #[test]
    fn hash_idents_cover_fields_params_and_lets() {
        let src = "\
struct S {
    engine_keys: Mutex<HashSet<u64>>,
    plain: Vec<u64>,
}
fn f(rows: &HashMap<String, usize>, xs: &[f64]) {
    let mut groups: HashMap<u64, Vec<usize>> = HashMap::new();
    let bare = HashSet::new();
    let not_hash = Vec::new();
}
";
        let items = parse(src);
        assert_eq!(
            items.hash_idents,
            vec!["bare", "engine_keys", "groups", "rows"]
        );
    }

    #[test]
    fn use_imports_resolve_names() {
        let src = "\
use billcap_milp::{Model, Sense as Dir};
use std::collections::HashMap;
pub use crate::engine::DecisionEngine;
";
        let items = parse(src);
        assert_eq!(items.imports["Model"], "billcap_milp::Model");
        assert_eq!(items.imports["Dir"], "billcap_milp::Sense");
        assert_eq!(items.imports["HashMap"], "std::collections::HashMap");
        assert_eq!(
            items.imports["DecisionEngine"],
            "crate::engine::DecisionEngine"
        );
    }

    #[test]
    fn test_fns_are_marked() {
        let src = "\
fn lib() {}
#[cfg(test)]
mod tests {
    #[test]
    fn check() {}
}
";
        let items = parse(src);
        assert!(!items.symbols[0].is_test);
        assert!(items.symbols[1].is_test);
        assert_eq!(items.symbols[1].modules, vec!["tests".to_string()]);
    }
}
