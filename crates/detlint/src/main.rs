//! Command-line front end for the detlint determinism analyzer.
//!
//! ```text
//! detlint [ROOT] [--deny] [--json FILE|-] [--roots name,Type::name,...]
//! ```
//!
//! - `ROOT` defaults to `.` and must contain the workspace (a root
//!   package and/or a `crates/` directory).
//! - `--deny` exits 1 when any unwaived finding remains (CI mode);
//!   without it the tool reports and exits 0.
//! - `--json FILE` writes findings as JSONL (`-` for stdout).
//! - `--roots` replaces the built-in determinism root set.
//!
//! Exit codes: 0 clean (or report-only), 1 findings under `--deny`,
//! 2 usage or I/O error.

#![forbid(unsafe_code)]

use detlint::analyze::{analyze, default_roots, Report, RootSpec};
use detlint::report::to_jsonl;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    deny: bool,
    json: Option<String>,
    roots: Vec<RootSpec>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        deny: false,
        json: None,
        roots: default_roots(),
    };
    let mut saw_root = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => opts.deny = true,
            "--json" => {
                opts.json = Some(
                    it.next()
                        .ok_or_else(|| "--json requires a file path or -".to_string())?
                        .clone(),
                );
            }
            "--roots" => {
                let list = it
                    .next()
                    .ok_or_else(|| "--roots requires a comma-separated list".to_string())?;
                opts.roots = list
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(RootSpec::parse)
                    .collect();
                if opts.roots.is_empty() {
                    return Err("--roots list is empty".to_string());
                }
            }
            "--help" | "-h" => {
                return Err("usage: detlint [ROOT] [--deny] [--json FILE|-] [--roots a,b]".into())
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => {
                if saw_root {
                    return Err(format!("unexpected positional argument `{path}`"));
                }
                opts.root = PathBuf::from(path);
                saw_root = true;
            }
        }
    }
    Ok(opts)
}

fn emit(out: &mut impl Write, report: &Report, opts: &Options) -> std::io::Result<()> {
    for f in &report.findings {
        writeln!(out, "{}", f.render())?;
    }
    if opts.json.as_deref() == Some("-") {
        write!(out, "{}", to_jsonl(&report.findings))?;
    }
    writeln!(
        out,
        "detlint: {} files, {} fns, {} edges, {} reachable, {} waivers; {} finding(s)",
        report.files,
        report.symbols,
        report.edges,
        report.reachable,
        report.waivers,
        report.findings.len()
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("detlint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match analyze(&opts.root, &opts.roots) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("detlint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(dest) = &opts.json {
        if dest != "-" {
            if let Err(e) = std::fs::write(dest, to_jsonl(&report.findings)) {
                eprintln!("detlint: write {dest}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    // A closed pipe (`detlint . | head`) is not an error: stop writing,
    // keep the computed exit code.
    if let Err(e) = emit(&mut std::io::stdout().lock(), &report, &opts) {
        if e.kind() != std::io::ErrorKind::BrokenPipe {
            eprintln!("detlint: stdout: {e}");
            return ExitCode::from(2);
        }
    }
    if opts.deny && !report.findings.is_empty() {
        eprintln!(
            "detlint: {} finding(s) in deny mode — fix or waive with `// detlint-allow(code): reason`",
            report.findings.len()
        );
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_are_report_mode_with_builtin_roots() {
        let o = parse_args(&sv(&[])).unwrap();
        assert!(!o.deny);
        assert!(o.json.is_none());
        assert_eq!(o.root, PathBuf::from("."));
        assert!(!o.roots.is_empty());
    }

    #[test]
    fn flags_parse() {
        let o = parse_args(&sv(&["ws", "--deny", "--json", "-", "--roots", "a,B::c"])).unwrap();
        assert!(o.deny);
        assert_eq!(o.json.as_deref(), Some("-"));
        assert_eq!(o.root, PathBuf::from("ws"));
        assert_eq!(o.roots.len(), 2);
        assert_eq!(o.roots[1].type_name.as_deref(), Some("B"));
    }

    #[test]
    fn bad_flags_error() {
        assert!(parse_args(&sv(&["--json"])).is_err());
        assert!(parse_args(&sv(&["--nope"])).is_err());
        assert!(parse_args(&sv(&["a", "b"])).is_err());
        assert!(parse_args(&sv(&["--roots", ""])).is_err());
    }
}
