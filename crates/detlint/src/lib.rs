//! detlint: call-graph-aware determinism static analyzer for the
//! billcap workspace.
//!
//! Every subsystem since the decision server stakes its correctness on
//! bitwise determinism — the serve differential replay, the risk-engine
//! digest, thread-count-invariant telemetry counters. Those contracts
//! are enforced *dynamically* by tests; detlint proves the complement
//! *statically*: no nondeterminism source is reachable from a declared
//! decision root.
//!
//! # Passes
//!
//! 1. **Lex** ([`lex`]): strip comments and literals, track
//!    `#[cfg(test)]` regions, collect `// detlint-allow(code): reason`
//!    waivers.
//! 2. **Parse** ([`parse`]): a lightweight item parser producing a
//!    per-crate symbol table (fns, impls, `use` imports, hash-typed
//!    identifier declarations).
//! 3. **Graph** ([`analyze`]): a conservative call graph across all
//!    workspace crates. Method calls link by name, qualified calls
//!    prefer the typed index, bare calls consult `use` imports.
//!    Over-approximation is sound: an extra edge can only mark more
//!    functions reachable, never invent a taint site.
//! 4. **Taint + reachability**: mark nondeterminism sources and report
//!    those reachable from the determinism roots, with the call chain.
//!
//! # Finding codes
//!
//! | code | rule            | fires on                                        |
//! |------|-----------------|-------------------------------------------------|
//! | D001 | hash-iter       | iteration over `HashMap`/`HashSet`              |
//! | D002 | random-hash     | `RandomState`/`DefaultHasher` keyed into output |
//! | D003 | wall-clock      | `Instant::now` / `SystemTime::now`              |
//! | D004 | env-read        | `env::var` / `env::args` / `env::vars`          |
//! | D005 | thread-id       | `thread::current`                               |
//! | D006 | float-reduction | float `.sum()` / `fold(0.0, +)` not using a     |
//! |      |                 | compensated summation                           |
//! | D007 | root-missing    | a declared root matched no workspace function   |
//! | D008 | waiver-hygiene  | stale waiver, unknown code, or missing reason   |
//!
//! D001–D006 findings are *reachability-gated*: a taint site in a
//! function no decision root can reach is not reported. Waivers are
//! not gated — a waiver that suppresses a site in a currently
//! unreachable function still counts as used, so refactors that move a
//! function out of a decision path do not instantly turn its waivers
//! into D008 noise.
//!
//! # Waivers
//!
//! `// detlint-allow(D003): advisory wall-clock telemetry` on the site
//! line or the directly preceding comment line. The reason after the
//! colon is mandatory (D008 otherwise); doc comments never mint
//! waivers, so documentation may show the syntax without waiving.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod lex;
pub mod parse;
pub mod report;

pub use analyze::{analyze, default_roots, Report, RootSpec};
pub use report::{to_jsonl, Code, Finding};
