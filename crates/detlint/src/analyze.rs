//! Analysis passes: crate discovery, conservative call graph, taint
//! scan, reachability from determinism roots, and waiver hygiene.
//!
//! The call graph is a deliberate over-approximation: a method call
//! `.name(...)` links to *every* workspace function called `name`, a
//! qualified call `Type::name(...)` prefers the typed symbol index and
//! falls back to match-by-name, and bare calls consult the file's `use`
//! imports before the same fallback. Over-approximation is sound here
//! because findings are only emitted for taint *sites* — an extra edge
//! can at worst mark one more function reachable, never invent a site.

use crate::lex::{lex, Waiver};
use crate::parse::{parse_file, BodyLine, Symbol};
use crate::report::{sort_findings, Code, Finding};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fs;
use std::path::{Path, PathBuf};

/// A declared determinism root: optionally typed (`Type::name`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootSpec {
    /// The impl/trait type the fn must belong to, when given.
    pub type_name: Option<String>,
    /// The function name.
    pub name: String,
}

impl RootSpec {
    /// Parses `name` or `Type::name`.
    pub fn parse(s: &str) -> RootSpec {
        match s.rsplit_once("::") {
            Some((t, n)) => RootSpec {
                type_name: Some(t.to_string()),
                name: n.to_string(),
            },
            None => RootSpec {
                type_name: None,
                name: s.to_string(),
            },
        }
    }

    /// Canonical display form.
    pub fn display(&self) -> String {
        match &self.type_name {
            Some(t) => format!("{}::{}", t, self.name),
            None => self.name.clone(),
        }
    }
}

/// The default root set for the billcap workspace: every function whose
/// output is covered by a bitwise-replay or digest contract.
pub fn default_roots() -> Vec<RootSpec> {
    [
        "DecisionEngine::decide_hour",
        "BillCapper::decide_hour",
        "DecisionKey::new",
        "system_fingerprint",
        "run_month",
        "run_month_with",
        "run_month_fresh",
        "run_month_scratch",
        "RiskEngine::run",
        "RiskEngine::run_with_seeds",
        "RiskSummary::from_samples",
        "RiskSummary::digest",
        "run_decider",
        "handle_request",
        "build_plan",
        "run_replay",
        "verify_replay",
    ]
    .iter()
    .map(|s| RootSpec::parse(s))
    .collect()
}

/// Analysis summary: findings plus graph statistics for the report
/// footer.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by `(code, file, line)`.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files: usize,
    /// Number of parsed functions.
    pub symbols: usize,
    /// Number of call-graph edges.
    pub edges: usize,
    /// Number of functions reachable from the root set.
    pub reachable: usize,
    /// Number of waivers found across the workspace.
    pub waivers: usize,
}

/// A discovered crate source tree.
struct CrateSrc {
    /// Directory name (`milp`), or the package name for the root crate.
    name: String,
    /// Absolute path to the crate's `src/`.
    src: PathBuf,
}

/// Reads the `name = "..."` of the first `[package]` section.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_package = t == "[package]";
        } else if in_package {
            if let Some(rest) = t.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=')?.trim();
                return Some(rest.trim_matches('"').to_string());
            }
        }
    }
    None
}

/// Discovers crates under `root`: the root package (if any) plus every
/// `crates/*/` directory with a manifest and a `src/`.
fn discover_crates(root: &Path) -> Result<Vec<CrateSrc>, String> {
    let mut out = Vec::new();
    let root_manifest = root.join("Cargo.toml");
    if let Ok(text) = fs::read_to_string(&root_manifest) {
        if let Some(name) = package_name(&text) {
            let src = root.join("src");
            if src.is_dir() {
                out.push(CrateSrc { name, src });
            }
        }
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
            .map_err(|e| format!("read {}: {e}", crates_dir.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let src = dir.join("src");
            if dir.join("Cargo.toml").is_file() && src.is_dir() {
                let name = dir
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                out.push(CrateSrc { name, src });
            }
        }
    }
    if out.is_empty() {
        return Err(format!("no crates found under {}", root.display()));
    }
    Ok(out)
}

/// Collects `.rs` files under `dir`, depth-first, in sorted order.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            rs_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Workspace-relative display path with `/` separators.
fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Rust keywords that can precede `(` without being calls.
const KEYWORDS: [&str; 18] = [
    "if", "while", "for", "match", "return", "fn", "loop", "in", "as", "move", "mut", "ref", "let",
    "where", "dyn", "box", "break", "continue",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s) || s == "impl" || s == "pub" || s == "use" || s == "else"
}

/// A call site extracted from one line.
#[derive(Debug, PartialEq)]
pub(crate) struct CallSite {
    /// Callee name.
    pub name: String,
    /// Qualifier: `None` = bare call, `Some("")` = method call,
    /// `Some(ty)` = `ty::name(...)`.
    pub qualifier: Option<String>,
}

/// Trailing identifier of `s`, with its start byte.
fn trailing_ident(s: &str) -> Option<(usize, &str)> {
    let end = s.len();
    let start = s
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_alphanumeric() || *c == '_')
        .last()
        .map(|(i, _)| i)?;
    let ident = &s[start..end];
    if ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    Some((start, ident))
}

/// Extracts call sites from a stripped line.
pub(crate) fn calls_on_line(code: &str) -> Vec<CallSite> {
    let mut out = Vec::new();
    for (pos, c) in code.char_indices() {
        if c != '(' {
            continue;
        }
        let mut head = &code[..pos];
        // Skip back over a turbofish `::<...>` so `f::<T>(x)` still
        // resolves to `f`.
        if head.ends_with('>') {
            let mut depth = 0i32;
            let mut cut = None;
            for (i, ch) in head.char_indices().rev() {
                match ch {
                    '>' => depth += 1,
                    '<' => {
                        depth -= 1;
                        if depth == 0 {
                            cut = Some(i);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            match cut {
                Some(i) if head[..i].ends_with("::") => head = &head[..i - 2],
                _ => continue,
            }
        }
        if head.ends_with('!') {
            continue; // macro invocation
        }
        let Some((start, name)) = trailing_ident(head) else {
            continue;
        };
        if is_keyword(name) {
            continue;
        }
        let before = &head[..start];
        let site = if before.ends_with('.') {
            CallSite {
                name: name.to_string(),
                qualifier: Some(String::new()),
            }
        } else if let Some(stripped) = before.strip_suffix("::") {
            let q = trailing_ident(stripped)
                .map(|(_, q)| q.to_string())
                .unwrap_or_default();
            CallSite {
                name: name.to_string(),
                qualifier: Some(q),
            }
        } else {
            CallSite {
                name: name.to_string(),
                qualifier: None,
            }
        };
        out.push(site);
    }
    out
}

/// Methods whose receiver ordering leaks hash-map insertion order.
const HASH_ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
    "into_iter",
];

/// Identifier declarations in one function (params and lets), with
/// whether each has a hash-ordered type. Later lets shadow earlier ones.
fn fn_local_decls(sym: &Symbol) -> BTreeMap<String, bool> {
    let mut out = BTreeMap::new();
    // Params: `name: Type` pairs in the signature header.
    let header = sym.header.as_str();
    let bytes = header.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b':' {
            continue;
        }
        if (i + 1 < bytes.len() && bytes[i + 1] == b':') || (i > 0 && bytes[i - 1] == b':') {
            continue;
        }
        let Some((_, name)) = trailing_ident(header[..i].trim_end()) else {
            continue;
        };
        let ty = &header[i + 1..];
        let ty = ty.split([',', ')']).next().unwrap_or(ty);
        out.insert(
            name.to_string(),
            ty.contains("HashMap") || ty.contains("HashSet"),
        );
    }
    // Body lets, in order (shadowing overwrites).
    for line in &sym.body {
        let code = line.code.as_str();
        let Some(pos) = code.find("let ") else {
            continue;
        };
        let rest = code[pos + 4..].trim_start();
        let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
        if let Some(tuple) = rest.strip_prefix('(') {
            // Tuple pattern: `let (rows, vals) = expr` declares each
            // binding with the expression's hash-ness.
            let Some(close) = tuple.find(')') else {
                continue;
            };
            let after = &tuple[close + 1..];
            let is_hash = after.contains("HashMap") || after.contains("HashSet");
            for part in tuple[..close].split(',') {
                let name = part.trim().trim_start_matches("mut ").trim();
                if !name.is_empty()
                    && name != "_"
                    && name.chars().all(|c| c.is_alphanumeric() || c == '_')
                {
                    out.insert(name.to_string(), is_hash);
                }
            }
            continue;
        }
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() || name == "_" {
            continue;
        }
        let after = &rest[name.len()..];
        out.insert(name, after.contains("HashMap") || after.contains("HashSet"));
    }
    out
}

/// Whether `ident` names a hash-ordered collection at this use site.
/// `is_field` is true for `x.ident.iter()`-style accesses, which bypass
/// the local-declaration table.
fn is_hash_ident(
    ident: &str,
    is_field: bool,
    locals: &BTreeMap<String, bool>,
    file_hash: &BTreeSet<String>,
) -> bool {
    if !is_field {
        if let Some(&h) = locals.get(ident) {
            return h;
        }
    }
    file_hash.contains(ident)
}

/// One detected taint site (before waiver filtering).
struct Site {
    code: Code,
    line: usize,
    message: String,
}

/// Scans a function body for taint sites.
fn taint_sites(
    sym: &Symbol,
    locals: &BTreeMap<String, bool>,
    file_hash: &BTreeSet<String>,
) -> Vec<Site> {
    let mut sites = Vec::new();
    let name_lc = sym.name.to_ascii_lowercase();
    let compensated = name_lc.contains("stable_sum") || name_lc.contains("neumaier");
    for line in &sym.body {
        let code = line.code.as_str();
        scan_hash_iter(code, line.number, locals, file_hash, &mut sites);
        if code.contains("RandomState")
            || code.contains("DefaultHasher")
            || code.contains("BuildHasherDefault")
            || code.contains(".build_hasher(")
        {
            sites.push(Site {
                code: Code::D002,
                line: line.number,
                message: "default RandomState hashing reachable from a decision path".into(),
            });
        }
        if code.contains("Instant::now") || code.contains("SystemTime::now") {
            sites.push(Site {
                code: Code::D003,
                line: line.number,
                message: "wall-clock read on a determinism-critical path".into(),
            });
        }
        if code.contains("env::var") || code.contains("env::args") || code.contains("env::vars") {
            sites.push(Site {
                code: Code::D004,
                line: line.number,
                message: "environment read on a determinism-critical path".into(),
            });
        }
        if code.contains("thread::current") {
            sites.push(Site {
                code: Code::D005,
                line: line.number,
                message: "thread-identity read on a determinism-critical path".into(),
            });
        }
        if !compensated && !code.contains("stable_sum") {
            scan_float_reduction(code, line.number, &mut sites);
        }
    }
    sites
}

/// D001: hash-ordered iteration, via adapter methods or `for ... in`.
fn scan_hash_iter(
    code: &str,
    number: usize,
    locals: &BTreeMap<String, bool>,
    file_hash: &BTreeSet<String>,
    sites: &mut Vec<Site>,
) {
    for m in HASH_ITER_METHODS {
        let pat = format!(".{m}(");
        let mut from = 0;
        while let Some(p) = code[from..].find(&pat) {
            let at = from + p;
            from = at + pat.len();
            let Some((start, ident)) = trailing_ident(&code[..at]) else {
                continue;
            };
            let is_field = code[..start].ends_with('.');
            if is_hash_ident(ident, is_field, locals, file_hash) {
                sites.push(Site {
                    code: Code::D001,
                    line: number,
                    message: format!("iteration over hash-ordered `{ident}` via .{m}()"),
                });
            }
        }
    }
    // `for pat in [&][mut ]ident {`
    if let Some(fp) = code.find("for ") {
        if let Some(ip) = code[fp..].find(" in ") {
            let expr = &code[fp + ip + 4..];
            let expr = expr.split('{').next().unwrap_or(expr).trim();
            let expr = expr.trim_start_matches('&');
            let expr = expr.strip_prefix("mut ").unwrap_or(expr).trim();
            if !expr.is_empty()
                && expr
                    .chars()
                    .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
            {
                let ident = expr.rsplit('.').next().unwrap_or(expr);
                let is_field = expr.contains('.');
                if is_hash_ident(ident, is_field, locals, file_hash) {
                    sites.push(Site {
                        code: Code::D001,
                        line: number,
                        message: format!("iteration over hash-ordered `{ident}` via for-in"),
                    });
                }
            }
        }
    }
}

/// D006: uncompensated float reductions.
fn scan_float_reduction(code: &str, number: usize, sites: &mut Vec<Site>) {
    let turbofish = code.contains(".sum::<f64>()") || code.contains(".sum::<f32>()");
    let bare = code.contains(".sum()") && (code.contains("f64") || code.contains("f32"));
    if turbofish || bare {
        sites.push(Site {
            code: Code::D006,
            line: number,
            message: "float `.sum()` not routed through a compensated summation".into(),
        });
    }
    if let Some(p) = code.find("fold(0.0") {
        if code[p..].contains('+') {
            sites.push(Site {
                code: Code::D006,
                line: number,
                message: "float `fold(0.0, ..+..)` not routed through a compensated summation"
                    .into(),
            });
        }
    }
}

/// A waiver's registry entry, tracking whether it suppressed anything.
struct WaiverEntry {
    file: String,
    waiver: Waiver,
    used: bool,
}

/// Runs the full analysis over the workspace at `root`.
pub fn analyze(root: &Path, roots: &[RootSpec]) -> Result<Report, String> {
    let crates = discover_crates(root)?;

    // Pass 1+2: lex and parse every file.
    let mut symbols: Vec<Symbol> = Vec::new();
    let mut file_imports: Vec<(String, HashMap<String, String>)> = Vec::new();
    // Hash-typed identifier declarations are scoped per *file*: struct
    // fields in this workspace are iterated in their defining file, and
    // a wider (per-crate) scope lets a `rows: HashMap` field in one
    // module taint an unrelated `rows: &[usize]` in another.
    let mut file_hash: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut waiver_reg: Vec<WaiverEntry> = Vec::new();
    let mut files = 0usize;
    for c in &crates {
        let mut paths = Vec::new();
        rs_files(&c.src, &mut paths);
        for path in paths {
            let text =
                fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
            let rel = rel_path(root, &path);
            let items = parse_file(&c.name, &rel, &lex(&text));
            files += 1;
            file_hash
                .entry(rel.clone())
                .or_default()
                .extend(items.hash_idents.iter().cloned());
            for w in items.waivers {
                waiver_reg.push(WaiverEntry {
                    file: rel.clone(),
                    waiver: w,
                    used: false,
                });
            }
            symbols.extend(items.symbols);
            file_imports.push((rel, items.imports));
        }
    }

    // Symbol indices.
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut by_typed: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
    for (i, s) in symbols.iter().enumerate() {
        by_name.entry(&s.name).or_default().push(i);
        if let Some(t) = &s.impl_type {
            by_typed
                .entry((t.as_str(), s.name.as_str()))
                .or_default()
                .push(i);
        }
    }
    let imports_of: HashMap<&str, &HashMap<String, String>> =
        file_imports.iter().map(|(f, m)| (f.as_str(), m)).collect();
    // Package idents (`billcap_milp`) → crate directory names.
    let pkg_of_crate: HashMap<String, String> = {
        let mut m = HashMap::new();
        for c in &crates {
            m.insert(
                format!("billcap_{}", c.name.replace('-', "_")),
                c.name.clone(),
            );
            m.insert(c.name.replace('-', "_"), c.name.clone());
        }
        m
    };

    // Pass 3: conservative call graph.
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); symbols.len()];
    for (i, sym) in symbols.iter().enumerate() {
        let imports = imports_of.get(sym.file.as_str()).copied();
        for line in &sym.body {
            for call in calls_on_line(&line.code) {
                let targets: Vec<usize> = match &call.qualifier {
                    Some(q) if q.is_empty() => {
                        // Method call: any workspace fn with this name.
                        by_name.get(call.name.as_str()).cloned().unwrap_or_default()
                    }
                    Some(q) => {
                        let ty = if q == "Self" {
                            sym.impl_type.clone().unwrap_or_else(|| q.clone())
                        } else {
                            q.clone()
                        };
                        match by_typed.get(&(ty.as_str(), call.name.as_str())) {
                            Some(v) => v.clone(),
                            None => by_name.get(call.name.as_str()).cloned().unwrap_or_default(),
                        }
                    }
                    None => {
                        // Bare call: prefer the imported crate's fn.
                        let all = by_name.get(call.name.as_str()).cloned().unwrap_or_default();
                        let preferred: Vec<usize> = imports
                            .and_then(|im| im.get(call.name.as_str()))
                            .and_then(|path| path.split("::").next())
                            .and_then(|seg| pkg_of_crate.get(seg))
                            .map(|krate| {
                                all.iter()
                                    .copied()
                                    .filter(|&t| &symbols[t].crate_name == krate)
                                    .collect()
                            })
                            .unwrap_or_default();
                        if preferred.is_empty() {
                            all
                        } else {
                            preferred
                        }
                    }
                };
                edges[i].extend(targets);
            }
        }
        edges[i].sort_unstable();
        edges[i].dedup();
    }
    let edge_count: usize = edges.iter().map(Vec::len).sum();

    let mut findings: Vec<Finding> = Vec::new();

    // Pass 4: resolve roots; BFS reachability with predecessor chains.
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut pred: Vec<Option<usize>> = vec![None; symbols.len()];
    let mut origin: Vec<Option<usize>> = vec![None; symbols.len()];
    let mut reached: Vec<bool> = vec![false; symbols.len()];
    let mut root_display: Vec<String> = Vec::new();
    for spec in roots {
        let matches: Vec<usize> = symbols
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                !s.is_test
                    && s.name == spec.name
                    && spec
                        .type_name
                        .as_ref()
                        .is_none_or(|t| s.impl_type.as_deref() == Some(t.as_str()))
            })
            .map(|(i, _)| i)
            .collect();
        if matches.is_empty() {
            findings.push(Finding {
                code: Code::D007,
                file: "(root-set)".into(),
                line: 0,
                function: spec.display(),
                message: format!(
                    "declared determinism root `{}` matched no workspace function",
                    spec.display()
                ),
                root: String::new(),
                chain: String::new(),
            });
            continue;
        }
        let ridx = root_display.len();
        root_display.push(spec.display());
        for m in matches {
            if !reached[m] {
                reached[m] = true;
                origin[m] = Some(ridx);
                queue.push_back(m);
            }
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in &edges[u] {
            if !reached[v] && !symbols[v].is_test {
                reached[v] = true;
                pred[v] = Some(u);
                origin[v] = origin[u];
                queue.push_back(v);
            }
        }
    }
    let reachable_count = reached.iter().filter(|&&r| r).count();

    // Pass 5: taint scan + waiver matching.
    let empty_hash = BTreeSet::new();
    for (i, sym) in symbols.iter().enumerate() {
        let locals = fn_local_decls(sym);
        let hashes = file_hash.get(&sym.file).unwrap_or(&empty_hash);
        for site in taint_sites(sym, &locals, hashes) {
            // A matching waiver on the site's line suppresses it and
            // counts as used even when the fn is currently unreachable —
            // waivers must not go stale under reachability churn.
            let line_waivers: Vec<&Waiver> = sym
                .body
                .iter()
                .filter(|l| l.number == site.line)
                .flat_map(|l: &BodyLine| l.waivers.iter())
                .collect();
            let mut waived = false;
            for w in line_waivers {
                if w.code == site.code.as_str() {
                    waived = true;
                    for entry in waiver_reg.iter_mut() {
                        if entry.file == sym.file
                            && entry.waiver.line == w.line
                            && entry.waiver.code == w.code
                        {
                            entry.used = true;
                        }
                    }
                }
            }
            if waived || !reached[i] || sym.is_test {
                continue;
            }
            // Chain from the root to this symbol.
            let mut chain_syms = vec![i];
            let mut cur = i;
            while let Some(p) = pred[cur] {
                chain_syms.push(p);
                cur = p;
            }
            chain_syms.reverse();
            let chain = chain_syms
                .iter()
                .map(|&s| symbols[s].path())
                .collect::<Vec<_>>()
                .join(" -> ");
            let root = origin[i]
                .map(|r| root_display[r].clone())
                .unwrap_or_default();
            findings.push(Finding {
                code: site.code,
                file: sym.file.clone(),
                line: site.line,
                function: sym.path(),
                message: site.message,
                root,
                chain,
            });
        }
    }

    // Pass 6: waiver hygiene.
    for entry in &waiver_reg {
        let w = &entry.waiver;
        if Code::parse(&w.code).is_none() {
            findings.push(Finding {
                code: Code::D008,
                file: entry.file.clone(),
                line: w.line,
                function: String::new(),
                message: format!("waiver names unknown code `{}`", w.code),
                root: String::new(),
                chain: String::new(),
            });
            continue;
        }
        if !entry.used {
            findings.push(Finding {
                code: Code::D008,
                file: entry.file.clone(),
                line: w.line,
                function: String::new(),
                message: format!("stale waiver: detlint-allow({}) suppresses nothing", w.code),
                root: String::new(),
                chain: String::new(),
            });
        }
        if w.reason.is_empty() {
            findings.push(Finding {
                code: Code::D008,
                file: entry.file.clone(),
                line: w.line,
                function: String::new(),
                message: format!("waiver detlint-allow({}) carries no reason", w.code),
                root: String::new(),
                chain: String::new(),
            });
        }
    }

    sort_findings(&mut findings);
    Ok(Report {
        findings,
        files,
        symbols: symbols.len(),
        edges: edge_count,
        reachable: reachable_count,
        waivers: waiver_reg.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calls_are_classified() {
        let calls = calls_on_line("let x = solve(a).digest(); DecisionKey::new(k)");
        assert_eq!(
            calls,
            vec![
                CallSite {
                    name: "solve".into(),
                    qualifier: None
                },
                CallSite {
                    name: "digest".into(),
                    qualifier: Some(String::new())
                },
                CallSite {
                    name: "new".into(),
                    qualifier: Some("DecisionKey".into())
                },
            ]
        );
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        assert!(calls_on_line("println!(x); if (a) {}").is_empty());
        assert!(calls_on_line("assert_eq!(a, b);").is_empty());
    }

    #[test]
    fn turbofish_calls_resolve_to_the_fn() {
        let calls = calls_on_line("stable_sum::<f64>(&xs)");
        assert_eq!(
            calls,
            vec![CallSite {
                name: "stable_sum".into(),
                qualifier: None
            }]
        );
        // Turbofish on a method keeps the method name.
        let calls = calls_on_line("it.collect::<Vec<_>>()");
        assert_eq!(
            calls,
            vec![CallSite {
                name: "collect".into(),
                qualifier: Some(String::new())
            }]
        );
    }

    #[test]
    fn root_spec_parses_typed_and_bare() {
        let r = RootSpec::parse("RiskEngine::run");
        assert_eq!(r.type_name.as_deref(), Some("RiskEngine"));
        assert_eq!(r.name, "run");
        assert_eq!(r.display(), "RiskEngine::run");
        let b = RootSpec::parse("run_month");
        assert!(b.type_name.is_none());
    }

    #[test]
    fn float_reduction_detection() {
        let mut sites = Vec::new();
        scan_float_reduction("let t = xs.iter().sum::<f64>();", 1, &mut sites);
        assert_eq!(sites.len(), 1);
        sites.clear();
        // Sequential usize sum: no float marker, no finding.
        scan_float_reduction("let n: usize = counts.iter().sum();", 2, &mut sites);
        assert!(sites.is_empty());
        // fold with max, not +: no finding.
        scan_float_reduction("xs.iter().fold(0.0, f64::max)", 3, &mut sites);
        assert!(sites.is_empty());
        scan_float_reduction("xs.iter().fold(0.0, |a, b| a + b)", 4, &mut sites);
        assert_eq!(sites.len(), 1);
    }

    #[test]
    fn hash_iter_respects_local_overrides() {
        let locals: BTreeMap<String, bool> = [("rows".to_string(), false)].into_iter().collect();
        let file_hash: BTreeSet<String> = ["rows".to_string()].into_iter().collect();
        let mut sites = Vec::new();
        // Local `rows` is a slice: the crate-level hash field must not
        // shadow it.
        scan_hash_iter("for r in rows.iter() {", 1, &locals, &file_hash, &mut sites);
        assert!(sites.is_empty());
        // Field access bypasses locals.
        scan_hash_iter("self.rows.iter()", 2, &locals, &file_hash, &mut sites);
        assert_eq!(sites.len(), 1);
    }
}
