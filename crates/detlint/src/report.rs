//! Finding codes, the finding record, and the text / JSONL renderers.
//!
//! Codes are stable: tooling (CI annotations, waiver comments, golden
//! files) keys on them, so a code is never renumbered or reused once
//! shipped. Renders are fully deterministic — findings are sorted by
//! `(code, file, line)` before display and the JSONL writer is
//! hand-rolled so no map ordering can leak into the bytes.

use std::fmt;

/// A stable determinism-finding code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// Iteration over a `HashMap`/`HashSet` on a determinism-critical path.
    D001,
    /// Default `RandomState` hashing keyed into output.
    D002,
    /// Wall-clock read (`Instant::now`, `SystemTime::now`).
    D003,
    /// Environment read (`env::var`, `env::args`, ...).
    D004,
    /// Thread-identity read (`thread::current`).
    D005,
    /// Float reduction not routed through a compensated summation.
    D006,
    /// A declared determinism root matched no parsed symbol.
    D007,
    /// Waiver hygiene: stale waiver or waiver without a reason.
    D008,
}

/// All codes, in order.
pub const ALL_CODES: [Code; 8] = [
    Code::D001,
    Code::D002,
    Code::D003,
    Code::D004,
    Code::D005,
    Code::D006,
    Code::D007,
    Code::D008,
];

impl Code {
    /// The canonical `Dxxx` string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::D001 => "D001",
            Code::D002 => "D002",
            Code::D003 => "D003",
            Code::D004 => "D004",
            Code::D005 => "D005",
            Code::D006 => "D006",
            Code::D007 => "D007",
            Code::D008 => "D008",
        }
    }

    /// Short rule name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Code::D001 => "hash-iter",
            Code::D002 => "random-hash",
            Code::D003 => "wall-clock",
            Code::D004 => "env-read",
            Code::D005 => "thread-id",
            Code::D006 => "float-reduction",
            Code::D007 => "root-missing",
            Code::D008 => "waiver-hygiene",
        }
    }

    /// Parses a `Dxxx` string.
    pub fn parse(s: &str) -> Option<Code> {
        ALL_CODES.iter().copied().find(|c| c.as_str() == s)
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One reported determinism violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The finding code.
    pub code: Code,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number of the taint site.
    pub line: usize,
    /// Path of the enclosing function (`crate::Type::fn`), or the
    /// declared-root / waiver context for D007/D008.
    pub function: String,
    /// Human-readable description of the site.
    pub message: String,
    /// The determinism root this site is reachable from.
    pub root: String,
    /// Call chain from the root to the tainted function, `a -> b -> c`.
    pub chain: String,
}

impl Finding {
    /// Canonical one-line text render.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{}:{}: [{}/{}] {}",
            self.file,
            self.line,
            self.code,
            self.code.name(),
            self.message
        );
        if !self.function.is_empty() {
            s.push_str(&format!(" (in {})", self.function));
        }
        if !self.chain.is_empty() {
            s.push_str(&format!(
                "\n    reachable from {}: {}",
                self.root, self.chain
            ));
        }
        s
    }
}

/// Sorts findings into the canonical `(code, file, line)` order.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.code, a.file.as_str(), a.line, a.message.as_str()).cmp(&(
            b.code,
            b.file.as_str(),
            b.line,
            b.message.as_str(),
        ))
    });
}

/// Escapes a string for a JSON value.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as JSONL, one object per line, keys in fixed order.
pub fn to_jsonl(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            concat!(
                "{{\"code\":\"{}\",\"rule\":\"{}\",\"file\":\"{}\",",
                "\"line\":{},\"function\":\"{}\",\"message\":\"{}\",",
                "\"root\":\"{}\",\"chain\":\"{}\"}}\n"
            ),
            f.code,
            f.code.name(),
            json_escape(&f.file),
            f.line,
            json_escape(&f.function),
            json_escape(&f.message),
            json_escape(&f.root),
            json_escape(&f.chain),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            code: Code::D001,
            file: "crates/milp/src/lint.rs".into(),
            line: 373,
            function: "milp::check_parallel_rows".into(),
            message: "iteration over HashMap `groups` via .values()".into(),
            root: "decide_hour".into(),
            chain: "decide_hour -> lint -> check_parallel_rows".into(),
        }
    }

    #[test]
    fn codes_round_trip() {
        for c in ALL_CODES {
            assert_eq!(Code::parse(c.as_str()), Some(c));
        }
        assert_eq!(Code::parse("D999"), None);
    }

    #[test]
    fn render_includes_location_code_and_chain() {
        let r = finding().render();
        assert!(r.starts_with("crates/milp/src/lint.rs:373: [D001/hash-iter]"));
        assert!(r.contains("reachable from decide_hour"));
    }

    #[test]
    fn jsonl_escapes_and_keeps_key_order() {
        let mut f = finding();
        f.message = "quote \" and \\ back".into();
        let j = to_jsonl(&[f]);
        assert!(j.starts_with("{\"code\":\"D001\",\"rule\":\"hash-iter\","));
        assert!(j.contains("quote \\\" and \\\\ back"));
        assert!(j.ends_with("}\n"));
    }

    #[test]
    fn sort_orders_by_code_then_file_then_line() {
        let mut fs = vec![
            Finding {
                code: Code::D003,
                file: "b.rs".into(),
                line: 1,
                ..finding()
            },
            Finding {
                code: Code::D001,
                file: "z.rs".into(),
                line: 9,
                ..finding()
            },
            Finding {
                code: Code::D001,
                file: "z.rs".into(),
                line: 2,
                ..finding()
            },
        ];
        sort_findings(&mut fs);
        assert_eq!(
            fs.iter().map(|f| (f.code, f.line)).collect::<Vec<_>>(),
            vec![(Code::D001, 2), (Code::D001, 9), (Code::D003, 1)]
        );
    }
}
