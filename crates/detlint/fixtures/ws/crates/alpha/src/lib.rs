//! Seeded-violation fixture: the decision crate. `Engine::decide` is
//! the fixture's determinism root; every taint it reaches must fire.

use std::collections::HashMap;

/// Decision engine with a hash-ordered weight table.
pub struct Engine {
    weights: HashMap<String, f64>,
}

impl Engine {
    /// The fixture's determinism root.
    pub fn decide(&self) -> f64 {
        let mut total = 0.0;
        for v in self.weights.values() {
            total += v;
        }
        let xs = vec![1.0_f64, 2.0, 3.0];
        let raw: f64 = xs.iter().sum();
        let tuned = xs.iter().sum::<f64>(); // detlint-allow(D006)
        // detlint-allow(D006): compensated by the caller's residual pass
        let blessed = xs.iter().sum::<f64>();
        total + raw + tuned + blessed + beta::stamp() + beta::seeded_hash(7)
    }
}

// detlint-allow(D001): left behind by an old refactor
/// No hash iteration happens here any more.
pub fn renamed_helper() -> u64 {
    42
}
