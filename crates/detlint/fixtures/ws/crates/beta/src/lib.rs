//! Seeded-violation fixture: tainted helpers reached from alpha's root
//! through a multi-hop chain, plus one unreachable taint that must stay
//! silent.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// Stamps a sample, mixing in ambient state (deliberately tainted).
pub fn stamp() -> f64 {
    let base = inner_clock();
    base + config() + thread_tag()
}

fn inner_clock() -> f64 {
    let t = Instant::now();
    t.elapsed().as_secs_f64()
}

fn config() -> f64 {
    match std::env::var("BETA_SCALE") {
        Ok(v) => v.len() as f64,
        Err(_) => 1.0,
    }
}

fn thread_tag() -> f64 {
    let name_len = std::thread::current().name().map_or(0, str::len);
    name_len as f64
}

/// Hashes a seed with the default random-state hasher.
pub fn seeded_hash(seed: u64) -> f64 {
    let mut h = DefaultHasher::new();
    seed.hash(&mut h);
    h.finish() as f64
}

/// Never called from any root: its wall-clock read must not be
/// reported.
pub fn dead_clock() -> f64 {
    use std::time::SystemTime;
    let _ = SystemTime::now();
    0.0
}
