//! Golden-file tests: every D-code fires on the seeded fixture tree
//! with byte-exact output, the JSONL export is stable, the unreachable
//! taint stays silent, and — the self-host gate — the real workspace is
//! detlint-clean in deny mode.

use detlint::analyze::{analyze, default_roots, Report, RootSpec};
use detlint::report::{to_jsonl, Code, ALL_CODES};
use std::path::{Path, PathBuf};

fn manifest_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn fixture_report() -> Report {
    let root = manifest_dir().join("fixtures/ws");
    let roots = [
        RootSpec::parse("Engine::decide"),
        RootSpec::parse("missing_root"),
    ];
    analyze(&root, &roots).expect("fixture analysis succeeds")
}

fn golden(name: &str) -> String {
    let path = manifest_dir().join("fixtures/golden").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read golden {}: {e}", path.display()))
}

fn rendered_block(report: &Report, code: Code) -> String {
    let mut out = String::new();
    for f in report.findings.iter().filter(|f| f.code == code) {
        out.push_str(&f.render());
        out.push('\n');
    }
    out
}

/// Each D-code must fire on the fixture and match its golden render.
#[test]
fn every_code_fires_and_matches_golden() {
    let report = fixture_report();
    for code in ALL_CODES {
        let block = rendered_block(&report, code);
        assert!(
            !block.is_empty(),
            "{code:?} did not fire on the seeded fixture"
        );
        let expected = golden(&format!("{}.txt", code.as_str()));
        assert_eq!(
            block,
            expected,
            "{code:?} render drifted from fixtures/golden/{}.txt",
            code.as_str()
        );
    }
}

/// The JSONL export is byte-stable against its golden file.
#[test]
fn jsonl_export_matches_golden() {
    let report = fixture_report();
    assert_eq!(to_jsonl(&report.findings), golden("findings.jsonl"));
}

/// A taint site in a function no root reaches must not be reported.
#[test]
fn unreachable_taint_is_silent() {
    let report = fixture_report();
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.chain.contains("dead_clock")),
        "dead_clock is unreachable and must not be reported"
    );
    // The site exists (beta::dead_clock reads SystemTime), so silence
    // must come from reachability, not from a missed pattern: point the
    // root set at it and the D003 fires.
    let root = manifest_dir().join("fixtures/ws");
    let report = analyze(&root, &[RootSpec::parse("dead_clock")]).unwrap();
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.code == Code::D003 && f.function == "beta::dead_clock"),
        "dead_clock's wall-clock read should fire once it is a root"
    );
}

/// A used waiver with a reason suppresses its site without any D008.
#[test]
fn reasoned_waiver_suppresses_without_noise() {
    let report = fixture_report();
    // The `blessed` D006 site (alpha lib.rs line 22) is waived with a
    // reason: no D006 there, and no D008 about that waiver line.
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.file.ends_with("alpha/src/lib.rs") && f.line == 22),
        "the reasoned waiver's site must be fully quiet"
    );
}

/// Findings arrive sorted by (code, file, line).
#[test]
fn findings_are_sorted() {
    let report = fixture_report();
    let keys: Vec<_> = report
        .findings
        .iter()
        .map(|f| (f.code, f.file.clone(), f.line))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}

/// Self-host gate: the billcap workspace itself is detlint-clean in
/// deny mode with the default root set — every real finding has been
/// fixed or waived with a reason.
#[test]
fn the_workspace_is_detlint_clean() {
    let ws = manifest_dir().join("../..");
    let ws = ws.canonicalize().unwrap_or(ws);
    assert!(
        Path::new(&ws).join("Cargo.toml").is_file(),
        "workspace root not found"
    );
    let report = analyze(&ws, &default_roots()).expect("workspace analysis succeeds");
    assert!(
        report.findings.is_empty(),
        "workspace has detlint findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the analysis actually saw the workspace, not an empty dir.
    assert!(
        report.files > 50,
        "suspiciously few files: {}",
        report.files
    );
    assert!(
        report.waivers > 0,
        "expected reasoned waivers in the workspace"
    );
}
