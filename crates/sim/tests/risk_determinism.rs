//! Risk-engine determinism contract, end to end.
//!
//! The engine promises bitwise-identical distributions at any thread
//! count, and the scratch-reuse month loop promises bitwise equality
//! with the fresh-allocation oracle. These tests exercise both through
//! the public API only (no `pub(crate)` helpers), including the
//! degenerate corners: one sample, all-identical seeds, and a cap
//! schedule plus starvation budget that forces the two-step path every
//! hour.

use billcap_core::{CapSchedule, HourOutcome};
use billcap_sim::{
    run_month_fresh, run_month_scratch, MonthScratch, RiskConfig, RiskEngine, RiskSample, Scenario,
    ScheduleSpec, Strategy,
};

fn quick_config(samples: usize) -> RiskConfig {
    RiskConfig {
        samples,
        hours: 48,
        monthly_budget: Some(Scenario::STRINGENT_BUDGET * 48.0 / 720.0),
        ..RiskConfig::default()
    }
}

fn assert_bitwise(a: &[RiskSample], b: &[RiskSample], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: sample count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.seed, y.seed, "{ctx}: sample {} seed", x.index);
        for (name, l, r) in [
            ("capper_bill", x.capper_bill, y.capper_bill),
            ("min_only_bill", x.min_only_bill, y.min_only_bill),
            ("savings_ratio", x.savings_ratio, y.savings_ratio),
            (
                "violation_magnitude",
                x.violation_magnitude,
                y.violation_magnitude,
            ),
            (
                "premium_miss_rate",
                x.premium_miss_rate,
                y.premium_miss_rate,
            ),
            (
                "premium_throughput",
                x.premium_throughput,
                y.premium_throughput,
            ),
            (
                "ordinary_throughput",
                x.ordinary_throughput,
                y.ordinary_throughput,
            ),
        ] {
            assert_eq!(
                l.to_bits(),
                r.to_bits(),
                "{ctx}: sample {} {name}: {l} vs {r}",
                x.index
            );
        }
        assert_eq!(x.hourly_violations, y.hourly_violations, "{ctx}");
        assert_eq!(x.violates_budget, y.violates_budget, "{ctx}");
    }
}

#[test]
fn summaries_are_bitwise_identical_across_thread_counts() {
    let mut digests = Vec::new();
    let mut all_samples = Vec::new();
    for threads in [1, 2, 4] {
        let mut cfg = quick_config(6);
        cfg.threads = threads;
        cfg.schedule = ScheduleSpec::Derate { depth: 0.2 };
        let (samples, summary) = RiskEngine::new(cfg).run().unwrap();
        digests.push(summary.digest());
        all_samples.push(samples);
    }
    assert_eq!(digests[0], digests[1], "threads 1 vs 2");
    assert_eq!(digests[0], digests[2], "threads 1 vs 4");
    assert_bitwise(&all_samples[0], &all_samples[1], "threads 1 vs 2");
    assert_bitwise(&all_samples[0], &all_samples[2], "threads 1 vs 4");
}

#[test]
fn scratch_loop_matches_fresh_oracle_on_risk_scenarios() {
    // The scratch path reuses one engine across three different months
    // (different seeds => different workloads, same system); each must
    // match a from-scratch fresh run bitwise — allocation reuse is an
    // accelerator, never an approximation.
    let mut scratch = MonthScratch::new();
    for seed in [11u64, 12, 13] {
        let mut s = Scenario::paper_default(1, seed);
        s.workload = s.workload.slice(0, 72);
        s.background = s.background.iter().map(|b| b.slice(0, 72)).collect();
        let base: Vec<f64> = s.system.sites.iter().map(|x| x.power_cap_mw).collect();
        let sched = CapSchedule::derating(&base, 72, 0.25, seed);
        let budget = Some(Scenario::STRINGENT_BUDGET * 72.0 / 720.0);

        let reused = run_month_scratch(
            &s,
            Strategy::CostCapping,
            budget,
            true,
            Some(&sched),
            &mut scratch,
        )
        .unwrap();
        let fresh = run_month_fresh(&s, Strategy::CostCapping, budget, true, Some(&sched)).unwrap();
        assert_eq!(reused.hours.len(), fresh.hours.len());
        for (a, b) in reused.hours.iter().zip(&fresh.hours) {
            assert_eq!(
                a.realized_cost.to_bits(),
                b.realized_cost.to_bits(),
                "seed {seed} hour {}: scratch {} vs fresh {}",
                a.hour,
                a.realized_cost,
                b.realized_cost
            );
            assert_eq!(a.lambda, b.lambda, "seed {seed} hour {}", a.hour);
            assert_eq!(a.power_mw, b.power_mw, "seed {seed} hour {}", a.hour);
            assert_eq!(a.outcome, b.outcome, "seed {seed} hour {}", a.hour);
        }
        assert!(reused.audit_clean(), "{:?}", reused.first_audit_failure());
    }
}

#[test]
fn cap_schedule_is_respected_in_every_audited_hour() {
    let mut cfg = quick_config(2);
    cfg.threads = 2;
    cfg.schedule = ScheduleSpec::Derate { depth: 0.3 };
    cfg.audit = true;
    let (samples, _) = RiskEngine::new(cfg).run().unwrap();
    // The per-hour plan audit (power caps among its invariants) ran
    // inside every sample; a violation would have failed the run via
    // the report. Spot-check the samples came back populated.
    assert_eq!(samples.len(), 2);
    for s in &samples {
        assert!(s.capper_bill.is_finite() && s.capper_bill > 0.0);
    }
}

#[test]
fn single_sample_run_degenerates_cleanly() {
    let mut cfg = quick_config(1);
    cfg.threads = 4; // more workers than samples
    let (samples, summary) = RiskEngine::new(cfg).run().unwrap();
    assert_eq!(samples.len(), 1);
    assert_eq!(summary.samples, 1);
    let s = &samples[0];
    // Every quantile of a one-sample distribution is that sample.
    for q in [
        summary.bill.p50,
        summary.bill.p95,
        summary.bill.p99,
        summary.bill.mean,
        summary.bill.min,
        summary.bill.max,
    ] {
        assert_eq!(q.to_bits(), s.capper_bill.to_bits());
    }
}

#[test]
fn identical_seeds_collapse_the_distribution() {
    let mut cfg = quick_config(4);
    cfg.threads = 2;
    let engine = RiskEngine::new(cfg);
    let (samples, summary) = engine.run_with_seeds(&[777, 777, 777, 777]).unwrap();
    for s in &samples[1..] {
        assert_eq!(s.capper_bill.to_bits(), samples[0].capper_bill.to_bits());
        assert_eq!(
            s.min_only_bill.to_bits(),
            samples[0].min_only_bill.to_bits()
        );
    }
    assert_eq!(summary.bill.min.to_bits(), summary.bill.max.to_bits());
    assert_eq!(
        summary.savings_ratio.p50.to_bits(),
        summary.savings_ratio.p99.to_bits()
    );
}

#[test]
fn starvation_budget_forces_the_two_step_path_every_hour() {
    // A $1 budget can never cover step 1's minimum cost, so every hour
    // must take the step-2 (throttle) or step-3 (premium override)
    // branch — and the audit must still sanction each of them.
    let mut s = Scenario::paper_default(1, 42);
    s.workload = s.workload.slice(0, 48);
    s.background = s.background.iter().map(|b| b.slice(0, 48)).collect();
    let base: Vec<f64> = s.system.sites.iter().map(|x| x.power_cap_mw).collect();
    let sched = CapSchedule::derating(&base, 48, 0.3, 42);
    let mut scratch = MonthScratch::new();
    let r = run_month_scratch(
        &s,
        Strategy::CostCapping,
        Some(1.0),
        true,
        Some(&sched),
        &mut scratch,
    )
    .unwrap();
    assert_eq!(r.hours.len(), 48);
    for h in &r.hours {
        assert_ne!(
            h.outcome,
            Some(HourOutcome::WithinBudget),
            "hour {}: a $1 budget cannot be within budget",
            h.hour
        );
    }
    assert!(r.audit_clean(), "{:?}", r.first_audit_failure());
    // And the degenerate month still matches the fresh oracle.
    let fresh = run_month_fresh(&s, Strategy::CostCapping, Some(1.0), true, Some(&sched)).unwrap();
    for (a, b) in r.hours.iter().zip(&fresh.hours) {
        assert_eq!(a.realized_cost.to_bits(), b.realized_cost.to_bits());
        assert_eq!(a.outcome, b.outcome);
    }
}
