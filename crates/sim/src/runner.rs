//! The hourly simulation loop.

use crate::metrics::{HourAudit, HourRecord, HourTrace, MonthlyReport};
use crate::scenario::Scenario;
use billcap_core::{
    audit_env_enabled, evaluate_allocation, BillCapper, CoreError, MinOnly, PlanAuditor,
    PriceAssumption,
};
use billcap_workload::Budgeter;

/// The strategies the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The paper's two-step bill capping algorithm.
    CostCapping,
    /// Min-Only with average step prices assumed constant.
    MinOnlyAvg,
    /// Min-Only with the lowest step price assumed constant.
    MinOnlyLow,
}

impl Strategy {
    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::CostCapping => "Cost Capping",
            Strategy::MinOnlyAvg => "Min-Only (Avg)",
            Strategy::MinOnlyLow => "Min-Only (Low)",
        }
    }

    /// All three strategies, in the paper's presentation order.
    pub const ALL: [Strategy; 3] = [
        Strategy::CostCapping,
        Strategy::MinOnlyAvg,
        Strategy::MinOnlyLow,
    ];
}

/// Simulates the evaluation month under `strategy`.
///
/// `monthly_budget` applies only to Cost Capping (the baselines are
/// budget-unaware by design — that is the paper's point). Costs recorded
/// are *realized* costs: every strategy's allocation is billed under the
/// true step prices and the full power model.
pub fn run_month(
    scenario: &Scenario,
    strategy: Strategy,
    monthly_budget: Option<f64>,
) -> Result<MonthlyReport, CoreError> {
    run_month_with(scenario, strategy, monthly_budget, audit_env_enabled())
}

/// [`run_month`] with the plan audit explicitly on or off.
///
/// With `audit` set, every Cost Capping hour's decision is re-checked by
/// [`PlanAuditor`] against the paper's invariants (power caps, G/G/m
/// response time, step-price consistency, budget-with-override, premium
/// QoS) and the outcome is recorded on the [`HourRecord`]. Baselines are
/// not audited — they violate the capper's invariants by design. The
/// solver-level certificate check is separate: it runs inside the
/// optimizers whenever `BILLCAP_AUDIT` is set and turns a bad certificate
/// into a hard [`CoreError::Audit`].
pub fn run_month_with(
    scenario: &Scenario,
    strategy: Strategy,
    monthly_budget: Option<f64>,
    audit: bool,
) -> Result<MonthlyReport, CoreError> {
    let horizon = scenario.horizon();
    let auditor = audit.then(PlanAuditor::default);
    let mut budgeter = match (strategy, monthly_budget) {
        (Strategy::CostCapping, Some(b)) => {
            Some(Budgeter::from_history(b, &scenario.history, horizon))
        }
        _ => None,
    };
    let capper = BillCapper::default();
    let min_only = match strategy {
        Strategy::MinOnlyAvg => Some(MinOnly::new(PriceAssumption::Average)),
        Strategy::MinOnlyLow => Some(MinOnly::new(PriceAssumption::Lowest)),
        Strategy::CostCapping => None,
    };

    let mut hours = Vec::with_capacity(horizon);
    for t in 0..horizon {
        let offered = scenario.workload.at(t);
        let premium = scenario.split.premium(offered);
        let ordinary = scenario.split.ordinary(offered);
        let d = scenario.background_at(t);

        let record = match strategy {
            Strategy::CostCapping => {
                let hourly_budget = budgeter
                    .as_ref()
                    .map(Budgeter::hourly_budget)
                    .unwrap_or(f64::INFINITY);
                let t_start = billcap_obs::Stopwatch::start();
                let mut hour_span = billcap_obs::span("hour");
                let decision =
                    capper.decide_hour(&scenario.system, offered, premium, &d, hourly_budget)?;
                let audit = auditor.as_ref().map(|a| {
                    HourAudit::from_report(&a.audit_decision(&scenario.system, &decision, &d))
                });
                let realized =
                    evaluate_allocation(&scenario.system, &decision.allocation.lambda, &d);
                if let Some(b) = budgeter.as_mut() {
                    b.record_spend(realized.total_cost);
                }
                let carryover = budgeter.as_ref().map(Budgeter::carryover);
                if hour_span.is_enabled() {
                    hour_span.field("hour", t as f64);
                    hour_span.field("cost", realized.total_cost);
                    hour_span.field("solves", decision.trace.solves as f64);
                    hour_span.field("nodes", decision.trace.nodes as f64);
                    hour_span.field(
                        "outcome",
                        match decision.outcome {
                            billcap_core::HourOutcome::WithinBudget => 0.0,
                            billcap_core::HourOutcome::Throttled => 1.0,
                            billcap_core::HourOutcome::PremiumOverride => 2.0,
                        },
                    );
                    hour_span.field("premium_served", decision.premium_served);
                    hour_span.field("ordinary_served", decision.ordinary_served);
                    if let Some(c) = carryover {
                        hour_span.field("carry", c);
                    }
                    for (i, &k) in decision.allocation.level.iter().enumerate() {
                        hour_span.field(&format!("level_s{i}"), k as f64);
                    }
                    billcap_obs::counter("sim.hours", 1);
                }
                drop(hour_span);
                let trace = HourTrace {
                    wall_ns: t_start.elapsed_ns(),
                    solves: decision.trace.solves,
                    nodes: decision.trace.nodes,
                    lp_iterations: decision.trace.lp_iterations,
                    carryover,
                };
                HourRecord {
                    hour: t,
                    offered,
                    premium_offered: premium,
                    ordinary_offered: ordinary,
                    premium_served: decision.premium_served,
                    ordinary_served: decision.ordinary_served,
                    realized_cost: realized.total_cost,
                    believed_cost: decision.allocation.total_cost,
                    hourly_budget: budgeter.is_some().then_some(decision.budget),
                    outcome: Some(decision.outcome),
                    lambda: decision.allocation.lambda.clone(),
                    power_mw: realized.power_mw,
                    price: realized.price,
                    audit,
                    trace: Some(trace),
                }
            }
            Strategy::MinOnlyAvg | Strategy::MinOnlyLow => {
                // Min-Only serves everything it physically can, budget or
                // not; extreme flash crowds get the same capacity clamp.
                let capacity = scenario.system.total_capacity();
                let admitted = offered.min(capacity);
                let decision = min_only
                    .as_ref()
                    .expect("baseline constructed") // repolint-allow(unwrap): built in this match arm
                    .solve(&scenario.system, admitted)?;
                let realized = evaluate_allocation(&scenario.system, &decision.lambda, &d);
                let premium_served = premium.min(admitted);
                HourRecord {
                    hour: t,
                    offered,
                    premium_offered: premium,
                    ordinary_offered: ordinary,
                    premium_served,
                    ordinary_served: admitted - premium_served,
                    realized_cost: realized.total_cost,
                    believed_cost: decision.believed_cost,
                    hourly_budget: None,
                    outcome: None,
                    lambda: decision.lambda.clone(),
                    power_mw: realized.power_mw,
                    price: realized.price,
                    audit: None,
                    trace: None,
                }
            }
        };
        hours.push(record);
    }

    Ok(MonthlyReport {
        strategy_name: strategy.name().to_string(),
        monthly_budget: match strategy {
            Strategy::CostCapping => monthly_budget,
            _ => None,
        },
        hours,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    /// A one-week scenario keeps unit tests fast; full months run in the
    /// experiment suite and benchmarks.
    fn short_scenario() -> Scenario {
        let mut s = Scenario::paper_default(1, 42);
        s.workload = s.workload.slice(0, 168);
        s.background = s.background.iter().map(|b| b.slice(0, 168)).collect();
        s
    }

    #[test]
    fn unbudgeted_capping_serves_everything() {
        let s = short_scenario();
        let r = run_month(&s, Strategy::CostCapping, None).unwrap();
        assert_eq!(r.hours.len(), 168);
        assert!((r.premium_throughput() - 1.0).abs() < 1e-9);
        assert!((r.ordinary_throughput() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn capping_beats_baselines_on_cost() {
        let s = short_scenario();
        let capping = run_month(&s, Strategy::CostCapping, None).unwrap();
        let avg = run_month(&s, Strategy::MinOnlyAvg, None).unwrap();
        let low = run_month(&s, Strategy::MinOnlyLow, None).unwrap();
        assert!(
            capping.total_cost() < avg.total_cost(),
            "capping {} vs avg {}",
            capping.total_cost(),
            avg.total_cost()
        );
        assert!(
            capping.total_cost() < low.total_cost(),
            "capping {} vs low {}",
            capping.total_cost(),
            low.total_cost()
        );
    }

    #[test]
    fn budgeted_run_records_budgets_and_premium_is_safe() {
        let s = short_scenario();
        // A deliberately tight weekly-scale budget.
        let r = run_month(&s, Strategy::CostCapping, Some(80_000.0)).unwrap();
        assert!((r.premium_throughput() - 1.0).abs() < 1e-9);
        assert!(r.hours.iter().all(|h| h.hourly_budget.is_some()));
        // Under a tight budget at least some ordinary traffic is shed.
        assert!(r.ordinary_throughput() < 1.0);
    }

    #[test]
    fn baselines_ignore_budgets() {
        let s = short_scenario();
        let r = run_month(&s, Strategy::MinOnlyAvg, Some(1.0)).unwrap();
        assert_eq!(r.monthly_budget, None);
        assert!((r.ordinary_throughput() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn audited_month_is_clean_and_recorded() {
        let s = short_scenario();
        // Tight budget so all three outcomes (within/throttled/override)
        // can appear, each with its own invariant set.
        let r = run_month_with(&s, Strategy::CostCapping, Some(80_000.0), true).unwrap();
        assert_eq!(r.audited_hours(), 168);
        assert!(
            r.audit_clean(),
            "audit failures: {:?}",
            r.first_audit_failure()
        );
        // Baselines are never audited.
        let b = run_month_with(&s, Strategy::MinOnlyAvg, None, true).unwrap();
        assert_eq!(b.audited_hours(), 0);
        // And auditing off leaves records unaudited.
        let off = run_month_with(&s, Strategy::CostCapping, None, false).unwrap();
        assert_eq!(off.audited_hours(), 0);
    }

    #[test]
    fn believed_vs_realized_gap_direction() {
        // Min-Only (Low) underestimates its bill; Cost Capping's believed
        // (linearized) cost is within a fraction of a percent of realized.
        let s = short_scenario();
        let low = run_month(&s, Strategy::MinOnlyLow, None).unwrap();
        assert!(low.total_believed_cost() < low.total_cost());
        let capping = run_month(&s, Strategy::CostCapping, None).unwrap();
        let rel =
            (capping.total_believed_cost() - capping.total_cost()).abs() / capping.total_cost();
        assert!(rel < 0.01, "capping believed-vs-real gap {rel}");
    }
}
