//! The hourly simulation loop.
//!
//! Two implementations of the same month semantics:
//!
//! * [`run_month_scratch`] — the production loop. Decisions come from a
//!   retained [`DecisionEngine`] (build-once/mutate-values MILPs), the
//!   per-hour background vector fills a reusable buffer, and both live
//!   in a caller-owned [`MonthScratch`] so a Monte-Carlo worker pays
//!   model construction once per fleet, not once per hour × sample.
//! * [`run_month_fresh`] — the reference loop: a fresh [`BillCapper`]
//!   model build and fresh allocations every hour, exactly the
//!   pre-reuse behavior. It exists as the differential oracle: the
//!   scratch path must match it bitwise on every decision (the engine's
//!   contract), which `tests/risk_determinism.rs` enforces.
//!
//! Both paths accept an optional [`CapSchedule`] that re-caps every
//! site at every hour; the audit and the realized billing always see
//! the hour's capped system.

use crate::metrics::{HourAudit, HourRecord, HourTrace, MonthlyReport};
use crate::scenario::Scenario;
use billcap_core::{
    audit_env_enabled, evaluate_allocation, system_fingerprint, BillCapper, CapSchedule,
    CapperConfig, CoreError, DataCenterSystem, DecisionEngine, HourDecision, MinOnly, PlanAuditor,
    PriceAssumption,
};
use billcap_workload::Budgeter;

/// The strategies the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The paper's two-step bill capping algorithm.
    CostCapping,
    /// Min-Only with average step prices assumed constant.
    MinOnlyAvg,
    /// Min-Only with the lowest step price assumed constant.
    MinOnlyLow,
}

impl Strategy {
    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::CostCapping => "Cost Capping",
            Strategy::MinOnlyAvg => "Min-Only (Avg)",
            Strategy::MinOnlyLow => "Min-Only (Low)",
        }
    }

    /// All three strategies, in the paper's presentation order.
    pub const ALL: [Strategy; 3] = [
        Strategy::CostCapping,
        Strategy::MinOnlyAvg,
        Strategy::MinOnlyLow,
    ];
}

/// Reusable per-worker month-run state: the retained decision engine
/// (keyed on the system it was built for) and the per-hour background
/// buffer. One scratch per worker; a 10k-sample Monte-Carlo run then
/// builds MILP structures a handful of times instead of 20k× per
/// sample.
///
/// Reuse is bitwise-safe: the engine's rebuild key covers everything
/// structural (kept price levels, per-site caps), so a decision never
/// depends on what the scratch decided before — `run_month_scratch`
/// with a reused scratch equals [`run_month_fresh`] bit for bit.
#[derive(Default)]
pub struct MonthScratch {
    /// Retained engine plus the fingerprint of the base system it was
    /// built from (caps may be schedule-mutated between hours; the
    /// fingerprint always describes the *uncapped* base spec).
    engine: Option<(u64, DecisionEngine)>,
    /// Reusable hour-sized background-demand vector.
    background: Vec<f64>,
}

impl MonthScratch {
    /// An empty scratch; everything is built lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Returns the retained engine for `system`, (re)building it when the
/// scratch last served a different system, and resetting any cap
/// mutation a previous month's schedule left behind.
fn ensure_engine<'a>(
    slot: &'a mut Option<(u64, DecisionEngine)>,
    system: &DataCenterSystem,
) -> &'a mut DecisionEngine {
    let fp = system_fingerprint(system);
    let rebuild = !matches!(slot, Some((have, _)) if *have == fp);
    if rebuild {
        *slot = Some((
            fp,
            DecisionEngine::new(system.clone(), CapperConfig::default()),
        ));
    } else if let Some((_, engine)) = slot.as_mut() {
        let caps: Vec<f64> = system.sites.iter().map(|s| s.power_cap_mw).collect();
        engine.set_site_caps(&caps);
    }
    match slot.as_mut() {
        Some((_, engine)) => engine,
        None => unreachable!("slot filled above"),
    }
}

/// Simulates the evaluation month under `strategy`.
///
/// `monthly_budget` applies only to Cost Capping (the baselines are
/// budget-unaware by design — that is the paper's point). Costs recorded
/// are *realized* costs: every strategy's allocation is billed under the
/// true step prices and the full power model.
pub fn run_month(
    scenario: &Scenario,
    strategy: Strategy,
    monthly_budget: Option<f64>,
) -> Result<MonthlyReport, CoreError> {
    run_month_with(scenario, strategy, monthly_budget, audit_env_enabled())
}

/// [`run_month`] with the plan audit explicitly on or off.
///
/// With `audit` set, every Cost Capping hour's decision is re-checked by
/// [`PlanAuditor`] against the paper's invariants (power caps, G/G/m
/// response time, step-price consistency, budget-with-override, premium
/// QoS) and the outcome is recorded on the [`HourRecord`]. Baselines are
/// not audited — they violate the capper's invariants by design. The
/// solver-level certificate check is separate: it runs inside the
/// optimizers whenever `BILLCAP_AUDIT` is set and turns a bad certificate
/// into a hard [`CoreError::Audit`].
pub fn run_month_with(
    scenario: &Scenario,
    strategy: Strategy,
    monthly_budget: Option<f64>,
    audit: bool,
) -> Result<MonthlyReport, CoreError> {
    let mut scratch = MonthScratch::new();
    run_month_scratch(
        scenario,
        strategy,
        monthly_budget,
        audit,
        None,
        &mut scratch,
    )
}

/// The production month loop: retained models, reused buffers, optional
/// time-varying caps. See the module docs for the scratch-reuse
/// contract. The schedule (when present) re-caps every site each hour;
/// the capper's models, the audit, and the realized billing all see the
/// capped system.
pub fn run_month_scratch(
    scenario: &Scenario,
    strategy: Strategy,
    monthly_budget: Option<f64>,
    audit: bool,
    cap_schedule: Option<&CapSchedule>,
    scratch: &mut MonthScratch,
) -> Result<MonthlyReport, CoreError> {
    let horizon = scenario.horizon();
    let auditor = audit.then(PlanAuditor::default);
    let mut budgeter = make_budgeter(scenario, strategy, monthly_budget, horizon);
    let min_only = baseline_for(strategy);
    // Working spec for the baselines under a schedule (the engine owns
    // its own copy for the capping path).
    let mut baseline_sys = min_only.is_some().then(|| scenario.system.clone());
    let MonthScratch { engine, background } = scratch;

    let mut hours = Vec::with_capacity(horizon);
    // repolint-hot-start(month hour loop): this loop runs 720× per
    // Monte-Carlo sample; per-hour allocations belong in MonthScratch.
    for t in 0..horizon {
        let offered = scenario.workload.at(t);
        let premium = scenario.split.premium(offered);
        let ordinary = scenario.split.ordinary(offered);
        scenario.background_at_into(t, background);

        let record = match strategy {
            Strategy::CostCapping => {
                let engine = ensure_engine(engine, &scenario.system);
                if let Some(sched) = cap_schedule {
                    engine.set_site_caps(sched.caps_at(t));
                }
                let hourly_budget = budgeter
                    .as_ref()
                    .map(Budgeter::hourly_budget)
                    .unwrap_or(f64::INFINITY);
                let t_start = billcap_obs::Stopwatch::start();
                let hour_span = billcap_obs::span("hour");
                let decision = engine.decide_hour(offered, premium, background, hourly_budget)?;
                finish_capping_hour(
                    t,
                    offered,
                    premium,
                    ordinary,
                    background,
                    decision,
                    engine.system(),
                    auditor.as_ref(),
                    &mut budgeter,
                    t_start,
                    hour_span,
                )
            }
            Strategy::MinOnlyAvg | Strategy::MinOnlyLow => {
                let sys = match baseline_sys.as_mut() {
                    Some(s) => s,
                    None => unreachable!("baseline system built for baseline strategies"),
                };
                if let Some(sched) = cap_schedule {
                    sched.apply(sys, t);
                }
                let min_only = match min_only.as_ref() {
                    Some(m) => m,
                    None => unreachable!("baseline constructed for baseline strategies"),
                };
                min_only_hour(t, offered, premium, ordinary, background, sys, min_only)?
            }
        };
        hours.push(record);
    }
    // repolint-hot-end

    Ok(finish_report(strategy, monthly_budget, hours))
}

/// The reference month loop: a fresh model build and fresh allocations
/// every hour (the pre-reuse behavior, kept as the differential oracle
/// for [`run_month_scratch`]). Semantics — including the optional cap
/// schedule — are identical; only the reuse strategy differs.
pub fn run_month_fresh(
    scenario: &Scenario,
    strategy: Strategy,
    monthly_budget: Option<f64>,
    audit: bool,
    cap_schedule: Option<&CapSchedule>,
) -> Result<MonthlyReport, CoreError> {
    let horizon = scenario.horizon();
    let auditor = audit.then(PlanAuditor::default);
    let mut budgeter = make_budgeter(scenario, strategy, monthly_budget, horizon);
    let capper = BillCapper::default();
    let min_only = baseline_for(strategy);
    let mut capped = scenario.system.clone();

    let mut hours = Vec::with_capacity(horizon);
    for t in 0..horizon {
        let offered = scenario.workload.at(t);
        let premium = scenario.split.premium(offered);
        let ordinary = scenario.split.ordinary(offered);
        let d = scenario.background_at(t);
        if let Some(sched) = cap_schedule {
            sched.apply(&mut capped, t);
        }

        let record = match strategy {
            Strategy::CostCapping => {
                let hourly_budget = budgeter
                    .as_ref()
                    .map(Budgeter::hourly_budget)
                    .unwrap_or(f64::INFINITY);
                let t_start = billcap_obs::Stopwatch::start();
                let hour_span = billcap_obs::span("hour");
                let decision = capper.decide_hour(&capped, offered, premium, &d, hourly_budget)?;
                finish_capping_hour(
                    t,
                    offered,
                    premium,
                    ordinary,
                    &d,
                    decision,
                    &capped,
                    auditor.as_ref(),
                    &mut budgeter,
                    t_start,
                    hour_span,
                )
            }
            Strategy::MinOnlyAvg | Strategy::MinOnlyLow => {
                let min_only = match min_only.as_ref() {
                    Some(m) => m,
                    None => unreachable!("baseline constructed for baseline strategies"),
                };
                min_only_hour(t, offered, premium, ordinary, &d, &capped, min_only)?
            }
        };
        hours.push(record);
    }

    Ok(finish_report(strategy, monthly_budget, hours))
}

/// Budgeter construction shared by both loops: only Cost Capping with a
/// monthly budget gets one.
fn make_budgeter(
    scenario: &Scenario,
    strategy: Strategy,
    monthly_budget: Option<f64>,
    horizon: usize,
) -> Option<Budgeter> {
    match (strategy, monthly_budget) {
        (Strategy::CostCapping, Some(b)) => {
            Some(Budgeter::from_history(b, &scenario.history, horizon))
        }
        _ => None,
    }
}

/// The baseline solver for baseline strategies.
fn baseline_for(strategy: Strategy) -> Option<MinOnly> {
    match strategy {
        Strategy::MinOnlyAvg => Some(MinOnly::new(PriceAssumption::Average)),
        Strategy::MinOnlyLow => Some(MinOnly::new(PriceAssumption::Lowest)),
        Strategy::CostCapping => None,
    }
}

fn finish_report(
    strategy: Strategy,
    monthly_budget: Option<f64>,
    hours: Vec<HourRecord>,
) -> MonthlyReport {
    MonthlyReport {
        strategy_name: strategy.name().to_string(),
        monthly_budget: match strategy {
            Strategy::CostCapping => monthly_budget,
            _ => None,
        },
        hours,
    }
}

/// Everything that happens to a Cost Capping hour *after* the decision:
/// audit, realized billing, budget bookkeeping, observability, record
/// assembly. Shared verbatim between [`run_month_scratch`] and
/// [`run_month_fresh`] so the two paths cannot drift — the only
/// difference between them is who produced `decision`.
#[allow(clippy::too_many_arguments)]
fn finish_capping_hour(
    t: usize,
    offered: f64,
    premium: f64,
    ordinary: f64,
    d: &[f64],
    decision: HourDecision,
    system: &DataCenterSystem,
    auditor: Option<&PlanAuditor>,
    budgeter: &mut Option<Budgeter>,
    t_start: billcap_obs::Stopwatch,
    mut hour_span: billcap_obs::Span,
) -> HourRecord {
    let audit = auditor.map(|a| HourAudit::from_report(&a.audit_decision(system, &decision, d)));
    let realized = evaluate_allocation(system, &decision.allocation.lambda, d);
    if let Some(b) = budgeter.as_mut() {
        b.record_spend(realized.total_cost);
    }
    let carryover = budgeter.as_ref().map(Budgeter::carryover);
    if hour_span.is_enabled() {
        hour_span.field("hour", t as f64);
        hour_span.field("cost", realized.total_cost);
        hour_span.field("solves", decision.trace.solves as f64);
        hour_span.field("nodes", decision.trace.nodes as f64);
        hour_span.field(
            "outcome",
            match decision.outcome {
                billcap_core::HourOutcome::WithinBudget => 0.0,
                billcap_core::HourOutcome::Throttled => 1.0,
                billcap_core::HourOutcome::PremiumOverride => 2.0,
            },
        );
        hour_span.field("premium_served", decision.premium_served);
        hour_span.field("ordinary_served", decision.ordinary_served);
        if let Some(c) = carryover {
            hour_span.field("carry", c);
        }
        for (i, &k) in decision.allocation.level.iter().enumerate() {
            hour_span.field(&format!("level_s{i}"), k as f64);
        }
        billcap_obs::counter("sim.hours", 1);
    }
    drop(hour_span);
    let trace = HourTrace {
        wall_ns: t_start.elapsed_ns(),
        solves: decision.trace.solves,
        nodes: decision.trace.nodes,
        lp_iterations: decision.trace.lp_iterations,
        carryover,
    };
    HourRecord {
        hour: t,
        offered,
        premium_offered: premium,
        ordinary_offered: ordinary,
        premium_served: decision.premium_served,
        ordinary_served: decision.ordinary_served,
        realized_cost: realized.total_cost,
        believed_cost: decision.allocation.total_cost,
        hourly_budget: budgeter.is_some().then_some(decision.budget),
        outcome: Some(decision.outcome),
        lambda: decision.allocation.lambda.clone(),
        power_mw: realized.power_mw,
        price: realized.price,
        audit,
        trace: Some(trace),
    }
}

/// One baseline (Min-Only) hour, shared between both loops. Min-Only
/// serves everything it physically can, budget or not; extreme flash
/// crowds get the same capacity clamp the capper applies.
fn min_only_hour(
    t: usize,
    offered: f64,
    premium: f64,
    ordinary: f64,
    d: &[f64],
    system: &DataCenterSystem,
    min_only: &MinOnly,
) -> Result<HourRecord, CoreError> {
    let capacity = system.total_capacity();
    let admitted = offered.min(capacity);
    let decision = min_only.solve(system, admitted)?;
    let realized = evaluate_allocation(system, &decision.lambda, d);
    let premium_served = premium.min(admitted);
    Ok(HourRecord {
        hour: t,
        offered,
        premium_offered: premium,
        ordinary_offered: ordinary,
        premium_served,
        ordinary_served: admitted - premium_served,
        realized_cost: realized.total_cost,
        believed_cost: decision.believed_cost,
        hourly_budget: None,
        outcome: None,
        lambda: decision.lambda.clone(),
        power_mw: realized.power_mw,
        price: realized.price,
        audit: None,
        trace: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    /// A one-week scenario keeps unit tests fast; full months run in the
    /// experiment suite and benchmarks.
    fn short_scenario() -> Scenario {
        let mut s = Scenario::paper_default(1, 42);
        s.workload = s.workload.slice(0, 168);
        s.background = s.background.iter().map(|b| b.slice(0, 168)).collect();
        s
    }

    #[test]
    fn unbudgeted_capping_serves_everything() {
        let s = short_scenario();
        let r = run_month(&s, Strategy::CostCapping, None).unwrap();
        assert_eq!(r.hours.len(), 168);
        assert!((r.premium_throughput() - 1.0).abs() < 1e-9);
        assert!((r.ordinary_throughput() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn capping_beats_baselines_on_cost() {
        let s = short_scenario();
        let capping = run_month(&s, Strategy::CostCapping, None).unwrap();
        let avg = run_month(&s, Strategy::MinOnlyAvg, None).unwrap();
        let low = run_month(&s, Strategy::MinOnlyLow, None).unwrap();
        assert!(
            capping.total_cost() < avg.total_cost(),
            "capping {} vs avg {}",
            capping.total_cost(),
            avg.total_cost()
        );
        assert!(
            capping.total_cost() < low.total_cost(),
            "capping {} vs low {}",
            capping.total_cost(),
            low.total_cost()
        );
    }

    #[test]
    fn budgeted_run_records_budgets_and_premium_is_safe() {
        let s = short_scenario();
        // A deliberately tight weekly-scale budget.
        let r = run_month(&s, Strategy::CostCapping, Some(80_000.0)).unwrap();
        assert!((r.premium_throughput() - 1.0).abs() < 1e-9);
        assert!(r.hours.iter().all(|h| h.hourly_budget.is_some()));
        // Under a tight budget at least some ordinary traffic is shed.
        assert!(r.ordinary_throughput() < 1.0);
    }

    #[test]
    fn baselines_ignore_budgets() {
        let s = short_scenario();
        let r = run_month(&s, Strategy::MinOnlyAvg, Some(1.0)).unwrap();
        assert_eq!(r.monthly_budget, None);
        assert!((r.ordinary_throughput() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn audited_month_is_clean_and_recorded() {
        let s = short_scenario();
        // Tight budget so all three outcomes (within/throttled/override)
        // can appear, each with its own invariant set.
        let r = run_month_with(&s, Strategy::CostCapping, Some(80_000.0), true).unwrap();
        assert_eq!(r.audited_hours(), 168);
        assert!(
            r.audit_clean(),
            "audit failures: {:?}",
            r.first_audit_failure()
        );
        // Baselines are never audited.
        let b = run_month_with(&s, Strategy::MinOnlyAvg, None, true).unwrap();
        assert_eq!(b.audited_hours(), 0);
        // And auditing off leaves records unaudited.
        let off = run_month_with(&s, Strategy::CostCapping, None, false).unwrap();
        assert_eq!(off.audited_hours(), 0);
    }

    #[test]
    fn believed_vs_realized_gap_direction() {
        // Min-Only (Low) underestimates its bill; Cost Capping's believed
        // (linearized) cost is within a fraction of a percent of realized.
        let s = short_scenario();
        let low = run_month(&s, Strategy::MinOnlyLow, None).unwrap();
        assert!(low.total_believed_cost() < low.total_cost());
        let capping = run_month(&s, Strategy::CostCapping, None).unwrap();
        let rel =
            (capping.total_believed_cost() - capping.total_cost()).abs() / capping.total_cost();
        assert!(rel < 0.01, "capping believed-vs-real gap {rel}");
    }

    /// Bitwise equality of two monthly reports on everything
    /// deterministic (wall-clock ns excluded).
    pub(crate) fn assert_reports_bitwise_equal(a: &MonthlyReport, b: &MonthlyReport, ctx: &str) {
        assert_eq!(a.strategy_name, b.strategy_name, "{ctx}: strategy");
        assert_eq!(a.hours.len(), b.hours.len(), "{ctx}: hours");
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        for (x, y) in a.hours.iter().zip(&b.hours) {
            let h = x.hour;
            assert_eq!(x.hour, y.hour, "{ctx}: hour index");
            assert_eq!(
                x.offered.to_bits(),
                y.offered.to_bits(),
                "{ctx} h{h}: offered"
            );
            assert_eq!(
                x.premium_served.to_bits(),
                y.premium_served.to_bits(),
                "{ctx} h{h}: premium_served"
            );
            assert_eq!(
                x.ordinary_served.to_bits(),
                y.ordinary_served.to_bits(),
                "{ctx} h{h}: ordinary_served"
            );
            assert_eq!(
                x.realized_cost.to_bits(),
                y.realized_cost.to_bits(),
                "{ctx} h{h}: realized_cost"
            );
            assert_eq!(
                x.believed_cost.to_bits(),
                y.believed_cost.to_bits(),
                "{ctx} h{h}: believed_cost"
            );
            assert_eq!(
                x.hourly_budget.map(f64::to_bits),
                y.hourly_budget.map(f64::to_bits),
                "{ctx} h{h}: hourly_budget"
            );
            assert_eq!(x.outcome, y.outcome, "{ctx} h{h}: outcome");
            assert_eq!(bits(&x.lambda), bits(&y.lambda), "{ctx} h{h}: lambda");
            assert_eq!(bits(&x.power_mw), bits(&y.power_mw), "{ctx} h{h}: power");
            assert_eq!(bits(&x.price), bits(&y.price), "{ctx} h{h}: price");
            assert_eq!(x.audit, y.audit, "{ctx} h{h}: audit");
            let (tx, ty) = (&x.trace, &y.trace);
            assert_eq!(tx.is_some(), ty.is_some(), "{ctx} h{h}: trace presence");
            if let (Some(tx), Some(ty)) = (tx, ty) {
                assert_eq!(tx.solves, ty.solves, "{ctx} h{h}: solves");
                assert_eq!(tx.nodes, ty.nodes, "{ctx} h{h}: nodes");
                assert_eq!(tx.lp_iterations, ty.lp_iterations, "{ctx} h{h}: lp iters");
                assert_eq!(
                    tx.carryover.map(f64::to_bits),
                    ty.carryover.map(f64::to_bits),
                    "{ctx} h{h}: carryover"
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_run_bitwise() {
        let s = short_scenario();
        let mut scratch = MonthScratch::new();
        for strategy in Strategy::ALL {
            for budget in [None, Some(80_000.0)] {
                let fresh = run_month_fresh(&s, strategy, budget, true, None).unwrap();
                // The same scratch serves every run — reuse must not leak.
                let reused =
                    run_month_scratch(&s, strategy, budget, true, None, &mut scratch).unwrap();
                assert_reports_bitwise_equal(
                    &reused,
                    &fresh,
                    &format!("{} budget={budget:?}", strategy.name()),
                );
            }
        }
    }

    #[test]
    fn cap_schedule_flows_into_decisions_and_audit() {
        let s = short_scenario();
        let base: Vec<f64> = s.system.sites.iter().map(|x| x.power_cap_mw).collect();
        let sched = billcap_core::CapSchedule::derating(&base, 168, 0.35, 42);
        let mut scratch = MonthScratch::new();
        let capped = run_month_scratch(
            &s,
            Strategy::CostCapping,
            None,
            true,
            Some(&sched),
            &mut scratch,
        )
        .unwrap();
        // Every hour audited (against the capped system) and clean.
        assert_eq!(capped.audited_hours(), 168);
        assert!(
            capped.audit_clean(),
            "audit failures under schedule: {:?}",
            capped.first_audit_failure()
        );
        // The derate must actually bind somewhere: the capped month's
        // dispatch differs from the flat-cap month's.
        let flat =
            run_month_scratch(&s, Strategy::CostCapping, None, true, None, &mut scratch).unwrap();
        assert!(
            capped
                .hours
                .iter()
                .zip(&flat.hours)
                .any(|(a, b)| a.lambda != b.lambda),
            "a 35% afternoon derate should move at least one hour's dispatch"
        );
        // And the scratch path matches the fresh path under the schedule.
        let fresh = run_month_fresh(&s, Strategy::CostCapping, None, true, Some(&sched)).unwrap();
        assert_reports_bitwise_equal(&capped, &fresh, "capped month");
    }

    #[test]
    fn cap_schedule_respected_in_every_hours_audit() {
        let s = short_scenario();
        let base: Vec<f64> = s.system.sites.iter().map(|x| x.power_cap_mw).collect();
        let sched = billcap_core::CapSchedule::derating(&base, 168, 0.35, 7);
        let mut scratch = MonthScratch::new();
        let r = run_month_scratch(
            &s,
            Strategy::CostCapping,
            Some(80_000.0),
            true,
            Some(&sched),
            &mut scratch,
        )
        .unwrap();
        // First-principles re-check outside the auditor: every hour's
        // realized per-site power obeys that hour's scheduled cap (the
        // tolerance mirrors the auditor's power_rel_tol headroom for
        // integral-server rounding at a binding cap).
        for h in &r.hours {
            let caps = sched.caps_at(h.hour);
            for (i, &p) in h.power_mw.iter().enumerate() {
                assert!(
                    p <= caps[i] * (1.0 + 1e-3),
                    "hour {} site {i}: power {p} MW exceeds scheduled cap {} MW",
                    h.hour,
                    caps[i]
                );
            }
        }
        assert!(r.audit_clean(), "{:?}", r.first_audit_failure());
    }

    #[test]
    fn baselines_respect_cap_schedules_too() {
        let s = short_scenario();
        let base: Vec<f64> = s.system.sites.iter().map(|x| x.power_cap_mw).collect();
        let sched = billcap_core::CapSchedule::derating(&base, 168, 0.35, 42);
        let mut scratch = MonthScratch::new();
        let capped = run_month_scratch(
            &s,
            Strategy::MinOnlyAvg,
            None,
            false,
            Some(&sched),
            &mut scratch,
        )
        .unwrap();
        let fresh = run_month_fresh(&s, Strategy::MinOnlyAvg, None, false, Some(&sched)).unwrap();
        assert_reports_bitwise_equal(&capped, &fresh, "capped baseline");
        // The capped system shrinks deliverable capacity, so the
        // baseline's admissions must react to the schedule.
        let flat = run_month_fresh(&s, Strategy::MinOnlyAvg, None, false, None).unwrap();
        assert!(
            capped
                .hours
                .iter()
                .zip(&flat.hours)
                .any(|(a, b)| a.lambda != b.lambda),
            "the derate should move at least one baseline hour's dispatch"
        );
    }
}
