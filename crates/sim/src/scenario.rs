//! The paper's simulated scenario (Section VI).

use billcap_core::DataCenterSystem;
use billcap_workload::{BackgroundDemand, CustomerSplit, HourlyTrace, TraceConfig, TraceGenerator};

/// Everything an experiment needs: the data-center network, two months of
/// workload (history for budgeting, evaluation month to simulate),
/// per-site background demand, and the premium/ordinary split.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub system: DataCenterSystem,
    /// October: budgeting history (31 days hourly).
    pub history: HourlyTrace,
    /// November: the simulated month (30 days hourly).
    pub workload: HourlyTrace,
    /// Background regional demand per site, aligned with `workload`.
    pub background: Vec<HourlyTrace>,
    pub split: CustomerSplit,
}

impl Scenario {
    /// Mean request rate (requests/hour) calibrated so the minimized
    /// monthly bill lands between the paper's "insufficient" ($1.5 M) and
    /// "sufficient" ($2.5 M) budgets (see DESIGN.md calibration notes).
    pub const MEAN_RATE: f64 = 7.0e8;

    /// The paper's monthly budget ladder (Figure 10), in dollars.
    pub const BUDGET_LADDER: [f64; 5] = [
        500_000.0,
        1_000_000.0,
        1_500_000.0,
        2_000_000.0,
        2_500_000.0,
    ];

    /// The "sufficient" budget of Figures 5/6.
    pub const ABUNDANT_BUDGET: f64 = 2_500_000.0;

    /// The "insufficient" budget of Figures 7/8/9.
    pub const STRINGENT_BUDGET: f64 = 1_500_000.0;

    /// Builds the paper's scenario under pricing-policy family
    /// `policy` (0..=3) with a deterministic seed.
    pub fn paper_default(policy: usize, seed: u64) -> Self {
        Self::with_mean_rate(policy, seed, Self::MEAN_RATE)
    }

    /// Same, with an explicit mean workload (used by calibration tests and
    /// stress experiments).
    pub fn with_mean_rate(policy: usize, seed: u64, mean_rate: f64) -> Self {
        let system = DataCenterSystem::paper_system(policy);
        let generator = TraceGenerator::new(TraceConfig::wikipedia_like(mean_rate, seed));
        let (history, workload) = generator.generate_two_months();
        let horizon = workload.len();
        let background = (0..system.len())
            .map(|i| BackgroundDemand::reco_like(i, seed).generate(horizon))
            .collect();
        Self {
            system,
            history,
            workload,
            background,
            split: CustomerSplit::paper_default(),
        }
    }

    /// Hours in the simulated month.
    pub fn horizon(&self) -> usize {
        self.workload.len()
    }

    /// Background demand vector for hour `t` (MW per site).
    pub fn background_at(&self, t: usize) -> Vec<f64> {
        self.background.iter().map(|b| b.at(t)).collect()
    }

    /// [`Self::background_at`] into a caller-owned buffer — the hot-loop
    /// variant ([`MonthScratch`](crate::MonthScratch) reuses one buffer
    /// for a whole month instead of allocating per hour).
    pub fn background_at_into(&self, t: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.background.iter().map(|b| b.at(t)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_shape() {
        let s = Scenario::paper_default(1, 42);
        assert_eq!(s.system.len(), 3);
        assert_eq!(s.history.len(), 31 * 24);
        assert_eq!(s.workload.len(), 30 * 24);
        assert_eq!(s.background.len(), 3);
        assert_eq!(s.background[0].len(), s.workload.len());
    }

    #[test]
    fn deterministic() {
        let a = Scenario::paper_default(1, 7);
        let b = Scenario::paper_default(1, 7);
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.background[2], b.background[2]);
    }

    #[test]
    fn workload_fits_capacity() {
        // Even the flash-crowd peak must stay within deliverable capacity,
        // otherwise step 1 (which must serve everything) is infeasible.
        let s = Scenario::paper_default(1, 42);
        let capacity = s.system.total_capacity();
        let peak = s.workload.peak();
        assert!(
            peak < capacity,
            "peak {peak} req/h exceeds capacity {capacity}"
        );
    }

    #[test]
    fn background_at_returns_per_site_values() {
        let s = Scenario::paper_default(1, 42);
        let d = s.background_at(100);
        assert_eq!(d.len(), 3);
        assert!(d.iter().all(|&x| x > 100.0));
    }
}
