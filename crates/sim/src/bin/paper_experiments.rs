//! Regenerates every table/figure of the paper's evaluation and prints the
//! corresponding rows/series, plus the ablation studies.
//!
//! ```text
//! cargo run --release -p billcap-sim --bin paper_experiments            # everything
//! cargo run --release -p billcap-sim --bin paper_experiments -- fig3   # one experiment
//! ```
//!
//! Valid experiment names: `fig1 fig3 fig4 fig5_6 fig7_8 fig9 fig10
//! solver ablation_power ablation_budget ablation_prediction
//! ablation_network ablation_weather hierarchical predictors seeds`.

#![forbid(unsafe_code)]

use billcap_sim::experiments::{self, DEFAULT_SEED};
use billcap_sim::export;
use std::path::PathBuf;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Optional `--csv DIR`: also write each figure's raw series as CSV.
    let csv_dir: Option<PathBuf> = args.iter().position(|a| a == "--csv").map(|pos| {
        let dir = args
            .get(pos + 1)
            .expect("--csv requires a directory argument")
            .clone();
        args.drain(pos..=pos + 1);
        PathBuf::from(dir)
    });
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv output directory");
    }
    let dump = |dir: &Option<PathBuf>, file: &str, contents: String| {
        if let Some(dir) = dir {
            std::fs::write(dir.join(file), contents).expect("write csv");
        }
    };
    let all = args.is_empty();
    let want = |name: &str| all || args.iter().any(|a| a == name);
    let seed = DEFAULT_SEED;

    if want("fig1") {
        let f = experiments::fig1();
        println!("{}", f.render());
        dump(&csv_dir, "fig1.csv", export::fig1_csv(&f));
    }
    if want("fig3") {
        let f = experiments::fig3(seed).expect("fig3");
        println!("{}", f.render());
        dump(&csv_dir, "fig3.csv", export::fig3_csv(&f));
    }
    if want("fig4") {
        let f = experiments::fig4(seed).expect("fig4");
        println!("{}", f.render());
        dump(&csv_dir, "fig4.csv", export::fig4_csv(&f));
    }
    if want("fig5_6") {
        println!("Figures 5/6 —");
        let f = experiments::fig5_6(seed).expect("fig5_6");
        println!("{}", f.render());
        dump(&csv_dir, "fig5_6.csv", export::budgeted_month_csv(&f));
    }
    if want("fig7_8") {
        println!("Figures 7/8 —");
        let f = experiments::fig7_8(seed).expect("fig7_8");
        println!("{}", f.render());
        dump(&csv_dir, "fig7_8.csv", export::budgeted_month_csv(&f));
    }
    if want("fig9") {
        println!("{}", experiments::fig9(seed).expect("fig9").render());
    }
    if want("fig10") {
        let f = experiments::fig10(seed).expect("fig10");
        println!("{}", f.render());
        dump(&csv_dir, "fig10.csv", export::fig10_csv(&f));
    }
    if want("solver") {
        println!("{}", experiments::solver_scaling(20).render());
    }
    if want("ablation_power") {
        println!(
            "{}",
            experiments::ablation_power_model(seed)
                .expect("ablation_power")
                .render()
        );
    }
    if want("ablation_budget") {
        println!(
            "{}",
            experiments::ablation_budget_history(seed)
                .expect("ablation_budget")
                .render()
        );
    }
    if want("ablation_prediction") {
        println!(
            "{}",
            experiments::ablation_prediction_error(seed)
                .expect("ablation_prediction")
                .render()
        );
    }
    if want("ablation_network") {
        println!(
            "{}",
            experiments::ablation_network_consolidation(seed)
                .expect("ablation_network")
                .render()
        );
    }
    if want("ablation_weather") {
        println!(
            "{}",
            experiments::ablation_weather(seed)
                .expect("ablation_weather")
                .render()
        );
    }
    if want("hierarchical") {
        println!("{}", experiments::hierarchical_comparison(5).render());
    }
    if want("predictors") {
        println!("{}", experiments::predictor_accuracy(seed).render());
    }
    if want("seeds") {
        println!(
            "{}",
            experiments::seed_stability(&[1, 7, 42, 1234, 99999])
                .expect("seeds")
                .render()
        );
    }
}
