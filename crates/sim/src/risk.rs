//! Monte-Carlo risk engine: bill and violation *distributions*, not
//! point estimates.
//!
//! A single month simulation answers "what does November cost under this
//! seed"; an operator deciding a budget needs "what is the P99 bill, and
//! with what probability does the capper blow the budget anyway". The
//! risk engine answers the latter by fanning `samples` perturbed-seed
//! month simulations across the `billcap-rt` worker pool and aggregating
//! the per-sample [`MonthlyReport`](crate::MonthlyReport)s into quantile
//! summaries (see `docs/METHODOLOGY.md` for the sampling model).
//!
//! Each sample perturbs the *inputs* the paper treats as uncertain:
//!
//! * workload level and growth (mean-rate and trend jitter),
//! * flash crowds (an extra surge with configurable probability),
//! * background regional demand (per-site mean jitter),
//! * predictor error (multiplicative distortion of the budgeting
//!   history, so the budgeter plans from an imperfect forecast).
//!
//! The system spec itself is *not* perturbed — that is what makes the
//! per-worker [`MonthScratch`] engine reusable across every sample a
//! worker claims.
//!
//! ## Determinism contract
//!
//! Sample `i` is seeded with [`SeedStream::seed`]`(i)` from the root
//! seed — an O(1) indexed derivation, so a sample's perturbations depend
//! only on `(root_seed, i)`, never on which worker ran it or what ran
//! before it. Results come back in input order and every aggregate is
//! reduced with [`stable_sum`] in that order, so the entire
//! [`RiskSummary`] is bitwise identical at any thread count.

use crate::metrics::stable_sum;
use crate::runner::{run_month_scratch, MonthScratch, Strategy};
use crate::scenario::Scenario;
use crate::table;
use billcap_core::{CapSchedule, CoreError, DataCenterSystem};
use billcap_obs::json::Value;
use billcap_rt::{try_par_map_init_threads, Rng, SeedStream, Xoshiro256pp};
use billcap_workload::{
    BackgroundDemand, CustomerSplit, FlashCrowd, HourlyTrace, TraceConfig, TraceGenerator,
};

/// How the time-varying power caps for a risk run are produced.
///
/// The schedule is part of the *scenario*, not a random variable: one
/// schedule is built per run (from the root seed) and every sample is
/// simulated under it, so the distributions isolate input uncertainty
/// from cap policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScheduleSpec {
    /// Static nameplate caps (no schedule).
    Flat,
    /// Afternoon-peaked thermal derating of the given depth (fractional
    /// cap reduction at the worst hour; see [`CapSchedule::derating`]).
    Derate {
        /// Maximum fractional cap reduction, in `[0, 1)`.
        depth: f64,
    },
}

impl ScheduleSpec {
    /// Parses `"none"`, `"derate"` (default depth 0.3) or
    /// `"derate:<depth>"` — the `--cap-schedule` CLI syntax.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "none" | "flat" => Ok(Self::Flat),
            "derate" => Ok(Self::Derate { depth: 0.3 }),
            _ => match s.strip_prefix("derate:") {
                Some(raw) => {
                    let depth: f64 = raw
                        .parse()
                        .map_err(|_| format!("invalid derate depth {raw:?}"))?;
                    if !(0.0..1.0).contains(&depth) {
                        return Err(format!("derate depth {depth} outside [0, 1)"));
                    }
                    Ok(Self::Derate { depth })
                }
                None => Err(format!(
                    "unknown cap schedule {s:?} (expected none | derate | derate:<depth>)"
                )),
            },
        }
    }

    /// Builds the schedule for `system` over `hours`, or `None` for
    /// [`ScheduleSpec::Flat`].
    pub fn build(&self, system: &DataCenterSystem, hours: usize, seed: u64) -> Option<CapSchedule> {
        match *self {
            Self::Flat => None,
            Self::Derate { depth } => {
                let base: Vec<f64> = system.sites.iter().map(|s| s.power_cap_mw).collect();
                Some(CapSchedule::derating(&base, hours.max(1), depth, seed))
            }
        }
    }
}

/// Configuration of a Monte-Carlo risk run.
#[derive(Debug, Clone, PartialEq)]
pub struct RiskConfig {
    /// Number of perturbed month simulations.
    pub samples: usize,
    /// Root seed of the [`SeedStream`]; sample `i` uses `seed(i)`.
    pub root_seed: u64,
    /// Worker threads (0 = the pool default, `BILLCAP_THREADS` aware).
    pub threads: usize,
    /// Pricing-policy family (0..=3), as in [`Scenario::paper_default`].
    pub policy: usize,
    /// Hours to simulate (0 = the full 720-hour month). The truncated
    /// horizon keeps the *front* of the month; `monthly_budget` is used
    /// as-is for whatever horizon runs, so callers shortening the month
    /// should scale the budget themselves.
    pub hours: usize,
    /// Monthly budget handed to the capper (`None` = uncapped).
    pub monthly_budget: Option<f64>,
    /// Mean workload before perturbation (requests/hour).
    pub mean_rate: f64,
    /// Relative half-width of the per-sample mean-rate perturbation
    /// (0.04 = ±4 %).
    pub workload_jitter: f64,
    /// Absolute half-width of the per-sample growth-trend perturbation.
    pub growth_jitter: f64,
    /// Probability that a sample gets one extra flash crowd on top of
    /// the two the Wikipedia-like trace always carries.
    pub flash_prob: f64,
    /// Relative half-width of the per-site background-demand mean
    /// perturbation.
    pub background_jitter: f64,
    /// Relative half-width of the multiplicative distortion applied to
    /// the budgeting history (predictor error).
    pub predictor_error: f64,
    /// Time-varying power caps for the run.
    pub schedule: ScheduleSpec,
    /// Run the per-hour plan audit inside every sample.
    pub audit: bool,
}

impl Default for RiskConfig {
    fn default() -> Self {
        Self {
            samples: 100,
            root_seed: 42,
            threads: 0,
            policy: 1,
            hours: 0,
            monthly_budget: Some(Scenario::STRINGENT_BUDGET),
            mean_rate: Scenario::MEAN_RATE,
            // Conservative widths: even a jittered-up sample with an
            // extra flash crowd on top of a scheduled derate must keep
            // premium demand within deliverable capacity (step 1 errors
            // out otherwise, which fails the whole run by design).
            workload_jitter: 0.04,
            growth_jitter: 0.01,
            flash_prob: 0.25,
            background_jitter: 0.05,
            predictor_error: 0.05,
            schedule: ScheduleSpec::Flat,
            audit: false,
        }
    }
}

/// One simulated month under one perturbation seed: the capper's month
/// next to the budget-unaware Min-Only (Avg) baseline on the *same*
/// perturbed inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct RiskSample {
    /// Sample index (also the [`SeedStream`] index).
    pub index: usize,
    /// The derived per-sample seed.
    pub seed: u64,
    /// Capper's realized monthly bill ($).
    pub capper_bill: f64,
    /// Whether the capper's bill exceeded the monthly budget.
    pub violates_budget: bool,
    /// Total overrun across budget-violating hours ($).
    pub violation_magnitude: f64,
    /// Hours whose realized cost exceeded their hourly budget.
    pub hourly_violations: usize,
    /// Fraction of hours where premium demand was not fully served.
    pub premium_miss_rate: f64,
    /// Capper's premium requests served over the month.
    pub premium_throughput: f64,
    /// Capper's ordinary requests served over the month.
    pub ordinary_throughput: f64,
    /// Min-Only (Avg) realized monthly bill on the same inputs ($).
    pub min_only_bill: f64,
    /// `(min_only_bill - capper_bill) / min_only_bill` — positive when
    /// capping is cheaper.
    pub savings_ratio: f64,
}

/// Order statistics of one per-sample metric (nearest-rank quantiles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Arithmetic mean ([`stable_sum`]-reduced).
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Quantiles {
    /// Computes the statistics of `values` (must be non-empty). Sorting
    /// uses `f64::total_cmp`, so the result is deterministic for any
    /// input order.
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "quantiles of an empty sample set");
        let mut sorted = values.to_vec();
        sorted.sort_unstable_by(f64::total_cmp);
        let nearest = |q: f64| -> f64 {
            // Nearest-rank: the smallest value with cumulative frequency
            // >= q; rank ceil(q·n), 1-based.
            let rank = (q * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Self {
            p50: nearest(0.50),
            p95: nearest(0.95),
            p99: nearest(0.99),
            mean: stable_sum(sorted.iter().copied()) / sorted.len() as f64,
            min: sorted[0],
            max: sorted[sorted.len() - 1],
        }
    }

    fn to_json(self) -> Value {
        Value::Obj(vec![
            ("p50".into(), Value::Float(self.p50)),
            ("p95".into(), Value::Float(self.p95)),
            ("p99".into(), Value::Float(self.p99)),
            ("mean".into(), Value::Float(self.mean)),
            ("min".into(), Value::Float(self.min)),
            ("max".into(), Value::Float(self.max)),
        ])
    }

    fn fold_bits(&self, h: u64) -> u64 {
        [self.p50, self.p95, self.p99, self.mean, self.min, self.max]
            .iter()
            .fold(h, |h, v| fnv(h, v.to_bits()))
    }
}

/// Distribution summary of a risk run.
#[derive(Debug, Clone, PartialEq)]
pub struct RiskSummary {
    /// Number of samples aggregated.
    pub samples: usize,
    /// Root seed the samples were derived from.
    pub root_seed: u64,
    /// Capper monthly-bill distribution ($).
    pub bill: Quantiles,
    /// Min-Only (Avg) monthly-bill distribution ($).
    pub min_only_bill: Quantiles,
    /// Savings-ratio distribution (capper vs Min-Only).
    pub savings_ratio: Quantiles,
    /// Premium-QoS-miss-rate distribution.
    pub premium_miss_rate: Quantiles,
    /// Budget-overrun-magnitude distribution ($).
    pub violation_magnitude: Quantiles,
    /// Fraction of samples whose capper bill exceeded the monthly
    /// budget.
    pub violation_probability: f64,
    /// Mean count of hourly budget violations per sample.
    pub mean_hourly_violations: f64,
}

impl RiskSummary {
    /// Aggregates per-sample results. Panics on an empty sample set.
    pub fn from_samples(samples: &[RiskSample], root_seed: u64) -> Self {
        assert!(!samples.is_empty(), "risk summary of zero samples");
        let pick = |f: fn(&RiskSample) -> f64| -> Vec<f64> { samples.iter().map(f).collect() };
        let n = samples.len() as f64;
        Self {
            samples: samples.len(),
            root_seed,
            bill: Quantiles::from_values(&pick(|s| s.capper_bill)),
            min_only_bill: Quantiles::from_values(&pick(|s| s.min_only_bill)),
            savings_ratio: Quantiles::from_values(&pick(|s| s.savings_ratio)),
            premium_miss_rate: Quantiles::from_values(&pick(|s| s.premium_miss_rate)),
            violation_magnitude: Quantiles::from_values(&pick(|s| s.violation_magnitude)),
            violation_probability: samples.iter().filter(|s| s.violates_budget).count() as f64 / n,
            mean_hourly_violations: stable_sum(samples.iter().map(|s| s.hourly_violations as f64))
                / n,
        }
    }

    /// A bitwise digest of every statistic in the summary (FNV-1a over
    /// the `f64` bit patterns). Two runs whose digests match produced
    /// identical distributions down to the last ULP — the determinism
    /// tests compare this across thread counts.
    pub fn digest(&self) -> String {
        let mut h = fnv(FNV_OFFSET, self.samples as u64);
        h = fnv(h, self.root_seed);
        for q in [
            &self.bill,
            &self.min_only_bill,
            &self.savings_ratio,
            &self.premium_miss_rate,
            &self.violation_magnitude,
        ] {
            h = q.fold_bits(h);
        }
        h = fnv(h, self.violation_probability.to_bits());
        h = fnv(h, self.mean_hourly_violations.to_bits());
        format!("{h:016x}")
    }

    /// The summary as a JSON object (the last line of the JSONL export).
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("kind".into(), Value::Str("summary".into())),
            ("samples".into(), Value::Int(self.samples as i64)),
            (
                "root_seed".into(),
                Value::Str(format!("{:#x}", self.root_seed)),
            ),
            ("bill".into(), self.bill.to_json()),
            ("min_only_bill".into(), self.min_only_bill.to_json()),
            ("savings_ratio".into(), self.savings_ratio.to_json()),
            ("premium_miss_rate".into(), self.premium_miss_rate.to_json()),
            (
                "violation_magnitude".into(),
                self.violation_magnitude.to_json(),
            ),
            (
                "violation_probability".into(),
                Value::Float(self.violation_probability),
            ),
            (
                "mean_hourly_violations".into(),
                Value::Float(self.mean_hourly_violations),
            ),
            ("digest".into(), Value::Str(self.digest())),
        ])
    }

    /// Renders the summary as the ASCII table the CLI prints.
    pub fn render_table(&self) -> String {
        let money = |q: &Quantiles| -> Vec<String> {
            [q.p50, q.p95, q.p99, q.mean, q.min, q.max]
                .iter()
                .map(|&v| table::dollars(v))
                .collect()
        };
        let pct = |q: &Quantiles| -> Vec<String> {
            [q.p50, q.p95, q.p99, q.mean, q.min, q.max]
                .iter()
                .map(|&v| table::percent(v))
                .collect()
        };
        let row = |name: &str, mut cells: Vec<String>| -> Vec<String> {
            let mut r = vec![name.to_string()];
            r.append(&mut cells);
            r
        };
        let rows = vec![
            row("capper bill", money(&self.bill)),
            row("min-only bill", money(&self.min_only_bill)),
            row("savings ratio", pct(&self.savings_ratio)),
            row("premium miss rate", pct(&self.premium_miss_rate)),
            row("violation magnitude", money(&self.violation_magnitude)),
        ];
        let mut out = table::render_table(
            &["metric", "P50", "P95", "P99", "mean", "min", "max"],
            &rows,
        );
        out.push_str(&format!(
            "samples: {}   budget-violation probability: {}   mean hourly violations: {:.2}\n",
            self.samples,
            table::percent(self.violation_probability),
            self.mean_hourly_violations,
        ));
        out
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv(h: u64, x: u64) -> u64 {
    let mut h = h;
    for shift in [0u32, 32] {
        h = (h ^ ((x >> shift) & 0xffff_ffff)).wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Renders samples plus summary as JSONL: one `{"kind":"sample",...}`
/// line per sample followed by one `{"kind":"summary",...}` line.
pub fn to_jsonl(samples: &[RiskSample], summary: &RiskSummary) -> String {
    let mut out = String::new();
    for s in samples {
        out.push_str(&s.to_json().render());
        out.push('\n');
    }
    out.push_str(&summary.to_json().render());
    out.push('\n');
    out
}

impl RiskSample {
    /// The sample as a JSON object (one JSONL line).
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("kind".into(), Value::Str("sample".into())),
            ("index".into(), Value::Int(self.index as i64)),
            ("seed".into(), Value::Str(format!("{:#x}", self.seed))),
            ("capper_bill".into(), Value::Float(self.capper_bill)),
            ("violates_budget".into(), Value::Bool(self.violates_budget)),
            (
                "violation_magnitude".into(),
                Value::Float(self.violation_magnitude),
            ),
            (
                "hourly_violations".into(),
                Value::Int(self.hourly_violations as i64),
            ),
            (
                "premium_miss_rate".into(),
                Value::Float(self.premium_miss_rate),
            ),
            (
                "premium_throughput".into(),
                Value::Float(self.premium_throughput),
            ),
            (
                "ordinary_throughput".into(),
                Value::Float(self.ordinary_throughput),
            ),
            ("min_only_bill".into(), Value::Float(self.min_only_bill)),
            ("savings_ratio".into(), Value::Float(self.savings_ratio)),
        ])
    }
}

/// The Monte-Carlo risk engine. See the module docs for the sampling
/// model and the determinism contract.
#[derive(Debug, Clone)]
pub struct RiskEngine {
    config: RiskConfig,
}

impl RiskEngine {
    /// Creates an engine; panics on zero samples or out-of-range knobs.
    pub fn new(config: RiskConfig) -> Self {
        assert!(config.samples > 0, "risk run needs at least one sample");
        assert!(
            config.workload_jitter >= 0.0
                && config.background_jitter >= 0.0
                && config.growth_jitter >= 0.0
                && config.predictor_error >= 0.0,
            "jitter widths must be non-negative"
        );
        assert!(
            (0.0..=1.0).contains(&config.flash_prob),
            "flash probability must be in [0, 1]"
        );
        Self { config }
    }

    /// The run configuration.
    pub fn config(&self) -> &RiskConfig {
        &self.config
    }

    /// Runs the configured number of samples with [`SeedStream`]-derived
    /// seeds and aggregates them.
    pub fn run(&self) -> Result<(Vec<RiskSample>, RiskSummary), CoreError> {
        let stream = SeedStream::new(self.config.root_seed);
        let seeds: Vec<u64> = (0..self.config.samples as u64)
            .map(|i| stream.seed(i))
            .collect();
        self.run_with_seeds(&seeds)
    }

    /// Runs one sample per entry of `seeds` (exposed for the degenerate
    /// determinism tests — e.g. all-identical seeds must yield identical
    /// samples).
    pub fn run_with_seeds(
        &self,
        seeds: &[u64],
    ) -> Result<(Vec<RiskSample>, RiskSummary), CoreError> {
        assert!(!seeds.is_empty(), "risk run needs at least one seed");
        let cfg = &self.config;
        let threads = if cfg.threads == 0 {
            billcap_rt::num_threads()
        } else {
            cfg.threads
        };
        let horizon = if cfg.hours == 0 { 30 * 24 } else { cfg.hours };
        let base_system = DataCenterSystem::paper_system(cfg.policy);
        let schedule = cfg.schedule.build(&base_system, horizon, cfg.root_seed);
        let sched = schedule.as_ref();

        let indexed: Vec<(usize, u64)> = seeds.iter().copied().enumerate().collect();
        let mut run_span = billcap_obs::span("risk_run");
        let samples = try_par_map_init_threads(
            &indexed,
            threads,
            MonthScratch::new,
            |scratch, &(index, seed)| run_sample(cfg, sched, index, seed, scratch),
        )?;
        if billcap_obs::enabled() {
            billcap_obs::counter("sim.risk.samples", samples.len() as u64);
        }
        let summary = RiskSummary::from_samples(&samples, cfg.root_seed);
        run_span.field("samples", samples.len() as f64);
        run_span.field("p99_bill", summary.bill.p99);
        Ok((samples, summary))
    }
}

/// Simulates one perturbed sample: capper and Min-Only (Avg) on the same
/// inputs, sharing the worker's scratch.
fn run_sample(
    cfg: &RiskConfig,
    schedule: Option<&CapSchedule>,
    index: usize,
    seed: u64,
    scratch: &mut MonthScratch,
) -> Result<RiskSample, CoreError> {
    let scenario = sample_scenario(cfg, seed);
    let capper = run_month_scratch(
        &scenario,
        Strategy::CostCapping,
        cfg.monthly_budget,
        cfg.audit,
        schedule,
        scratch,
    )?;
    let min_only = run_month_scratch(
        &scenario,
        Strategy::MinOnlyAvg,
        None,
        false,
        schedule,
        scratch,
    )?;

    let capper_bill = capper.total_cost();
    let min_only_bill = min_only.total_cost();
    let misses = capper
        .hours
        .iter()
        .filter(|h| h.premium_served < h.premium_offered * (1.0 - 1e-6))
        .count();
    let savings_ratio = if min_only_bill > 0.0 {
        (min_only_bill - capper_bill) / min_only_bill
    } else {
        0.0
    };
    Ok(RiskSample {
        index,
        seed,
        capper_bill,
        violates_budget: capper.violates_monthly_budget(),
        violation_magnitude: capper.violation_magnitude(),
        hourly_violations: capper.hourly_violations(),
        premium_miss_rate: misses as f64 / capper.hours.len().max(1) as f64,
        premium_throughput: capper.premium_throughput(),
        ordinary_throughput: capper.ordinary_throughput(),
        min_only_bill,
        savings_ratio,
    })
}

/// A uniform draw in `[-1, 1]`.
fn unit(rng: &mut Xoshiro256pp) -> f64 {
    rng.random::<f64>() * 2.0 - 1.0
}

/// Builds the perturbed scenario for one sample seed.
///
/// The draw schedule is fixed — every knob consumes its variates whether
/// its width is zero or not — so changing one knob never shifts the
/// randomness seen by the others.
fn sample_scenario(cfg: &RiskConfig, seed: u64) -> Scenario {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let u_rate = unit(&mut rng);
    let u_growth = unit(&mut rng);
    let u_flash = rng.random::<f64>();
    let u_flash_start = rng.random::<f64>();
    let u_flash_mag = rng.random::<f64>();
    let u_flash_dur = rng.random::<f64>();

    let system = DataCenterSystem::paper_system(cfg.policy);
    let mean_rate = cfg.mean_rate * (1.0 + cfg.workload_jitter * u_rate);
    let mut trace_cfg = TraceConfig::wikipedia_like(mean_rate, seed);
    trace_cfg.growth = (trace_cfg.growth + cfg.growth_jitter * u_growth).max(0.0);
    if u_flash < cfg.flash_prob {
        // A third, milder surge somewhere in the evaluation month. The
        // magnitude ceiling (1.15) keeps premium demand deliverable even
        // when the surge lands on the built-in flash crowds under a
        // derated cap schedule.
        let eval_start = 31 * 24;
        let duration_hours = 2 + (u_flash_dur * 4.0) as usize;
        let span = 30 * 24 - duration_hours;
        trace_cfg.flash_crowds.push(FlashCrowd {
            start_hour: eval_start + (u_flash_start * span as f64) as usize,
            magnitude: 1.05 + 0.10 * u_flash_mag,
            duration_hours,
        });
    }
    let (history, workload) = TraceGenerator::new(trace_cfg).generate_two_months();

    let horizon = if cfg.hours == 0 {
        workload.len()
    } else {
        cfg.hours
    };
    let workload = workload.slice(0, horizon);
    let background = (0..system.len())
        .map(|i| {
            let mut bg = BackgroundDemand::reco_like(i, seed);
            bg.mean_mw *= 1.0 + cfg.background_jitter * unit(&mut rng);
            bg.generate(horizon)
        })
        .collect();

    // Predictor error: the budgeter plans from a distorted history, as in
    // the prediction-error ablation (experiments.rs). Width 0 reproduces
    // the history bitwise (v * 1.0 == v).
    let mut hist_rng = Xoshiro256pp::seed_from_u64(seed ^ 0xbad5eed);
    let history = HourlyTrace::new(
        history
            .values()
            .iter()
            .map(|&v| {
                let u = hist_rng.random::<f64>() * 2.0 - 1.0;
                (v * (1.0 + cfg.predictor_error * u)).max(0.05)
            })
            .collect(),
    );

    Scenario {
        system,
        history,
        workload,
        background,
        split: CustomerSplit::paper_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(samples: usize) -> RiskConfig {
        RiskConfig {
            samples,
            hours: 48,
            monthly_budget: Some(Scenario::STRINGENT_BUDGET * 48.0 / 720.0),
            ..RiskConfig::default()
        }
    }

    fn assert_samples_bitwise_equal(a: &[RiskSample], b: &[RiskSample]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.capper_bill.to_bits(), y.capper_bill.to_bits());
            assert_eq!(x.min_only_bill.to_bits(), y.min_only_bill.to_bits());
            assert_eq!(x.savings_ratio.to_bits(), y.savings_ratio.to_bits());
            assert_eq!(
                x.violation_magnitude.to_bits(),
                y.violation_magnitude.to_bits()
            );
            assert_eq!(x.hourly_violations, y.hourly_violations);
            assert_eq!(x.violates_budget, y.violates_budget);
        }
    }

    #[test]
    fn schedule_spec_parsing() {
        assert_eq!(ScheduleSpec::parse("none").unwrap(), ScheduleSpec::Flat);
        assert_eq!(ScheduleSpec::parse("flat").unwrap(), ScheduleSpec::Flat);
        assert_eq!(
            ScheduleSpec::parse("derate").unwrap(),
            ScheduleSpec::Derate { depth: 0.3 }
        );
        assert_eq!(
            ScheduleSpec::parse("derate:0.15").unwrap(),
            ScheduleSpec::Derate { depth: 0.15 }
        );
        assert!(ScheduleSpec::parse("derate:1.5").is_err());
        assert!(ScheduleSpec::parse("derate:x").is_err());
        assert!(ScheduleSpec::parse("bogus").is_err());
    }

    #[test]
    fn quantiles_nearest_rank() {
        let values: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let q = Quantiles::from_values(&values);
        assert_eq!(q.p50, 50.0);
        assert_eq!(q.p95, 95.0);
        assert_eq!(q.p99, 99.0);
        assert_eq!(q.min, 1.0);
        assert_eq!(q.max, 100.0);
        assert!((q.mean - 50.5).abs() < 1e-12);
        // Degenerate single-value set: every statistic collapses to it.
        let one = Quantiles::from_values(&[7.5]);
        assert_eq!(one.p50, 7.5);
        assert_eq!(one.p99, 7.5);
        assert_eq!(one.mean, 7.5);
    }

    #[test]
    fn thread_count_does_not_change_the_distribution() {
        let mut cfg = quick_config(4);
        cfg.threads = 1;
        let (s1, sum1) = RiskEngine::new(cfg.clone()).run().unwrap();
        cfg.threads = 3;
        let (s3, sum3) = RiskEngine::new(cfg).run().unwrap();
        assert_samples_bitwise_equal(&s1, &s3);
        assert_eq!(sum1.digest(), sum3.digest());
    }

    #[test]
    fn identical_seeds_give_identical_samples() {
        let engine = RiskEngine::new(quick_config(3));
        let (samples, summary) = engine.run_with_seeds(&[99, 99, 99]).unwrap();
        assert_eq!(
            samples[0].capper_bill.to_bits(),
            samples[1].capper_bill.to_bits()
        );
        assert_eq!(
            samples[1].capper_bill.to_bits(),
            samples[2].capper_bill.to_bits()
        );
        assert_eq!(summary.bill.min.to_bits(), summary.bill.max.to_bits());
    }

    #[test]
    fn samples_actually_differ_across_seeds() {
        let mut cfg = quick_config(3);
        cfg.threads = 1;
        let (samples, _) = RiskEngine::new(cfg).run().unwrap();
        assert!(
            samples[0].capper_bill != samples[1].capper_bill
                || samples[1].capper_bill != samples[2].capper_bill,
            "perturbations had no effect on the bill"
        );
        for s in &samples {
            assert!(s.capper_bill > 0.0);
            assert!(s.min_only_bill > 0.0);
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let mut cfg = quick_config(2);
        cfg.threads = 1;
        let (samples, summary) = RiskEngine::new(cfg).run().unwrap();
        let jsonl = to_jsonl(&samples, &summary);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let v = Value::parse(line).expect("line parses as JSON");
            assert!(v.get("kind").is_some());
        }
        let last = Value::parse(lines[2]).unwrap();
        assert_eq!(last.get("kind").unwrap().as_str(), Some("summary"));
        assert_eq!(
            last.get("digest").unwrap().as_str(),
            Some(summary.digest().as_str())
        );
        let table = summary.render_table();
        assert!(table.contains("capper bill"));
        assert!(table.contains("P99"));
    }

    #[test]
    fn derate_schedule_changes_the_bill_distribution() {
        let mut flat = quick_config(2);
        flat.threads = 1;
        let mut derated = flat.clone();
        derated.schedule = ScheduleSpec::Derate { depth: 0.25 };
        let (a, _) = RiskEngine::new(flat).run().unwrap();
        let (b, _) = RiskEngine::new(derated).run().unwrap();
        assert!(
            a.iter()
                .zip(&b)
                .any(|(x, y)| x.capper_bill != y.capper_bill),
            "derating the caps left every sample's bill unchanged"
        );
    }
}
