//! Per-hour records and monthly aggregates.

use billcap_core::{AuditReport, HourOutcome};

/// Compensated (Neumaier/Kahan–Babuška) summation.
///
/// Every monthly aggregate and every risk-engine reduction sums through
/// this one function, for two reasons. First, *unification*: the sim
/// runner, the trace pipeline, and the risk engine used to (or could)
/// re-derive totals independently; routing them through
/// [`MonthlyReport`]'s accessors — which all call this — keeps one
/// definition of "the monthly bill". Second, *stability*: compensation
/// makes the result far less sensitive to magnitude disparities, and —
/// because inputs always arrive in index order (the worker pool returns
/// results in input order at every thread count) — the exact same
/// floating-point operations run regardless of `BILLCAP_THREADS`,
/// which is what makes risk summaries bitwise-reproducible.
pub fn stable_sum<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut sum = 0.0f64;
    let mut comp = 0.0f64; // running compensation for lost low-order bits
    for x in values {
        let t = sum + x;
        comp += if sum.abs() >= x.abs() {
            (sum - t) + x
        } else {
            (x - t) + sum
        };
        sum = t;
    }
    sum + comp
}

/// Outcome of the per-hour plan audit, kept as plain data so records stay
/// cheap to clone and compare. `None` on an [`HourRecord`] means the hour
/// was not audited (baselines, or auditing off).
#[derive(Debug, Clone, PartialEq)]
pub struct HourAudit {
    /// Number of invariant checks performed.
    pub checks: usize,
    /// Violated invariants, rendered for reporting (empty = passed).
    pub failures: Vec<String>,
}

impl HourAudit {
    /// Flattens a [`PlanAuditor`](billcap_core::PlanAuditor) report.
    pub fn from_report(report: &AuditReport) -> Self {
        Self {
            checks: report.checks,
            failures: report.violations.iter().map(|v| v.to_string()).collect(),
        }
    }

    /// True when every invariant held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Solver-effort and budget-state observability for one simulated hour.
///
/// Collected by the runner for Cost Capping hours (baselines solve a
/// single LP and are not traced). Wall time is machine-dependent; the
/// node/iteration counts are deterministic for sequential solves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HourTrace {
    /// Wall time of the whole hour's decision + evaluation (ns).
    pub wall_ns: u64,
    /// MILP solves the capper ran this hour (1–3).
    pub solves: usize,
    /// Branch-and-bound nodes across those solves.
    pub nodes: usize,
    /// Simplex iterations across those solves.
    pub lp_iterations: usize,
    /// The budgeter's intra-week carry-over balance *after* the hour was
    /// billed ($); `None` when no budget was in force.
    pub carryover: Option<f64>,
}

/// What happened in one simulated hour.
#[derive(Debug, Clone, PartialEq)]
pub struct HourRecord {
    pub hour: usize,
    /// Offered arrival rates (requests/hour).
    pub offered: f64,
    pub premium_offered: f64,
    pub ordinary_offered: f64,
    /// Served (admitted, QoS-met) rates.
    pub premium_served: f64,
    pub ordinary_served: f64,
    /// Cost actually billed at true prices ($).
    pub realized_cost: f64,
    /// Cost the strategy believed it would pay ($).
    pub believed_cost: f64,
    /// The budgeter's allotment, when a budget was in force.
    pub hourly_budget: Option<f64>,
    /// Which branch of the capper ran (None for baselines).
    pub outcome: Option<HourOutcome>,
    /// Per-site dispatch (requests/hour).
    pub lambda: Vec<f64>,
    /// Per-site realized power (MW).
    pub power_mw: Vec<f64>,
    /// Per-site realized price ($/MWh).
    pub price: Vec<f64>,
    /// Plan-audit outcome for the hour (`None` when not audited).
    pub audit: Option<HourAudit>,
    /// Solver-effort trace (`None` for baselines).
    pub trace: Option<HourTrace>,
}

impl HourRecord {
    /// True when the realized cost exceeded the hour's budget.
    pub fn violates_budget(&self) -> bool {
        self.hourly_budget
            .is_some_and(|b| self.realized_cost > b * (1.0 + 1e-9))
    }

    /// Total served rate.
    pub fn served(&self) -> f64 {
        self.premium_served + self.ordinary_served
    }
}

/// A month of simulation under one strategy and budget.
#[derive(Debug, Clone, PartialEq)]
pub struct MonthlyReport {
    pub strategy_name: String,
    pub monthly_budget: Option<f64>,
    pub hours: Vec<HourRecord>,
}

impl MonthlyReport {
    /// Total realized electricity bill ($). The *single* derivation of
    /// the monthly bill: the runner, the trace pipeline, and the risk
    /// engine all read this accessor (compensated summation, see
    /// [`stable_sum`]) rather than re-summing hour records themselves.
    pub fn total_cost(&self) -> f64 {
        stable_sum(self.hours.iter().map(|h| h.realized_cost))
    }

    /// Total cost the strategy believed it was incurring ($).
    pub fn total_believed_cost(&self) -> f64 {
        stable_sum(self.hours.iter().map(|h| h.believed_cost))
    }

    /// Served / offered for premium traffic (1.0 = all served).
    pub fn premium_throughput(&self) -> f64 {
        let offered = stable_sum(self.hours.iter().map(|h| h.premium_offered));
        if offered == 0.0 {
            return 1.0;
        }
        stable_sum(self.hours.iter().map(|h| h.premium_served)) / offered
    }

    /// Served / offered for ordinary traffic.
    pub fn ordinary_throughput(&self) -> f64 {
        let offered = stable_sum(self.hours.iter().map(|h| h.ordinary_offered));
        if offered == 0.0 {
            return 1.0;
        }
        stable_sum(self.hours.iter().map(|h| h.ordinary_served)) / offered
    }

    /// Total requests served over the month.
    pub fn total_served(&self) -> f64 {
        stable_sum(self.hours.iter().map(HourRecord::served))
    }

    /// Total budget over-run across violating hours ($): how *much* the
    /// realized bill exceeded hourly budgets, not just how often.
    pub fn violation_magnitude(&self) -> f64 {
        stable_sum(self.hours.iter().filter_map(|h| {
            h.hourly_budget
                .map(|b| (h.realized_cost - b).max(0.0))
                .filter(|&m| m > 0.0)
        }))
    }

    /// Hours whose realized cost exceeded their hourly budget.
    pub fn hourly_violations(&self) -> usize {
        self.hours.iter().filter(|h| h.violates_budget()).count()
    }

    /// Realized bill relative to the monthly budget (1.0 = exactly on
    /// budget); `None` when no budget was in force.
    pub fn budget_utilization(&self) -> Option<f64> {
        self.monthly_budget.map(|b| self.total_cost() / b)
    }

    /// True when the monthly bill exceeded the monthly budget.
    pub fn violates_monthly_budget(&self) -> bool {
        self.budget_utilization().is_some_and(|u| u > 1.0 + 1e-9)
    }

    /// Hourly realized-cost series ($).
    pub fn hourly_costs(&self) -> Vec<f64> {
        self.hours.iter().map(|h| h.realized_cost).collect()
    }

    /// Hours that carried a plan audit.
    pub fn audited_hours(&self) -> usize {
        self.hours.iter().filter(|h| h.audit.is_some()).count()
    }

    /// Audited hours whose plan violated at least one invariant.
    pub fn audit_failures(&self) -> usize {
        self.hours
            .iter()
            .filter(|h| h.audit.as_ref().is_some_and(|a| !a.passed()))
            .count()
    }

    /// The first failing hour and its violations, for diagnostics.
    pub fn first_audit_failure(&self) -> Option<(usize, &HourAudit)> {
        self.hours.iter().find_map(|h| {
            h.audit
                .as_ref()
                .filter(|a| !a.passed())
                .map(|a| (h.hour, a))
        })
    }

    /// True when every audited hour passed (vacuously true when nothing
    /// was audited — check [`MonthlyReport::audited_hours`] separately).
    pub fn audit_clean(&self) -> bool {
        self.audit_failures() == 0
    }

    /// Hours that carried a solver-effort trace.
    pub fn traced_hours(&self) -> usize {
        self.hours.iter().filter(|h| h.trace.is_some()).count()
    }

    /// Total branch-and-bound nodes across all traced hours.
    pub fn total_bnb_nodes(&self) -> usize {
        self.hours
            .iter()
            .filter_map(|h| h.trace.as_ref())
            .map(|t| t.nodes)
            .sum()
    }

    /// Total simplex iterations across all traced hours.
    pub fn total_lp_iterations(&self) -> usize {
        self.hours
            .iter()
            .filter_map(|h| h.trace.as_ref())
            .map(|t| t.lp_iterations)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(cost: f64, budget: Option<f64>) -> HourRecord {
        HourRecord {
            hour: 0,
            offered: 100.0,
            premium_offered: 80.0,
            ordinary_offered: 20.0,
            premium_served: 80.0,
            ordinary_served: 10.0,
            realized_cost: cost,
            believed_cost: cost * 0.9,
            hourly_budget: budget,
            outcome: None,
            lambda: vec![],
            power_mw: vec![],
            price: vec![],
            audit: None,
            trace: None,
        }
    }

    #[test]
    fn aggregates() {
        let r = MonthlyReport {
            strategy_name: "test".into(),
            monthly_budget: Some(100.0),
            hours: vec![record(30.0, Some(40.0)), record(50.0, Some(40.0))],
        };
        assert_eq!(r.total_cost(), 80.0);
        assert_eq!(r.hourly_violations(), 1);
        assert_eq!(r.budget_utilization(), Some(0.8));
        assert!(!r.violates_monthly_budget());
        assert_eq!(r.premium_throughput(), 1.0);
        assert_eq!(r.ordinary_throughput(), 0.5);
        assert_eq!(r.total_served(), 180.0);
    }

    #[test]
    fn monthly_violation() {
        let r = MonthlyReport {
            strategy_name: "test".into(),
            monthly_budget: Some(70.0),
            hours: vec![record(30.0, None), record(50.0, None)],
        };
        assert!(r.violates_monthly_budget());
        assert_eq!(r.hourly_violations(), 0);
    }

    #[test]
    fn no_budget_means_no_utilization() {
        let r = MonthlyReport {
            strategy_name: "test".into(),
            monthly_budget: None,
            hours: vec![record(30.0, None)],
        };
        assert_eq!(r.budget_utilization(), None);
        assert!(!r.violates_monthly_budget());
    }

    #[test]
    fn empty_throughputs_default_to_one() {
        let r = MonthlyReport {
            strategy_name: "t".into(),
            monthly_budget: None,
            hours: vec![],
        };
        assert_eq!(r.premium_throughput(), 1.0);
        assert_eq!(r.ordinary_throughput(), 1.0);
    }

    #[test]
    fn stable_sum_matches_naive_on_small_inputs() {
        let xs = [30.0, 50.0, 20.5];
        assert_eq!(stable_sum(xs.iter().copied()), 100.5);
        assert_eq!(stable_sum(std::iter::empty()), 0.0);
        assert_eq!(stable_sum(std::iter::once(7.25)), 7.25);
    }

    #[test]
    fn stable_sum_recovers_cancelled_bits() {
        // Classic Neumaier case: naive summation loses the 1.0 entirely.
        let xs = [1.0, 1e100, 1.0, -1e100];
        assert_eq!(stable_sum(xs.iter().copied()), 2.0);
        let naive: f64 = xs.iter().sum();
        assert_eq!(naive, 0.0, "naive summation should lose the small terms");
    }

    #[test]
    fn stable_sum_is_order_deterministic() {
        // Same order in, same bits out — repeated evaluation is pure.
        let xs: Vec<f64> = (0..1000)
            .map(|i| (i as f64) * 0.1 + 1e12 / (i + 1) as f64)
            .collect();
        let a = stable_sum(xs.iter().copied());
        let b = stable_sum(xs.iter().copied());
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn violation_magnitude_sums_overruns_only() {
        let r = MonthlyReport {
            strategy_name: "t".into(),
            monthly_budget: Some(100.0),
            hours: vec![
                record(30.0, Some(40.0)), // under budget: no contribution
                record(50.0, Some(40.0)), // $10 over
                record(70.0, None),       // no budget in force
            ],
        };
        assert_eq!(r.violation_magnitude(), 10.0);
    }

    #[test]
    fn audit_aggregates() {
        let mut pass = record(10.0, None);
        pass.audit = Some(HourAudit {
            checks: 30,
            failures: vec![],
        });
        let mut fail = record(10.0, None);
        fail.hour = 1;
        fail.audit = Some(HourAudit {
            checks: 30,
            failures: vec!["site 0: power 200 MW exceeds cap 120 MW".into()],
        });
        let unaudited = record(10.0, None);
        let r = MonthlyReport {
            strategy_name: "t".into(),
            monthly_budget: None,
            hours: vec![pass, fail, unaudited],
        };
        assert_eq!(r.audited_hours(), 2);
        assert_eq!(r.audit_failures(), 1);
        assert!(!r.audit_clean());
        let (hour, audit) = r.first_audit_failure().unwrap();
        assert_eq!(hour, 1);
        assert!(audit.failures[0].contains("exceeds cap"));
    }
}
