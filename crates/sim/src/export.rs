//! CSV export of experiment series — the raw data behind each figure, in
//! a form any plotting tool ingests.

use crate::experiments::{BudgetedMonth, Fig1, Fig10, Fig3, Fig4};
use crate::metrics::MonthlyReport;
use std::fmt::Write as _;

/// Figure 1 as CSV: `load_mw,price_b,price_c,price_d`.
pub fn fig1_csv(f: &Fig1) -> String {
    let mut out = String::from("load_mw,price_b,price_c,price_d\n");
    if let Some((_, first)) = f.series.first() {
        for i in 0..first.len() {
            let load = first[i].0;
            let _ = write!(out, "{load}");
            for (_, s) in &f.series {
                let _ = write!(out, ",{}", s[i].1);
            }
            out.push('\n');
        }
    }
    out
}

/// Figure 3 as CSV: `hour,capping,min_only_avg,min_only_low`.
pub fn fig3_csv(f: &Fig3) -> String {
    let mut out = String::from("hour,capping,min_only_avg,min_only_low\n");
    for t in 0..f.capping.hours.len() {
        let _ = writeln!(
            out,
            "{t},{},{},{}",
            f.capping.hours[t].realized_cost,
            f.min_only_avg.hours[t].realized_cost,
            f.min_only_low.hours[t].realized_cost
        );
    }
    out
}

/// Figure 4 as CSV: `policy,capping,min_only_avg,min_only_low`.
pub fn fig4_csv(f: &Fig4) -> String {
    let mut out = String::from("policy,capping,min_only_avg,min_only_low\n");
    for (p, row) in f.bills.iter().enumerate() {
        let _ = writeln!(out, "{p},{},{},{}", row[0], row[1], row[2]);
    }
    out
}

/// A budgeted month (Figures 5/6 or 7/8) as CSV:
/// `hour,premium_offered,premium_served,ordinary_offered,ordinary_served,cost,budget`.
pub fn budgeted_month_csv(f: &BudgetedMonth) -> String {
    monthly_report_csv(&f.report)
}

/// Any monthly report as per-hour CSV.
pub fn monthly_report_csv(r: &MonthlyReport) -> String {
    let mut out = String::from(
        "hour,premium_offered,premium_served,ordinary_offered,ordinary_served,cost,budget\n",
    );
    for h in &r.hours {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            h.hour,
            h.premium_offered,
            h.premium_served,
            h.ordinary_offered,
            h.ordinary_served,
            h.realized_cost,
            h.hourly_budget.unwrap_or(f64::NAN)
        );
    }
    out
}

/// Figure 10 as CSV: `budget,premium_tput,ordinary_tput,utilization`.
pub fn fig10_csv(f: &Fig10) -> String {
    let mut out = String::from("budget,premium_tput,ordinary_tput,utilization\n");
    for &(b, prem, ord, util) in &f.rows {
        let _ = writeln!(out, "{b},{prem},{ord},{util}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments;

    #[test]
    fn fig1_csv_has_header_and_rows() {
        let f = experiments::fig1();
        let csv = fig1_csv(&f);
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "load_mw,price_b,price_c,price_d");
        let first = lines.next().unwrap();
        assert_eq!(first.split(',').count(), 4);
        // Every row parses as four floats.
        for line in csv.lines().skip(1) {
            for cell in line.split(',') {
                cell.parse::<f64>().unwrap();
            }
        }
    }

    #[test]
    fn monthly_csv_row_count_matches_hours() {
        use crate::metrics::{HourRecord, MonthlyReport};
        let r = MonthlyReport {
            strategy_name: "t".into(),
            monthly_budget: None,
            hours: vec![HourRecord {
                hour: 0,
                offered: 1.0,
                premium_offered: 0.8,
                ordinary_offered: 0.2,
                premium_served: 0.8,
                ordinary_served: 0.2,
                realized_cost: 5.0,
                believed_cost: 5.0,
                hourly_budget: Some(6.0),
                outcome: None,
                lambda: vec![],
                power_mw: vec![],
                price: vec![],
                audit: None,
                trace: None,
            }],
        };
        let csv = monthly_report_csv(&r);
        assert_eq!(csv.lines().count(), 2);
        assert_eq!(csv.lines().nth(1).unwrap(), "0,0.8,0.8,0.2,0.2,5,6");
    }
}
