//! One runner per figure of the paper's evaluation (Section VII), plus the
//! solver-scaling measurement (Section IV-C) and the ablation studies
//! called out in DESIGN.md.
//!
//! Every runner returns structured data with a `render()` producing the
//! same rows/series the paper reports. Sweeps over independent month
//! simulations fan out on the `billcap-rt` worker pool.

use crate::metrics::MonthlyReport;
use crate::runner::{run_month, Strategy};
use crate::scenario::Scenario;
use crate::table::{dollars, percent, render_table};
use billcap_core::{
    evaluate_allocation, CoreError, CostMinimizer, DataCenterSpec, DataCenterSystem,
};
use billcap_market::{fivebus, FiveBusConsumer, PricingPolicySet, StepPolicy};
use billcap_obs::Stopwatch;
use billcap_power::{CoolingModel, DcPowerModel, FatTree, ServerModel, SwitchPower};
use billcap_rt::try_par_map;

/// Default seed used by the experiment suite (any seed reproduces the same
/// qualitative shapes; this one is the suite's reference).
pub const DEFAULT_SEED: u64 = 42;

// ---------------------------------------------------------------------------
// Figure 1: locational pricing policies from the five-bus system
// ---------------------------------------------------------------------------

/// Figure 1: LMP step policies at consumers B, C, D of the PJM five-bus
/// system, derived from first principles by a DC-OPF load sweep.
pub struct Fig1 {
    /// Per consumer: the `(system load MW, LMP $/MWh)` sweep series.
    pub series: Vec<(FiveBusConsumer, Vec<(f64, f64)>)>,
    /// Step policies fitted to each series.
    pub policies: Vec<StepPolicy>,
}

/// Runs the Figure 1 sweep (0–900 MW in 10 MW steps).
pub fn fig1() -> Fig1 {
    let derived = fivebus::derive_policies(900.0, 10.0).expect("five-bus system is connected"); // repolint-allow(unwrap): reference grid
    let mut series = Vec::new();
    let mut policies = Vec::new();
    for (c, s, p) in derived {
        series.push((c, s));
        policies.push(p);
    }
    Fig1 { series, policies }
}

impl Fig1 {
    /// Renders the sampled price curves (every 100 MW) and the fitted
    /// step policies.
    pub fn render(&self) -> String {
        let mut rows = Vec::new();
        if let Some((_, first)) = self.series.first() {
            for (i, &(load, _)) in first.iter().enumerate() {
                if load % 100.0 != 0.0 {
                    continue;
                }
                let mut row = vec![format!("{load:.0}")];
                for (_, s) in &self.series {
                    row.push(format!("{:.2}", s[i].1));
                }
                rows.push(row);
            }
        }
        let mut out = String::from("Figure 1: locational pricing policies (five-bus LMP sweep)\n");
        out.push_str(&render_table(
            &["load (MW)", "price@B", "price@C", "price@D"],
            &rows,
        ));
        for ((c, _), p) in self.series.iter().zip(&self.policies) {
            let levels: Vec<String> = p
                .levels()
                .map(|(lo, hi, r)| {
                    if hi.is_finite() {
                        format!("[{lo:.0},{hi:.0}):{r:.2}")
                    } else {
                        format!("[{lo:.0},inf):{r:.2}")
                    }
                })
                .collect();
            out.push_str(&format!("{c:?}: {}\n", levels.join("  ")));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Figure 3: hourly cost, Cost Capping vs Min-Only
// ---------------------------------------------------------------------------

/// Figure 3: hourly electricity cost of the three strategies over the
/// evaluation month (no budget; Policy 1).
pub struct Fig3 {
    pub capping: MonthlyReport,
    pub min_only_avg: MonthlyReport,
    pub min_only_low: MonthlyReport,
}

/// Runs Figure 3.
pub fn fig3(seed: u64) -> Result<Fig3, CoreError> {
    let scenario = Scenario::paper_default(1, seed);
    let mut results: Vec<MonthlyReport> =
        try_par_map(&Strategy::ALL, |&s| run_month(&scenario, s, None))?;
    let min_only_low = results.pop().expect("three strategies"); // repolint-allow(unwrap): ALL has 3 entries
    let min_only_avg = results.pop().expect("three strategies"); // repolint-allow(unwrap): ALL has 3 entries
    let capping = results.pop().expect("three strategies"); // repolint-allow(unwrap): ALL has 3 entries
    Ok(Fig3 {
        capping,
        min_only_avg,
        min_only_low,
    })
}

impl Fig3 {
    /// Cost savings of Cost Capping relative to a baseline report.
    pub fn savings_vs(&self, baseline: &MonthlyReport) -> f64 {
        1.0 - self.capping.total_cost() / baseline.total_cost()
    }

    /// Renders the first day's hourly costs and the monthly summary.
    pub fn render(&self) -> String {
        let mut rows = Vec::new();
        for t in 0..24 {
            rows.push(vec![
                format!("{t}"),
                dollars(self.capping.hours[t].realized_cost),
                dollars(self.min_only_avg.hours[t].realized_cost),
                dollars(self.min_only_low.hours[t].realized_cost),
            ]);
        }
        let mut out = String::from("Figure 3: hourly electricity cost (first day shown; $/hour)\n");
        out.push_str(&render_table(
            &["hour", "Cost Capping", "Min-Only (Avg)", "Min-Only (Low)"],
            &rows,
        ));
        out.push_str(&format!(
            "monthly: capping {}  avg {}  low {}\n",
            dollars(self.capping.total_cost()),
            dollars(self.min_only_avg.total_cost()),
            dollars(self.min_only_low.total_cost()),
        ));
        out.push_str(&format!(
            "savings: {} vs Min-Only (Avg), {} vs Min-Only (Low)  [paper: 17.9%, 33.5%]\n",
            percent(self.savings_vs(&self.min_only_avg)),
            percent(self.savings_vs(&self.min_only_low)),
        ));
        out
    }
}

// ---------------------------------------------------------------------------
// Figure 4: monthly bills under Policies 0-3
// ---------------------------------------------------------------------------

/// Figure 4: monthly bill per pricing policy per strategy.
pub struct Fig4 {
    /// `bills[policy][strategy]` in dollars, strategies in
    /// [`Strategy::ALL`] order.
    pub bills: Vec<[f64; 3]>,
}

/// Runs Figure 4 (4 policies x 3 strategies, in parallel).
pub fn fig4(seed: u64) -> Result<Fig4, CoreError> {
    let cells: Vec<(usize, usize)> = (0..4).flat_map(|p| (0..3).map(move |s| (p, s))).collect();
    let costs: Vec<((usize, usize), f64)> = try_par_map(&cells, |&(p, s)| {
        let scenario = Scenario::paper_default(p, seed);
        run_month(&scenario, Strategy::ALL[s], None).map(|r| ((p, s), r.total_cost()))
    })?;
    let mut bills = vec![[0.0; 3]; 4];
    for ((p, s), c) in costs {
        bills[p][s] = c;
    }
    Ok(Fig4 { bills })
}

impl Fig4 {
    /// Renders the policy-by-strategy bill matrix.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .bills
            .iter()
            .enumerate()
            .map(|(p, row)| {
                vec![
                    format!("Policy {p}"),
                    dollars(row[0]),
                    dollars(row[1]),
                    dollars(row[2]),
                ]
            })
            .collect();
        let mut out = String::from("Figure 4: monthly electricity bills under Policies 0-3\n");
        out.push_str(&render_table(
            &["policy", "Cost Capping", "Min-Only (Avg)", "Min-Only (Low)"],
            &rows,
        ));
        out
    }
}

// ---------------------------------------------------------------------------
// Figures 5/6 and 7/8: budgeted months
// ---------------------------------------------------------------------------

/// A budgeted Cost Capping month: throughput split (Figs. 5/7) and hourly
/// cost vs. hourly budget (Figs. 6/8).
pub struct BudgetedMonth {
    pub report: MonthlyReport,
    pub monthly_budget: f64,
}

/// Runs a budgeted Cost Capping month (Figures 5/6 use the abundant
/// $2.5 M budget, Figures 7/8 the stringent $1.5 M).
pub fn budgeted_month(seed: u64, monthly_budget: f64) -> Result<BudgetedMonth, CoreError> {
    let scenario = Scenario::paper_default(1, seed);
    let report = run_month(&scenario, Strategy::CostCapping, Some(monthly_budget))?;
    Ok(BudgetedMonth {
        report,
        monthly_budget,
    })
}

/// Figures 5 and 6.
pub fn fig5_6(seed: u64) -> Result<BudgetedMonth, CoreError> {
    budgeted_month(seed, Scenario::ABUNDANT_BUDGET)
}

/// Figures 7 and 8.
pub fn fig7_8(seed: u64) -> Result<BudgetedMonth, CoreError> {
    budgeted_month(seed, Scenario::STRINGENT_BUDGET)
}

impl BudgetedMonth {
    /// Hours in which no ordinary requests were served.
    pub fn starved_hours(&self) -> usize {
        self.report
            .hours
            .iter()
            .filter(|h| h.ordinary_offered > 0.0 && h.ordinary_served <= 0.0)
            .count()
    }

    /// Renders a daily sample of throughput and cost-vs-budget plus the
    /// monthly aggregates.
    pub fn render(&self) -> String {
        let mut rows = Vec::new();
        for h in self.report.hours.iter().step_by(24) {
            rows.push(vec![
                format!("{}", h.hour),
                format!("{:.1}", h.premium_offered / 1e6),
                format!("{:.1}", h.premium_served / 1e6),
                format!("{:.1}", h.ordinary_offered / 1e6),
                format!("{:.1}", h.ordinary_served / 1e6),
                dollars(h.realized_cost),
                dollars(h.hourly_budget.unwrap_or(f64::NAN)),
            ]);
        }
        let mut out = format!(
            "Budgeted month at {} (daily samples; rates in Mreq/h)\n",
            dollars(self.monthly_budget)
        );
        out.push_str(&render_table(
            &[
                "hour", "prem off", "prem srv", "ord off", "ord srv", "cost", "budget",
            ],
            &rows,
        ));
        out.push_str(&format!(
            "premium throughput {}  ordinary throughput {}  monthly cost {}  \
             budget utilization {}  hourly violations {}  starved hours {}\n",
            percent(self.report.premium_throughput()),
            percent(self.report.ordinary_throughput()),
            dollars(self.report.total_cost()),
            percent(self.report.budget_utilization().unwrap_or(f64::NAN)),
            self.report.hourly_violations(),
            self.starved_hours(),
        ));
        out
    }
}

// ---------------------------------------------------------------------------
// Figure 9: cost and throughput comparison at the stringent budget
// ---------------------------------------------------------------------------

/// Figure 9: normalized cost and throughput of the three strategies under
/// the $1.5 M budget.
pub struct Fig9 {
    /// Per strategy ([`Strategy::ALL`] order): `(cost / budget,
    /// premium throughput, ordinary throughput)`.
    pub rows: [(f64, f64, f64); 3],
    pub budget: f64,
}

/// Runs Figure 9.
pub fn fig9(seed: u64) -> Result<Fig9, CoreError> {
    let scenario = Scenario::paper_default(1, seed);
    let budget = Scenario::STRINGENT_BUDGET;
    let reports: Vec<MonthlyReport> =
        try_par_map(&Strategy::ALL, |&s| run_month(&scenario, s, Some(budget)))?;
    let mut rows = [(0.0, 0.0, 0.0); 3];
    for (i, r) in reports.iter().enumerate() {
        rows[i] = (
            r.total_cost() / budget,
            r.premium_throughput(),
            r.ordinary_throughput(),
        );
    }
    Ok(Fig9 { rows, budget })
}

impl Fig9 {
    /// Renders the normalized comparison.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = Strategy::ALL
            .iter()
            .zip(&self.rows)
            .map(|(s, &(cost, prem, ord))| {
                vec![
                    s.name().to_string(),
                    format!("{:.3}", cost),
                    percent(prem),
                    percent(ord),
                ]
            })
            .collect();
        let mut out = format!(
            "Figure 9: cost and throughput under a {} monthly budget\n",
            dollars(self.budget)
        );
        out.push_str(&render_table(
            &["strategy", "cost/budget", "premium tput", "ordinary tput"],
            &rows,
        ));
        out.push_str(
            "[paper: Min-Only (Avg) +23.3% and (Low) +39.5% over budget; \
             Capping 100% premium, up to 80.3% ordinary, 98.5% utilization]\n",
        );
        out
    }
}

// ---------------------------------------------------------------------------
// Figure 10: throughput across the budget ladder
// ---------------------------------------------------------------------------

/// Figure 10: monthly throughput under the budget ladder.
pub struct Fig10 {
    /// `(budget, premium throughput, ordinary throughput, utilization)`.
    pub rows: Vec<(f64, f64, f64, f64)>,
}

/// Runs Figure 10 (the five budgets in parallel).
pub fn fig10(seed: u64) -> Result<Fig10, CoreError> {
    let scenario = Scenario::paper_default(1, seed);
    let rows: Vec<(f64, f64, f64, f64)> = try_par_map(&Scenario::BUDGET_LADDER, |&b| {
        run_month(&scenario, Strategy::CostCapping, Some(b)).map(|r| {
            (
                b,
                r.premium_throughput(),
                r.ordinary_throughput(),
                r.budget_utilization().unwrap_or(f64::NAN),
            )
        })
    })?;
    Ok(Fig10 { rows })
}

impl Fig10 {
    /// Renders the ladder.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|&(b, prem, ord, util)| {
                vec![
                    dollars(b),
                    percent(prem),
                    percent(ord),
                    format!("{util:.3}"),
                ]
            })
            .collect();
        let mut out = String::from("Figure 10: monthly throughput vs. cost budget\n");
        out.push_str(&render_table(
            &["budget", "premium tput", "ordinary tput", "cost/budget"],
            &rows,
        ));
        out
    }
}

// ---------------------------------------------------------------------------
// Solver scalability (paper Section IV-C)
// ---------------------------------------------------------------------------

/// Solver-time measurement for growing data-center networks.
pub struct SolverScaling {
    /// `(data centers, price levels, median microseconds per solve)`.
    pub rows: Vec<(usize, usize, f64)>,
}

/// Builds an `n`-site system by cycling the paper's three data centers,
/// each with its five-level policy.
pub fn synthetic_system(n: usize) -> DataCenterSystem {
    let sites: Vec<DataCenterSpec> = (0..n)
        .map(|i| {
            let mut dc = DataCenterSpec::paper_dc(i % 3);
            dc.name = format!("dc{i}");
            dc
        })
        .collect();
    let policies = PricingPolicySet {
        policies: (0..n).map(|i| StepPolicy::paper_policy(i % 3)).collect(),
    };
    // repolint-allow(unwrap): generator emits valid specs by construction
    DataCenterSystem::new(sites, policies).expect("synthetic system is valid")
}

/// Measures the median step-1 solve time for systems of 3..=13 sites
/// (the paper reports <= ~2 ms at 13 sites and 5 levels with 1e8 requests).
pub fn solver_scaling(repetitions: usize) -> SolverScaling {
    let minimizer = CostMinimizer::default();
    let mut rows = Vec::new();
    for n in [3usize, 5, 8, 13] {
        let system = synthetic_system(n);
        let background: Vec<f64> = (0..n).map(|i| 330.0 + 40.0 * (i % 3) as f64).collect();
        let lambda = 1e8;
        let mut times: Vec<f64> = (0..repetitions.max(1))
            .map(|_| {
                let t = Stopwatch::start();
                let alloc = minimizer
                    .solve(&system, lambda, &background)
                    .expect("synthetic instance is feasible"); // repolint-allow(unwrap): sized to stay feasible
                assert!(alloc.total_lambda > 0.0);
                t.elapsed_secs() * 1e6
            })
            .collect();
        times.sort_by(f64::total_cmp);
        rows.push((n, 5, times[times.len() / 2]));
    }
    SolverScaling { rows }
}

impl SolverScaling {
    /// Renders solver timings.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|&(n, l, us)| vec![format!("{n}"), format!("{l}"), format!("{us:.0}")])
            .collect();
        let mut out = String::from(
            "Solver scalability: step-1 MILP at 1e8 requests (paper: <= ~2 ms at 13 sites)\n",
        );
        out.push_str(&render_table(&["sites", "levels", "median us"], &rows));
        out
    }
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

/// Ablation: optimize with a server-only power model (the Min-Only blind
/// spot) while being billed for the full power chain. Quantifies the
/// paper's claim that ignoring cooling/networking misprices the decision.
pub struct PowerModelAblation {
    pub full_model_cost: f64,
    pub server_only_cost: f64,
}

/// Replaces each site's power model with a server-only variant (zero-power
/// switches, effectively-free cooling) for *decision making*.
fn server_only_system(system: &DataCenterSystem) -> DataCenterSystem {
    let sites = system
        .sites
        .iter()
        .map(|s| {
            let mut blinded = s.clone();
            blinded.power = DcPowerModel::new(
                ServerModel::new(s.power.server.idle_w, s.power.server.peak_w),
                s.power.operating_utilization,
                FatTree::new(
                    s.power.network.k,
                    SwitchPower {
                        edge_w: 0.0,
                        aggregation_w: 0.0,
                        core_w: 0.0,
                    },
                ),
                CoolingModel::new(1e9), // effectively free cooling
            );
            blinded
        })
        .collect();
    // repolint-allow(unwrap): blinding only changes prices, validity is unchanged
    DataCenterSystem::new(sites, system.policies.clone()).expect("blinded system stays valid")
}

/// Runs the power-model ablation over the evaluation month.
pub fn ablation_power_model(seed: u64) -> Result<PowerModelAblation, CoreError> {
    let scenario = Scenario::paper_default(1, seed);
    let blinded = server_only_system(&scenario.system);
    let minimizer = CostMinimizer::default();
    let mut full_cost = 0.0;
    let mut blind_cost = 0.0;
    for t in 0..scenario.horizon() {
        let lambda = scenario
            .workload
            .at(t)
            .min(scenario.system.total_capacity());
        let d = scenario.background_at(t);
        let full = minimizer.solve(&scenario.system, lambda, &d)?;
        full_cost += evaluate_allocation(&scenario.system, &full.lambda, &d).total_cost;
        let lambda_blind = lambda.min(blinded.total_capacity());
        let blind = minimizer.solve(&blinded, lambda_blind, &d)?;
        // Billed under the TRUE system either way.
        blind_cost += evaluate_allocation(&scenario.system, &blind.lambda, &d).total_cost;
    }
    Ok(PowerModelAblation {
        full_model_cost: full_cost,
        server_only_cost: blind_cost,
    })
}

impl PowerModelAblation {
    /// Extra cost caused by the server-only blind spot.
    pub fn penalty(&self) -> f64 {
        self.server_only_cost / self.full_model_cost - 1.0
    }

    /// Renders the ablation summary.
    pub fn render(&self) -> String {
        format!(
            "Power-model ablation: full-model decisions cost {}, server-only decisions \
             billed fully cost {} (+{})\n",
            dollars(self.full_model_cost),
            dollars(self.server_only_cost),
            percent(self.penalty()),
        )
    }
}

/// Ablation: budgeter history length. Compares hourly-budget violation
/// counts and ordinary throughput at the stringent budget when the
/// budgeter learns from 1, 2 or 4 weeks of history.
pub struct BudgeterAblation {
    /// `(label, ordinary throughput, hourly violations)`.
    pub rows: Vec<(String, f64, usize)>,
}

/// Runs the budgeter-history ablation.
pub fn ablation_budget_history(seed: u64) -> Result<BudgeterAblation, CoreError> {
    let base = Scenario::paper_default(1, seed);
    let variants: Vec<(String, usize)> = vec![
        ("1 week".into(), 168),
        ("2 weeks".into(), 336),
        ("4 weeks".into(), 672),
    ];
    let mut rows: Vec<(String, f64, usize)> = try_par_map(&variants, |(label, hours)| {
        let mut s = base.clone();
        let start = s.history.len() - hours;
        s.history = s.history.slice(start, *hours);
        run_month(&s, Strategy::CostCapping, Some(Scenario::STRINGENT_BUDGET)).map(|r| {
            (
                label.clone(),
                r.ordinary_throughput(),
                r.hourly_violations(),
            )
        })
    })?;
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(BudgeterAblation { rows })
}

impl BudgeterAblation {
    /// Renders the ablation table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(label, tput, v)| vec![label.clone(), percent(*tput), format!("{v}")])
            .collect();
        let mut out = String::from("Budgeter history-length ablation ($1.5M budget)\n");
        out.push_str(&render_table(
            &["history", "ordinary tput", "hourly violations"],
            &rows,
        ));
        out
    }
}

/// Ablation: prediction-error robustness (paper Section IX). The
/// budgeter's history is distorted with multiplicative noise of growing
/// amplitude before it learns its hour-of-week weights; the stringent
/// budget month then measures how much mis-budgeting costs.
pub struct PredictionErrorAblation {
    /// `(noise amplitude, ordinary throughput, hourly violations,
    /// budget utilization)`.
    pub rows: Vec<(f64, f64, usize, f64)>,
}

/// Runs the prediction-error ablation.
pub fn ablation_prediction_error(seed: u64) -> Result<PredictionErrorAblation, CoreError> {
    use billcap_rt::{Rng, Xoshiro256pp};
    let base = Scenario::paper_default(1, seed);
    let amplitudes = [0.0, 0.1, 0.25, 0.5];
    let rows: Vec<(f64, f64, usize, f64)> = try_par_map(&amplitudes, |&amp| {
        let mut s = base.clone();
        if amp > 0.0 {
            // Deterministic multiplicative distortion of the history.
            let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0xbad5eed);
            let distorted: Vec<f64> = s
                .history
                .values()
                .iter()
                .map(|&v| {
                    let u: f64 = rng.random::<f64>() * 2.0 - 1.0;
                    v * (1.0 + amp * u).max(0.05)
                })
                .collect();
            s.history = billcap_workload::HourlyTrace::new(distorted);
        }
        run_month(&s, Strategy::CostCapping, Some(Scenario::STRINGENT_BUDGET)).map(|r| {
            (
                amp,
                r.ordinary_throughput(),
                r.hourly_violations(),
                r.budget_utilization().unwrap_or(f64::NAN),
            )
        })
    })?;
    Ok(PredictionErrorAblation { rows })
}

impl PredictionErrorAblation {
    /// Renders the robustness table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|&(amp, tput, v, util)| {
                vec![
                    format!("{:.0}%", amp * 100.0),
                    percent(tput),
                    format!("{v}"),
                    format!("{util:.3}"),
                ]
            })
            .collect();
        let mut out =
            String::from("Prediction-error robustness ($1.5M budget; noisy budgeting history)\n");
        out.push_str(&render_table(
            &[
                "history noise",
                "ordinary tput",
                "violations",
                "cost/budget",
            ],
            &rows,
        ));
        out
    }
}

/// Hierarchical vs. centralized cost minimization (paper Section IX):
/// per-hour solve time and realized-cost gap as the fleet grows.
pub struct HierarchicalComparison {
    /// `(sites, centralized µs, hierarchical µs, cost gap fraction)`.
    pub rows: Vec<(usize, f64, f64, f64)>,
}

/// Runs the hierarchical comparison over synthetic fleets (regions of 3).
pub fn hierarchical_comparison(repetitions: usize) -> HierarchicalComparison {
    use billcap_core::HierarchicalMinimizer;
    let minimizer = CostMinimizer::default();
    let mut rows = Vec::new();
    for n in [3usize, 9, 15, 27] {
        let system = synthetic_system(n);
        let background: Vec<f64> = (0..n).map(|i| 330.0 + 40.0 * (i % 3) as f64).collect();
        let lambda = 0.4 * system.total_capacity();
        let hier = HierarchicalMinimizer::evenly(n, 3);

        let mut central_times = Vec::new();
        let mut hier_times = Vec::new();
        let mut central_cost = 0.0;
        let mut hier_cost = 0.0;
        for _ in 0..repetitions.max(1) {
            let t = Stopwatch::start();
            central_cost = minimizer
                .solve(&system, lambda, &background)
                .expect("feasible") // repolint-allow(unwrap): demand sized below capacity
                .total_cost;
            central_times.push(t.elapsed_secs() * 1e6);
            let t = Stopwatch::start();
            hier_cost = hier
                .solve(&system, lambda, &background)
                .expect("feasible") // repolint-allow(unwrap): demand sized below capacity
                .total_cost;
            hier_times.push(t.elapsed_secs() * 1e6);
        }
        central_times.sort_by(f64::total_cmp);
        hier_times.sort_by(f64::total_cmp);
        rows.push((
            n,
            central_times[central_times.len() / 2],
            hier_times[hier_times.len() / 2],
            hier_cost / central_cost - 1.0,
        ));
    }
    HierarchicalComparison { rows }
}

impl HierarchicalComparison {
    /// Renders the comparison table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|&(n, c_us, h_us, gap)| {
                vec![
                    format!("{n}"),
                    format!("{c_us:.0}"),
                    format!("{h_us:.0}"),
                    percent(gap),
                ]
            })
            .collect();
        let mut out =
            String::from("Hierarchical vs centralized cost minimization (regions of 3 sites)\n");
        out.push_str(&render_table(
            &["sites", "central us", "hierarchical us", "cost gap"],
            &rows,
        ));
        out
    }
}

/// Ablation: ElasticTree-style networking consolidation (the paper's
/// networking model) vs. always-on switches. Decisions are unchanged; the
/// delta power of a non-consolidated fabric is billed post-hoc at each
/// hour's realized price (a conservative estimate — extra draw could also
/// tip price levels).
pub struct NetworkConsolidationAblation {
    /// Monthly bill with consolidation (the paper's model), $.
    pub consolidated_cost: f64,
    /// Monthly bill with every switch always on, $.
    pub always_on_cost: f64,
    /// Networking energy saved by consolidation over the month (MWh).
    pub energy_saved_mwh: f64,
}

/// Runs the networking-consolidation ablation.
pub fn ablation_network_consolidation(
    seed: u64,
) -> Result<NetworkConsolidationAblation, CoreError> {
    let scenario = Scenario::paper_default(1, seed);
    let minimizer = CostMinimizer::default();
    let mut consolidated_cost = 0.0;
    let mut always_on_cost = 0.0;
    let mut energy_saved_mwh = 0.0;
    for t in 0..scenario.horizon() {
        let lambda = scenario
            .workload
            .at(t)
            .min(scenario.system.total_capacity());
        let d = scenario.background_at(t);
        let alloc = minimizer.solve(&scenario.system, lambda, &d)?;
        let real = evaluate_allocation(&scenario.system, &alloc.lambda, &d);
        consolidated_cost += real.total_cost;
        always_on_cost += real.total_cost;
        for (i, site) in scenario.system.sites.iter().enumerate() {
            let n = site.servers_for_rate(alloc.lambda[i]);
            let consolidated_w = site.power.network.networking_power_w(n);
            let always_w = site.power.network.always_on_power_w();
            // The extra switch heat also needs cooling.
            let delta_mw = (always_w - consolidated_w) * site.power.cooling.overhead_factor() / 1e6;
            energy_saved_mwh += delta_mw; // one hour at delta_mw
            always_on_cost += real.price[i] * delta_mw;
        }
    }
    Ok(NetworkConsolidationAblation {
        consolidated_cost,
        always_on_cost,
        energy_saved_mwh,
    })
}

impl NetworkConsolidationAblation {
    /// Fractional bill increase without consolidation.
    pub fn penalty(&self) -> f64 {
        self.always_on_cost / self.consolidated_cost - 1.0
    }

    /// Renders the ablation summary.
    pub fn render(&self) -> String {
        format!(
            "Networking-consolidation ablation: consolidated bill {}, always-on bill {} \
             (+{}); consolidation saves {:.0} MWh of networking+cooling energy per month\n",
            dollars(self.consolidated_cost),
            dollars(self.always_on_cost),
            percent(self.penalty()),
            self.energy_saved_mwh,
        )
    }
}

/// Extension: weather-aware routing. The paper fixes each site's cooling
/// efficiency; here `coe` varies hourly with the outside-air temperature
/// (economizer curve anchored at the paper's printed values), and a
/// weather-aware optimizer — which sees the hourly efficiencies — is
/// compared against a weather-blind one that optimizes with the static
/// values but is billed under the true hourly efficiencies.
pub struct WeatherAblation {
    pub aware_cost: f64,
    pub blind_cost: f64,
    /// Mean absolute hourly difference in load placed at the coolest site
    /// (requests/hour): how much the weather actually moves traffic.
    pub mean_shift: f64,
}

/// Runs the weather-aware-routing ablation.
pub fn ablation_weather(seed: u64) -> Result<WeatherAblation, CoreError> {
    use billcap_workload::{EconomizerCurve, TemperatureModel};
    let scenario = Scenario::paper_default(1, seed);
    let horizon = scenario.horizon();
    let static_coes = [1.94, 1.39, 1.74];
    let anchors = [6.0, 16.0, 11.0]; // mean November temperature per site
    let temps: Vec<_> = (0..3)
        .map(|i| TemperatureModel::paper_location(i, seed).generate(horizon))
        .collect();
    let curves: Vec<_> = (0..3)
        .map(|i| EconomizerCurve::anchored(static_coes[i], anchors[i]))
        .collect();

    let minimizer = CostMinimizer::default();
    let mut aware_cost = 0.0;
    let mut blind_cost = 0.0;
    let mut total_shift = 0.0;
    for t in 0..horizon {
        let d = scenario.background_at(t);
        // The true world this hour: weather-driven efficiencies.
        let true_sites: Vec<DataCenterSpec> = scenario
            .system
            .sites
            .iter()
            .enumerate()
            .map(|(i, s)| s.with_cooling_efficiency(curves[i].coe_at(temps[i].at(t))))
            .collect();
        let true_system = DataCenterSystem::new(true_sites, scenario.system.policies.clone())?;
        let lambda = scenario
            .workload
            .at(t)
            .min(true_system.total_capacity())
            .min(scenario.system.total_capacity());

        let aware = minimizer.solve(&true_system, lambda, &d)?;
        aware_cost += evaluate_allocation(&true_system, &aware.lambda, &d).total_cost;

        let blind = minimizer.solve(&scenario.system, lambda, &d)?;
        blind_cost += evaluate_allocation(&true_system, &blind.lambda, &d).total_cost;

        total_shift += (aware.lambda[0] - blind.lambda[0]).abs();
    }
    Ok(WeatherAblation {
        aware_cost,
        blind_cost,
        mean_shift: total_shift / horizon as f64,
    })
}

impl WeatherAblation {
    /// Fractional saving of weather awareness.
    pub fn saving(&self) -> f64 {
        1.0 - self.aware_cost / self.blind_cost
    }

    /// Renders the ablation summary.
    pub fn render(&self) -> String {
        format!(
            "Weather-aware routing: aware bill {}, blind bill {} (saving {}); \
             weather moves {:.1}M req/h at the coolest site on average\n",
            dollars(self.aware_cost),
            dollars(self.blind_cost),
            percent(self.saving()),
            self.mean_shift / 1e6,
        )
    }
}

/// Seed-stability study: the headline Figure-3 savings re-measured across
/// independent random worlds (different trace noise, flash timing
/// retained, different background weather), to show the qualitative
/// result is not an artifact of one seed.
pub struct SeedStability {
    /// Per seed: `(seed, savings vs Avg, savings vs Low)`.
    pub rows: Vec<(u64, f64, f64)>,
}

/// Runs Figure 3 for `seeds` independent seeds (in parallel).
pub fn seed_stability(seeds: &[u64]) -> Result<SeedStability, CoreError> {
    let rows: Vec<(u64, f64, f64)> = try_par_map(seeds, |&seed| {
        fig3(seed).map(|f| {
            (
                seed,
                f.savings_vs(&f.min_only_avg),
                f.savings_vs(&f.min_only_low),
            )
        })
    })?;
    Ok(SeedStability { rows })
}

impl SeedStability {
    /// `(min, mean, max)` of the savings vs a baseline (0 = Avg, 1 = Low).
    pub fn stats(&self, baseline: usize) -> (f64, f64, f64) {
        let vals: Vec<f64> = self
            .rows
            .iter()
            .map(|r| if baseline == 0 { r.1 } else { r.2 })
            .collect();
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // detlint-allow(D006): sequential fixed-order mean over per-seed values; bitwise-stable
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        (min, mean, max)
    }

    /// Renders the stability table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|&(seed, a, l)| vec![format!("{seed}"), percent(a), percent(l)])
            .collect();
        let mut out = String::from("Seed stability of the Figure-3 savings\n");
        out.push_str(&render_table(&["seed", "vs Avg", "vs Low"], &rows));
        let (amin, amean, amax) = self.stats(0);
        let (lmin, lmean, lmax) = self.stats(1);
        out.push_str(&format!(
            "vs Avg: min {} mean {} max {}   vs Low: min {} mean {} max {}\n",
            percent(amin),
            percent(amean),
            percent(amax),
            percent(lmin),
            percent(lmean),
            percent(lmax),
        ));
        out
    }
}

/// Predictor accuracy on the evaluation month (paper Section IX assumes a
/// "accurate enough" predictor; this quantifies the candidates).
pub struct PredictorAccuracy {
    /// `(predictor name, MAPE)`.
    pub rows: Vec<(String, f64)>,
}

/// Runs the predictor-accuracy comparison.
pub fn predictor_accuracy(seed: u64) -> PredictorAccuracy {
    use billcap_workload::{mape, EwmaSeasonalPredictor, HourOfWeekPredictor, NaivePredictor};
    let scenario = Scenario::paper_default(1, seed);
    let mut rows = Vec::new();
    let mut naive = NaivePredictor::default();
    rows.push((
        "naive (last hour)".to_string(),
        mape(&mut naive, &scenario.workload),
    ));
    let mut seasonal = HourOfWeekPredictor::from_history(&scenario.history);
    rows.push((
        "hour-of-week".to_string(),
        mape(&mut seasonal, &scenario.workload),
    ));
    let mut ewma = EwmaSeasonalPredictor::from_history(&scenario.history, 0.2);
    rows.push((
        "hour-of-week + EWMA".to_string(),
        mape(&mut ewma, &scenario.workload),
    ));
    PredictorAccuracy { rows }
}

impl PredictorAccuracy {
    /// Renders the accuracy table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(name, err)| vec![name.clone(), percent(*err)])
            .collect();
        let mut out = String::from("Workload predictor accuracy (evaluation month)\n");
        out.push_str(&render_table(&["predictor", "MAPE"], &rows));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_produces_three_rising_policies() {
        let f = fig1();
        assert_eq!(f.series.len(), 3);
        assert_eq!(f.policies.len(), 3);
        for p in &f.policies {
            assert!(p.num_levels() >= 2);
            assert!(p.max_price() > p.min_price());
        }
        let rendered = f.render();
        assert!(rendered.contains("price@B"));
    }

    #[test]
    fn synthetic_systems_scale() {
        for n in [3, 5, 13] {
            let s = synthetic_system(n);
            assert_eq!(s.len(), n);
            assert!(s.total_capacity() > 0.0);
        }
    }

    #[test]
    fn solver_scaling_is_fast() {
        let s = solver_scaling(3);
        assert_eq!(s.rows.len(), 4);
        for &(n, _, us) in &s.rows {
            // The paper reports <= ~2 ms; allow a generous 250 ms here so
            // debug builds on slow machines still pass.
            assert!(us < 250_000.0, "{n} sites took {us} us");
        }
        assert!(s.render().contains("sites"));
    }

    #[test]
    fn predictor_accuracy_orders_sensibly() {
        let p = predictor_accuracy(7);
        assert_eq!(p.rows.len(), 3);
        let naive = p.rows[0].1;
        let seasonal = p.rows[1].1;
        assert!(seasonal < naive, "seasonal {seasonal} vs naive {naive}");
        assert!(p.render().contains("MAPE"));
    }

    #[test]
    fn hierarchical_comparison_small() {
        let h = hierarchical_comparison(1);
        assert_eq!(h.rows.len(), 4);
        for &(n, _, _, gap) in &h.rows {
            assert!(gap >= -1e-6, "{n} sites: negative gap {gap}");
            assert!(gap < 0.2, "{n} sites: gap {gap} too large");
        }
    }

    // Full-month experiment correctness is covered by the integration
    // tests at the workspace root (tests/paper_experiments.rs); the unit
    // tests here only exercise the cheap runners.
}
