//! Minimal ASCII table / series rendering for experiment output.

/// Renders a table with a header row; columns are padded to their widest
/// cell. Used by the experiment runners to print the same rows the paper's
/// figures report.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:>w$}", w = w));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Formats a dollar amount with thousands separators: `1234567.8` →
/// `$1,234,568`.
pub fn dollars(x: f64) -> String {
    let rounded = x.round() as i64;
    let negative = rounded < 0;
    let digits = rounded.abs().to_string();
    let mut grouped = String::new();
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            grouped.push(',');
        }
        grouped.push(c);
    }
    format!("{}${grouped}", if negative { "-" } else { "" })
}

/// Formats a fraction as a percentage with one decimal: `0.985` → `98.5%`.
pub fn percent(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("12345"));
        // All rows share the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn dollar_grouping() {
        assert_eq!(dollars(1_234_567.8), "$1,234,568");
        assert_eq!(dollars(0.4), "$0");
        assert_eq!(dollars(-1500.0), "-$1,500");
        assert_eq!(dollars(999.0), "$999");
    }

    #[test]
    fn percent_format() {
        assert_eq!(percent(0.985), "98.5%");
        assert_eq!(percent(1.0), "100.0%");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        render_table(&["a", "b"], &[vec!["x".into()]]);
    }
}
