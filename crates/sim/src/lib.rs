//! # billcap-sim
//!
//! Simulation harness for the `billcap` reproduction of *Electricity Bill
//! Capping for Cloud-Scale Data Centers that Impact the Power Markets*
//! (ICPP 2012): hourly month-long runs of the bill capper and the Min-Only
//! baselines over the synthetic Wikipedia-like workload and RECO-like
//! background demand, plus one experiment runner per figure of the paper's
//! evaluation (Section VII).
//!
//! * [`scenario`] — the paper's simulated setup: three data centers,
//!   pricing policies, two months of workload (history + evaluation),
//!   background demand, 80/20 premium split, and the $-budget family.
//! * [`runner`] — the hour loop: budgeter → capper (or baseline) →
//!   realized billing → metrics. Two interchangeable implementations:
//!   the scratch-reuse production loop and the fresh-allocation
//!   reference oracle, bitwise-identical by contract.
//! * [`metrics`] — per-hour records and monthly aggregates.
//! * [`risk`] — the Monte-Carlo risk engine: N perturbed-seed month
//!   simulations fanned across the worker pool, aggregated into
//!   P50/P95/P99 bill and violation distributions.
//! * [`experiments`] — `fig1` … `fig10`, `solver_scaling`, and the
//!   ablation studies; each returns structured data and renders the same
//!   rows/series the paper reports.
//!
//! Parameter sweeps (policy families, budget ladders) fan out on the
//! `billcap-rt` worker pool — each month simulation is independent.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod export;
pub mod metrics;
pub mod risk;
pub mod runner;
pub mod scenario;
pub mod table;

pub use metrics::{stable_sum, HourAudit, HourRecord, HourTrace, MonthlyReport};
pub use risk::{RiskConfig, RiskEngine, RiskSample, RiskSummary, ScheduleSpec};
pub use runner::{
    run_month, run_month_fresh, run_month_scratch, run_month_with, MonthScratch, Strategy,
};
pub use scenario::Scenario;
