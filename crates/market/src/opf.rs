//! Economic dispatch (DC-OPF) and locational marginal price extraction.
//!
//! The dispatch LP minimizes total generation cost subject to the system
//! power balance, generator capacities, and line thermal limits expressed
//! through the PTDF matrix. The LMP at a bus is the marginal system cost of
//! serving one more megawatt there; we extract it by a forward-difference
//! perturbation (re-solving with a small extra load at the bus), which is
//! numerically equivalent to the balance-constraint dual for the step-cost
//! generators used here and avoids needing dual values from the simplex.

use crate::linalg::Matrix;
use crate::network::{BusId, Grid};
use billcap_milp::{ConstraintOp, LpSolver, Model, Sense, SolveError};
use std::fmt;

/// Errors from the dispatch solver.
#[derive(Debug, Clone, PartialEq)]
pub enum OpfError {
    /// Load exceeds deliverable generation (capacity or transmission).
    Infeasible,
    /// The network is electrically disconnected.
    Disconnected,
    /// Internal LP failure.
    Solver(SolveError),
}

impl fmt::Display for OpfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpfError::Infeasible => write!(f, "dispatch infeasible for the given load"),
            OpfError::Disconnected => write!(f, "network is disconnected"),
            OpfError::Solver(e) => write!(f, "dispatch LP failed: {e}"),
        }
    }
}

impl std::error::Error for OpfError {}

/// Result of an economic dispatch.
#[derive(Debug, Clone)]
pub struct DispatchResult {
    /// Output of each generator in MW (same order as [`Grid::generators`]).
    pub generation_mw: Vec<f64>,
    /// Flow on each line in MW, oriented `from -> to`.
    pub flows_mw: Vec<f64>,
    /// Total generation cost in $/h.
    pub total_cost: f64,
}

/// DC-OPF solver bound to a grid (caches the PTDF matrix).
pub struct OpfSolver {
    grid: Grid,
    ptdf: Matrix,
    lp: LpSolver,
    /// Perturbation size (MW) for LMP extraction.
    pub epsilon_mw: f64,
}

impl OpfSolver {
    /// Builds a solver for `grid`; fails if the network is disconnected.
    pub fn new(grid: Grid) -> Result<Self, OpfError> {
        let ptdf = grid.ptdf().ok_or(OpfError::Disconnected)?;
        Ok(Self {
            grid,
            ptdf,
            lp: LpSolver::default(),
            epsilon_mw: 0.1,
        })
    }

    /// The underlying grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Solves the dispatch for the given per-bus loads (MW, indexed by bus).
    pub fn dispatch(&self, loads_mw: &[f64]) -> Result<DispatchResult, OpfError> {
        self.dispatch_internal(loads_mw).map(|(d, _, _)| d)
    }

    /// Builds and solves the dispatch LP, additionally returning the
    /// constraint duals and, per line, the indices of its `lim+`/`lim-`
    /// rows in the constraint list (None for unconstrained lines).
    #[allow(clippy::type_complexity)]
    fn dispatch_internal(
        &self,
        loads_mw: &[f64],
    ) -> Result<(DispatchResult, Vec<f64>, Vec<Option<(usize, usize)>>), OpfError> {
        assert_eq!(loads_mw.len(), self.grid.buses.len(), "load vector size");
        // detlint-allow(D006): sequential fixed-order sum over bus loads; bitwise-stable
        let total_load: f64 = loads_mw.iter().sum();

        let mut m = Model::new("dispatch", Sense::Minimize);
        let gens: Vec<_> = self
            .grid
            .generators
            .iter()
            .map(|g| m.add_cont(format!("p_{}", g.name), 0.0, g.capacity_mw))
            .collect();

        // System balance.
        m.add_constraint(
            "balance",
            gens.iter().map(|&v| (v, 1.0)).collect(),
            ConstraintOp::Eq,
            total_load,
        );

        // Line limits: flow_l = sum_b PTDF[l][b] * (gen_b - load_b).
        let mut line_rows: Vec<Option<(usize, usize)>> = Vec::with_capacity(self.grid.lines.len());
        let mut next_row = 1; // row 0 is the balance constraint
        for (li, line) in self.grid.lines.iter().enumerate() {
            if !line.limit_mw.is_finite() {
                line_rows.push(None);
                continue;
            }
            line_rows.push(Some((next_row, next_row + 1)));
            next_row += 2;
            let mut terms: Vec<(billcap_milp::VarId, f64)> = Vec::new();
            let mut fixed = 0.0;
            for (gi, g) in self.grid.generators.iter().enumerate() {
                let coeff = self.ptdf[(li, g.bus.0)];
                if coeff != 0.0 {
                    terms.push((gens[gi], coeff));
                }
            }
            for (b, &load) in loads_mw.iter().enumerate() {
                fixed -= self.ptdf[(li, b)] * load;
            }
            m.add_constraint(
                format!("lim+_{}", line.name),
                terms.clone(),
                ConstraintOp::Le,
                line.limit_mw - fixed,
            );
            m.add_constraint(
                format!("lim-_{}", line.name),
                terms,
                ConstraintOp::Ge,
                -line.limit_mw - fixed,
            );
        }

        m.set_objective(
            gens.iter()
                .zip(&self.grid.generators)
                .map(|(&v, g)| (v, g.cost_per_mwh))
                .collect(),
            0.0,
        );

        let sol = match self.lp.solve(&m) {
            Ok(s) => s,
            Err(SolveError::Infeasible) => return Err(OpfError::Infeasible),
            Err(e) => return Err(OpfError::Solver(e)),
        };

        let generation_mw: Vec<f64> = gens.iter().map(|&v| sol.value(v)).collect();
        let mut flows_mw = vec![0.0; self.grid.lines.len()];
        for (li, flow) in flows_mw.iter_mut().enumerate() {
            let mut f = 0.0;
            for (gi, g) in self.grid.generators.iter().enumerate() {
                f += self.ptdf[(li, g.bus.0)] * generation_mw[gi];
            }
            for (b, &load) in loads_mw.iter().enumerate() {
                f -= self.ptdf[(li, b)] * load;
            }
            *flow = f;
        }
        let duals = sol.duals.clone().unwrap_or_default();
        Ok((
            DispatchResult {
                generation_mw,
                flows_mw,
                total_cost: sol.objective,
            },
            duals,
            line_rows,
        ))
    }

    /// LMP at `bus` for the given loading, in $/MWh: marginal cost of one
    /// additional megawatt served at that bus.
    ///
    /// Uses a forward difference; if the perturbed system is infeasible
    /// (at the edge of deliverability) falls back to a backward difference.
    pub fn lmp(&self, loads_mw: &[f64], bus: BusId) -> Result<f64, OpfError> {
        let base = self.dispatch(loads_mw)?;
        let mut up = loads_mw.to_vec();
        up[bus.0] += self.epsilon_mw;
        match self.dispatch(&up) {
            Ok(pert) => Ok((pert.total_cost - base.total_cost) / self.epsilon_mw),
            Err(OpfError::Infeasible) => {
                let mut down = loads_mw.to_vec();
                down[bus.0] = (down[bus.0] - self.epsilon_mw).max(0.0);
                let pert = self.dispatch(&down)?;
                Ok((base.total_cost - pert.total_cost) / self.epsilon_mw)
            }
            Err(e) => Err(e),
        }
    }

    /// LMPs at several buses for the same loading.
    pub fn lmps(&self, loads_mw: &[f64], buses: &[BusId]) -> Result<Vec<f64>, OpfError> {
        buses.iter().map(|&b| self.lmp(loads_mw, b)).collect()
    }

    /// Exact LMPs at every bus via the dispatch LP's duals, decomposed
    /// into the classic energy + congestion components:
    ///
    /// ```text
    /// LMP_b = y_balance + Σ_l PTDF[l][b] · (y_l⁺ + y_l⁻)
    /// ```
    ///
    /// where `y_balance` is the system-balance shadow price (the energy
    /// component, identical at every bus) and the line-limit duals supply
    /// the locational congestion component. This is both faster and more
    /// precise than the perturbation method (one LP instead of `n+1`),
    /// and degenerate ties aside the two agree — tested in this module.
    pub fn lmp_decomposition(&self, loads_mw: &[f64]) -> Result<LmpDecomposition, OpfError> {
        let (_, duals, line_rows) = self.dispatch_internal(loads_mw)?;
        let energy = duals.first().copied().unwrap_or(0.0);
        let n = self.grid.buses.len();
        let mut congestion = vec![0.0; n];
        for (li, rows) in line_rows.iter().enumerate() {
            let Some((up, down)) = rows else { continue };
            let y = duals[*up] + duals[*down];
            if y == 0.0 {
                continue;
            }
            for (b, c) in congestion.iter_mut().enumerate() {
                *c += self.ptdf[(li, b)] * y;
            }
        }
        let lmp = congestion.iter().map(|c| energy + c).collect();
        Ok(LmpDecomposition {
            energy,
            congestion,
            lmp,
        })
    }
}

/// Exact LMPs with the energy/congestion split (see
/// [`OpfSolver::lmp_decomposition`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LmpDecomposition {
    /// System-wide energy component ($/MWh): the balance dual.
    pub energy: f64,
    /// Per-bus congestion component ($/MWh).
    pub congestion: Vec<f64>,
    /// Per-bus LMP = energy + congestion ($/MWh).
    pub lmp: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Grid;

    /// Two buses, cheap generator at slack, load remote: no congestion means
    /// a single system price equal to the marginal unit's cost.
    fn simple_grid(limit: f64) -> (Grid, BusId, BusId) {
        let mut g = Grid::new();
        let a = g.add_bus("A");
        let b = g.add_bus("B");
        g.add_line("AB", a, b, 0.1, limit);
        g.add_generator("cheap", a, 100.0, 10.0);
        g.add_generator("expensive", b, 100.0, 30.0);
        (g, a, b)
    }

    #[test]
    fn uncongested_price_is_cheapest_marginal() {
        let (g, _a, b) = simple_grid(f64::INFINITY);
        let opf = OpfSolver::new(g).unwrap();
        let loads = vec![0.0, 50.0];
        let d = opf.dispatch(&loads).unwrap();
        assert!((d.generation_mw[0] - 50.0).abs() < 1e-6);
        assert!((opf.lmp(&loads, b).unwrap() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn generation_limit_raises_price() {
        let (g, _a, b) = simple_grid(f64::INFINITY);
        let opf = OpfSolver::new(g).unwrap();
        // Load above the cheap unit's 100 MW: marginal unit is the $30 one.
        let loads = vec![0.0, 150.0];
        let d = opf.dispatch(&loads).unwrap();
        assert!((d.generation_mw[0] - 100.0).abs() < 1e-6);
        assert!((d.generation_mw[1] - 50.0).abs() < 1e-6);
        assert!((opf.lmp(&loads, b).unwrap() - 30.0).abs() < 1e-6);
    }

    #[test]
    fn transmission_limit_creates_congestion_price() {
        let (g, a, b) = simple_grid(40.0);
        let opf = OpfSolver::new(g).unwrap();
        // 60 MW at B but only 40 MW can be imported: B pays the local unit.
        let loads = vec![0.0, 60.0];
        let d = opf.dispatch(&loads).unwrap();
        assert!((d.generation_mw[0] - 40.0).abs() < 1e-6);
        assert!((d.generation_mw[1] - 20.0).abs() < 1e-6);
        assert!((opf.lmp(&loads, b).unwrap() - 30.0).abs() < 1e-6);
        // The unconstrained side still sees the cheap price.
        assert!((opf.lmp(&loads, a).unwrap() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn flows_respect_limits() {
        let (g, _a, _b) = simple_grid(40.0);
        let opf = OpfSolver::new(g).unwrap();
        let d = opf.dispatch(&[0.0, 60.0]).unwrap();
        assert!(d.flows_mw[0].abs() <= 40.0 + 1e-6);
    }

    #[test]
    fn infeasible_when_load_exceeds_capacity() {
        let (g, _a, _b) = simple_grid(f64::INFINITY);
        let opf = OpfSolver::new(g).unwrap();
        assert!(matches!(
            opf.dispatch(&[0.0, 500.0]),
            Err(OpfError::Infeasible)
        ));
    }

    #[test]
    fn dual_lmp_matches_perturbation_lmp() {
        let (g, a, b) = simple_grid(40.0);
        let opf = OpfSolver::new(g).unwrap();
        for loads in [vec![0.0, 30.0], vec![0.0, 60.0], vec![20.0, 55.0]] {
            let dec = opf.lmp_decomposition(&loads).unwrap();
            for (bus, &exact) in [a, b].iter().zip(&dec.lmp) {
                let pert = opf.lmp(&loads, *bus).unwrap();
                assert!(
                    (exact - pert).abs() < 1e-6,
                    "loads {loads:?} bus {bus:?}: dual {exact} vs perturbation {pert}"
                );
            }
        }
    }

    #[test]
    fn decomposition_components_sum() {
        let (g, _a, _b) = simple_grid(40.0);
        let opf = OpfSolver::new(g).unwrap();
        let dec = opf.lmp_decomposition(&[0.0, 60.0]).unwrap();
        for (lmp, c) in dec.lmp.iter().zip(&dec.congestion) {
            assert!((lmp - (dec.energy + c)).abs() < 1e-12);
        }
        // Congested case: the import-limited bus pays a positive
        // congestion premium, the exporting bus a discount or zero.
        assert!(dec.congestion[1] > 1.0, "{dec:?}");
    }

    #[test]
    fn uncongested_decomposition_is_pure_energy() {
        let (g, _a, _b) = simple_grid(f64::INFINITY);
        let opf = OpfSolver::new(g).unwrap();
        let dec = opf.lmp_decomposition(&[0.0, 50.0]).unwrap();
        assert!((dec.energy - 10.0).abs() < 1e-9);
        assert!(dec.congestion.iter().all(|c| c.abs() < 1e-9));
    }

    #[test]
    fn dispatch_balances_supply_and_demand() {
        let (g, _a, _b) = simple_grid(f64::INFINITY);
        let opf = OpfSolver::new(g).unwrap();
        let loads = vec![20.0, 70.0];
        let d = opf.dispatch(&loads).unwrap();
        let total_gen: f64 = d.generation_mw.iter().sum();
        assert!((total_gen - 90.0).abs() < 1e-6);
    }
}
