//! A synthetic eight-bus two-area system.
//!
//! Complements the PJM five-bus instance with a larger network whose
//! congestion pattern is structural rather than incidental: two
//! generation-rich areas joined by two tie-lines with limited transfer
//! capability. It exercises the OPF/LMP machinery on a meshed topology
//! with multiple simultaneously binding constraints, and gives experiments
//! a second source of derived step policies.
//!
//! Topology (reactances in per-unit, limits in MW):
//!
//! ```text
//!   Area 1 (cheap hydro/coal)        Area 2 (expensive gas)
//!   G1--1 ---- 2 ---- 3 (load)   5 ---- 6 ---- 7 (load)
//!         \    |     |           |      |     /
//!          \   |     +--tie A----+      |    /
//!           \  |                        |   /
//!            \ 4 (load) ------tie B---- 8 (load, G4)
//!               (G2 at 2, G3 at 5)
//! ```

use crate::network::{BusId, Grid};
use crate::opf::{OpfError, OpfSolver};
use crate::policy::StepPolicy;

/// Bus handles for the two-area system.
#[derive(Debug, Clone, Copy)]
pub struct TwoArea {
    pub buses: [BusId; 8],
}

impl TwoArea {
    /// The buses carrying load (3, 4, 7, 8 → indices 2, 3, 6, 7).
    pub fn load_buses(&self) -> [BusId; 4] {
        [self.buses[2], self.buses[3], self.buses[6], self.buses[7]]
    }
}

/// Builds the two-area grid.
///
/// Area 1 holds 900 MW of cheap generation ($8/$13), area 2 holds 500 MW
/// of expensive generation ($32/$45); the two tie-lines limit transfers to
/// 180 MW + 140 MW, so once area-2 load outgrows imports its LMPs decouple
/// sharply — the price-maker effect on a larger stage.
pub fn two_area() -> (Grid, TwoArea) {
    let mut g = Grid::new();
    let b: Vec<BusId> = (1..=8).map(|i| g.add_bus(format!("bus{i}"))).collect();

    // Area 1 internal lines (strong).
    g.add_line("1-2", b[0], b[1], 0.02, f64::INFINITY);
    g.add_line("2-3", b[1], b[2], 0.02, f64::INFINITY);
    g.add_line("1-4", b[0], b[3], 0.025, f64::INFINITY);
    g.add_line("2-4", b[1], b[3], 0.025, f64::INFINITY);
    // Area 2 internal lines (strong).
    g.add_line("5-6", b[4], b[5], 0.02, f64::INFINITY);
    g.add_line("6-7", b[5], b[6], 0.02, f64::INFINITY);
    g.add_line("5-8", b[4], b[7], 0.025, f64::INFINITY);
    g.add_line("6-8", b[5], b[7], 0.025, f64::INFINITY);
    // Tie-lines (weak, limited).
    g.add_line("tieA:3-5", b[2], b[4], 0.06, 180.0);
    g.add_line("tieB:4-8", b[3], b[7], 0.08, 140.0);

    // Generators.
    g.add_generator("hydro", b[0], 500.0, 8.0);
    g.add_generator("coal", b[1], 400.0, 13.0);
    g.add_generator("gas-cc", b[4], 300.0, 32.0);
    g.add_generator("gas-peaker", b[7], 200.0, 45.0);

    (
        g,
        TwoArea {
            buses: [b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]],
        },
    )
}

/// Sweeps the system load (split 25 % to each load bus) and fits a step
/// policy per load bus, mirroring [`crate::fivebus::derive_policies`].
pub fn derive_two_area_policies(
    max_load_mw: f64,
    step_mw: f64,
) -> Result<Vec<(BusId, StepPolicy)>, OpfError> {
    let (grid, sys) = two_area();
    let n = grid.buses.len();
    let opf = OpfSolver::new(grid)?;
    let load_buses = sys.load_buses();
    let mut series: Vec<Vec<(f64, f64)>> = vec![Vec::new(); load_buses.len()];
    let mut load = step_mw.max(1.0);
    while load <= max_load_mw {
        let mut loads = vec![0.0; n];
        for &lb in &load_buses {
            loads[lb.0] = load / load_buses.len() as f64;
        }
        match opf.lmp_decomposition(&loads) {
            Ok(dec) => {
                for (s, &lb) in series.iter_mut().zip(&load_buses) {
                    s.push((load, dec.lmp[lb.0]));
                }
            }
            Err(OpfError::Infeasible) => break,
            Err(e) => return Err(e),
        }
        load += step_mw;
    }
    Ok(load_buses
        .iter()
        .zip(series)
        .map(|(&lb, s)| (lb, StepPolicy::fit_from_series(&s, 0.05)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cheap_area_prices_at_hydro_when_light() {
        let (grid, sys) = two_area();
        let opf = OpfSolver::new(grid).unwrap();
        let mut loads = vec![0.0; 8];
        for &lb in &sys.load_buses() {
            loads[lb.0] = 50.0; // 200 MW total
        }
        let dec = opf.lmp_decomposition(&loads).unwrap();
        for &lb in &sys.load_buses() {
            assert!(
                (dec.lmp[lb.0] - 8.0).abs() < 1e-6,
                "bus {lb:?}: {}",
                dec.lmp[lb.0]
            );
        }
    }

    #[test]
    fn tie_congestion_decouples_the_areas() {
        let (grid, sys) = two_area();
        let opf = OpfSolver::new(grid).unwrap();
        // Heavy area-2 load: imports hit the tie limits.
        let mut loads = vec![0.0; 8];
        loads[sys.buses[6].0] = 300.0; // bus 7
        loads[sys.buses[7].0] = 250.0; // bus 8
        loads[sys.buses[2].0] = 100.0; // bus 3 (area 1)
        let dec = opf.lmp_decomposition(&loads).unwrap();
        let area1_price = dec.lmp[sys.buses[2].0];
        let area2_price = dec.lmp[sys.buses[6].0];
        assert!(
            area2_price > area1_price + 5.0,
            "area 2 {area2_price} vs area 1 {area1_price}"
        );
        // Exact duals agree with perturbation on this meshed case too.
        let pert = opf.lmp(&loads, sys.buses[6]).unwrap();
        assert!((area2_price - pert).abs() < 1e-6, "{area2_price} vs {pert}");
    }

    #[test]
    fn tie_flows_respect_limits() {
        let (grid, sys) = two_area();
        let opf = OpfSolver::new(grid).unwrap();
        let mut loads = vec![0.0; 8];
        loads[sys.buses[6].0] = 320.0;
        loads[sys.buses[7].0] = 260.0;
        let d = opf.dispatch(&loads).unwrap();
        // Lines 8 and 9 are the ties.
        assert!(d.flows_mw[8].abs() <= 180.0 + 1e-6);
        assert!(d.flows_mw[9].abs() <= 140.0 + 1e-6);
    }

    #[test]
    fn derived_policies_step_and_differ() {
        let policies = derive_two_area_policies(1200.0, 25.0).unwrap();
        assert_eq!(policies.len(), 4);
        for (bus, p) in &policies {
            assert!(p.num_levels() >= 2, "bus {bus:?} flat");
            // At light load every bus prices at the hydro marginal cost.
            assert!(
                (p.price_at(100.0) - 8.0).abs() < 0.5,
                "bus {bus:?}: light-load price {}",
                p.price_at(100.0)
            );
        }
        // Counter-flow buses may price *below* the cheapest unit under
        // congestion — a hallmark of real LMPs the decomposition exposes.
        let any_below_floor = policies.iter().any(|(_, p)| p.min_price() < 8.0 - 0.5);
        assert!(
            any_below_floor,
            "expected a counter-flow discount somewhere"
        );
        // Area-2 load buses must end up pricier than area-1's.
        let max_price_area1 = policies[0].1.max_price().max(policies[1].1.max_price());
        let max_price_area2 = policies[2].1.max_price().max(policies[3].1.max_price());
        assert!(
            max_price_area2 > max_price_area1,
            "area2 {max_price_area2} vs area1 {max_price_area1}"
        );
    }

    #[test]
    fn infeasible_beyond_deliverable_load() {
        let (grid, sys) = two_area();
        let opf = OpfSolver::new(grid).unwrap();
        // 900 MW in area 2 alone exceeds local generation (500 MW) plus
        // the tie capacity (180 + 140 MW).
        let mut loads = vec![0.0; 8];
        loads[sys.buses[6].0] = 900.0;
        assert!(matches!(opf.dispatch(&loads), Err(OpfError::Infeasible)));
    }
}
