//! Locational step pricing policies.
//!
//! A [`StepPolicy`] is the piecewise-constant function `Pr = F(P)` mapping
//! total regional load (MW) to the electricity price ($/MWh) — the paper's
//! Figure 1. The bill capper's MILP linearizes this function with one
//! binary per level (Section IV-C of the paper); the Min-Only baselines
//! collapse it to a constant via [`StepPolicy::avg_price`] /
//! [`StepPolicy::min_price`].

/// A piecewise-constant price policy.
///
/// `prices.len() == breakpoints.len() + 1`; level `k` applies on
/// `[breakpoints[k-1], breakpoints[k])` (with `breakpoints[-1] = 0` and
/// `breakpoints[len] = +inf`). Breakpoints are strictly increasing.
///
/// ```
/// use billcap_market::StepPolicy;
///
/// // The paper's printed Policy 1 for data center 1.
/// let policy = StepPolicy::paper_policy(0);
/// assert_eq!(policy.price_at(100.0), 10.00);  // light regional load
/// assert_eq!(policy.price_at(500.0), 15.00);  // two steps up
/// // Min-Only (Avg) collapses it to 16.98 $/MWh:
/// assert!((policy.avg_price() - 16.98).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StepPolicy {
    breakpoints: Vec<f64>,
    prices: Vec<f64>,
}

impl StepPolicy {
    /// Builds a policy from breakpoints (strictly increasing, in MW) and
    /// per-level prices ($/MWh). Panics on malformed input; use
    /// [`StepPolicy::try_new`] to get the violation as a value instead.
    pub fn new(breakpoints: Vec<f64>, prices: Vec<f64>) -> Self {
        match Self::try_new(breakpoints, prices) {
            Ok(p) => p,
            Err(msg) => panic!("{msg}"),
        }
    }

    /// Non-panicking constructor: returns a message naming the first
    /// violated invariant. The spec linter builds on this so malformed
    /// policies become diagnostics rather than panics.
    pub fn try_new(breakpoints: Vec<f64>, prices: Vec<f64>) -> Result<Self, String> {
        if prices.len() != breakpoints.len() + 1 {
            return Err(format!(
                "need exactly one more price than breakpoints \
                 ({} breakpoints, {} prices)",
                breakpoints.len(),
                prices.len()
            ));
        }
        if !breakpoints.windows(2).all(|w| w[0] < w[1]) {
            return Err("breakpoints must be strictly increasing".to_string());
        }
        if !breakpoints.iter().all(|&b| b > 0.0 && b.is_finite()) {
            return Err("breakpoints must be positive and finite".to_string());
        }
        if !prices.iter().all(|&p| p.is_finite() && p >= 0.0) {
            return Err("prices must be finite and non-negative".to_string());
        }
        Ok(Self {
            breakpoints,
            prices,
        })
    }

    /// Builds without checking any invariant. Only for constructing
    /// deliberately malformed policies (lint corruption tests); every
    /// accessor other than [`StepPolicy::breakpoints`] /
    /// [`StepPolicy::prices`] may panic or return nonsense on the result.
    pub fn new_unchecked(breakpoints: Vec<f64>, prices: Vec<f64>) -> Self {
        Self {
            breakpoints,
            prices,
        }
    }

    /// The raw breakpoints (MW). Safe on any policy, checked or not.
    pub fn breakpoints(&self) -> &[f64] {
        &self.breakpoints
    }

    /// The raw per-level prices ($/MWh). Safe on any policy.
    pub fn prices(&self) -> &[f64] {
        &self.prices
    }

    /// A flat (load-independent) policy — the paper's Policy 0, i.e. the
    /// price-taker assumption of the Min-Only baselines.
    pub fn flat(price: f64) -> Self {
        Self {
            breakpoints: Vec::new(),
            prices: vec![price],
        }
    }

    /// Price at a given total regional load.
    pub fn price_at(&self, load_mw: f64) -> f64 {
        let k = self.breakpoints.partition_point(|&b| b <= load_mw);
        self.prices[k]
    }

    /// Number of price levels.
    pub fn num_levels(&self) -> usize {
        self.prices.len()
    }

    /// Iterates `(level_lo, level_hi, price)` over the levels; the last
    /// level's `hi` is `f64::INFINITY`.
    pub fn levels(&self) -> impl Iterator<Item = (f64, f64, f64)> + '_ {
        (0..self.prices.len()).map(move |k| {
            let lo = if k == 0 { 0.0 } else { self.breakpoints[k - 1] };
            let hi = if k == self.breakpoints.len() {
                f64::INFINITY
            } else {
                self.breakpoints[k]
            };
            (lo, hi, self.prices[k])
        })
    }

    /// Mean of the level prices — the price constant assumed by
    /// Min-Only (Avg).
    pub fn avg_price(&self) -> f64 {
        // detlint-allow(D006): sequential fixed-order sum over the fixed price ladder; bitwise-stable
        self.prices.iter().sum::<f64>() / self.prices.len() as f64
    }

    /// Lowest level price — the price constant assumed by Min-Only (Low).
    pub fn min_price(&self) -> f64 {
        self.prices.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Highest level price.
    pub fn max_price(&self) -> f64 {
        self.prices
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Scales the price *increments over the base (first-level) price* by
    /// `factor` for every level whose lower bound is at least
    /// `above_load_mw`. This constructs the paper's Policies 2 and 3
    /// (double / triple the price increase above 200 MW).
    pub fn scale_increments(&self, factor: f64, above_load_mw: f64) -> Self {
        let base = self.prices[0];
        let prices = self
            .levels()
            .map(|(lo, _hi, p)| {
                if lo >= above_load_mw {
                    base + factor * (p - base)
                } else {
                    p
                }
            })
            .collect();
        Self {
            breakpoints: self.breakpoints.clone(),
            prices,
        }
    }

    /// Fits a step policy to a `(load, price)` series (as produced by an
    /// LMP sweep): consecutive points whose prices differ by at most
    /// `price_tol` are merged into one level, with the level price being
    /// their mean and the breakpoint placed at the first load of the new
    /// level.
    pub fn fit_from_series(series: &[(f64, f64)], price_tol: f64) -> Self {
        assert!(!series.is_empty(), "cannot fit an empty series");
        let mut breakpoints = Vec::new();
        let mut prices = Vec::new();
        let mut level_prices = vec![series[0].1];
        for w in series.windows(2) {
            let (load, price) = w[1];
            // detlint-allow(D006): sequential fixed-order sum over a level window; bitwise-stable
            let current_mean: f64 = level_prices.iter().sum::<f64>() / level_prices.len() as f64;
            if (price - current_mean).abs() > price_tol {
                prices.push(current_mean);
                breakpoints.push(load);
                level_prices.clear();
            }
            level_prices.push(price);
        }
        // detlint-allow(D006): sequential fixed-order sum over a level window; bitwise-stable
        prices.push(level_prices.iter().sum::<f64>() / level_prices.len() as f64);
        Self {
            breakpoints,
            prices,
        }
    }

    /// The paper's printed Policy 1 for its three data-center locations
    /// (`dc` is 0-based). Data center 1's prices are given verbatim in the
    /// paper (Section VII-B: 10.00, 13.90, 15.00, 22.00, 24.00 $/MWh);
    /// locations 2 and 3 follow the same five-level structure with the
    /// locational spreads of Figure 1 (higher congestion components at C
    /// and D). Location 2 has the lowest base price but the steepest
    /// escalation; location 3 starts higher but escalates gently — this is
    /// what separates the two price-taker baselines: Min-Only (Low) chases
    /// location 2's teaser price into its expensive upper levels, while
    /// Min-Only (Avg) over-concentrates on location 3. Breakpoints place
    /// the first step at 200 MW (the load the paper scales Policies 2/3
    /// above) and the last near the 711.8 MW line-limit step reported for
    /// the five-bus system.
    pub fn paper_policy(dc: usize) -> Self {
        match dc {
            0 => StepPolicy::new(
                vec![200.0, 450.0, 600.0, 711.8],
                vec![10.00, 13.90, 15.00, 22.00, 24.00],
            ),
            1 => StepPolicy::new(
                vec![200.0, 450.0, 600.0, 711.8],
                vec![2.00, 6.00, 44.00, 62.00, 74.00],
            ),
            2 => StepPolicy::new(
                vec![200.0, 450.0, 600.0, 711.8],
                vec![16.00, 20.00, 32.00, 44.00, 52.00],
            ),
            _ => panic!("the paper simulates three data centers (dc in 0..3)"),
        }
    }
}

/// The set of policies used by an experiment, one per data center, plus
/// constructors for the paper's Policy 0–3 families.
#[derive(Debug, Clone, PartialEq)]
pub struct PricingPolicySet {
    pub policies: Vec<StepPolicy>,
}

impl PricingPolicySet {
    /// Policy 0: flat prices (no load impact). The flat level of each
    /// location is set to that location's average step price so that the
    /// comparison against Policies 1–3 is anchored to the same scale.
    pub fn policy0(num_dcs: usize) -> Self {
        let base = Self::policy1(num_dcs);
        Self {
            policies: base
                .policies
                .iter()
                .map(|p| StepPolicy::flat(p.avg_price()))
                .collect(),
        }
    }

    /// Policy 1: the basic locational policies from the five-bus system.
    pub fn policy1(num_dcs: usize) -> Self {
        Self {
            policies: (0..num_dcs).map(StepPolicy::paper_policy).collect(),
        }
    }

    /// Policy 2: double the price increase above 200 MW.
    pub fn policy2(num_dcs: usize) -> Self {
        Self::policy1(num_dcs).scaled(2.0)
    }

    /// Policy 3: triple the price increase above 200 MW.
    pub fn policy3(num_dcs: usize) -> Self {
        Self::policy1(num_dcs).scaled(3.0)
    }

    /// The paper's policy family, by index 0..=3.
    pub fn by_index(policy: usize, num_dcs: usize) -> Self {
        match policy {
            0 => Self::policy0(num_dcs),
            1 => Self::policy1(num_dcs),
            2 => Self::policy2(num_dcs),
            3 => Self::policy3(num_dcs),
            _ => panic!("the paper defines pricing policies 0 through 3"),
        }
    }

    fn scaled(&self, factor: f64) -> Self {
        Self {
            policies: self
                .policies
                .iter()
                .map(|p| p.scale_increments(factor, 200.0))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn price_lookup_respects_level_boundaries() {
        let p = StepPolicy::new(vec![100.0, 200.0], vec![10.0, 20.0, 30.0]);
        assert_eq!(p.price_at(0.0), 10.0);
        assert_eq!(p.price_at(99.9), 10.0);
        assert_eq!(p.price_at(100.0), 20.0); // boundary belongs to upper level
        assert_eq!(p.price_at(150.0), 20.0);
        assert_eq!(p.price_at(200.0), 30.0);
        assert_eq!(p.price_at(1e9), 30.0);
    }

    #[test]
    fn paper_policy2_matches_printed_numbers() {
        // Paper: DC1 Policy 2 prices are (10.00, 17.80, 20.00, 34.00, 38.00).
        let p2 = StepPolicy::paper_policy(0).scale_increments(2.0, 200.0);
        let prices: Vec<f64> = p2.levels().map(|(_, _, p)| p).collect();
        let expect = [10.00, 17.80, 20.00, 34.00, 38.00];
        for (a, b) in prices.iter().zip(expect) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn paper_policy3_matches_printed_numbers() {
        // Paper: DC1 Policy 3 prices are (10.00, 21.70, 25.00, 46.00, 52.00).
        let p3 = StepPolicy::paper_policy(0).scale_increments(3.0, 200.0);
        let prices: Vec<f64> = p3.levels().map(|(_, _, p)| p).collect();
        let expect = [10.00, 21.70, 25.00, 46.00, 52.00];
        for (a, b) in prices.iter().zip(expect) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn avg_price_matches_paper_example() {
        // Paper: Min-Only (Avg) price for DC1 is (10+13.9+15+22+24)/5 = 16.98.
        let p = StepPolicy::paper_policy(0);
        assert!((p.avg_price() - 16.98).abs() < 1e-9);
        assert_eq!(p.min_price(), 10.0);
        assert_eq!(p.max_price(), 24.0);
    }

    #[test]
    fn flat_policy_is_constant() {
        let p = StepPolicy::flat(42.0);
        assert_eq!(p.price_at(0.0), 42.0);
        assert_eq!(p.price_at(1e6), 42.0);
        assert_eq!(p.num_levels(), 1);
        assert_eq!(p.avg_price(), 42.0);
    }

    #[test]
    fn levels_partition_the_load_axis() {
        let p = StepPolicy::paper_policy(0);
        let levels: Vec<_> = p.levels().collect();
        assert_eq!(levels.first().unwrap().0, 0.0);
        assert_eq!(levels.last().unwrap().1, f64::INFINITY);
        for w in levels.windows(2) {
            assert_eq!(w[0].1, w[1].0, "levels must tile contiguously");
        }
    }

    #[test]
    fn fit_recovers_exact_steps() {
        let truth = StepPolicy::new(vec![100.0, 300.0], vec![5.0, 9.0, 12.0]);
        let series: Vec<(f64, f64)> = (1..50)
            .map(|i| {
                let load = i as f64 * 10.0;
                (load, truth.price_at(load))
            })
            .collect();
        let fitted = StepPolicy::fit_from_series(&series, 0.01);
        assert_eq!(fitted.num_levels(), 3);
        for &(load, price) in &series {
            assert!((fitted.price_at(load) - price).abs() < 1e-9);
        }
    }

    #[test]
    fn scale_increments_leaves_low_levels_alone() {
        let p = StepPolicy::new(vec![100.0, 300.0], vec![10.0, 12.0, 20.0]);
        let s = p.scale_increments(2.0, 250.0);
        let prices: Vec<f64> = s.levels().map(|(_, _, q)| q).collect();
        assert_eq!(prices, vec![10.0, 12.0, 30.0]);
    }

    #[test]
    fn policy_set_family() {
        let p0 = PricingPolicySet::by_index(0, 3);
        let p1 = PricingPolicySet::by_index(1, 3);
        assert_eq!(p0.policies.len(), 3);
        assert!(p0.policies.iter().all(|p| p.num_levels() == 1));
        assert!(p1.policies.iter().all(|p| p.num_levels() == 5));
        // Policy 0's flat price anchors to Policy 1's average.
        assert!((p0.policies[0].price_at(0.0) - p1.policies[0].avg_price()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_breakpoints() {
        StepPolicy::new(vec![200.0, 100.0], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "one more price")]
    fn rejects_mismatched_lengths() {
        StepPolicy::new(vec![100.0], vec![1.0, 2.0, 3.0]);
    }
}
