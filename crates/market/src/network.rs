//! DC power-flow network model and PTDF computation.
//!
//! Under the DC approximation, the real-power flow on each line is a linear
//! function of bus injections: `flow = PTDF * injections`, where the PTDF
//! (power transfer distribution factor) matrix is derived from line
//! susceptances with one bus designated as the slack. This is the standard
//! model used by ISOs for LMP computation and the one underlying the PJM
//! five-bus example the paper builds its pricing policies from.

use crate::linalg::Matrix;

/// Opaque bus identifier (index into [`Grid::buses`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BusId(pub usize);

/// A network bus.
#[derive(Debug, Clone)]
pub struct Bus {
    pub name: String,
}

/// A transmission line between two buses.
#[derive(Debug, Clone)]
pub struct Line {
    pub name: String,
    pub from: BusId,
    pub to: BusId,
    /// Series reactance in per-unit; susceptance is `1 / reactance`.
    pub reactance: f64,
    /// Thermal limit in MW (`f64::INFINITY` for unconstrained lines).
    pub limit_mw: f64,
}

/// A generator attached to a bus.
#[derive(Debug, Clone)]
pub struct Generator {
    pub name: String,
    pub bus: BusId,
    /// Maximum output in MW.
    pub capacity_mw: f64,
    /// Marginal cost in $/MWh (constant within the unit's range).
    pub cost_per_mwh: f64,
}

/// A DC power-flow network.
#[derive(Debug, Clone)]
pub struct Grid {
    pub buses: Vec<Bus>,
    pub lines: Vec<Line>,
    pub generators: Vec<Generator>,
    /// Reference (slack) bus for angle computation.
    pub slack: BusId,
}

impl Grid {
    /// Creates an empty grid; `slack` is fixed after the first bus is added.
    pub fn new() -> Self {
        Self {
            buses: Vec::new(),
            lines: Vec::new(),
            generators: Vec::new(),
            slack: BusId(0),
        }
    }

    /// Adds a bus and returns its id.
    pub fn add_bus(&mut self, name: impl Into<String>) -> BusId {
        self.buses.push(Bus { name: name.into() });
        BusId(self.buses.len() - 1)
    }

    /// Adds a transmission line.
    pub fn add_line(
        &mut self,
        name: impl Into<String>,
        from: BusId,
        to: BusId,
        reactance: f64,
        limit_mw: f64,
    ) {
        assert!(reactance > 0.0, "line reactance must be positive");
        self.lines.push(Line {
            name: name.into(),
            from,
            to,
            reactance,
            limit_mw,
        });
    }

    /// Adds a generator.
    pub fn add_generator(
        &mut self,
        name: impl Into<String>,
        bus: BusId,
        capacity_mw: f64,
        cost_per_mwh: f64,
    ) {
        self.generators.push(Generator {
            name: name.into(),
            bus,
            capacity_mw,
            cost_per_mwh,
        });
    }

    /// Total installed generation capacity in MW.
    pub fn total_capacity_mw(&self) -> f64 {
        self.generators.iter().map(|g| g.capacity_mw).sum()
    }

    /// Computes the PTDF matrix (`lines x buses`): sensitivity of each line
    /// flow (oriented `from -> to`) to a 1 MW injection at each bus,
    /// withdrawn at the slack. The slack column is identically zero.
    ///
    /// Returns `None` if the network is electrically disconnected (singular
    /// reduced susceptance matrix).
    pub fn ptdf(&self) -> Option<Matrix> {
        let n = self.buses.len();
        let l = self.lines.len();
        let s = self.slack.0;

        // Bus susceptance matrix B (n x n).
        let mut b_bus = Matrix::zeros(n, n);
        for line in &self.lines {
            let b = 1.0 / line.reactance;
            let (i, j) = (line.from.0, line.to.0);
            b_bus[(i, i)] += b;
            b_bus[(j, j)] += b;
            b_bus[(i, j)] -= b;
            b_bus[(j, i)] -= b;
        }

        // Reduced system without the slack row/column. `red_idx` maps a
        // bus to its reduced index (None for the slack bus).
        let keep: Vec<usize> = (0..n).filter(|&i| i != s).collect();
        let mut red_idx: Vec<Option<usize>> = vec![None; n];
        for (ri, &i) in keep.iter().enumerate() {
            red_idx[i] = Some(ri);
        }
        let mut b_red = Matrix::zeros(n - 1, n - 1);
        for (ri, &i) in keep.iter().enumerate() {
            for (rj, &j) in keep.iter().enumerate() {
                b_red[(ri, rj)] = b_bus[(i, j)];
            }
        }
        let b_inv = b_red.inverse()?;

        // Line flow sensitivity to angles: Bf (l x n).
        let mut ptdf = Matrix::zeros(l, n);
        for (li, line) in self.lines.iter().enumerate() {
            let b = 1.0 / line.reactance;
            // flow = b * (theta_from - theta_to); theta = B_red^-1 * P_red.
            for (rj, &j) in keep.iter().enumerate() {
                let mut v = 0.0;
                if let Some(ri) = red_idx[line.from.0] {
                    v += b * b_inv[(ri, rj)];
                }
                if let Some(ri) = red_idx[line.to.0] {
                    v -= b * b_inv[(ri, rj)];
                }
                ptdf[(li, j)] = v;
            }
            // Column for the slack stays zero by construction.
        }
        Some(ptdf)
    }
}

impl Default for Grid {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two buses, one line: injecting at the non-slack bus sends the full
    /// megawatt across the line towards the slack.
    #[test]
    fn two_bus_ptdf_is_unity() {
        let mut g = Grid::new();
        let a = g.add_bus("A");
        let b = g.add_bus("B");
        g.add_line("AB", a, b, 0.1, f64::INFINITY);
        let ptdf = g.ptdf().unwrap();
        // Injection at B, slack at A: flow A->B = -1 (power flows B->A).
        assert!((ptdf[(0, b.0)] + 1.0).abs() < 1e-9);
        assert_eq!(ptdf[(0, a.0)], 0.0);
    }

    /// Three buses in a triangle with equal reactances: an injection splits
    /// 2/3 over the direct line and 1/3 over the two-hop path.
    #[test]
    fn triangle_flow_split() {
        let mut g = Grid::new();
        let a = g.add_bus("A");
        let b = g.add_bus("B");
        let c = g.add_bus("C");
        g.add_line("AB", a, b, 0.1, f64::INFINITY);
        g.add_line("BC", b, c, 0.1, f64::INFINITY);
        g.add_line("AC", a, c, 0.1, f64::INFINITY);
        let ptdf = g.ptdf().unwrap();
        // Inject 1 MW at B (slack A): direct line AB carries -2/3 (B->A),
        // path B->C->A carries 1/3.
        assert!(
            (ptdf[(0, b.0)] + 2.0 / 3.0).abs() < 1e-9,
            "{}",
            ptdf[(0, b.0)]
        );
        assert!((ptdf[(1, b.0)] - 1.0 / 3.0).abs() < 1e-9);
        assert!((ptdf[(2, b.0)] + 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_network_has_no_ptdf() {
        let mut g = Grid::new();
        let _a = g.add_bus("A");
        let _b = g.add_bus("B");
        // No lines: B is unreachable.
        assert!(g.ptdf().is_none());
    }

    #[test]
    fn capacity_sums() {
        let mut g = Grid::new();
        let a = g.add_bus("A");
        g.add_generator("g1", a, 100.0, 10.0);
        g.add_generator("g2", a, 250.0, 20.0);
        assert_eq!(g.total_capacity_mw(), 350.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_reactance_rejected() {
        let mut g = Grid::new();
        let a = g.add_bus("A");
        let b = g.add_bus("B");
        g.add_line("AB", a, b, 0.0, 100.0);
    }
}
