//! # billcap-market
//!
//! Power-market substrate for the `billcap` reproduction of *Electricity
//! Bill Capping for Cloud-Scale Data Centers that Impact the Power Markets*
//! (ICPP 2012).
//!
//! The paper's central premise is that cloud-scale data centers are **price
//! makers**: under the Locational Marginal Pricing (LMP) methodology the
//! electricity price at a bus is a step function of the regional load,
//! jumping whenever a new generation or transmission constraint becomes
//! binding. The paper derives its pricing policies (its Figure 1) from the
//! canonical PJM five-bus example system.
//!
//! This crate rebuilds that chain from first principles:
//!
//! * [`network`] — a DC power-flow network model (buses, lines with
//!   reactances and thermal limits, generators with capacities and marginal
//!   costs) and the PTDF (power transfer distribution factor) matrix,
//!   computed with an in-crate dense Gaussian elimination.
//! * [`opf`] — economic dispatch as an LP (solved by `billcap-milp`) and
//!   LMP extraction by marginal-load perturbation.
//! * [`fivebus`] — the PJM five-bus instance (Alta, Park City, Solitude,
//!   Sundance, Brighton; consumers at buses B, C and D) used by the paper.
//! * [`policy`] — [`StepPolicy`], the piecewise-constant locational pricing
//!   policy consumed by the bill-capping optimizer, including the paper's
//!   printed Policy 1 and its scaled Policies 2/3, the flat Policy 0, and
//!   the price-taker reductions (average/lowest price) used by the
//!   Min-Only baselines.

#![forbid(unsafe_code)]

pub mod fivebus;
pub mod linalg;
pub mod network;
pub mod opf;
pub mod policy;
pub mod twoarea;

pub use fivebus::{pjm_five_bus, FiveBusConsumer};
pub use network::{Bus, BusId, Generator, Grid, Line};
pub use opf::{DispatchResult, LmpDecomposition, OpfError, OpfSolver};
pub use policy::{PricingPolicySet, StepPolicy};
pub use twoarea::{derive_two_area_policies, two_area, TwoArea};
