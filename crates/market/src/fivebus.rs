//! The canonical PJM five-bus example system.
//!
//! This is the system the paper's Figure 1 pricing policies are derived
//! from (via F. Li's LMP step-change studies): five generators — Alta and
//! Park City at bus A, Solitude at bus C, Sundance at bus D, Brighton at
//! bus E — with the system load split uniformly across the three consumer
//! buses B, C and D. As the load grows, LMPs step upward whenever a
//! generator output limit or the Sundance–Brighton line limit becomes
//! binding, producing the piecewise-constant locational pricing policies
//! that the bill-capping algorithm consumes.

use crate::network::{BusId, Grid};
use crate::opf::{OpfError, OpfSolver};
use crate::policy::StepPolicy;

/// One consumer's derived pricing data: the `(system load MW, LMP)` sweep
/// series and the step policy fitted to it.
pub type DerivedPolicy = (FiveBusConsumer, Vec<(f64, f64)>, StepPolicy);

/// The three consumer buses of the five-bus system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FiveBusConsumer {
    B,
    C,
    D,
}

impl FiveBusConsumer {
    /// All consumers, in the paper's order (locations B, C, D map to the
    /// paper's data centers 1, 2, 3).
    pub const ALL: [FiveBusConsumer; 3] =
        [FiveBusConsumer::B, FiveBusConsumer::C, FiveBusConsumer::D];
}

/// Handles to the named buses of the five-bus system.
#[derive(Debug, Clone, Copy)]
pub struct FiveBus {
    pub a: BusId,
    pub b: BusId,
    pub c: BusId,
    pub d: BusId,
    pub e: BusId,
}

impl FiveBus {
    /// The bus a consumer sits on.
    pub fn consumer_bus(&self, c: FiveBusConsumer) -> BusId {
        match c {
            FiveBusConsumer::B => self.b,
            FiveBusConsumer::C => self.c,
            FiveBusConsumer::D => self.d,
        }
    }
}

/// Builds the PJM five-bus grid. Returns the grid and the bus handles.
///
/// Generator and line data follow the PJM training-material example:
/// Alta 110 MW @ $14, Park City 100 MW @ $15 (bus A), Solitude 520 MW @
/// $30 (bus C), Sundance 200 MW @ $35 (bus D), Brighton 600 MW @ $10
/// (bus E); the Sundance–Brighton (D–E) line is limited to 240 MW, all
/// other lines unconstrained.
pub fn pjm_five_bus() -> (Grid, FiveBus) {
    let mut g = Grid::new();
    let a = g.add_bus("A");
    let b = g.add_bus("B");
    let c = g.add_bus("C");
    let d = g.add_bus("D");
    let e = g.add_bus("E");

    // Reactances in per-unit from the PJM example.
    g.add_line("AB", a, b, 0.0281, f64::INFINITY);
    g.add_line("AD", a, d, 0.0304, f64::INFINITY);
    g.add_line("AE", a, e, 0.0064, f64::INFINITY);
    g.add_line("BC", b, c, 0.0108, f64::INFINITY);
    g.add_line("CD", c, d, 0.0297, f64::INFINITY);
    g.add_line("DE", d, e, 0.0297, 240.0);

    g.add_generator("Alta", a, 110.0, 14.0);
    g.add_generator("ParkCity", a, 100.0, 15.0);
    g.add_generator("Solitude", c, 520.0, 30.0);
    g.add_generator("Sundance", d, 200.0, 35.0);
    g.add_generator("Brighton", e, 600.0, 10.0);

    (g, FiveBus { a, b, c, d, e })
}

/// Sweeps the five-bus system load over `[0, max_load_mw]` in `step_mw`
/// increments (uniformly split across B, C, D) and returns, per consumer,
/// the LMP series and a [`StepPolicy`] fitted to it.
///
/// This regenerates the paper's Figure 1 from first principles.
pub fn derive_policies(max_load_mw: f64, step_mw: f64) -> Result<Vec<DerivedPolicy>, OpfError> {
    let (grid, buses) = pjm_five_bus();
    let n_buses = grid.buses.len();
    let opf = OpfSolver::new(grid)?;

    let mut series: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 3];
    let mut load = step_mw.max(1.0);
    while load <= max_load_mw {
        let mut loads = vec![0.0; n_buses];
        let share = load / 3.0;
        loads[buses.b.0] = share;
        loads[buses.c.0] = share;
        loads[buses.d.0] = share;
        // Exact dual-based LMPs: one LP per sweep point.
        match opf.lmp_decomposition(&loads) {
            Ok(dec) => {
                for (s, bus) in series.iter_mut().zip([buses.b, buses.c, buses.d]) {
                    s.push((load, dec.lmp[bus.0]));
                }
            }
            Err(OpfError::Infeasible) => break, // beyond deliverable load
            Err(e) => return Err(e),
        }
        load += step_mw;
    }

    Ok(FiveBusConsumer::ALL
        .iter()
        .zip(series)
        .map(|(&c, s)| {
            let policy = StepPolicy::fit_from_series(&s, 0.05);
            (c, s, policy)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_load_prices_at_brighton_cost() {
        let (grid, buses) = pjm_five_bus();
        let opf = OpfSolver::new(grid).unwrap();
        let mut loads = vec![0.0; 5];
        loads[buses.b.0] = 50.0;
        loads[buses.c.0] = 50.0;
        loads[buses.d.0] = 50.0;
        // 150 MW system load: Brighton ($10, 600 MW) serves everything.
        for bus in [buses.b, buses.c, buses.d] {
            let lmp = opf.lmp(&loads, bus).unwrap();
            assert!((lmp - 10.0).abs() < 1e-6, "lmp {lmp}");
        }
    }

    #[test]
    fn prices_step_up_with_load() {
        let policies = derive_policies(900.0, 25.0).unwrap();
        for (consumer, series, policy) in &policies {
            assert!(!series.is_empty(), "{consumer:?} series empty");
            let first = series.first().unwrap().1;
            let last = series.last().unwrap().1;
            assert!(
                last > first + 1.0,
                "{consumer:?}: price did not rise ({first} -> {last})"
            );
            assert!(policy.num_levels() >= 2, "{consumer:?} has a single level");
        }
    }

    #[test]
    fn fitted_policy_reproduces_series_prices() {
        let policies = derive_policies(800.0, 50.0).unwrap();
        for (_, series, policy) in &policies {
            for &(load, price) in series {
                let fitted = policy.price_at(load);
                assert!(
                    (fitted - price).abs() < 0.5,
                    "load {load}: fitted {fitted} vs {price}"
                );
            }
        }
    }

    #[test]
    fn total_capacity_bounds_the_sweep() {
        let (grid, _) = pjm_five_bus();
        assert_eq!(grid.total_capacity_mw(), 1530.0);
    }

    #[test]
    fn congestion_differentiates_buses_at_high_load() {
        // Beyond the D-E line limit, bus prices must diverge: the paper's
        // core claim that prices are *locational*.
        let (grid, buses) = pjm_five_bus();
        let opf = OpfSolver::new(grid).unwrap();
        let mut loads = vec![0.0; 5];
        for b in [buses.b, buses.c, buses.d] {
            loads[b.0] = 280.0; // 840 MW system load
        }
        let lmps = opf.lmps(&loads, &[buses.b, buses.c, buses.d]).unwrap();
        let min = lmps.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = lmps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 0.5, "expected locational spread, got {lmps:?}");
    }
}
