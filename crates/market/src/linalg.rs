//! Minimal dense linear algebra: Gaussian elimination with partial
//! pivoting, sized for the small susceptance matrices of power networks
//! (a handful of buses).

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    pub rows: usize,
    pub cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows x cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from nested rows; all rows must share a length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Self {
            rows: r,
            cols: c,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        out
    }

    /// Solves `self * X = B` for `X` via Gaussian elimination with partial
    /// pivoting. Returns `None` when the matrix is singular (pivot below
    /// `1e-12`).
    pub fn solve(&self, b: &Matrix) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(self.rows, b.rows, "rhs row mismatch");
        let n = self.rows;
        let m = b.cols;
        // Augmented [A | B].
        let mut aug = Matrix::zeros(n, n + m);
        for i in 0..n {
            for j in 0..n {
                aug[(i, j)] = self[(i, j)];
            }
            for j in 0..m {
                aug[(i, n + j)] = b[(i, j)];
            }
        }
        for col in 0..n {
            // Partial pivot.
            let mut piv = col;
            for r in col + 1..n {
                if aug[(r, col)].abs() > aug[(piv, col)].abs() {
                    piv = r;
                }
            }
            if aug[(piv, col)].abs() < 1e-12 {
                return None;
            }
            if piv != col {
                for j in 0..n + m {
                    let tmp = aug[(col, j)];
                    aug[(col, j)] = aug[(piv, j)];
                    aug[(piv, j)] = tmp;
                }
            }
            let inv = 1.0 / aug[(col, col)];
            for j in col..n + m {
                aug[(col, j)] *= inv;
            }
            for r in 0..n {
                if r == col {
                    continue;
                }
                let f = aug[(r, col)];
                if f != 0.0 {
                    for j in col..n + m {
                        aug[(r, j)] -= f * aug[(col, j)];
                    }
                }
            }
        }
        let mut x = Matrix::zeros(n, m);
        for i in 0..n {
            for j in 0..m {
                x[(i, j)] = aug[(i, n + j)];
            }
        }
        Some(x)
    }

    /// Matrix inverse, if nonsingular.
    pub fn inverse(&self) -> Option<Matrix> {
        self.solve(&Matrix::identity(self.rows))
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let i3 = Matrix::identity(3);
        let b = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let x = i3.solve(&b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x - y = 1  => x = 2, y = 1
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, -1.0]]);
        let b = Matrix::from_rows(&[vec![5.0], vec![1.0]]);
        let x = a.solve(&b).unwrap();
        assert!((x[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((x[(1, 0)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_returns_none() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        let b = Matrix::identity(2);
        assert!(a.solve(&b).is_none());
    }

    #[test]
    fn inverse_times_self_is_identity() {
        let a = Matrix::from_rows(&[
            vec![4.0, 7.0, 2.0],
            vec![3.0, 5.0, 1.0],
            vec![1.0, 2.0, 9.0],
        ]);
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn matmul_shapes_and_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0], vec![6.0]]);
        let c = a.matmul(&b);
        assert_eq!((c.rows, c.cols), (2, 1));
        assert_eq!(c[(0, 0)], 17.0);
        assert_eq!(c[(1, 0)], 39.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged_input() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // First pivot position is zero; partial pivoting must swap rows.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let b = Matrix::from_rows(&[vec![3.0], vec![7.0]]);
        let x = a.solve(&b).unwrap();
        assert_eq!(x[(0, 0)], 7.0);
        assert_eq!(x[(1, 0)], 3.0);
    }
}
