//! The monthly-to-hourly budgeter (paper Sections III and VI-B).
//!
//! At the start of the budgeting period the budgeter receives a monthly
//! cost budget. It splits it into hourly budgets using the workload's
//! hour-of-week profile learned from history (the paper uses the previous
//! ~2 weeks of the October trace): hours that historically carry more
//! traffic get proportionally more budget. Unused budget from earlier
//! hours is carried over to the remaining hours of the *same week*
//! (the paper's Figure 6 shows the resulting intra-week growth); a premium
//! QoS overrun likewise reduces what is left for the week.

use crate::trace::{HourlyTrace, HOURS_PER_WEEK};

/// Splits a monthly budget into hourly budgets using historical hour-of-week
/// workload weights, with intra-week carry-over.
///
/// ```
/// use billcap_workload::Budgeter;
///
/// // $1,680/week split uniformly is $10/hour; underspending carries the
/// // surplus to later hours of the same week.
/// let mut b = Budgeter::uniform(1680.0, 168);
/// assert_eq!(b.hourly_budget(), 10.0);
/// b.record_spend(4.0);
/// assert_eq!(b.hourly_budget(), 16.0); // $6 carried over
/// ```
#[derive(Debug, Clone)]
pub struct Budgeter {
    monthly_budget: f64,
    horizon_hours: usize,
    /// Hour-of-week weights; sum to 1 over a week.
    weights: [f64; HOURS_PER_WEEK],
    /// Budget allotted to one full week.
    weekly_budget: f64,
    current_hour: usize,
    /// Unused (or overdrawn, if negative) budget within the current week.
    carryover: f64,
    spent_total: f64,
}

impl Budgeter {
    /// Creates a budgeter for a `horizon_hours`-long month with the given
    /// monthly budget, learning hourly weights from `history` (at least
    /// one week; the paper finds two weeks sufficient for the Wikipedia
    /// trace's weekly regularity).
    pub fn from_history(monthly_budget: f64, history: &HourlyTrace, horizon_hours: usize) -> Self {
        assert!(monthly_budget > 0.0, "budget must be positive");
        assert!(horizon_hours > 0, "horizon must be non-empty");
        assert!(
            history.len() >= HOURS_PER_WEEK,
            "need at least one week of history"
        );
        let profile = history.hour_of_week_profile();
        // detlint-allow(D006): sequential fixed-order sum over the 168-hour profile; bitwise-stable
        let total: f64 = profile.iter().sum();
        let mut weights = [1.0 / HOURS_PER_WEEK as f64; HOURS_PER_WEEK];
        if total > 0.0 {
            for (w, p) in weights.iter_mut().zip(profile) {
                *w = p / total;
            }
        }
        let weeks = horizon_hours as f64 / HOURS_PER_WEEK as f64;
        Self {
            monthly_budget,
            horizon_hours,
            weights,
            weekly_budget: monthly_budget / weeks,
            current_hour: 0,
            carryover: 0.0,
            spent_total: 0.0,
        }
    }

    /// A budgeter with uniform hourly weights (no history available).
    pub fn uniform(monthly_budget: f64, horizon_hours: usize) -> Self {
        assert!(monthly_budget > 0.0, "budget must be positive");
        assert!(horizon_hours > 0, "horizon must be non-empty");
        let weeks = horizon_hours as f64 / HOURS_PER_WEEK as f64;
        Self {
            monthly_budget,
            horizon_hours,
            weights: [1.0 / HOURS_PER_WEEK as f64; HOURS_PER_WEEK],
            weekly_budget: monthly_budget / weeks,
            current_hour: 0,
            carryover: 0.0,
            spent_total: 0.0,
        }
    }

    /// Budget available for the current hour: this hour's weighted share of
    /// the weekly budget plus whatever the week has accumulated unused.
    pub fn hourly_budget(&self) -> f64 {
        let h = self.current_hour % HOURS_PER_WEEK;
        (self.weights[h] * self.weekly_budget + self.carryover).max(0.0)
    }

    /// Records the cost actually incurred this hour and advances the clock.
    /// Panics when called past the horizon.
    pub fn record_spend(&mut self, cost: f64) {
        assert!(
            self.current_hour < self.horizon_hours,
            "budgeting horizon exhausted"
        );
        assert!(cost >= 0.0 && cost.is_finite(), "cost must be non-negative");
        let h = self.current_hour % HOURS_PER_WEEK;
        let allotted = self.weights[h] * self.weekly_budget;
        self.carryover += allotted - cost;
        self.spent_total += cost;
        self.current_hour += 1;
        if self.current_hour.is_multiple_of(HOURS_PER_WEEK) {
            // New week: the paper carries unused budget only within a week.
            self.carryover = 0.0;
        }
    }

    /// Hours elapsed.
    pub fn hours_elapsed(&self) -> usize {
        self.current_hour
    }

    /// The running intra-week carry-over balance ($): unused budget from
    /// earlier hours of the current week (negative after an over-budget
    /// hour). Resets to zero at each week boundary.
    pub fn carryover(&self) -> f64 {
        self.carryover
    }

    /// Total cost recorded so far.
    pub fn spent(&self) -> f64 {
        self.spent_total
    }

    /// The full monthly budget.
    pub fn monthly_budget(&self) -> f64 {
        self.monthly_budget
    }

    /// Remaining monthly budget (may go negative if premium QoS forced
    /// overruns).
    pub fn remaining(&self) -> f64 {
        self.monthly_budget - self.spent_total
    }

    /// Fraction of the monthly budget consumed.
    pub fn utilization(&self) -> f64 {
        self.spent_total / self.monthly_budget
    }

    /// The learned hour-of-week weights (sum to 1).
    pub fn weights(&self) -> &[f64; HOURS_PER_WEEK] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weekly_history(pattern: &[f64]) -> HourlyTrace {
        // Two identical weeks of an arbitrary 168-hour pattern.
        let mut v = pattern.to_vec();
        v.extend_from_slice(pattern);
        HourlyTrace::new(v)
    }

    #[test]
    fn weights_sum_to_one() {
        let pattern: Vec<f64> = (0..HOURS_PER_WEEK).map(|h| 1.0 + (h % 24) as f64).collect();
        let b = Budgeter::from_history(1000.0, &weekly_history(&pattern), 4 * HOURS_PER_WEEK);
        let sum: f64 = b.weights().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn busy_hours_get_bigger_budgets() {
        let mut pattern = vec![1.0; HOURS_PER_WEEK];
        pattern[10] = 10.0; // one very busy hour
        let b = Budgeter::from_history(1000.0, &weekly_history(&pattern), 4 * HOURS_PER_WEEK);
        assert!(b.weights()[10] > 5.0 * b.weights()[11]);
    }

    #[test]
    fn total_allocation_equals_monthly_budget() {
        let pattern: Vec<f64> = (0..HOURS_PER_WEEK).map(|h| 1.0 + (h % 7) as f64).collect();
        let horizon = 4 * HOURS_PER_WEEK; // exactly four weeks
        let mut b = Budgeter::from_history(5000.0, &weekly_history(&pattern), horizon);
        let mut allotted = 0.0;
        for _ in 0..horizon {
            // Spending exactly the hourly budget keeps carry-over at zero,
            // so the sum of hourly budgets must equal the monthly budget.
            let h = b.hourly_budget();
            allotted += h;
            b.record_spend(h);
        }
        assert!((allotted - 5000.0).abs() < 1e-6, "allotted {allotted}");
        assert!((b.remaining()).abs() < 1e-6);
    }

    #[test]
    fn underspending_carries_over_within_week() {
        let mut b = Budgeter::uniform(1680.0, HOURS_PER_WEEK); // $10/hour
        let first = b.hourly_budget();
        assert!((first - 10.0).abs() < 1e-9);
        b.record_spend(4.0); // leave $6 unused
        let second = b.hourly_budget();
        assert!((second - 16.0).abs() < 1e-9, "second {second}");
    }

    #[test]
    fn carryover_resets_at_week_boundary() {
        let mut b = Budgeter::uniform(2.0 * 1680.0, 2 * HOURS_PER_WEEK); // $10/hour
                                                                         // Spend nothing all of week one.
        for _ in 0..HOURS_PER_WEEK {
            b.record_spend(0.0);
        }
        // Week two starts fresh at the base hourly allotment.
        let budget = b.hourly_budget();
        assert!((budget - 10.0).abs() < 1e-9, "got {budget}");
    }

    #[test]
    fn overrun_reduces_later_budgets() {
        let mut b = Budgeter::uniform(1680.0, HOURS_PER_WEEK); // $10/hour
        b.record_spend(25.0); // $15 overrun
        let next = b.hourly_budget();
        assert!(
            next < 1e-9,
            "overdrawn week should clamp to zero, got {next}"
        );
        b.record_spend(0.0);
        // Two hours' allotment ($20) minus the $15 overdraft leaves $5 for
        // the third hour's own $10 + carryover -5 => 5.
        let third = b.hourly_budget();
        assert!((third - 5.0).abs() < 1e-9, "third {third}");
    }

    #[test]
    fn midweek_surplus_does_not_leak_across_boundary() {
        // Underspend through week one, then cross the boundary: the
        // accumulated surplus must vanish, not inflate week two, even when
        // the surplus is large relative to the base allotment.
        let mut b = Budgeter::uniform(2.0 * 1680.0, 2 * HOURS_PER_WEEK); // $10/hour
        for _ in 0..HOURS_PER_WEEK - 1 {
            b.record_spend(1.0); // bank $9/hour
        }
        // Last hour of week one sees the full banked surplus...
        let last = b.hourly_budget();
        assert!((last - (10.0 + 9.0 * 167.0)).abs() < 1e-9, "last {last}");
        b.record_spend(1.0);
        // ...but week two starts from the clean base allotment.
        let fresh = b.hourly_budget();
        assert!((fresh - 10.0).abs() < 1e-9, "fresh {fresh}");
        // And the surplus stays gone: spending exactly the budget from here
        // keeps every remaining hour at the base allotment.
        for _ in 0..5 {
            b.record_spend(b.hourly_budget());
            let h = b.hourly_budget();
            assert!((h - 10.0).abs() < 1e-9, "got {h}");
        }
    }

    #[test]
    fn exact_spend_week_leaves_next_week_unchanged() {
        // A week with zero unused budget (every hour spent exactly) is a
        // fixed point: the boundary reset is a no-op and week two opens
        // identical to week one.
        let mut b = Budgeter::uniform(2.0 * 1680.0, 2 * HOURS_PER_WEEK);
        let opening = b.hourly_budget();
        for _ in 0..HOURS_PER_WEEK {
            let h = b.hourly_budget();
            b.record_spend(h);
        }
        assert!((b.hourly_budget() - opening).abs() < 1e-9);
        // Exactly half the monthly budget is gone after half the month.
        assert!((b.spent() - 1680.0).abs() < 1e-9);
        assert!((b.remaining() - 1680.0).abs() < 1e-9);
    }

    #[test]
    fn premium_overrun_debt_is_forgiven_at_week_boundary() {
        // A premium-QoS hour can overrun the hourly budget (the capper's
        // PremiumOverride outcome). The overdraft depresses the rest of the
        // week — possibly clamping hours to zero — but must NOT follow the
        // budgeter into the next week.
        let mut b = Budgeter::uniform(2.0 * 1680.0, 2 * HOURS_PER_WEEK); // $10/hour
        for _ in 0..HOURS_PER_WEEK - 3 {
            b.record_spend(b.hourly_budget());
        }
        // Premium overrun: three hours before the boundary, spend way past
        // the remaining week's worth of budget.
        b.record_spend(100.0);
        assert!((b.carryover - (-90.0)).abs() < 1e-9);
        // The clamp hides the debt from callers but it keeps accruing.
        assert_eq!(b.hourly_budget(), 0.0);
        b.record_spend(0.0);
        assert!((b.carryover - (-80.0)).abs() < 1e-9);
        assert_eq!(b.hourly_budget(), 0.0);
        // Final hour of the week crosses the boundary: debt forgiven.
        b.record_spend(0.0);
        assert_eq!(b.carryover, 0.0);
        assert!((b.hourly_budget() - 10.0).abs() < 1e-9);
        // The *monthly* ledger still remembers the overrun, as the paper
        // intends — only the intra-week pacing forgets it.
        let expected_spent = 10.0 * (HOURS_PER_WEEK - 3) as f64 + 100.0;
        assert!((b.spent() - expected_spent).abs() < 1e-9);
    }

    #[test]
    fn accounting_totals() {
        let mut b = Budgeter::uniform(100.0, 10);
        b.record_spend(3.0);
        b.record_spend(7.0);
        assert_eq!(b.spent(), 10.0);
        assert_eq!(b.remaining(), 90.0);
        assert_eq!(b.hours_elapsed(), 2);
        assert!((b.utilization() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "horizon exhausted")]
    fn spending_past_horizon_panics() {
        let mut b = Budgeter::uniform(100.0, 1);
        b.record_spend(1.0);
        b.record_spend(1.0);
    }

    #[test]
    #[should_panic(expected = "one week of history")]
    fn short_history_rejected() {
        let h = HourlyTrace::new(vec![1.0; 24]);
        Budgeter::from_history(100.0, &h, 100);
    }
}
