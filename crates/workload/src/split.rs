//! Premium / ordinary customer split.
//!
//! The paper's experiments assume 80 % of each hour's requests come from
//! premium (paying) customers and 20 % from ordinary (complimentary)
//! customers, and note the proportion is orthogonal to the algorithm.

/// Fractional split of incoming traffic into premium and ordinary classes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CustomerSplit {
    premium_fraction: f64,
}

impl CustomerSplit {
    /// Creates a split; `premium_fraction` must lie in `[0, 1]`.
    pub fn new(premium_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&premium_fraction),
            "premium fraction must be in [0, 1]"
        );
        Self { premium_fraction }
    }

    /// The paper's 80/20 split.
    pub fn paper_default() -> Self {
        Self::new(0.8)
    }

    /// Premium fraction.
    pub fn premium_fraction(&self) -> f64 {
        self.premium_fraction
    }

    /// Premium share of an hourly arrival rate.
    pub fn premium(&self, lambda: f64) -> f64 {
        lambda * self.premium_fraction
    }

    /// Ordinary share of an hourly arrival rate.
    pub fn ordinary(&self, lambda: f64) -> f64 {
        lambda * (1.0 - self.premium_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_total() {
        let s = CustomerSplit::paper_default();
        let lambda = 12345.0;
        assert!((s.premium(lambda) + s.ordinary(lambda) - lambda).abs() < 1e-9);
        assert_eq!(s.premium_fraction(), 0.8);
    }

    #[test]
    fn extreme_splits() {
        assert_eq!(CustomerSplit::new(0.0).premium(100.0), 0.0);
        assert_eq!(CustomerSplit::new(1.0).ordinary(100.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "[0, 1]")]
    fn out_of_range_rejected() {
        CustomerSplit::new(1.2);
    }
}
