//! Hourly time series.

/// Hours in a week.
pub const HOURS_PER_WEEK: usize = 168;

/// An hourly time series (request rates, megawatts, dollars — unit is the
/// caller's). Hour `0` of the trace is taken to be 00:00 on a Monday so
/// hour-of-week arithmetic is well defined.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HourlyTrace {
    values: Vec<f64>,
}

impl HourlyTrace {
    /// Wraps a value vector.
    pub fn new(values: Vec<f64>) -> Self {
        assert!(
            values.iter().all(|v| v.is_finite()),
            "trace values must be finite"
        );
        Self { values }
    }

    /// Number of hours.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the trace has no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at hour `t` (panics out of range).
    pub fn at(&self, t: usize) -> f64 {
        self.values[t]
    }

    /// The raw values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Hour-of-week (0 = Monday 00:00) of hour `t`.
    pub fn hour_of_week(t: usize) -> usize {
        t % HOURS_PER_WEEK
    }

    /// Sum of all values.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Maximum value (0 for an empty trace).
    pub fn peak(&self) -> f64 {
        self.values.iter().cloned().fold(0.0, f64::max)
    }

    /// Arithmetic mean (0 for an empty trace).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.total() / self.values.len() as f64
        }
    }

    /// Sub-trace covering `[start, start + len)`.
    pub fn slice(&self, start: usize, len: usize) -> HourlyTrace {
        HourlyTrace::new(self.values[start..start + len].to_vec())
    }

    /// Per-hour-of-week averages over all complete and partial weeks: the
    /// budgeter's learned weekly shape. Entry `h` is the mean of all
    /// samples falling on hour-of-week `h`.
    pub fn hour_of_week_profile(&self) -> [f64; HOURS_PER_WEEK] {
        let mut sums = [0.0; HOURS_PER_WEEK];
        let mut counts = [0usize; HOURS_PER_WEEK];
        for (t, &v) in self.values.iter().enumerate() {
            let h = Self::hour_of_week(t);
            sums[h] += v;
            counts[h] += 1;
        }
        let mut out = [0.0; HOURS_PER_WEEK];
        for h in 0..HOURS_PER_WEEK {
            if counts[h] > 0 {
                out[h] = sums[h] / counts[h] as f64;
            }
        }
        out
    }

    /// Scales all values by `k` in place.
    pub fn scale(&mut self, k: f64) {
        for v in &mut self.values {
            *v *= k;
        }
    }

    /// Serializes to a two-column CSV (`hour,value`) with a header.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.values.len() * 16 + 16);
        out.push_str("hour,value\n");
        for (t, v) in self.values.iter().enumerate() {
            out.push_str(&format!("{t},{v}\n"));
        }
        out
    }

    /// Parses the CSV format produced by [`HourlyTrace::to_csv`]. Rows must
    /// be in hour order starting at zero.
    pub fn from_csv(s: &str) -> Result<Self, String> {
        let mut values = Vec::new();
        for (i, line) in s.lines().enumerate() {
            if i == 0 {
                if line.trim() != "hour,value" {
                    return Err(format!("unexpected header: {line:?}"));
                }
                continue;
            }
            if line.trim().is_empty() {
                continue;
            }
            let (hour_s, value_s) = line
                .split_once(',')
                .ok_or_else(|| format!("line {i}: missing comma"))?;
            let hour: usize = hour_s
                .trim()
                .parse()
                .map_err(|e| format!("line {i}: bad hour: {e}"))?;
            if hour != values.len() {
                return Err(format!("line {i}: hour {hour} out of order"));
            }
            let value: f64 = value_s
                .trim()
                .parse()
                .map_err(|e| format!("line {i}: bad value: {e}"))?;
            if !value.is_finite() {
                return Err(format!("line {i}: non-finite value"));
            }
            values.push(value);
        }
        Ok(Self { values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let t = HourlyTrace::new(vec![1.0, 2.0, 3.0, 6.0]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.total(), 12.0);
        assert_eq!(t.mean(), 3.0);
        assert_eq!(t.peak(), 6.0);
        assert_eq!(t.at(2), 3.0);
    }

    #[test]
    fn hour_of_week_wraps() {
        assert_eq!(HourlyTrace::hour_of_week(0), 0);
        assert_eq!(HourlyTrace::hour_of_week(167), 167);
        assert_eq!(HourlyTrace::hour_of_week(168), 0);
        assert_eq!(HourlyTrace::hour_of_week(169), 1);
    }

    #[test]
    fn profile_averages_across_weeks() {
        // Two weeks: week 1 all 1.0, week 2 all 3.0 -> profile all 2.0.
        let mut vals = vec![1.0; HOURS_PER_WEEK];
        vals.extend(vec![3.0; HOURS_PER_WEEK]);
        let t = HourlyTrace::new(vals);
        let profile = t.hour_of_week_profile();
        assert!(profile.iter().all(|&p| (p - 2.0).abs() < 1e-12));
    }

    #[test]
    fn profile_handles_partial_weeks() {
        let t = HourlyTrace::new(vec![5.0; 24]); // one day only
        let profile = t.hour_of_week_profile();
        assert_eq!(profile[0], 5.0);
        assert_eq!(profile[24], 0.0); // never observed
    }

    #[test]
    fn csv_roundtrip() {
        let t = HourlyTrace::new(vec![1.5, 0.0, 123456.75]);
        let csv = t.to_csv();
        let back = HourlyTrace::from_csv(&csv).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn csv_rejects_bad_input() {
        assert!(HourlyTrace::from_csv("nope\n0,1\n").is_err());
        assert!(HourlyTrace::from_csv("hour,value\n5,1.0\n").is_err());
        assert!(HourlyTrace::from_csv("hour,value\n0,abc\n").is_err());
        assert!(HourlyTrace::from_csv("hour,value\n0\n").is_err());
    }

    #[test]
    fn slice_and_scale() {
        let mut t = HourlyTrace::new(vec![1.0, 2.0, 3.0, 4.0]);
        let s = t.slice(1, 2);
        assert_eq!(s.values(), &[2.0, 3.0]);
        t.scale(10.0);
        assert_eq!(t.values(), &[10.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_values_rejected() {
        HourlyTrace::new(vec![f64::NAN]);
    }
}
