//! Workload prediction (paper Section IX).
//!
//! The bill-capping scheme assumes "an accurate enough prediction
//! algorithm deployed in the system to forecast future incoming workload";
//! the paper's future work is robustness when that prediction is
//! imperfect. This module provides the predictors that assumption refers
//! to — a naive last-value predictor, the hour-of-week seasonal predictor
//! the budgeter's weights embody, and an EWMA-corrected seasonal
//! predictor — plus accuracy metrics, so the robustness experiments in
//! `billcap-sim` can sweep prediction quality.

use crate::trace::{HourlyTrace, HOURS_PER_WEEK};

/// A one-step-ahead hourly workload predictor.
pub trait Predictor {
    /// Feeds the observation for the current hour and advances the clock.
    fn observe(&mut self, value: f64);
    /// Predicts the next hour's workload. Implementations must return a
    /// non-negative value; before any observation they may return 0.
    fn predict_next(&self) -> f64;
}

/// Predicts the next hour equals the last observed hour.
#[derive(Debug, Clone, Default)]
pub struct NaivePredictor {
    last: f64,
}

impl Predictor for NaivePredictor {
    fn observe(&mut self, value: f64) {
        self.last = value;
    }
    fn predict_next(&self) -> f64 {
        self.last
    }
}

/// Seasonal predictor: the mean of past observations at the upcoming
/// hour-of-week — the estimator behind the budgeter's weights.
#[derive(Debug, Clone)]
pub struct HourOfWeekPredictor {
    sums: [f64; HOURS_PER_WEEK],
    counts: [u64; HOURS_PER_WEEK],
    clock: usize,
}

impl HourOfWeekPredictor {
    /// An empty predictor starting at hour-of-week zero.
    pub fn new() -> Self {
        Self {
            sums: [0.0; HOURS_PER_WEEK],
            counts: [0; HOURS_PER_WEEK],
            clock: 0,
        }
    }

    /// Warm-starts from a history trace whose hour 0 is a Monday 00:00.
    pub fn from_history(history: &HourlyTrace) -> Self {
        let mut p = Self::new();
        for &v in history.values() {
            p.observe(v);
        }
        p
    }
}

impl Default for HourOfWeekPredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl Predictor for HourOfWeekPredictor {
    fn observe(&mut self, value: f64) {
        let h = self.clock % HOURS_PER_WEEK;
        self.sums[h] += value;
        self.counts[h] += 1;
        self.clock += 1;
    }

    fn predict_next(&self) -> f64 {
        let h = self.clock % HOURS_PER_WEEK;
        if self.counts[h] == 0 {
            return 0.0;
        }
        self.sums[h] / self.counts[h] as f64
    }
}

/// Seasonal predictor with a multiplicative EWMA correction: tracks the
/// recent ratio of actual to seasonal-predicted workload, so level shifts
/// (e.g. organic growth) are followed within a few hours.
#[derive(Debug, Clone)]
pub struct EwmaSeasonalPredictor {
    seasonal: HourOfWeekPredictor,
    /// Smoothed actual/seasonal ratio.
    level: f64,
    /// EWMA smoothing factor in `(0, 1]`; higher adapts faster.
    alpha: f64,
}

impl EwmaSeasonalPredictor {
    /// Creates a predictor with the given smoothing factor.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self {
            seasonal: HourOfWeekPredictor::new(),
            level: 1.0,
            alpha,
        }
    }

    /// Warm-starts the seasonal component from history.
    pub fn from_history(history: &HourlyTrace, alpha: f64) -> Self {
        let mut p = Self::new(alpha);
        p.seasonal = HourOfWeekPredictor::from_history(history);
        p
    }
}

impl Predictor for EwmaSeasonalPredictor {
    fn observe(&mut self, value: f64) {
        let base = self.seasonal.predict_next();
        if base > 0.0 {
            let ratio = value / base;
            self.level = (1.0 - self.alpha) * self.level + self.alpha * ratio;
        }
        self.seasonal.observe(value);
    }

    fn predict_next(&self) -> f64 {
        (self.seasonal.predict_next() * self.level).max(0.0)
    }
}

/// Mean absolute percentage error of a predictor run over a trace,
/// starting from its current state. Hours with zero actual traffic are
/// skipped.
pub fn mape<P: Predictor>(predictor: &mut P, trace: &HourlyTrace) -> f64 {
    let mut total = 0.0;
    let mut counted = 0usize;
    for &actual in trace.values() {
        let predicted = predictor.predict_next();
        if actual > 0.0 {
            total += ((predicted - actual) / actual).abs();
            counted += 1;
        }
        predictor.observe(actual);
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TraceConfig, TraceGenerator};

    fn two_months() -> (HourlyTrace, HourlyTrace) {
        TraceGenerator::new(TraceConfig::wikipedia_like(1e6, 9)).generate_two_months()
    }

    #[test]
    fn naive_repeats_last_value() {
        let mut p = NaivePredictor::default();
        assert_eq!(p.predict_next(), 0.0);
        p.observe(42.0);
        assert_eq!(p.predict_next(), 42.0);
        p.observe(7.0);
        assert_eq!(p.predict_next(), 7.0);
    }

    #[test]
    fn hour_of_week_learns_a_periodic_signal_exactly() {
        // A perfectly weekly signal is predicted exactly after one week.
        let pattern: Vec<f64> = (0..HOURS_PER_WEEK).map(|h| 100.0 + h as f64).collect();
        let mut three_weeks = pattern.clone();
        three_weeks.extend(pattern.clone());
        let history = HourlyTrace::new(three_weeks);
        let mut p = HourOfWeekPredictor::from_history(&history);
        let err = mape(&mut p, &HourlyTrace::new(pattern));
        assert!(err < 1e-12, "mape {err}");
    }

    #[test]
    fn seasonal_beats_naive_on_diurnal_traffic() {
        let (history, eval) = two_months();
        let mut seasonal = HourOfWeekPredictor::from_history(&history);
        let mut naive = NaivePredictor::default();
        let seasonal_err = mape(&mut seasonal, &eval);
        let naive_err = mape(&mut naive, &eval);
        assert!(
            seasonal_err < naive_err,
            "seasonal {seasonal_err} vs naive {naive_err}"
        );
        assert!(seasonal_err < 0.2, "seasonal MAPE too high: {seasonal_err}");
    }

    #[test]
    fn ewma_tracks_level_shift_faster_than_pure_seasonal() {
        let (history, eval) = two_months();
        // Shift the evaluation month up 30%: a level change the seasonal
        // model has never seen.
        let mut shifted = eval.clone();
        shifted.scale(1.3);
        let mut seasonal = HourOfWeekPredictor::from_history(&history);
        let mut ewma = EwmaSeasonalPredictor::from_history(&history, 0.2);
        let seasonal_err = mape(&mut seasonal, &shifted);
        let ewma_err = mape(&mut ewma, &shifted);
        assert!(
            ewma_err < seasonal_err,
            "ewma {ewma_err} vs seasonal {seasonal_err}"
        );
    }

    #[test]
    fn cold_start_predicts_zero_then_learns() {
        let mut p = HourOfWeekPredictor::new();
        assert_eq!(p.predict_next(), 0.0);
        p.observe(10.0);
        // Next hour-of-week slot is still unobserved.
        assert_eq!(p.predict_next(), 0.0);
        // After a full week the first slot repeats.
        for _ in 1..HOURS_PER_WEEK {
            p.observe(5.0);
        }
        assert_eq!(p.predict_next(), 10.0);
    }

    #[test]
    fn mape_of_perfect_prediction_is_zero() {
        let t = HourlyTrace::new(vec![5.0; 48]);
        let mut p = NaivePredictor::default();
        p.observe(5.0);
        assert_eq!(mape(&mut p, &t), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_rejected() {
        EwmaSeasonalPredictor::new(0.0);
    }
}
