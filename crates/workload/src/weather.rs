//! Outside-air temperature traces.
//!
//! The paper's cooling model is an outside-air economizer whose efficiency
//! `coe` improves as the ambient temperature drops. The paper freezes
//! `coe` per site; this module provides the temperature series needed to
//! let it *vary by hour* — a seasonal + diurnal + noise model per
//! location — enabling the weather-aware-routing ablation in
//! `billcap-sim` (cool sites attract load during hot afternoons
//! elsewhere).

use crate::generator::{TraceConfig, TraceGenerator};
use crate::trace::HourlyTrace;

/// A location's ambient-temperature model (°C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemperatureModel {
    /// Mean temperature over the horizon (°C).
    pub mean_c: f64,
    /// Half of the day-night swing (°C).
    pub diurnal_swing_c: f64,
    /// Random hour-to-hour weather noise (°C, std).
    pub noise_c: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TemperatureModel {
    /// Presets for the paper's three data-center locations: a cool
    /// northern site, a temperate one, and a warm southern one (November
    /// conditions).
    pub fn paper_location(location: usize, seed: u64) -> Self {
        let (mean_c, swing) = match location {
            0 => (6.0, 4.0),  // cool site (best coe, matches coe 1.94)
            1 => (16.0, 6.0), // warm site (worst coe, matches coe 1.39)
            2 => (11.0, 5.0), // temperate site (coe 1.74)
            _ => (10.0 + location as f64, 5.0),
        };
        Self {
            mean_c,
            diurnal_swing_c: swing,
            noise_c: 1.5,
            seed: seed ^ (0xc0ffee_u64.wrapping_mul(location as u64 + 1)),
        }
    }

    /// Generates `hours` of hourly temperatures (°C). Afternoon peak at
    /// 15:00, deterministic per seed.
    pub fn generate(&self, hours: usize) -> HourlyTrace {
        // Reuse the trace generator on a shifted scale: temperatures can be
        // negative, so generate a positive anomaly series and re-center.
        let anomaly = TraceGenerator::new(TraceConfig {
            mean_rate: 100.0,
            diurnal_amplitude: (self.diurnal_swing_c / 100.0).min(0.9),
            peak_hour: 15,
            day_of_week_factor: [1.0; 7],
            noise_std: self.noise_c / 100.0,
            growth: 0.0,
            flash_crowds: Vec::new(),
            seed: self.seed,
        })
        .generate(hours);
        HourlyTrace::new(
            anomaly
                .values()
                .iter()
                .map(|&v| self.mean_c + (v - 100.0))
                .collect(),
        )
    }
}

/// Cooling efficiency as a function of ambient temperature: a linear
/// economizer curve `coe(T) = coe_ref + slope · (T_ref − T)`, clamped to
/// a physical band. Calibrated so that each paper site's *mean* November
/// temperature reproduces its printed static `coe`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EconomizerCurve {
    /// Efficiency at the reference temperature.
    pub coe_ref: f64,
    /// Reference temperature (°C).
    pub t_ref_c: f64,
    /// Efficiency gained per °C of cooling below the reference.
    pub slope_per_c: f64,
    /// Physical floor (mechanical chillers take over).
    pub min_coe: f64,
    /// Physical ceiling (free cooling saturates).
    pub max_coe: f64,
}

impl EconomizerCurve {
    /// A curve anchored so `coe(t_ref) = coe_ref`, with the default
    /// sensitivity of 0.05 coe/°C and band `[0.8, 4.0]`.
    pub fn anchored(coe_ref: f64, t_ref_c: f64) -> Self {
        assert!(coe_ref > 0.0, "reference efficiency must be positive");
        Self {
            coe_ref,
            t_ref_c,
            slope_per_c: 0.05,
            min_coe: 0.8,
            max_coe: 4.0,
        }
    }

    /// Efficiency at a given ambient temperature.
    pub fn coe_at(&self, temperature_c: f64) -> f64 {
        (self.coe_ref + self.slope_per_c * (self.t_ref_c - temperature_c))
            .clamp(self.min_coe, self.max_coe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temperature_centers_on_mean() {
        let t = TemperatureModel::paper_location(0, 42).generate(30 * 24);
        let mean = t.mean();
        assert!((mean - 6.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn afternoon_is_warmer_than_night() {
        let t = TemperatureModel::paper_location(1, 42).generate(30 * 24);
        let mut by_hour = [0.0f64; 24];
        for (i, &v) in t.values().iter().enumerate() {
            by_hour[i % 24] += v;
        }
        assert!(by_hour[15] > by_hour[4] + 24.0, "no diurnal swing");
    }

    #[test]
    fn locations_differ_and_are_deterministic() {
        let a = TemperatureModel::paper_location(0, 1).generate(100);
        let b = TemperatureModel::paper_location(1, 1).generate(100);
        assert_ne!(a, b);
        assert!(a.mean() < b.mean(), "site 0 should be cooler");
        assert_eq!(TemperatureModel::paper_location(0, 1).generate(100), a);
    }

    #[test]
    fn economizer_improves_in_the_cold() {
        let c = EconomizerCurve::anchored(1.94, 6.0);
        assert!((c.coe_at(6.0) - 1.94).abs() < 1e-12);
        assert!(c.coe_at(-5.0) > c.coe_at(6.0));
        assert!(c.coe_at(25.0) < c.coe_at(6.0));
    }

    #[test]
    fn economizer_clamps_to_physical_band() {
        let c = EconomizerCurve::anchored(1.94, 6.0);
        assert_eq!(c.coe_at(-1000.0), 4.0);
        assert_eq!(c.coe_at(1000.0), 0.8);
    }
}
