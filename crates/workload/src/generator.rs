//! Seeded synthetic request-trace generation.
//!
//! Substitutes for the Wikipedia 2007 trace (see DESIGN.md): a diurnal
//! sinusoid modulated by a day-of-week factor, multiplicative noise, a slow
//! growth trend, and optional flash-crowd events — the "breaking news"
//! surges that motivate bill capping in the paper's introduction.

use crate::trace::HourlyTrace;
use billcap_rt::{Rng, Xoshiro256pp};

/// A flash-crowd event: the arrival rate is multiplied by a factor that
/// jumps at `start_hour` and decays geometrically over `duration_hours`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowd {
    pub start_hour: usize,
    /// Peak multiplier (e.g. 2.5 = 150 % extra traffic at onset).
    pub magnitude: f64,
    pub duration_hours: usize,
}

impl FlashCrowd {
    /// Extra traffic multiplier this event contributes at hour `t`
    /// (zero outside the event window).
    pub fn boost_at(&self, t: usize) -> f64 {
        if t < self.start_hour || t >= self.start_hour + self.duration_hours {
            return 0.0;
        }
        let age = (t - self.start_hour) as f64;
        // Geometric decay reaching ~5 % of peak at the end of the window.
        let decay = 0.05f64.powf(age / self.duration_hours.max(1) as f64);
        (self.magnitude - 1.0) * decay
    }
}

/// Configuration of the synthetic trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Mean request rate (requests/hour) before modulation.
    pub mean_rate: f64,
    /// Diurnal swing as a fraction of the mean (0.45 = ±45 %).
    pub diurnal_amplitude: f64,
    /// Hour of day (0–23) at which traffic peaks.
    pub peak_hour: usize,
    /// Multipliers per day of week (Monday first).
    pub day_of_week_factor: [f64; 7],
    /// Standard deviation of multiplicative Gaussian noise.
    pub noise_std: f64,
    /// Linear growth over the whole horizon (0.05 = +5 % end vs start).
    pub growth: f64,
    /// Deterministic flash-crowd events.
    pub flash_crowds: Vec<FlashCrowd>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            mean_rate: 1.0,
            diurnal_amplitude: 0.45,
            peak_hour: 20, // evening peak, as in web traffic
            day_of_week_factor: [1.02, 1.04, 1.05, 1.03, 0.98, 0.86, 0.84],
            noise_std: 0.04,
            growth: 0.04,
            flash_crowds: Vec::new(),
            seed: 0x5eed,
        }
    }
}

impl TraceConfig {
    /// A Wikipedia-like preset: clear weekly pattern, evening peak, mild
    /// growth, and two flash crowds in the evaluated month. `mean_rate`
    /// scales the whole series (requests/hour).
    pub fn wikipedia_like(mean_rate: f64, seed: u64) -> Self {
        Self {
            mean_rate,
            flash_crowds: vec![
                // Mid-November breaking-news surges (hour offsets are within
                // the evaluation month that follows the 31-day history).
                // Magnitudes keep the spike within deliverable capacity so
                // that pure cost minimization (which must serve everything)
                // stays feasible, while still stressing the budget.
                FlashCrowd {
                    start_hour: 31 * 24 + 14 * 24 + 19, // Nov 15, evening
                    magnitude: 1.3,
                    duration_hours: 8,
                },
                FlashCrowd {
                    start_hour: 31 * 24 + 24 * 24 + 12, // Nov 25, midday
                    magnitude: 1.3,
                    duration_hours: 6,
                },
            ],
            seed,
            ..Default::default()
        }
    }
}

/// Deterministic trace generator.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    config: TraceConfig,
}

impl TraceGenerator {
    /// Creates a generator; panics on non-positive mean rate or negative
    /// noise.
    pub fn new(config: TraceConfig) -> Self {
        assert!(config.mean_rate > 0.0, "mean rate must be positive");
        assert!(config.noise_std >= 0.0, "noise std must be non-negative");
        assert!(
            config.diurnal_amplitude >= 0.0 && config.diurnal_amplitude < 1.0,
            "diurnal amplitude must be in [0, 1)"
        );
        assert!(config.peak_hour < 24, "peak hour must be 0..24");
        Self { config }
    }

    /// Generates `hours` hourly request rates. Identical inputs produce
    /// identical traces (seeded xoshiro256++ RNG).
    pub fn generate(&self, hours: usize) -> HourlyTrace {
        let c = &self.config;
        let mut rng = Xoshiro256pp::seed_from_u64(c.seed);
        let mut values = Vec::with_capacity(hours);
        for t in 0..hours {
            let hour_of_day = t % 24;
            let day_of_week = (t / 24) % 7;
            let phase = (hour_of_day as f64 - c.peak_hour as f64) / 24.0 * std::f64::consts::TAU;
            let diurnal = 1.0 + c.diurnal_amplitude * phase.cos();
            let weekly = c.day_of_week_factor[day_of_week];
            let growth = if hours > 1 {
                1.0 + c.growth * t as f64 / (hours - 1) as f64
            } else {
                1.0
            };
            // Box-Muller from two uniform draws; always draw the same count
            // per hour so the series is reproducible regardless of hours.
            let u1: f64 = rng.random::<f64>().max(1e-12);
            let u2: f64 = rng.random::<f64>();
            let gauss = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let noise = (1.0 + c.noise_std * gauss).max(0.05);
            // detlint-allow(D006): sequential fixed-order sum over flash-crowd boosts; bitwise-stable
            let flash: f64 = c.flash_crowds.iter().map(|f| f.boost_at(t)).sum();
            values.push(c.mean_rate * diurnal * weekly * growth * noise * (1.0 + flash));
        }
        HourlyTrace::new(values)
    }

    /// Generates the paper's two-month layout: a 31-day history month
    /// (October) followed by a 30-day evaluation month (November).
    /// Returns `(history, evaluation)`.
    pub fn generate_two_months(&self) -> (HourlyTrace, HourlyTrace) {
        let full = self.generate((31 + 30) * 24);
        let history = full.slice(0, 31 * 24);
        let eval = full.slice(31 * 24, 30 * 24);
        (history, eval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::HOURS_PER_WEEK;

    #[test]
    fn deterministic_for_same_seed() {
        let g = TraceGenerator::new(TraceConfig::wikipedia_like(1e8, 7));
        assert_eq!(g.generate(200), g.generate(200));
    }

    #[test]
    fn different_seeds_differ() {
        let a = TraceGenerator::new(TraceConfig::wikipedia_like(1e8, 1)).generate(100);
        let b = TraceGenerator::new(TraceConfig::wikipedia_like(1e8, 2)).generate(100);
        assert_ne!(a, b);
    }

    #[test]
    fn values_positive_and_near_mean() {
        let g = TraceGenerator::new(TraceConfig {
            mean_rate: 1e6,
            ..Default::default()
        });
        let t = g.generate(30 * 24);
        assert!(t.values().iter().all(|&v| v > 0.0));
        let mean = t.mean();
        assert!(
            (mean / 1e6 - 1.0).abs() < 0.15,
            "mean {mean} strays too far from the configured 1e6"
        );
    }

    #[test]
    fn weekly_pattern_is_visible() {
        // Weekend traffic should be clearly below weekday traffic.
        let g = TraceGenerator::new(TraceConfig {
            mean_rate: 1e6,
            noise_std: 0.0,
            ..Default::default()
        });
        let t = g.generate(HOURS_PER_WEEK * 4);
        let profile = t.hour_of_week_profile();
        let weekday_mean: f64 = profile[0..120].iter().sum::<f64>() / 120.0;
        let weekend_mean: f64 = profile[120..].iter().sum::<f64>() / 48.0;
        assert!(
            weekend_mean < 0.95 * weekday_mean,
            "weekend {weekend_mean} vs weekday {weekday_mean}"
        );
    }

    #[test]
    fn diurnal_peak_lands_at_configured_hour() {
        let g = TraceGenerator::new(TraceConfig {
            mean_rate: 1.0,
            noise_std: 0.0,
            growth: 0.0,
            day_of_week_factor: [1.0; 7],
            peak_hour: 20,
            ..Default::default()
        });
        let t = g.generate(24);
        let (argmax, _) = t
            .values()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert_eq!(argmax, 20);
    }

    #[test]
    fn flash_crowd_spikes_traffic() {
        let mut config = TraceConfig {
            mean_rate: 1.0,
            noise_std: 0.0,
            growth: 0.0,
            diurnal_amplitude: 0.0,
            day_of_week_factor: [1.0; 7],
            ..Default::default()
        };
        config.flash_crowds = vec![FlashCrowd {
            start_hour: 50,
            magnitude: 3.0,
            duration_hours: 5,
        }];
        let t = TraceGenerator::new(config).generate(100);
        assert!((t.at(49) - 1.0).abs() < 1e-9);
        assert!((t.at(50) - 3.0).abs() < 1e-9, "onset {}", t.at(50));
        assert!(t.at(51) > 1.0 && t.at(51) < 3.0);
        assert!((t.at(55) - 1.0).abs() < 1e-9, "after event {}", t.at(55));
    }

    #[test]
    fn flash_boost_outside_window_is_zero() {
        let f = FlashCrowd {
            start_hour: 10,
            magnitude: 2.0,
            duration_hours: 4,
        };
        assert_eq!(f.boost_at(9), 0.0);
        assert_eq!(f.boost_at(14), 0.0);
        assert!(f.boost_at(10) > 0.9);
    }

    #[test]
    fn two_month_layout() {
        let g = TraceGenerator::new(TraceConfig::wikipedia_like(5e7, 3));
        let (hist, eval) = g.generate_two_months();
        assert_eq!(hist.len(), 31 * 24);
        assert_eq!(eval.len(), 30 * 24);
    }

    #[test]
    fn growth_raises_late_traffic() {
        let g = TraceGenerator::new(TraceConfig {
            mean_rate: 1.0,
            noise_std: 0.0,
            diurnal_amplitude: 0.0,
            day_of_week_factor: [1.0; 7],
            growth: 0.10,
            ..Default::default()
        });
        let t = g.generate(1000);
        assert!(t.at(999) > t.at(0) * 1.09);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_mean_rejected() {
        TraceGenerator::new(TraceConfig {
            mean_rate: 0.0,
            ..Default::default()
        });
    }
}
