//! Background regional power demand `d_i(t)`.
//!
//! Stands in for the PJM Rockland Electric (RECO) zonal demand trace the
//! paper uses to model the power drawn by all consumers *other than* the
//! data center in each ISO region. What matters to the optimizer is where
//! `d_i` sits relative to the pricing policy's step breakpoints — the data
//! center's own draw then decides which price level the region lands in.

use crate::generator::{TraceConfig, TraceGenerator};
use crate::trace::HourlyTrace;

/// Generator of background demand series (MW).
#[derive(Debug, Clone)]
pub struct BackgroundDemand {
    /// Mean demand (MW).
    pub mean_mw: f64,
    /// Diurnal swing fraction.
    pub diurnal_amplitude: f64,
    /// Seed offset so each location gets an independent series.
    pub seed: u64,
}

impl BackgroundDemand {
    /// A RECO-like profile for a given data-center location.
    ///
    /// The means are calibrated so that, against the paper's five-level
    /// pricing policies (first breakpoint 200 MW, last 711.8 MW), the
    /// region idles in a low-to-middle price level and the data center's
    /// tens of megawatts can push it across one or two breakpoints.
    pub fn reco_like(location: usize, seed: u64) -> Self {
        // Per-location offsets: different regions idle at different loads.
        let mean_mw = match location {
            0 => 360.0,
            1 => 410.0,
            2 => 430.0,
            _ => 300.0 + 40.0 * (location as f64),
        };
        Self {
            mean_mw,
            diurnal_amplitude: 0.30,
            seed: seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(location as u64 + 1)),
        }
    }

    /// Generates `hours` of demand (MW). Summer-afternoon peak (hour 16),
    /// weekday/weekend structure, small noise.
    pub fn generate(&self, hours: usize) -> HourlyTrace {
        assert!(self.mean_mw > 0.0, "mean demand must be positive");
        let g = TraceGenerator::new(TraceConfig {
            mean_rate: self.mean_mw,
            diurnal_amplitude: self.diurnal_amplitude,
            peak_hour: 16,
            day_of_week_factor: [1.03, 1.04, 1.04, 1.03, 1.0, 0.9, 0.88],
            noise_std: 0.02,
            growth: 0.0,
            flash_crowds: Vec::new(),
            seed: self.seed,
        });
        g.generate(hours)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locations_have_distinct_series() {
        let a = BackgroundDemand::reco_like(0, 42).generate(100);
        let b = BackgroundDemand::reco_like(1, 42).generate(100);
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = BackgroundDemand::reco_like(0, 42).generate(100);
        let b = BackgroundDemand::reco_like(0, 42).generate(100);
        assert_eq!(a, b);
    }

    #[test]
    fn demand_in_policy_relevant_band() {
        // Means must leave the region's load near the policies' step range
        // (first step 200 MW, last 711.8 MW) so the DC can move the price.
        for loc in 0..3 {
            let t = BackgroundDemand::reco_like(loc, 7).generate(30 * 24);
            let mean = t.mean();
            assert!(
                (200.0..700.0).contains(&mean),
                "location {loc}: mean {mean} MW"
            );
            assert!(t.values().iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn afternoon_peak() {
        let t = BackgroundDemand {
            mean_mw: 300.0,
            diurnal_amplitude: 0.3,
            seed: 1,
        }
        .generate(24 * 7);
        // Average over days: hour 16 should beat hour 4.
        let mut by_hour = [0.0f64; 24];
        for (i, &v) in t.values().iter().enumerate() {
            by_hour[i % 24] += v;
        }
        assert!(by_hour[16] > by_hour[4]);
    }
}
