//! # billcap-workload
//!
//! Workload and demand substrate for the `billcap` reproduction of
//! *Electricity Bill Capping for Cloud-Scale Data Centers that Impact the
//! Power Markets* (ICPP 2012).
//!
//! The paper's evaluation drives its simulator with (a) a two-month
//! Wikipedia request trace (October 2007 as budgeting history, November
//! 2007 as the evaluated month) and (b) a PJM Rockland Electric (RECO)
//! zonal demand trace standing in for the power consumed by everyone else
//! in each data center's ISO region. Neither trace ships with the paper,
//! so this crate synthesizes statistically equivalent, deterministic
//! (seeded) replacements — the algorithms only consume the hourly series
//! and their weekly regularity (see DESIGN.md, substitutions table).
//!
//! Components:
//!
//! * [`trace`] — [`HourlyTrace`], an hourly time series with hour-of-week
//!   arithmetic and CSV round-tripping.
//! * [`generator`] — seeded synthetic request-trace generation with
//!   diurnal/weekly structure, noise, growth, and flash-crowd events
//!   (the paper's "breaking news" scenario).
//! * [`background`] — regional background power demand `d_i(t)` per
//!   data-center location.
//! * [`split`] — the premium/ordinary customer split (80 % / 20 % in the
//!   paper's experiments).
//! * [`budgeter`] — the monthly-to-hourly [`Budgeter`]: hour-of-week
//!   weights learned from history, with intra-week carry-over of unused
//!   budget (paper Section III and VI-B).

#![forbid(unsafe_code)]

pub mod background;
pub mod budgeter;
pub mod generator;
pub mod predictor;
pub mod split;
pub mod trace;
pub mod weather;

pub use background::BackgroundDemand;
pub use budgeter::Budgeter;
pub use generator::{FlashCrowd, TraceConfig, TraceGenerator};
pub use predictor::{mape, EwmaSeasonalPredictor, HourOfWeekPredictor, NaivePredictor, Predictor};
pub use split::CustomerSplit;
pub use trace::{HourlyTrace, HOURS_PER_WEEK};
pub use weather::{EconomizerCurve, TemperatureModel};
