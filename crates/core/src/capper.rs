//! The two-step bill capper (paper Section III).
//!
//! Each invocation period (hour):
//!
//! 1. Run [`CostMinimizer`]. If the minimized cost fits the hour's budget,
//!    enforce that allocation — every request (premium and ordinary) is
//!    served.
//! 2. Otherwise run [`ThroughputMaximizer`] under the budget. If the
//!    achievable throughput covers at least the premium rate, serve all
//!    premium plus as much ordinary traffic as the budget allows.
//! 3. If even premium traffic cannot fit, re-run the cost minimizer on the
//!    premium rate alone and knowingly violate the hour's budget: premium
//!    QoS is the revenue source and is never sacrificed.

use crate::error::CoreError;
use crate::maximize::ThroughputMaximizer;
use crate::minimize::{Allocation, CostMinimizer};
use crate::spec::DataCenterSystem;
use billcap_milp::SolveError;
use billcap_obs::Stopwatch;

/// Tuning knobs for the capper.
#[derive(Debug, Clone, Default)]
pub struct CapperConfig {
    /// Model server counts as integers inside the MILPs.
    pub integral_servers: bool,
}

/// Which branch of the algorithm produced the hour's decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HourOutcome {
    /// Step 1 fit the budget: everything served.
    WithinBudget,
    /// Step 2 throttled ordinary traffic to fit the budget.
    Throttled,
    /// Premium alone busts the budget: premium served, budget violated.
    PremiumOverride,
}

/// Per-hour solver effort, collected unconditionally by
/// [`BillCapper::decide_hour`].
///
/// Wall-clock fields are machine-dependent; the node/iteration counts are
/// deterministic for sequential solves (see
/// [`billcap_milp::SolveTrace`] for the parallel caveat). A step that was
/// not run (step 2 and 3 are skipped when the budget fits) reports zero.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DecisionTrace {
    /// Wall time of step 1 (cost minimization), nanoseconds.
    pub step1_ns: u64,
    /// Wall time of step 2 (throughput maximization), nanoseconds.
    pub step2_ns: u64,
    /// Wall time of step 3 (premium-only re-minimization), nanoseconds.
    pub step3_ns: u64,
    /// MILP solves performed this hour (1–3).
    pub solves: usize,
    /// Branch-and-bound nodes across all solves this hour.
    pub nodes: usize,
    /// Simplex iterations across all solves this hour.
    pub lp_iterations: usize,
}

impl DecisionTrace {
    fn absorb(&mut self, alloc: &Allocation) {
        self.solves += 1;
        if let Some(stats) = &alloc.stats {
            self.nodes += stats.nodes;
            self.lp_iterations += stats.lp_iterations;
        }
    }
}

/// The decision for one invocation period.
#[derive(Debug, Clone, PartialEq)]
pub struct HourDecision {
    /// The enforced workload allocation.
    pub allocation: Allocation,
    /// Which branch of the algorithm produced the decision.
    pub outcome: HourOutcome,
    /// Requests/hour offered by customers (after any capacity clamp).
    pub offered: f64,
    /// Premium portion of the offered rate.
    pub premium_offered: f64,
    /// Premium requests served (always equals `premium_offered`).
    pub premium_served: f64,
    /// Ordinary requests served.
    pub ordinary_served: f64,
    /// The hour's budget the decision was made against ($).
    pub budget: f64,
    /// Solver effort spent reaching this decision.
    pub trace: DecisionTrace,
}

impl HourDecision {
    /// Cost of the enforced allocation ($ for the hour).
    pub fn cost(&self) -> f64 {
        self.allocation.total_cost
    }

    /// True when the enforced cost exceeds the hour's budget (only possible
    /// under [`HourOutcome::PremiumOverride`]).
    pub fn violates_budget(&self) -> bool {
        self.cost() > self.budget * (1.0 + 1e-9)
    }
}

/// The bill-capping orchestrator.
#[derive(Debug, Clone)]
pub struct BillCapper {
    /// The step-1 (and step-3) cost minimizer.
    pub minimizer: CostMinimizer,
    /// The step-2 throughput maximizer.
    pub maximizer: ThroughputMaximizer,
}

impl Default for BillCapper {
    fn default() -> Self {
        Self::new(CapperConfig::default())
    }
}

impl BillCapper {
    /// Builds a capper from a config.
    pub fn new(config: CapperConfig) -> Self {
        Self {
            minimizer: CostMinimizer {
                integral_servers: config.integral_servers,
                ..Default::default()
            },
            maximizer: ThroughputMaximizer {
                integral_servers: config.integral_servers,
                ..Default::default()
            },
        }
    }

    /// Decides one hour's allocation.
    ///
    /// `offered` is the total arrival rate, `premium_offered` the premium
    /// share (`<= offered`), `background_mw` the regional non-DC demand,
    /// and `hourly_budget` the budgeter's allotment for this hour.
    ///
    /// If the offered load exceeds deliverable capacity (an extreme flash
    /// crowd), ordinary traffic is shed first to bring it within capacity;
    /// premium beyond capacity is an error.
    pub fn decide_hour(
        &self,
        system: &DataCenterSystem,
        offered: f64,
        premium_offered: f64,
        background_mw: &[f64],
        hourly_budget: f64,
    ) -> Result<HourDecision, CoreError> {
        let mut backend = FreshBackend {
            minimizer: &self.minimizer,
            maximizer: &self.maximizer,
        };
        decide_hour_impl(
            &mut backend,
            system,
            offered,
            premium_offered,
            background_mw,
            hourly_budget,
        )
    }
}

/// How [`decide_hour_impl`] obtains the two optimization steps. The
/// reference implementation ([`FreshBackend`]) builds a fresh MILP per
/// call; [`crate::DecisionEngine`] mutates retained models in place. Both
/// must produce bitwise-identical allocations on identical inputs.
pub(crate) trait HourBackend {
    /// Step 1/3: cost-minimize serving `lambda` requests/hour.
    fn minimize(
        &mut self,
        system: &DataCenterSystem,
        lambda: f64,
        background_mw: &[f64],
    ) -> Result<Allocation, CoreError>;

    /// Step 2: maximize admitted throughput within `budget`.
    fn maximize(
        &mut self,
        system: &DataCenterSystem,
        lambda: f64,
        background_mw: &[f64],
        budget: f64,
    ) -> Result<Allocation, CoreError>;
}

/// Backend that rebuilds each model from scratch (the original behavior).
struct FreshBackend<'a> {
    minimizer: &'a CostMinimizer,
    maximizer: &'a ThroughputMaximizer,
}

impl HourBackend for FreshBackend<'_> {
    fn minimize(
        &mut self,
        system: &DataCenterSystem,
        lambda: f64,
        background_mw: &[f64],
    ) -> Result<Allocation, CoreError> {
        self.minimizer.solve(system, lambda, background_mw)
    }

    fn maximize(
        &mut self,
        system: &DataCenterSystem,
        lambda: f64,
        background_mw: &[f64],
        budget: f64,
    ) -> Result<Allocation, CoreError> {
        self.maximizer.solve(system, lambda, background_mw, budget)
    }
}

/// The three-step capping algorithm, generic over how each MILP is
/// produced. Shared verbatim between [`BillCapper::decide_hour`] and
/// [`crate::DecisionEngine::decide_hour`] so the control flow (and thus
/// every comparison and arithmetic op on the way to a decision) cannot
/// drift between them.
pub(crate) fn decide_hour_impl<B: HourBackend + ?Sized>(
    backend: &mut B,
    system: &DataCenterSystem,
    offered: f64,
    premium_offered: f64,
    background_mw: &[f64],
    hourly_budget: f64,
) -> Result<HourDecision, CoreError> {
    assert!(
        premium_offered <= offered + 1e-9,
        "premium rate cannot exceed the total"
    );
    let capacity = system.total_capacity();
    if premium_offered > capacity {
        return Err(CoreError::InsufficientCapacity {
            demanded: premium_offered,
            capacity,
        });
    }
    // Capacity clamp: shed un-servable ordinary traffic up front.
    let offered = offered.min(capacity);
    let mut trace = DecisionTrace::default();

    // Step 1: cost minimization over the whole offered load.
    let t0 = Stopwatch::start();
    let mut span1 = billcap_obs::span("step1");
    let step1 = backend.minimize(system, offered, background_mw)?;
    span1.field("cost", step1.total_cost);
    drop(span1);
    trace.step1_ns = t0.elapsed_ns();
    trace.absorb(&step1);
    if step1.total_cost <= hourly_budget {
        record_outcome(HourOutcome::WithinBudget, &step1, hourly_budget);
        return Ok(HourDecision {
            outcome: HourOutcome::WithinBudget,
            offered,
            premium_offered,
            premium_served: premium_offered,
            ordinary_served: offered - premium_offered,
            budget: hourly_budget,
            allocation: step1,
            trace,
        });
    }

    // Step 2: throughput maximization within the budget.
    let t0 = Stopwatch::start();
    let mut span2 = billcap_obs::span("step2");
    let step2 = match backend.maximize(system, offered, background_mw, hourly_budget) {
        Ok(a) => Some(a),
        // A budget below the unavoidable base-power cost is infeasible;
        // treat as zero achievable throughput.
        Err(CoreError::Solver(SolveError::Infeasible)) => None,
        Err(e) => return Err(e),
    };
    if let Some(a) = &step2 {
        span2.field("admitted", a.total_lambda);
    }
    drop(span2);
    trace.step2_ns = t0.elapsed_ns();
    if let Some(step2) = step2 {
        trace.absorb(&step2);
        if step2.total_lambda >= premium_offered - 1e-6 {
            let ordinary = (step2.total_lambda - premium_offered).max(0.0);
            record_outcome(HourOutcome::Throttled, &step2, hourly_budget);
            return Ok(HourDecision {
                outcome: HourOutcome::Throttled,
                offered,
                premium_offered,
                premium_served: premium_offered,
                ordinary_served: ordinary,
                budget: hourly_budget,
                allocation: step2,
                trace,
            });
        }
    }

    // Premium override: serve premium at minimum cost, budget be damned.
    let t0 = Stopwatch::start();
    let mut span3 = billcap_obs::span("step3");
    let step3 = backend.minimize(system, premium_offered, background_mw)?;
    span3.field("cost", step3.total_cost);
    drop(span3);
    trace.step3_ns = t0.elapsed_ns();
    trace.absorb(&step3);
    record_outcome(HourOutcome::PremiumOverride, &step3, hourly_budget);
    Ok(HourDecision {
        outcome: HourOutcome::PremiumOverride,
        offered,
        premium_offered,
        premium_served: premium_offered,
        ordinary_served: 0.0,
        budget: hourly_budget,
        allocation: step3,
        trace,
    })
}

/// Emits the per-hour outcome counters, the budget-slack gauge, and the
/// price-level-selection histogram when tracing is enabled.
fn record_outcome(outcome: HourOutcome, alloc: &Allocation, budget: f64) {
    if !billcap_obs::enabled() {
        return;
    }
    let name = match outcome {
        HourOutcome::WithinBudget => "core.capper.within_budget",
        HourOutcome::Throttled => "core.capper.throttled",
        HourOutcome::PremiumOverride => "core.capper.premium_override",
    };
    billcap_obs::counter(name, 1);
    if budget.is_finite() {
        billcap_obs::gauge("core.capper.budget_slack", budget - alloc.total_cost);
    }
    // One observation per site-hour: which price level the site landed in.
    const LEVEL_BOUNDS: [f64; 5] = [0.0, 1.0, 2.0, 3.0, 4.0];
    for &k in &alloc.level {
        billcap_obs::observe_with("core.capper.price_level", k as f64, &LEVEL_BOUNDS);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DataCenterSystem;

    fn background() -> Vec<f64> {
        vec![330.0, 410.0, 280.0]
    }

    fn capper() -> BillCapper {
        BillCapper::default()
    }

    #[test]
    fn abundant_budget_serves_everything() {
        let sys = DataCenterSystem::paper_system(1);
        let d = capper()
            .decide_hour(&sys, 6e8, 4.8e8, &background(), 1e9)
            .unwrap();
        assert_eq!(d.outcome, HourOutcome::WithinBudget);
        assert_eq!(d.premium_served, 4.8e8);
        assert!((d.ordinary_served - 1.2e8).abs() < 1.0);
        assert!(!d.violates_budget());
    }

    #[test]
    fn tight_budget_throttles_ordinary_only() {
        let sys = DataCenterSystem::paper_system(1);
        let d = background();
        let offered = 8e8;
        let premium = 0.8 * offered;
        let full_cost = capper()
            .decide_hour(&sys, offered, premium, &d, f64::INFINITY)
            .unwrap()
            .cost();
        // Budget between the premium-only cost and the full cost.
        let budget = 0.93 * full_cost;
        let dec = capper()
            .decide_hour(&sys, offered, premium, &d, budget)
            .unwrap();
        assert_eq!(dec.outcome, HourOutcome::Throttled);
        assert_eq!(dec.premium_served, premium);
        assert!(dec.ordinary_served < offered - premium);
        assert!(dec.cost() <= budget * (1.0 + 1e-6));
        assert!(!dec.violates_budget());
    }

    #[test]
    fn starvation_budget_triggers_premium_override() {
        let sys = DataCenterSystem::paper_system(1);
        let d = background();
        let offered = 8e8;
        let premium = 0.8 * offered;
        let dec = capper()
            .decide_hour(&sys, offered, premium, &d, 1.0) // $1 budget
            .unwrap();
        assert_eq!(dec.outcome, HourOutcome::PremiumOverride);
        assert_eq!(dec.premium_served, premium);
        assert_eq!(dec.ordinary_served, 0.0);
        assert!(dec.violates_budget());
    }

    #[test]
    fn premium_is_never_shed() {
        let sys = DataCenterSystem::paper_system(1);
        let d = background();
        for budget in [1.0, 500.0, 2000.0, 1e9] {
            let dec = capper().decide_hour(&sys, 7e8, 5.6e8, &d, budget).unwrap();
            assert_eq!(dec.premium_served, 5.6e8, "budget {budget}");
        }
    }

    #[test]
    fn capacity_clamp_sheds_ordinary_first() {
        let sys = DataCenterSystem::paper_system(1);
        let capacity = sys.total_capacity();
        let offered = 2.0 * capacity;
        let premium = 0.4 * capacity;
        let dec = capper()
            .decide_hour(&sys, offered, premium, &background(), f64::INFINITY)
            .unwrap();
        assert_eq!(dec.premium_served, premium);
        assert!(dec.offered <= capacity * (1.0 + 1e-9));
        assert!(dec.ordinary_served <= capacity - premium + 1e-3);
    }

    #[test]
    fn premium_beyond_capacity_is_an_error() {
        let sys = DataCenterSystem::paper_system(1);
        let capacity = sys.total_capacity();
        assert!(matches!(
            capper().decide_hour(&sys, 3.0 * capacity, 1.5 * capacity, &background(), 1e9),
            Err(CoreError::InsufficientCapacity { .. })
        ));
    }

    #[test]
    fn throttled_cost_uses_budget_efficiently() {
        let sys = DataCenterSystem::paper_system(1);
        let d = background();
        let offered = 8e8;
        let premium = 0.8 * offered;
        let full_cost = capper()
            .decide_hour(&sys, offered, premium, &d, f64::INFINITY)
            .unwrap()
            .cost();
        let budget = 0.9 * full_cost;
        let dec = capper()
            .decide_hour(&sys, offered, premium, &d, budget)
            .unwrap();
        if dec.outcome == HourOutcome::Throttled {
            assert!(
                dec.cost() > 0.85 * budget,
                "left too much budget unused: {} of {budget}",
                dec.cost()
            );
        }
    }
}
