//! Hierarchical cost minimization (paper Section IX, future work).
//!
//! The paper's capper is centralized; its stated scalability concerns are
//! (a) MILP size growing with the number of sites and price levels, and
//! (b) coordinator communication latency. This module implements the
//! natural two-level decomposition the paper sketches:
//!
//! * sites are grouped into **regions**, each with its own (small)
//!   regional cost-minimization MILP;
//! * a **coordinator** splits the hourly workload across regions by
//!   marginal-cost water-filling: the load is released in chunks, each
//!   chunk going to the region whose incremental cost for it is lowest
//!   (incremental costs come from regional MILP solves at the region's
//!   current assignment).
//!
//! The decomposition is a heuristic — regional coupling through the
//! objective is ignored between chunk boundaries — so it trades a small
//! optimality gap (measured by `tests/` and the `ablations` bench) for
//! solve times that scale with the largest region instead of the whole
//! fleet, and for a communication pattern where each region only learns
//! its own assignment.

use crate::error::CoreError;
use crate::minimize::{Allocation, CostMinimizer};
use crate::spec::DataCenterSystem;
use billcap_market::PricingPolicySet;

/// Two-level cost minimizer.
#[derive(Debug, Clone)]
pub struct HierarchicalMinimizer {
    /// Site indices per region; every site must appear exactly once.
    pub regions: Vec<Vec<usize>>,
    /// Number of workload chunks the coordinator releases (more chunks =
    /// closer to centralized optimum, more regional solves).
    pub chunks: usize,
    /// The solver used for regional subproblems.
    pub minimizer: CostMinimizer,
}

impl HierarchicalMinimizer {
    /// Creates a hierarchical minimizer with the given regions.
    pub fn new(regions: Vec<Vec<usize>>) -> Self {
        Self {
            regions,
            chunks: 16,
            minimizer: CostMinimizer::default(),
        }
    }

    /// Partitions `n` sites into regions of at most `region_size`.
    pub fn evenly(n: usize, region_size: usize) -> Self {
        assert!(region_size > 0, "region size must be positive");
        let regions = (0..n)
            .collect::<Vec<_>>()
            .chunks(region_size)
            .map(<[usize]>::to_vec)
            .collect();
        Self::new(regions)
    }

    /// Validates the region structure against a system.
    fn validate(&self, system: &DataCenterSystem) -> Result<(), CoreError> {
        let mut seen = vec![false; system.len()];
        for region in &self.regions {
            for &i in region {
                if i >= system.len() || seen[i] {
                    return Err(CoreError::Dimension {
                        expected: system.len(),
                        got: i,
                    });
                }
                seen[i] = true;
            }
        }
        if seen.iter().all(|&s| s) {
            Ok(())
        } else {
            Err(CoreError::Dimension {
                expected: system.len(),
                got: seen.iter().filter(|&&s| s).count(),
            })
        }
    }

    /// Builds the sub-system for one region.
    fn subsystem(
        &self,
        system: &DataCenterSystem,
        region: &[usize],
    ) -> Result<DataCenterSystem, CoreError> {
        let sites = region.iter().map(|&i| system.sites[i].clone()).collect();
        let policies = PricingPolicySet {
            policies: region.iter().map(|&i| system.policy(i).clone()).collect(),
        };
        DataCenterSystem::new(sites, policies)
    }

    /// Minimizes the hour's cost by two-level decomposition. Semantics
    /// match [`CostMinimizer::solve`] (all of `lambda` is served), with a
    /// small optimality gap.
    pub fn solve(
        &self,
        system: &DataCenterSystem,
        lambda: f64,
        background_mw: &[f64],
    ) -> Result<Allocation, CoreError> {
        self.validate(system)?;
        if background_mw.len() != system.len() {
            return Err(CoreError::Dimension {
                expected: system.len(),
                got: background_mw.len(),
            });
        }
        let capacity = system.total_capacity();
        if lambda > capacity {
            return Err(CoreError::InsufficientCapacity {
                demanded: lambda,
                capacity,
            });
        }

        let subsystems: Vec<DataCenterSystem> = self
            .regions
            .iter()
            .map(|r| self.subsystem(system, r))
            .collect::<Result<_, _>>()?;
        let sub_backgrounds: Vec<Vec<f64>> = self
            .regions
            .iter()
            .map(|r| r.iter().map(|&i| background_mw[i]).collect())
            .collect();
        let capacities: Vec<f64> = subsystems
            .iter()
            .map(DataCenterSystem::total_capacity)
            .collect();

        // Coordinator: water-fill `chunks` equal slices of the workload.
        let chunk = lambda / self.chunks.max(1) as f64;
        let mut assigned = vec![0.0f64; self.regions.len()];
        let mut current_cost = vec![0.0f64; self.regions.len()];
        // Seed the cost curve at zero assignment.
        for (r, sub) in subsystems.iter().enumerate() {
            current_cost[r] = self
                .minimizer
                .solve(sub, 0.0, &sub_backgrounds[r])?
                .total_cost;
        }
        let mut remaining = lambda;
        while remaining > 1e-6 {
            let take = chunk.min(remaining);
            // Incremental cost of `take` at each region with headroom.
            let mut best: Option<(usize, f64, f64)> = None; // (region, delta, new_cost)
            for (r, sub) in subsystems.iter().enumerate() {
                if assigned[r] + take > capacities[r] {
                    continue;
                }
                let new_cost = self
                    .minimizer
                    .solve(sub, assigned[r] + take, &sub_backgrounds[r])?
                    .total_cost;
                let delta = new_cost - current_cost[r];
                if best.is_none_or(|(_, d, _)| delta < d) {
                    best = Some((r, delta, new_cost));
                }
            }
            let Some((r, _, new_cost)) = best else {
                // No single region can absorb a full chunk: shrink it.
                if take <= 1.0 {
                    return Err(CoreError::InsufficientCapacity {
                        demanded: lambda,
                        capacity,
                    });
                }
                // Halve the chunk by assigning half now.
                let half = take / 2.0;
                let mut placed = false;
                for (r, sub) in subsystems.iter().enumerate() {
                    if assigned[r] + half <= capacities[r] {
                        let new_cost = self
                            .minimizer
                            .solve(sub, assigned[r] + half, &sub_backgrounds[r])?
                            .total_cost;
                        assigned[r] += half;
                        current_cost[r] = new_cost;
                        remaining -= half;
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    return Err(CoreError::InsufficientCapacity {
                        demanded: lambda,
                        capacity,
                    });
                }
                continue;
            };
            assigned[r] += take;
            current_cost[r] = new_cost;
            remaining -= take;
        }

        // Final regional solves produce the per-site allocation.
        let mut lambda_out = vec![0.0; system.len()];
        let mut servers = vec![0; system.len()];
        let mut power_mw = vec![0.0; system.len()];
        let mut price = vec![0.0; system.len()];
        let mut level = vec![0; system.len()];
        let mut cost = vec![0.0; system.len()];
        let mut total_cost = 0.0;
        let mut total_lambda = 0.0;
        for (r, sub) in subsystems.iter().enumerate() {
            let alloc = self
                .minimizer
                .solve(sub, assigned[r], &sub_backgrounds[r])?;
            for (j, &site) in self.regions[r].iter().enumerate() {
                lambda_out[site] = alloc.lambda[j];
                servers[site] = alloc.servers[j];
                power_mw[site] = alloc.power_mw[j];
                price[site] = alloc.price[j];
                level[site] = alloc.level[j];
                cost[site] = alloc.cost[j];
            }
            total_cost += alloc.total_cost;
            total_lambda += alloc.total_lambda;
        }
        Ok(Allocation {
            lambda: lambda_out,
            servers,
            power_mw,
            price,
            level,
            cost,
            total_cost,
            total_lambda,
            stats: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DataCenterSystem;

    fn background() -> Vec<f64> {
        vec![360.0, 410.0, 430.0]
    }

    #[test]
    fn trivial_partition_matches_centralized() {
        // One region holding everything IS the centralized problem.
        let sys = DataCenterSystem::paper_system(1);
        let h = HierarchicalMinimizer::new(vec![vec![0, 1, 2]]);
        let d = background();
        let hier = h.solve(&sys, 6e8, &d).unwrap();
        let central = CostMinimizer::default().solve(&sys, 6e8, &d).unwrap();
        assert!((hier.total_cost - central.total_cost).abs() < 1e-6);
    }

    #[test]
    fn singleton_regions_have_bounded_gap() {
        let sys = DataCenterSystem::paper_system(1);
        let h = HierarchicalMinimizer::evenly(3, 1);
        let d = background();
        let lambda = 6e8;
        let hier = h.solve(&sys, lambda, &d).unwrap();
        let central = CostMinimizer::default().solve(&sys, lambda, &d).unwrap();
        assert!((hier.total_lambda - lambda).abs() < 1.0);
        let gap = hier.total_cost / central.total_cost - 1.0;
        assert!(gap >= -1e-9, "hierarchical beat the optimum?");
        assert!(gap < 0.15, "optimality gap {gap} too large");
    }

    #[test]
    fn serves_all_demand_and_respects_caps() {
        let sys = DataCenterSystem::paper_system(1);
        let h = HierarchicalMinimizer::evenly(3, 2);
        let d = background();
        let lambda = 9e8;
        let alloc = h.solve(&sys, lambda, &d).unwrap();
        assert!((alloc.total_lambda - lambda).abs() < 1.0);
        for (i, &p) in alloc.power_mw.iter().enumerate() {
            assert!(p <= sys.sites[i].power_cap_mw + 1e-6, "site {i}");
        }
    }

    #[test]
    fn near_capacity_loads_are_still_placed() {
        let sys = DataCenterSystem::paper_system(1);
        let h = HierarchicalMinimizer::evenly(3, 1);
        let d = background();
        let lambda = 0.98 * sys.total_capacity();
        let alloc = h.solve(&sys, lambda, &d).unwrap();
        assert!((alloc.total_lambda - lambda).abs() / lambda < 1e-6);
    }

    #[test]
    fn over_capacity_rejected() {
        let sys = DataCenterSystem::paper_system(1);
        let h = HierarchicalMinimizer::evenly(3, 1);
        assert!(matches!(
            h.solve(&sys, 1e13, &background()),
            Err(CoreError::InsufficientCapacity { .. })
        ));
    }

    #[test]
    fn bad_partitions_rejected() {
        let sys = DataCenterSystem::paper_system(1);
        let d = background();
        // Duplicate site.
        let h = HierarchicalMinimizer::new(vec![vec![0, 1], vec![1, 2]]);
        assert!(matches!(
            h.solve(&sys, 1e8, &d),
            Err(CoreError::Dimension { .. })
        ));
        // Missing site.
        let h = HierarchicalMinimizer::new(vec![vec![0, 1]]);
        assert!(matches!(
            h.solve(&sys, 1e8, &d),
            Err(CoreError::Dimension { .. })
        ));
    }

    #[test]
    fn more_chunks_tighten_the_gap() {
        let sys = DataCenterSystem::paper_system(1);
        let d = background();
        let lambda = 7e8;
        let central = CostMinimizer::default().solve(&sys, lambda, &d).unwrap();
        let gap = |chunks: usize| {
            let mut h = HierarchicalMinimizer::evenly(3, 1);
            h.chunks = chunks;
            let a = h.solve(&sys, lambda, &d).unwrap();
            a.total_cost / central.total_cost - 1.0
        };
        let coarse = gap(4);
        let fine = gap(64);
        assert!(
            fine <= coarse + 1e-9,
            "finer chunks should not hurt: {fine} vs {coarse}"
        );
    }
}
