//! Error type for the bill-capping algorithms.

use billcap_milp::SolveError;
use billcap_queueing::QueueingError;
use std::fmt;

/// Errors surfaced by the cost-minimization / throughput-maximization
/// formulations.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The demanded workload exceeds what the data-center network can carry
    /// within its power caps and QoS targets.
    InsufficientCapacity {
        /// Demanded rate (requests/hour).
        demanded: f64,
        /// Deliverable capacity (requests/hour).
        capacity: f64,
    },
    /// The underlying MILP failed.
    Solver(SolveError),
    /// The queueing model rejected the configuration (e.g. an unreachable
    /// response-time target).
    Queueing(QueueingError),
    /// Mismatched input sizes (e.g. background-demand vector vs. sites).
    Dimension {
        /// Expected length.
        expected: usize,
        /// Actual length supplied.
        got: usize,
    },
    /// A solve or plan failed independent certification (`BILLCAP_AUDIT` /
    /// `--audit`); the message carries the violated invariants.
    Audit(String),
    /// The pre-solve lint (`BILLCAP_LINT=deny` / `--lint`) found
    /// Error-severity defects in the model; the message carries them.
    Lint(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InsufficientCapacity { demanded, capacity } => write!(
                f,
                "workload {demanded} req/h exceeds network capacity {capacity} req/h"
            ),
            CoreError::Solver(e) => write!(f, "optimization failed: {e}"),
            CoreError::Queueing(e) => write!(f, "queueing model error: {e}"),
            CoreError::Dimension { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            CoreError::Audit(msg) => write!(f, "audit failed: {msg}"),
            CoreError::Lint(msg) => write!(f, "lint rejected model: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<SolveError> for CoreError {
    fn from(e: SolveError) -> Self {
        CoreError::Solver(e)
    }
}

impl From<QueueingError> for CoreError {
    fn from(e: QueueingError) -> Self {
        CoreError::Queueing(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = CoreError::InsufficientCapacity {
            demanded: 10.0,
            capacity: 5.0,
        };
        assert!(e.to_string().contains("exceeds"));
        let e: CoreError = SolveError::Infeasible.into();
        assert!(matches!(e, CoreError::Solver(_)));
        let e = CoreError::Audit("dual bound lies".to_string());
        assert!(e.to_string().contains("audit failed"));
    }
}
