//! # billcap-core
//!
//! The primary contribution of *Electricity Bill Capping for Cloud-Scale
//! Data Centers that Impact the Power Markets* (ICPP 2012): a two-step
//! electricity-bill-capping algorithm for a network of geographically
//! distributed data centers whose power draw moves the locational price.
//!
//! **Step 1 — [`CostMinimizer`]** (paper Section IV): split the hourly
//! request rate `λ` across data centers to minimize `Σ Pr_i · p_i`, where
//! `Pr_i = F_i(p_i + d_i)` is a locational *step* pricing policy of the
//! total regional load, `p_i` covers servers + networking + cooling, each
//! site has a power cap, and a G/G/m response-time constraint fixes the
//! servers needed per unit of traffic. The step policy is linearized with
//! one binary per price level and level-restricted power variables,
//! yielding a MILP (solved by `billcap-milp`).
//!
//! **Step 2 — [`ThroughputMaximizer`]** (paper Section V): when the
//! minimized cost exceeds the hour's budget, maximize admitted throughput
//! subject to `Σ cost_i ≤ budget`. Premium customers are always served:
//! if even premium traffic alone busts the budget, step 1 re-runs on
//! premium traffic only and the hour's budget is knowingly violated.
//!
//! **[`BillCapper`]** orchestrates the two steps each hour;
//! **[`MinOnly`]** implements the state-of-the-art baseline the paper
//! compares against (constant prices, server-only power model); and
//! **[`evaluate_allocation`]** applies the *true* cost model to any
//! allocation so that baseline decisions are billed at real market prices.
//!
//! ## Example
//!
//! Decide one hour for the paper's three-site system under a tight budget:
//!
//! ```
//! use billcap_core::{BillCapper, DataCenterSystem, HourOutcome};
//!
//! let system = DataCenterSystem::paper_system(1); // pricing policy 1
//! let background = vec![330.0, 410.0, 280.0];    // regional demand, MW
//!
//! let capper = BillCapper::default();
//! let decision = capper
//!     .decide_hour(&system, 6e8, 4.8e8, &background, 25_000.0)
//!     .unwrap();
//!
//! // Premium traffic is always served, whatever the outcome branch.
//! assert_eq!(decision.premium_served, 4.8e8);
//! if decision.outcome != HourOutcome::PremiumOverride {
//!     assert!(decision.cost() <= 25_000.0 * (1.0 + 1e-9));
//! }
//! // Solver effort is recorded on every decision.
//! assert!(decision.trace.solves >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod baselines;
pub mod cache;
pub mod capper;
pub mod capsched;
pub mod engine;
pub mod error;
pub mod evaluate;
pub mod hetero;
pub mod hierarchical;
pub mod maximize;
pub mod minimize;
pub mod priority;
pub mod spec;
pub mod speclint;

pub use audit::{audit_env_enabled, AuditReport, PlanAuditor, PlanViolation};
pub use baselines::{MinOnly, PriceAssumption};
pub use cache::{system_fingerprint, DecisionCache, DecisionKey};
pub use capper::{BillCapper, CapperConfig, DecisionTrace, HourDecision, HourOutcome};
pub use capsched::CapSchedule;
pub use engine::{DecisionEngine, EngineStats};
pub use error::CoreError;
pub use evaluate::{evaluate_allocation, RealizedCost};
pub use hierarchical::HierarchicalMinimizer;
pub use maximize::ThroughputMaximizer;
pub use minimize::{Allocation, CostMinimizer};
pub use priority::{ClassDecision, PriorityClass};
pub use spec::{DataCenterSpec, DataCenterSystem};
pub use speclint::{
    lint_budget_weights, lint_cap_schedule, lint_env_mode, lint_premium_fraction, lint_system,
    LintMode, SpecReport,
};
