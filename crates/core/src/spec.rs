//! Data-center and system specifications.

use crate::error::CoreError;
use billcap_market::{PricingPolicySet, StepPolicy};
use billcap_power::{CoolingModel, DcPowerModel, FatTree, ServerModel, SwitchPower};
use billcap_queueing::GgmModel;

/// Static description of one data-center site.
#[derive(Debug, Clone)]
pub struct DataCenterSpec {
    /// Site name (e.g. the paper's "DC-East").
    pub name: String,
    /// G/G/m performance model; service rate in requests/hour/server.
    pub queue: GgmModel,
    /// Composite power model (servers + networking + cooling).
    pub power: DcPowerModel,
    /// Response-time set point `Rs_i` (hours).
    pub response_target: f64,
    /// Site power cap `Ps_i` (MW) imposed by the supplier.
    pub power_cap_mw: f64,
    /// Hosted server count ceiling.
    pub max_servers: u64,
}

impl DataCenterSpec {
    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), CoreError> {
        // Target must be reachable (checked by the queueing model).
        self.queue.qos_headroom(self.response_target)?;
        Ok(())
    }

    /// Linear power coefficient `a_i`: MW drawn per unit of arrival rate
    /// (requests/hour), through the server→switch→cooling chain.
    pub fn mw_per_request(&self) -> f64 {
        self.power.watts_per_server() / (self.queue.service_rate * 1e6)
    }

    /// Constant power offset `b_i` (MW): the QoS headroom servers kept
    /// active regardless of load (a handful of machines).
    pub fn base_power_mw(&self) -> f64 {
        let headroom = self
            .queue
            .qos_headroom(self.response_target)
            .expect("validated spec"); // repolint-allow(unwrap): spec checked at construction
        self.power.watts_per_server() * headroom / 1e6
    }

    /// Power (MW, linearized) when carrying `lambda` requests/hour.
    pub fn power_for_rate_mw(&self, lambda: f64) -> f64 {
        self.mw_per_request() * lambda + self.base_power_mw()
    }

    /// Maximum arrival rate servable within QoS, server inventory, and the
    /// site power cap.
    pub fn max_rate(&self) -> f64 {
        let headroom = self
            .queue
            .qos_headroom(self.response_target)
            .expect("validated spec"); // repolint-allow(unwrap): spec checked at construction
                                       // Server-inventory bound.
        let by_servers = (self.max_servers as f64 - headroom).max(0.0) * self.queue.service_rate;
        // Power-cap bound: a_i * lambda + b_i <= Ps_i.
        let a = self.mw_per_request();
        let by_power = ((self.power_cap_mw - self.base_power_mw()) / a).max(0.0);
        by_servers.min(by_power)
    }

    /// Active servers the local optimizer starts for `lambda` requests/hour.
    pub fn servers_for_rate(&self, lambda: f64) -> u64 {
        self.queue
            .min_servers(lambda, self.response_target)
            .expect("validated spec") // repolint-allow(unwrap): spec checked at construction
            .min(self.max_servers)
    }

    /// Returns a copy of this spec with a different cooling efficiency —
    /// used by weather-aware simulations where `coe` varies hourly with
    /// the outside-air temperature.
    pub fn with_cooling_efficiency(&self, coe: f64) -> Self {
        let mut out = self.clone();
        out.power = DcPowerModel::new(
            out.power.server,
            out.power.operating_utilization,
            out.power.network,
            CoolingModel::with_form(coe, out.power.cooling.form),
        );
        out
    }

    /// One of the paper's three simulated data centers (`i` is 0-based).
    ///
    /// Per-server powers (88.88 / 34.0 / 49.9 W), processing capacity
    /// coefficients (500 / 300 / 725), switch powers and cooling
    /// efficiencies follow the paper's Section VI; service rates are taken
    /// per hour and the fleet ceiling is raised to 10⁶ servers/site so the
    /// simulated bills land in the paper's own $M/month budget range (see
    /// DESIGN.md calibration notes).
    pub fn paper_dc(i: usize) -> Self {
        let (name, watts, rate, switch, coe, cap_mw) = match i {
            0 => (
                "dc1-athlon",
                88.88,
                500.0,
                SwitchPower {
                    edge_w: 84.0,
                    aggregation_w: 84.0,
                    core_w: 240.0,
                },
                1.94,
                120.0,
            ),
            1 => (
                "dc2-pentium4",
                34.0,
                300.0,
                SwitchPower {
                    edge_w: 70.0,
                    aggregation_w: 70.0,
                    core_w: 260.0,
                },
                1.39,
                65.0,
            ),
            2 => (
                "dc3-pentiumd",
                49.9,
                725.0,
                SwitchPower {
                    edge_w: 75.0,
                    aggregation_w: 75.0,
                    core_w: 240.0,
                },
                1.74,
                85.0,
            ),
            _ => panic!("the paper simulates three data centers (i in 0..3)"),
        };
        let max_servers = 1_000_000;
        let queue = GgmModel::new(rate, 1.0, 1.0);
        Self {
            name: name.to_string(),
            queue,
            power: DcPowerModel::new(
                ServerModel::at_operating_point(watts, 1.0),
                1.0,
                FatTree::for_capacity(max_servers, switch),
                CoolingModel::new(coe),
            ),
            // QoS: 50 % above the bare service time, i.e. Rs = 1.5/μ.
            response_target: 1.5 / rate,
            power_cap_mw: cap_mw,
            max_servers,
        }
    }
}

/// A network of data centers with their locational pricing policies.
#[derive(Debug, Clone)]
pub struct DataCenterSystem {
    /// The sites.
    pub sites: Vec<DataCenterSpec>,
    /// One pricing policy per site, index-aligned with `sites`.
    pub policies: PricingPolicySet,
}

impl DataCenterSystem {
    /// Builds a system; validates per-site consistency and policy count.
    pub fn new(sites: Vec<DataCenterSpec>, policies: PricingPolicySet) -> Result<Self, CoreError> {
        if sites.len() != policies.policies.len() {
            return Err(CoreError::Dimension {
                expected: sites.len(),
                got: policies.policies.len(),
            });
        }
        for s in &sites {
            s.validate()?;
        }
        Ok(Self { sites, policies })
    }

    /// The paper's simulated system: three data centers under the given
    /// pricing-policy family (0..=3).
    pub fn paper_system(policy: usize) -> Self {
        let sites = (0..3).map(DataCenterSpec::paper_dc).collect();
        // repolint-allow(unwrap): constants from the paper
        Self::new(sites, PricingPolicySet::by_index(policy, 3)).expect("paper system is valid")
    }

    /// A scale-up synthetic system for solver benchmarks and
    /// parallel-determinism tests: `n_sites` sites (cycling the paper's
    /// three hardware profiles) under step policies with `levels` price
    /// levels each.
    ///
    /// The policies are deliberately adversarial for branch-and-bound:
    /// prices zigzag with load, so cheap levels exist at high loads and
    /// the LP relaxation blends levels fractionally, forcing deep
    /// branching. Every site's prices carry a distinct multiplicative
    /// perturbation, which breaks site symmetry and makes the optimum
    /// unique and well separated — the precondition under which parallel
    /// and sequential [`MipSolver`](billcap_milp::MipSolver) searches
    /// return bitwise-identical objectives.
    pub fn synthetic(n_sites: usize, levels: usize) -> Self {
        assert!(n_sites >= 1, "need at least one site");
        assert!(levels >= 2, "need at least two price levels");
        let sites: Vec<DataCenterSpec> = (0..n_sites)
            .map(|i| {
                let mut s = DataCenterSpec::paper_dc(i % 3);
                s.name = format!("syn{i}-{}", s.name);
                s
            })
            .collect();
        let policies = PricingPolicySet {
            policies: sites
                .iter()
                .enumerate()
                .map(|(i, site)| {
                    // Spread the breakpoints across the site's reachable
                    // load band so (almost) every level is in play.
                    let step = (site.power_cap_mw + 20.0) / levels as f64;
                    let breakpoints: Vec<f64> = (1..levels).map(|k| k as f64 * step).collect();
                    let perturb = 1.0 + 0.01 * (i as f64 + 1.0);
                    let prices: Vec<f64> = (0..levels)
                        .map(|k| {
                            let zig = if k % 2 == 0 {
                                10.0 + 2.0 * k as f64
                            } else {
                                30.0 - 1.5 * k as f64
                            };
                            zig.max(1.0) * perturb
                        })
                        .collect();
                    StepPolicy::new(breakpoints, prices)
                })
                .collect(),
        };
        Self::new(sites, policies).expect("synthetic system is valid") // repolint-allow(unwrap): generated spec is valid
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True when the system has no sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Pricing policy of site `i`.
    pub fn policy(&self, i: usize) -> &StepPolicy {
        &self.policies.policies[i]
    }

    /// Total request-rate capacity (requests/hour) across sites.
    pub fn total_capacity(&self) -> f64 {
        self.sites.iter().map(|s| s.max_rate()).sum()
    }

    /// Replaces the policy set (used to sweep Policies 0–3 over one system).
    pub fn with_policies(mut self, policies: PricingPolicySet) -> Result<Self, CoreError> {
        if self.sites.len() != policies.policies.len() {
            return Err(CoreError::Dimension {
                expected: self.sites.len(),
                got: policies.policies.len(),
            });
        }
        self.policies = policies;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dcs_validate() {
        for i in 0..3 {
            DataCenterSpec::paper_dc(i).validate().unwrap();
        }
    }

    #[test]
    fn linear_power_matches_exact_model_at_scale() {
        for i in 0..3 {
            let dc = DataCenterSpec::paper_dc(i);
            let lambda = 0.5 * dc.max_rate();
            let linear = dc.power_for_rate_mw(lambda);
            let exact = dc.power.total_mw(dc.servers_for_rate(lambda));
            let rel = (linear - exact).abs() / exact;
            assert!(rel < 2e-3, "dc{i}: rel {rel}");
        }
    }

    #[test]
    fn max_rate_respects_power_cap() {
        for i in 0..3 {
            let dc = DataCenterSpec::paper_dc(i);
            let p = dc.power_for_rate_mw(dc.max_rate());
            assert!(
                p <= dc.power_cap_mw + 1e-6,
                "dc{i}: {p} MW > cap {} MW",
                dc.power_cap_mw
            );
        }
    }

    #[test]
    fn paper_sites_draw_price_moving_power() {
        // The premise of the paper: each site can draw tens of MW, enough
        // to cross the 200-MW-spaced price breakpoints.
        for i in 0..3 {
            let dc = DataCenterSpec::paper_dc(i);
            let peak_mw = dc.power_for_rate_mw(dc.max_rate());
            assert!(peak_mw > 30.0, "dc{i} peak {peak_mw} MW too small");
        }
    }

    #[test]
    fn system_construction_checks_dimensions() {
        let sites = vec![DataCenterSpec::paper_dc(0)];
        let policies = PricingPolicySet::policy1(3);
        assert!(matches!(
            DataCenterSystem::new(sites, policies),
            Err(CoreError::Dimension { .. })
        ));
    }

    #[test]
    fn paper_system_has_three_sites_and_capacity() {
        let sys = DataCenterSystem::paper_system(1);
        assert_eq!(sys.len(), 3);
        assert!(
            sys.total_capacity() > 1e9,
            "capacity {}",
            sys.total_capacity()
        );
    }

    #[test]
    fn servers_for_rate_monotone() {
        let dc = DataCenterSpec::paper_dc(0);
        let n1 = dc.servers_for_rate(1e7);
        let n2 = dc.servers_for_rate(5e7);
        assert!(n2 > n1);
    }

    #[test]
    fn synthetic_system_scales_sites_and_levels() {
        let sys = DataCenterSystem::synthetic(10, 12);
        assert_eq!(sys.len(), 10);
        for i in 0..10 {
            assert_eq!(sys.policy(i).num_levels(), 12);
        }
        // Per-site perturbation breaks price symmetry between sites that
        // share a hardware profile.
        assert_ne!(sys.policy(0).avg_price(), sys.policy(3).avg_price());
        // Breakpoints stay within reach of the site's power band.
        for (i, site) in sys.sites.iter().enumerate() {
            let last_lo = sys
                .policy(i)
                .levels()
                .map(|(lo, _, _)| lo)
                .fold(0.0f64, f64::max);
            assert!(last_lo < site.power_cap_mw + 20.0 + 1e-9);
        }
    }

    #[test]
    fn policy_swap() {
        let sys = DataCenterSystem::paper_system(1);
        let swapped = sys.with_policies(PricingPolicySet::policy3(3)).unwrap();
        assert!(swapped.policy(0).max_price() > 50.0);
    }
}
