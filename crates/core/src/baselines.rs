//! The Min-Only baseline (paper Section VII-A).
//!
//! Min-Only is the state-of-the-art electricity-cost minimizer the paper
//! compares against. It differs from Cost Capping in three ways:
//!
//! 1. **Price taker**: it assumes its routing cannot move prices, using a
//!    constant price per location — either the average of the step prices
//!    (*Min-Only (Avg)*) or the lowest step price (*Min-Only (Low)*).
//! 2. **Server-only power**: it ignores networking and cooling in its
//!    objective.
//! 3. **No budget awareness**: it always serves all requests, whatever the
//!    bill.
//!
//! Its decisions are an LP (constant prices ⇒ no binaries). What it
//! actually *pays* is computed by [`crate::evaluate_allocation`] under the
//! true step prices and full power model. Feasibility (QoS, site power
//! caps) is enforced with the true limits so that the comparison isolates
//! the objective's blind spots rather than letting the baseline cheat
//! physics.

use crate::error::CoreError;
use crate::spec::DataCenterSystem;
use billcap_milp::{ConstraintOp, LpSolver, Model, Sense};

/// Which constant price Min-Only assumes per location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriceAssumption {
    /// Mean of the location's step prices — *Min-Only (Avg)*.
    Average,
    /// Lowest step price — *Min-Only (Low)*.
    Lowest,
}

/// A Min-Only decision: the allocation it chose and the cost it *believed*
/// it would pay (realized cost is computed separately).
#[derive(Debug, Clone, PartialEq)]
pub struct MinOnlyDecision {
    /// Requests/hour dispatched to each site.
    pub lambda: Vec<f64>,
    /// The cost Min-Only predicted under its constant-price, server-only
    /// model ($ for the hour).
    pub believed_cost: f64,
}

/// The Min-Only baseline optimizer.
#[derive(Debug, Clone)]
pub struct MinOnly {
    /// The constant-price model the baseline believes in.
    pub assumption: PriceAssumption,
    /// The LP solver (Min-Only's problem has no binaries).
    pub lp: LpSolver,
}

impl MinOnly {
    /// Creates a baseline with the given price assumption.
    pub fn new(assumption: PriceAssumption) -> Self {
        Self {
            assumption,
            lp: LpSolver::default(),
        }
    }

    /// The constant price Min-Only assumes for site `i` ($/MWh).
    pub fn assumed_price(&self, system: &DataCenterSystem, i: usize) -> f64 {
        match self.assumption {
            PriceAssumption::Average => system.policy(i).avg_price(),
            PriceAssumption::Lowest => system.policy(i).min_price(),
        }
    }

    /// Chooses an allocation for `lambda` requests/hour.
    pub fn solve(
        &self,
        system: &DataCenterSystem,
        lambda: f64,
    ) -> Result<MinOnlyDecision, CoreError> {
        let capacity = system.total_capacity();
        if lambda > capacity {
            return Err(CoreError::InsufficientCapacity {
                demanded: lambda,
                capacity,
            });
        }
        let scale = crate::minimize::RATE_SCALE;
        let mut m = Model::new("min_only", Sense::Minimize);
        let mut obj = Vec::with_capacity(system.len());
        let mut lam_vars = Vec::with_capacity(system.len());
        let mut believed_base = 0.0;
        for (i, site) in system.sites.iter().enumerate() {
            let lam = m.add_cont(format!("lam_{i}"), 0.0, site.max_rate() / scale);
            // Believed cost: assumed price * server-only power.
            let price = self.assumed_price(system, i);
            let server_mw_per_mreq =
                site.power.server_only_watts_per_server() / site.queue.service_rate / 1e6 * scale;
            obj.push((lam, price * server_mw_per_mreq));
            // Server-only base power (QoS headroom machines).
            let headroom = site
                .queue
                .qos_headroom(site.response_target)
                .expect("validated spec"); // repolint-allow(unwrap): spec checked at construction
            believed_base += price * site.power.server_only_watts_per_server() * headroom / 1e6;
            lam_vars.push(lam);
        }
        m.add_constraint(
            "demand",
            lam_vars.iter().map(|&v| (v, 1.0)).collect(),
            ConstraintOp::Eq,
            lambda / scale,
        );
        m.set_objective(obj, believed_base);
        let sol = self.lp.solve(&m)?;
        Ok(MinOnlyDecision {
            lambda: lam_vars.iter().map(|&v| sol.value(v) * scale).collect(),
            believed_cost: sol.objective,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate_allocation;
    use crate::minimize::CostMinimizer;
    use crate::spec::DataCenterSystem;

    fn background() -> Vec<f64> {
        vec![330.0, 410.0, 280.0]
    }

    #[test]
    fn serves_all_demand() {
        let sys = DataCenterSystem::paper_system(1);
        let lambda = 6e8;
        let d = MinOnly::new(PriceAssumption::Average)
            .solve(&sys, lambda)
            .unwrap();
        let total: f64 = d.lambda.iter().sum();
        assert!((total - lambda).abs() / lambda < 1e-6);
    }

    #[test]
    fn assumed_prices_match_paper_reductions() {
        let sys = DataCenterSystem::paper_system(1);
        let avg = MinOnly::new(PriceAssumption::Average);
        let low = MinOnly::new(PriceAssumption::Lowest);
        // Paper: DC1 avg = 16.98, low = 10.00.
        assert!((avg.assumed_price(&sys, 0) - 16.98).abs() < 1e-9);
        assert!((low.assumed_price(&sys, 0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn capping_never_pays_more_than_min_only() {
        // The headline comparison (paper Fig. 3): billed at true prices,
        // Cost Capping's allocation is at most as expensive as Min-Only's.
        let sys = DataCenterSystem::paper_system(1);
        let d = background();
        for lambda in [2e8, 5e8, 8e8] {
            let capping = CostMinimizer::default().solve(&sys, lambda, &d).unwrap();
            let capping_real = evaluate_allocation(&sys, &capping.lambda, &d);
            for assumption in [PriceAssumption::Average, PriceAssumption::Lowest] {
                let mo = MinOnly::new(assumption).solve(&sys, lambda).unwrap();
                let mo_real = evaluate_allocation(&sys, &mo.lambda, &d);
                assert!(
                    capping_real.total_cost <= mo_real.total_cost * (1.0 + 1e-4),
                    "lambda {lambda} {assumption:?}: capping {} > minonly {}",
                    capping_real.total_cost,
                    mo_real.total_cost
                );
            }
        }
    }

    #[test]
    fn believed_cost_underestimates_reality() {
        // Min-Only's model blindness: the realized bill exceeds its own
        // prediction (it ignores cooling, networking, and price steps).
        let sys = DataCenterSystem::paper_system(1);
        let lambda = 6e8;
        let mo = MinOnly::new(PriceAssumption::Lowest)
            .solve(&sys, lambda)
            .unwrap();
        let real = evaluate_allocation(&sys, &mo.lambda, &background());
        assert!(
            real.total_cost > mo.believed_cost,
            "real {} <= believed {}",
            real.total_cost,
            mo.believed_cost
        );
    }

    #[test]
    fn low_assumption_prefers_cheapest_min_price_site() {
        let sys = DataCenterSystem::paper_system(1);
        let mo = MinOnly::new(PriceAssumption::Lowest)
            .solve(&sys, 1e8)
            .unwrap();
        // Unit believed cost per request = min_price * sp/mu; find argmin.
        let unit = |i: usize| {
            sys.policy(i).min_price() * sys.sites[i].power.server_only_watts_per_server()
                / sys.sites[i].queue.service_rate
        };
        let best = (0..3)
            .min_by(|&a, &b| unit(a).partial_cmp(&unit(b)).unwrap())
            .unwrap();
        assert!(
            mo.lambda[best] > 0.99e8,
            "expected site {best} to take the load: {:?}",
            mo.lambda
        );
    }

    #[test]
    fn over_capacity_rejected() {
        let sys = DataCenterSystem::paper_system(1);
        assert!(matches!(
            MinOnly::new(PriceAssumption::Average).solve(&sys, 1e13),
            Err(CoreError::InsufficientCapacity { .. })
        ));
    }
}
