//! Incremental decision engine: the bill capper with retained MILPs.
//!
//! [`crate::BillCapper`] rebuilds both optimization models from scratch
//! every hour. The models' *shape* barely moves, though: variables and
//! rows are fixed by the data-center spec, and only the kept price-level
//! set per site (a function of the background demand `d` relative to the
//! policy breakpoints) changes structure. [`DecisionEngine`] exploits
//! that: it builds each step's model once, and between hours rewrites
//! only the values that depend on the inputs —
//!
//! * the `z` coefficients of the `lvl_hi_{i}_{k}` / `lvl_lo_{i}_{k}`
//!   interval rows (functions of `d_i`),
//! * the `demand` / `offered` row RHS (`λ / RATE_SCALE`),
//! * the `budget` row RHS.
//!
//! When a background change moves a site across a breakpoint the kept
//! level set changes, and the engine switches to a model built for that
//! key — structure is never patched in place. Built models are retained
//! in a small per-step cache keyed by (kept levels, cap bit patterns):
//! a diurnal background revisits the same few kept sets over and over,
//! so after the first day a month-long run stops rebuilding entirely
//! instead of rebuilding at every breakpoint crossing.
//!
//! **Bitwise contract:** with basis reuse off (the default), every
//! decision is bit-for-bit identical to [`crate::BillCapper::decide_hour`]
//! on the same inputs. Both paths share the level math
//! (`minimize::site_level_params`) and the step orchestration
//! (`capper::decide_hour_impl`), and the value mutators write
//! the exact floats the fresh builder would, so the solver sees an
//! identical model either way. Basis reuse ([`DecisionEngine::
//! set_reuse_basis`]) trades that guarantee for speed: the optimum is
//! preserved (and re-certified under `BILLCAP_AUDIT`), but alternative
//! optima may tie-break differently in the last ulp.

use crate::capper::{decide_hour_impl, CapperConfig, HourBackend, HourDecision};
use crate::error::CoreError;
use crate::minimize::{
    build_piecewise_core, extract_allocation, site_level_params, Allocation, LevelParam,
    PiecewiseVars, RATE_SCALE,
};
use crate::spec::DataCenterSystem;
use billcap_milp::{
    ConstraintOp, IncrementalModel, IncrementalSolver, MipSolver, Model, Sense, VarId,
};

/// One retained step model: the incremental wrapper, the variable
/// handles, and the key its structure was built for.
struct StepModel {
    im: IncrementalModel,
    vars: PiecewiseVars,
    /// Kept price-level indices per site — the structural key. When the
    /// hour's key differs the engine switches models, never patches
    /// structure.
    kept: Vec<Vec<usize>>,
    /// Per-site power caps (bit patterns) the model was built for. Caps
    /// reach deep into the build — `λ` upper bounds, `q` upper bounds,
    /// `cap_i` RHS, level pruning — so a cap change (a
    /// [`crate::CapSchedule`] hour) selects a different cache entry
    /// rather than patching values, keeping every served model
    /// bitwise-identical to a fresh build by construction.
    caps: Vec<u64>,
    /// `(lvl_hi, lvl_lo)` row indices per `(site, kept slot)`, resolved
    /// once at build time so the per-hour coefficient sync skips the
    /// name formatting and hash lookups.
    lvl_rows: Vec<Vec<(usize, usize)>>,
    /// LRU stamp for cache eviction.
    last_used: u64,
}

/// Retained models per step, capped at this many distinct
/// (kept, caps) keys; least-recently-used entries are evicted. A
/// diurnal background cycles through a dozen-odd kept-set phases (each
/// site crosses a few breakpoints up and back per day), so 24 keeps a
/// steady month fully resident, while still bounding memory when a cap
/// schedule mints a new caps key every hour.
const STEP_CACHE_CAP: usize = 24;

/// The retained solver state behind a [`DecisionEngine`]; implements
/// [`HourBackend`] so [`decide_hour_impl`] drives it exactly like the
/// fresh-model capper.
struct EngineCore {
    integral_servers: bool,
    /// Serves steps 1 and 3 (both are `cost_min` solves, differing only
    /// in the demand RHS).
    min_solver: IncrementalSolver,
    max_solver: IncrementalSolver,
    cost_min: Vec<StepModel>,
    thru_max: Vec<StepModel>,
    /// Monotonic use counter driving the caches' LRU eviction.
    stamp: u64,
    /// Step-model cache telemetry across both steps' caches.
    stats: EngineStats,
    /// Fingerprints of structures built since the last
    /// [`DecisionEngine::drain_built_keys`], for the server's
    /// unique-rebuild registry.
    built_keys: Vec<u64>,
}

/// Step-model LRU telemetry for one engine: exact work counters,
/// deterministic for a fixed decision sequence on this engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Lookups that found a retained model (LRU hit).
    pub hits: u64,
    /// Lookups that required a full model build. Equals the number of
    /// rebuilds: every miss builds.
    pub misses: u64,
    /// Retained models evicted to make room (LRU full).
    pub evictions: u64,
}

/// A [`crate::BillCapper`] that keeps its MILPs (and optionally their
/// root bases) alive between hours. See the module docs for the reuse
/// strategy and the bitwise contract.
pub struct DecisionEngine {
    system: DataCenterSystem,
    core: EngineCore,
}

impl DecisionEngine {
    /// Builds an engine for `system` with the given capper config.
    /// Models are built lazily on the first decision.
    pub fn new(system: DataCenterSystem, config: CapperConfig) -> Self {
        Self {
            system,
            core: EngineCore {
                integral_servers: config.integral_servers,
                min_solver: IncrementalSolver::new(MipSolver::default()),
                max_solver: IncrementalSolver::new(MipSolver::default()),
                cost_min: Vec::new(),
                thru_max: Vec::new(),
                stamp: 0,
                stats: EngineStats::default(),
                built_keys: Vec::new(),
            },
        }
    }

    /// Step-model cache counters accumulated by this engine.
    pub fn cache_stats(&self) -> EngineStats {
        self.core.stats
    }

    /// Removes and returns the fingerprints of every model structure
    /// built since the previous call (empty when only cached models
    /// served). A fingerprint is a pure function of
    /// `(step, kept levels, caps)`, so the *set* of fingerprints drained
    /// over a request sequence is independent of how the sequence was
    /// sharded across engines — the server aggregates them into a
    /// thread-count-invariant unique-rebuild counter.
    pub fn drain_built_keys(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.core.built_keys)
    }

    /// The system this engine decides for.
    pub fn system(&self) -> &DataCenterSystem {
        &self.system
    }

    /// Toggles root-basis carry-over between solves. Off by default;
    /// turning it on keeps optima (certified under `BILLCAP_AUDIT`) but
    /// forfeits bitwise identity with the fresh-model capper.
    pub fn set_reuse_basis(&mut self, on: bool) {
        self.core.min_solver.reuse_basis = on;
        self.core.max_solver.reuse_basis = on;
        if !on {
            self.core.min_solver.reset();
            self.core.max_solver.reset();
        }
    }

    /// Whether root-basis carry-over is enabled.
    pub fn reuse_basis(&self) -> bool {
        self.core.min_solver.reuse_basis
    }

    /// Re-caps every site for the next decisions (a
    /// [`crate::CapSchedule`] hour). The retained models are keyed on
    /// the cap vector, so the next [`Self::decide_hour`] switches
    /// models exactly when a cap actually moved — a schedule that
    /// revisits a previous cap vector reuses that vector's cached
    /// model. Decisions stay independent of cap history either way:
    /// every hour-dependent value in a cached model is rewritten before
    /// each solve, so a served model is bitwise-identical to a fresh
    /// build for the current inputs.
    ///
    /// # Panics
    ///
    /// Panics when `caps.len()` differs from the system's site count.
    pub fn set_site_caps(&mut self, caps: &[f64]) {
        assert_eq!(
            caps.len(),
            self.system.sites.len(),
            "got {} caps for {} sites",
            caps.len(),
            self.system.sites.len()
        );
        for (site, &cap) in self.system.sites.iter_mut().zip(caps) {
            site.power_cap_mw = cap;
        }
    }

    /// Decides one hour's allocation. Same contract as
    /// [`crate::BillCapper::decide_hour`].
    pub fn decide_hour(
        &mut self,
        offered: f64,
        premium_offered: f64,
        background_mw: &[f64],
        hourly_budget: f64,
    ) -> Result<HourDecision, CoreError> {
        decide_hour_impl(
            &mut self.core,
            &self.system,
            offered,
            premium_offered,
            background_mw,
            hourly_budget,
        )
    }
}

impl EngineCore {
    /// Per-site kept-level parameters for this hour's background vector.
    fn level_params(system: &DataCenterSystem, background_mw: &[f64]) -> Vec<Vec<LevelParam>> {
        system
            .sites
            .iter()
            .enumerate()
            .map(|(i, site)| site_level_params(site, system.policy(i), background_mw[i]))
            .collect()
    }

    fn kept_key(params: &[Vec<LevelParam>]) -> Vec<Vec<usize>> {
        params
            .iter()
            .map(|ps| ps.iter().map(|p| p.k).collect())
            .collect()
    }

    /// The per-site cap bit patterns the models must have been built
    /// for. Bit equality (not `==` on floats) so that a NaN-poisoned
    /// spec still compares deterministically.
    fn caps_key(system: &DataCenterSystem) -> Vec<u64> {
        system
            .sites
            .iter()
            .map(|s| s.power_cap_mw.to_bits())
            .collect()
    }

    /// Rewrites the interval-row `z` coefficients of `step` to this
    /// hour's values. Only called when the kept key matches, so every
    /// `(site, slot)` pair lines up with a retained `(q, z)` pair and a
    /// pre-resolved `(lvl_hi, lvl_lo)` row pair.
    fn sync_levels(step: &mut StepModel, params: &[Vec<LevelParam>]) -> Result<(), CoreError> {
        for (i, site_params) in params.iter().enumerate() {
            let slots = step.vars.levels[i].iter().zip(&step.lvl_rows[i]);
            for (p, (&(_, _, _, z), &(hi, lo))) in site_params.iter().zip(slots) {
                step.im.set_coeff_at(hi, z, p.zcoef_hi)?;
                step.im.set_coeff_at(lo, z, p.zcoef_lo)?;
            }
        }
        Ok(())
    }

    /// Resolves the `(lvl_hi, lvl_lo)` row indices of a freshly built
    /// step model, one pair per `(site, kept slot)`.
    fn resolve_level_rows(im: &IncrementalModel, vars: &PiecewiseVars) -> Vec<Vec<(usize, usize)>> {
        vars.levels
            .iter()
            .enumerate()
            .map(|(i, levels)| {
                levels
                    .iter()
                    .map(|&(k, _, _, _)| {
                        let hi = im.row(&format!("lvl_hi_{i}_{k}"));
                        let lo = im.row(&format!("lvl_lo_{i}_{k}"));
                        match (hi, lo) {
                            (Some(hi), Some(lo)) => (hi, lo),
                            _ => unreachable!("interval rows created by the build above"),
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Returns the cache index of the entry matching `(kept, caps)`,
    /// refreshing its LRU stamp, or `None` on a miss.
    fn cache_lookup(
        cache: &mut [StepModel],
        kept: &[Vec<usize>],
        caps: &[u64],
        stamp: u64,
    ) -> Option<usize> {
        let idx = cache
            .iter()
            .position(|s| s.kept == kept && s.caps == caps)?;
        cache[idx].last_used = stamp;
        Some(idx)
    }

    /// Inserts a freshly built model, evicting the least-recently-used
    /// entry when the cache is full. Returns the new entry's index and
    /// whether an eviction happened.
    fn cache_insert(cache: &mut Vec<StepModel>, entry: StepModel) -> (usize, bool) {
        let mut evicted = false;
        if cache.len() >= STEP_CACHE_CAP {
            let evict = cache
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i)
                .unwrap_or(0);
            cache.swap_remove(evict);
            evicted = true;
        }
        cache.push(entry);
        (cache.len() - 1, evicted)
    }

    /// FNV-1a fingerprint of one step model's structural key. Depends
    /// only on `(step, kept, caps)` — never on engine identity or build
    /// order — which makes sets of fingerprints comparable across
    /// engines and thread counts.
    fn structure_fingerprint(step: u64, kept: &[Vec<usize>], caps: &[u64]) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |x: u64| {
            for b in x.to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
        };
        eat(step);
        eat(kept.len() as u64);
        for site in kept {
            eat(site.len() as u64);
            for &k in site {
                eat(k as u64);
            }
        }
        for &c in caps {
            eat(c);
        }
        h
    }

    /// Bumps the telemetry for a step-cache hit.
    fn note_hit(&mut self) {
        self.stats.hits += 1;
        if billcap_obs::enabled() {
            billcap_obs::counter("core.engine.cache.hit", 1);
        }
    }

    /// Bumps the telemetry for a step-cache miss (always a rebuild) and
    /// remembers the built structure's fingerprint.
    fn note_miss(&mut self, step: u64, kept: &[Vec<usize>], caps: &[u64]) {
        self.stats.misses += 1;
        self.built_keys
            .push(Self::structure_fingerprint(step, kept, caps));
        if billcap_obs::enabled() {
            billcap_obs::counter("core.engine.cache.miss", 1);
        }
        record_rebuild();
    }

    /// Bumps the telemetry when an insert evicted a retained model.
    fn note_eviction(&mut self, evicted: bool) {
        if evicted {
            self.stats.evictions += 1;
            if billcap_obs::enabled() {
                billcap_obs::counter("core.engine.cache.evict", 1);
            }
        }
    }

    /// Ensures a step-1/3 model for this hour's key is cached and
    /// returns its index, building from scratch on a miss. The build
    /// mirrors [`crate::CostMinimizer::solve`] exactly (same
    /// construction order), with the demand RHS left for the caller to
    /// set.
    fn ensure_cost_min(
        &mut self,
        system: &DataCenterSystem,
        background_mw: &[f64],
        kept: &[Vec<usize>],
        caps: &[u64],
    ) -> Result<usize, CoreError> {
        self.stamp += 1;
        if let Some(idx) = Self::cache_lookup(&mut self.cost_min, kept, caps, self.stamp) {
            self.note_hit();
            return Ok(idx);
        }
        self.note_miss(1, kept, caps);
        let mut m = Model::new("cost_min", Sense::Minimize);
        let vars = build_piecewise_core(&mut m, system, background_mw, self.integral_servers);
        m.add_constraint(
            "demand",
            vars.lam.iter().map(|&v| (v, 1.0)).collect(),
            ConstraintOp::Eq,
            0.0,
        );
        let obj: Vec<(VarId, f64)> = vars
            .levels
            .iter()
            .flatten()
            .map(|&(_, r, q, _)| (q, r))
            .collect();
        m.set_objective(obj, 0.0);
        let im = IncrementalModel::new(m)?;
        let lvl_rows = Self::resolve_level_rows(&im, &vars);
        let (idx, evicted) = Self::cache_insert(
            &mut self.cost_min,
            StepModel {
                im,
                vars,
                kept: kept.to_vec(),
                caps: caps.to_vec(),
                lvl_rows,
                last_used: self.stamp,
            },
        );
        self.note_eviction(evicted);
        Ok(idx)
    }

    /// Step-2 analogue of [`Self::ensure_cost_min`], mirroring
    /// [`crate::ThroughputMaximizer::solve`]; `offered` and `budget`
    /// RHS are left for the caller.
    fn ensure_thru_max(
        &mut self,
        system: &DataCenterSystem,
        background_mw: &[f64],
        kept: &[Vec<usize>],
        caps: &[u64],
    ) -> Result<usize, CoreError> {
        self.stamp += 1;
        if let Some(idx) = Self::cache_lookup(&mut self.thru_max, kept, caps, self.stamp) {
            self.note_hit();
            return Ok(idx);
        }
        self.note_miss(2, kept, caps);
        let mut m = Model::new("throughput_max", Sense::Maximize);
        let vars = build_piecewise_core(&mut m, system, background_mw, self.integral_servers);
        m.add_constraint(
            "offered",
            vars.lam.iter().map(|&v| (v, 1.0)).collect(),
            ConstraintOp::Le,
            0.0,
        );
        let cost_terms: Vec<(VarId, f64)> = vars
            .levels
            .iter()
            .flatten()
            .map(|&(_, r, q, _)| (q, r))
            .collect();
        m.add_constraint("budget", cost_terms, ConstraintOp::Le, 0.0);
        m.set_objective(vars.lam.iter().map(|&v| (v, 1.0)).collect(), 0.0);
        let im = IncrementalModel::new(m)?;
        let lvl_rows = Self::resolve_level_rows(&im, &vars);
        let (idx, evicted) = Self::cache_insert(
            &mut self.thru_max,
            StepModel {
                im,
                vars,
                kept: kept.to_vec(),
                caps: caps.to_vec(),
                lvl_rows,
                last_used: self.stamp,
            },
        );
        self.note_eviction(evicted);
        Ok(idx)
    }
}

/// Counts full model builds (cache misses on the (kept, caps) key).
/// The counter is the deterministic work metric the perf gate tracks
/// for the scratch-reuse refactor: on a flat-cap month it stays near
/// the number of *distinct* kept-level sets the background visits —
/// a handful — far below `2 × hours`.
fn record_rebuild() {
    if billcap_obs::enabled() {
        billcap_obs::counter("core.engine.rebuilds", 1);
    }
}

impl HourBackend for EngineCore {
    fn minimize(
        &mut self,
        system: &DataCenterSystem,
        lambda: f64,
        background_mw: &[f64],
    ) -> Result<Allocation, CoreError> {
        if background_mw.len() != system.len() {
            return Err(CoreError::Dimension {
                expected: system.len(),
                got: background_mw.len(),
            });
        }
        let capacity = system.total_capacity();
        if lambda > capacity {
            return Err(CoreError::InsufficientCapacity {
                demanded: lambda,
                capacity,
            });
        }
        let params = Self::level_params(system, background_mw);
        let kept = Self::kept_key(&params);
        let caps = Self::caps_key(system);
        let idx = self.ensure_cost_min(system, background_mw, &kept, &caps)?;
        let step = &mut self.cost_min[idx];
        Self::sync_levels(step, &params)?;
        step.im.set_rhs("demand", lambda / RATE_SCALE)?;
        crate::speclint::lint_model_if_enabled(step.im.model())?;
        let sol = self.min_solver.solve(&step.im)?;
        crate::audit::certify_if_enabled(step.im.model(), &sol)?;
        Ok(extract_allocation(system, &step.vars, &sol))
    }

    fn maximize(
        &mut self,
        system: &DataCenterSystem,
        lambda: f64,
        background_mw: &[f64],
        budget: f64,
    ) -> Result<Allocation, CoreError> {
        if background_mw.len() != system.len() {
            return Err(CoreError::Dimension {
                expected: system.len(),
                got: background_mw.len(),
            });
        }
        let params = Self::level_params(system, background_mw);
        let kept = Self::kept_key(&params);
        let caps = Self::caps_key(system);
        let idx = self.ensure_thru_max(system, background_mw, &kept, &caps)?;
        let step = &mut self.thru_max[idx];
        Self::sync_levels(step, &params)?;
        step.im.set_rhs("offered", lambda / RATE_SCALE)?;
        step.im.set_rhs("budget", budget.max(0.0))?;
        crate::speclint::lint_model_if_enabled(step.im.model())?;
        let sol = self.max_solver.solve(&step.im)?;
        crate::audit::certify_if_enabled(step.im.model(), &sol)?;
        Ok(extract_allocation(system, &step.vars, &sol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capper::{BillCapper, HourOutcome};
    use crate::spec::DataCenterSystem;

    /// Bitwise equality on everything deterministic in a decision
    /// (wall-clock ns fields are machine noise and excluded).
    fn assert_decisions_bitwise_equal(a: &HourDecision, b: &HourDecision, ctx: &str) {
        assert_eq!(a.outcome, b.outcome, "{ctx}: outcome");
        assert_eq!(a.offered.to_bits(), b.offered.to_bits(), "{ctx}: offered");
        assert_eq!(
            a.premium_served.to_bits(),
            b.premium_served.to_bits(),
            "{ctx}: premium_served"
        );
        assert_eq!(
            a.ordinary_served.to_bits(),
            b.ordinary_served.to_bits(),
            "{ctx}: ordinary_served"
        );
        assert_eq!(a.budget.to_bits(), b.budget.to_bits(), "{ctx}: budget");
        assert_eq!(a.trace.solves, b.trace.solves, "{ctx}: solves");
        assert_eq!(a.trace.nodes, b.trace.nodes, "{ctx}: nodes");
        assert_eq!(
            a.trace.lp_iterations, b.trace.lp_iterations,
            "{ctx}: lp_iterations"
        );
        let (x, y) = (&a.allocation, &b.allocation);
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&x.lambda), bits(&y.lambda), "{ctx}: lambda");
        assert_eq!(x.servers, y.servers, "{ctx}: servers");
        assert_eq!(bits(&x.power_mw), bits(&y.power_mw), "{ctx}: power");
        assert_eq!(bits(&x.price), bits(&y.price), "{ctx}: price");
        assert_eq!(x.level, y.level, "{ctx}: level");
        assert_eq!(bits(&x.cost), bits(&y.cost), "{ctx}: cost");
        assert_eq!(
            x.total_cost.to_bits(),
            y.total_cost.to_bits(),
            "{ctx}: total_cost"
        );
        assert_eq!(
            x.total_lambda.to_bits(),
            y.total_lambda.to_bits(),
            "{ctx}: total_lambda"
        );
    }

    /// A day-long sweep that exercises all three outcomes and drags
    /// site backgrounds across price breakpoints (forcing kept-level
    /// rebuilds between mutate-only hours). Budgets are anchored to the
    /// hour's actual minimized cost so the throttled branch really runs.
    fn sweep(sys: &DataCenterSystem) -> Vec<(f64, f64, Vec<f64>, f64)> {
        let minimizer = crate::minimize::CostMinimizer::default();
        let mut hours = Vec::new();
        for h in 0..24u32 {
            let t = f64::from(h);
            let offered = 4e8 + 3e8 * (t / 23.0);
            let premium = 0.6 * offered;
            // Site 0 crosses its 450-MW breakpoint mid-sweep; site 1
            // wanders within a level; site 2 crosses twice.
            let background = vec![
                330.0 + 10.0 * t,
                410.0 + 2.0 * t,
                280.0 + 25.0 * (t * 0.7).sin().abs() * t.min(8.0),
            ];
            let full_cost = minimizer
                .solve(sys, offered, &background)
                .unwrap()
                .total_cost;
            let budget = match h % 4 {
                0 => f64::INFINITY,
                1 => 0.93 * full_cost,
                2 => 0.8 * full_cost,
                _ => 1.0,
            };
            hours.push((offered, premium, background, budget));
        }
        hours
    }

    #[test]
    fn engine_matches_fresh_capper_bitwise() {
        let sys = DataCenterSystem::paper_system(1);
        let capper = BillCapper::default();
        let mut engine = DecisionEngine::new(sys.clone(), CapperConfig::default());
        let mut outcomes = [0usize; 3];
        for (h, (offered, premium, background, budget)) in sweep(&sys).into_iter().enumerate() {
            let fresh = capper
                .decide_hour(&sys, offered, premium, &background, budget)
                .unwrap();
            let served = engine
                .decide_hour(offered, premium, &background, budget)
                .unwrap();
            assert_decisions_bitwise_equal(&served, &fresh, &format!("hour {h}"));
            outcomes[match fresh.outcome {
                HourOutcome::WithinBudget => 0,
                HourOutcome::Throttled => 1,
                HourOutcome::PremiumOverride => 2,
            }] += 1;
        }
        assert!(
            outcomes.iter().all(|&c| c > 0),
            "sweep must exercise all outcomes, got {outcomes:?}"
        );
    }

    #[test]
    fn engine_matches_fresh_capper_with_integral_servers() {
        let sys = DataCenterSystem::paper_system(1);
        let config = CapperConfig {
            integral_servers: true,
        };
        let capper = BillCapper::new(config.clone());
        let mut engine = DecisionEngine::new(sys.clone(), config);
        for (h, (offered, premium, background, budget)) in
            sweep(&sys).into_iter().step_by(6).enumerate()
        {
            let fresh = capper
                .decide_hour(&sys, offered, premium, &background, budget)
                .unwrap();
            let served = engine
                .decide_hour(offered, premium, &background, budget)
                .unwrap();
            assert_decisions_bitwise_equal(&served, &fresh, &format!("integral hour {h}"));
        }
    }

    #[test]
    fn basis_reuse_preserves_the_decision_outcome() {
        let sys = DataCenterSystem::paper_system(1);
        let capper = BillCapper::default();
        let mut engine = DecisionEngine::new(sys.clone(), CapperConfig::default());
        engine.set_reuse_basis(true);
        assert!(engine.reuse_basis());
        for (offered, premium, background, budget) in sweep(&sys) {
            let fresh = capper
                .decide_hour(&sys, offered, premium, &background, budget)
                .unwrap();
            let served = engine
                .decide_hour(offered, premium, &background, budget)
                .unwrap();
            assert_eq!(served.outcome, fresh.outcome);
            let scale = fresh.cost().abs().max(1.0);
            assert!(
                (served.cost() - fresh.cost()).abs() <= 1e-7 * scale,
                "cost {} vs {}",
                served.cost(),
                fresh.cost()
            );
            assert!(
                (served.allocation.total_lambda - fresh.allocation.total_lambda).abs()
                    <= 1e-6 * fresh.allocation.total_lambda.max(1.0)
            );
        }
    }

    #[test]
    fn engine_matches_fresh_capper_under_a_cap_schedule() {
        use crate::capsched::CapSchedule;
        let sys = DataCenterSystem::paper_system(1);
        let base_caps: Vec<f64> = sys.sites.iter().map(|s| s.power_cap_mw).collect();
        let sched = CapSchedule::derating(&base_caps, 24, 0.35, 42);
        let capper = BillCapper::default();
        let mut engine = DecisionEngine::new(sys.clone(), CapperConfig::default());
        for (h, (offered, premium, background, budget)) in sweep(&sys).into_iter().enumerate() {
            // Fresh path: mutate a working copy of the spec.
            let mut capped = sys.clone();
            sched.apply(&mut capped, h);
            let fresh = capper
                .decide_hour(&capped, offered, premium, &background, budget)
                .unwrap();
            // Engine path: re-cap in place; models rebuild on the key.
            engine.set_site_caps(sched.caps_at(h));
            let served = engine
                .decide_hour(offered, premium, &background, budget)
                .unwrap();
            assert_decisions_bitwise_equal(&served, &fresh, &format!("capped hour {h}"));
        }
    }

    #[test]
    fn cap_change_actually_changes_the_decision() {
        let sys = DataCenterSystem::paper_system(1);
        let mut engine = DecisionEngine::new(sys.clone(), CapperConfig::default());
        let background = vec![330.0, 410.0, 280.0];
        let before = engine
            .decide_hour(7e8, 4.2e8, &background, f64::INFINITY)
            .unwrap();
        // Squeeze the most-loaded site hard; the allocation must shift.
        let loaded = before
            .allocation
            .lambda
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let mut caps: Vec<f64> = sys.sites.iter().map(|s| s.power_cap_mw).collect();
        caps[loaded] *= 0.25;
        engine.set_site_caps(&caps);
        let after = engine
            .decide_hour(7e8, 4.2e8, &background, f64::INFINITY)
            .unwrap();
        assert_ne!(
            before.allocation.lambda, after.allocation.lambda,
            "a 4x cap squeeze must move traffic"
        );
        // And restoring the caps restores the original decision bitwise.
        engine.set_site_caps(&sys.sites.iter().map(|s| s.power_cap_mw).collect::<Vec<_>>());
        let restored = engine
            .decide_hour(7e8, 4.2e8, &background, f64::INFINITY)
            .unwrap();
        assert_decisions_bitwise_equal(&restored, &before, "restored caps");
    }

    #[test]
    fn cache_stats_and_built_keys_track_the_lru() {
        let sys = DataCenterSystem::paper_system(1);
        let mut engine = DecisionEngine::new(sys.clone(), CapperConfig::default());
        assert_eq!(engine.cache_stats(), EngineStats::default());
        let hours = sweep(&sys);
        for (offered, premium, background, budget) in &hours {
            engine
                .decide_hour(*offered, *premium, background, *budget)
                .unwrap();
        }
        let stats = engine.cache_stats();
        assert!(stats.misses > 0, "first day must build models");
        assert!(stats.hits > 0, "revisited kept-sets must hit");
        assert_eq!(stats.evictions, 0, "a day's keys fit in the cache");
        let keys = engine.drain_built_keys();
        assert_eq!(keys.len() as u64, stats.misses, "one key per rebuild");
        assert!(engine.drain_built_keys().is_empty(), "drain empties");

        // The fingerprints are a pure function of the request sequence:
        // a fresh engine fed the same hours produces the same keys.
        let mut fresh = DecisionEngine::new(sys.clone(), CapperConfig::default());
        for (offered, premium, background, budget) in &hours {
            fresh
                .decide_hour(*offered, *premium, background, *budget)
                .unwrap();
        }
        assert_eq!(fresh.drain_built_keys(), keys);
        assert_eq!(fresh.cache_stats(), stats);
    }

    #[test]
    fn engine_rejects_bad_inputs_like_the_capper() {
        let sys = DataCenterSystem::paper_system(1);
        let mut engine = DecisionEngine::new(sys.clone(), CapperConfig::default());
        let capacity = sys.total_capacity();
        assert!(matches!(
            engine.decide_hour(3.0 * capacity, 1.5 * capacity, &[330.0, 410.0, 280.0], 1e9),
            Err(CoreError::InsufficientCapacity { .. })
        ));
        assert!(matches!(
            engine.decide_hour(1e8, 5e7, &[330.0], 1e9),
            Err(CoreError::Dimension { .. })
        ));
        // The engine still works after the error paths.
        engine
            .decide_hour(4e8, 2e8, &[330.0, 410.0, 280.0], f64::INFINITY)
            .unwrap();
    }
}
