//! Incremental decision engine: the bill capper with retained MILPs.
//!
//! [`crate::BillCapper`] rebuilds both optimization models from scratch
//! every hour. The models' *shape* barely moves, though: variables and
//! rows are fixed by the data-center spec, and only the kept price-level
//! set per site (a function of the background demand `d` relative to the
//! policy breakpoints) changes structure. [`DecisionEngine`] exploits
//! that: it builds each step's model once, and between hours rewrites
//! only the values that depend on the inputs —
//!
//! * the `z` coefficients of the `lvl_hi_{i}_{k}` / `lvl_lo_{i}_{k}`
//!   interval rows (functions of `d_i`),
//! * the `demand` / `offered` row RHS (`λ / RATE_SCALE`),
//! * the `budget` row RHS.
//!
//! When a background change moves a site across a breakpoint the kept
//! level set changes, and the engine rebuilds that step's model from
//! scratch — structure is never patched in place.
//!
//! **Bitwise contract:** with basis reuse off (the default), every
//! decision is bit-for-bit identical to [`crate::BillCapper::decide_hour`]
//! on the same inputs. Both paths share the level math
//! (`minimize::site_level_params`) and the step orchestration
//! (`capper::decide_hour_impl`), and the value mutators write
//! the exact floats the fresh builder would, so the solver sees an
//! identical model either way. Basis reuse ([`DecisionEngine::
//! set_reuse_basis`]) trades that guarantee for speed: the optimum is
//! preserved (and re-certified under `BILLCAP_AUDIT`), but alternative
//! optima may tie-break differently in the last ulp.

use crate::capper::{decide_hour_impl, CapperConfig, HourBackend, HourDecision};
use crate::error::CoreError;
use crate::minimize::{
    build_piecewise_core, extract_allocation, site_level_params, Allocation, LevelParam,
    PiecewiseVars, RATE_SCALE,
};
use crate::spec::DataCenterSystem;
use billcap_milp::{
    ConstraintOp, IncrementalModel, IncrementalSolver, MipSolver, Model, Sense, VarId,
};

/// One retained step model: the incremental wrapper, the variable
/// handles, and the kept-level key its structure was built for.
struct StepModel {
    im: IncrementalModel,
    vars: PiecewiseVars,
    /// Kept price-level indices per site — the structural key. When the
    /// hour's key differs the model is rebuilt, never patched.
    kept: Vec<Vec<usize>>,
}

/// The retained solver state behind a [`DecisionEngine`]; implements
/// [`HourBackend`] so [`decide_hour_impl`] drives it exactly like the
/// fresh-model capper.
struct EngineCore {
    integral_servers: bool,
    /// Serves steps 1 and 3 (both are `cost_min` solves, differing only
    /// in the demand RHS).
    min_solver: IncrementalSolver,
    max_solver: IncrementalSolver,
    cost_min: Option<StepModel>,
    thru_max: Option<StepModel>,
}

/// A [`crate::BillCapper`] that keeps its MILPs (and optionally their
/// root bases) alive between hours. See the module docs for the reuse
/// strategy and the bitwise contract.
pub struct DecisionEngine {
    system: DataCenterSystem,
    core: EngineCore,
}

impl DecisionEngine {
    /// Builds an engine for `system` with the given capper config.
    /// Models are built lazily on the first decision.
    pub fn new(system: DataCenterSystem, config: CapperConfig) -> Self {
        Self {
            system,
            core: EngineCore {
                integral_servers: config.integral_servers,
                min_solver: IncrementalSolver::new(MipSolver::default()),
                max_solver: IncrementalSolver::new(MipSolver::default()),
                cost_min: None,
                thru_max: None,
            },
        }
    }

    /// The system this engine decides for.
    pub fn system(&self) -> &DataCenterSystem {
        &self.system
    }

    /// Toggles root-basis carry-over between solves. Off by default;
    /// turning it on keeps optima (certified under `BILLCAP_AUDIT`) but
    /// forfeits bitwise identity with the fresh-model capper.
    pub fn set_reuse_basis(&mut self, on: bool) {
        self.core.min_solver.reuse_basis = on;
        self.core.max_solver.reuse_basis = on;
        if !on {
            self.core.min_solver.reset();
            self.core.max_solver.reset();
        }
    }

    /// Whether root-basis carry-over is enabled.
    pub fn reuse_basis(&self) -> bool {
        self.core.min_solver.reuse_basis
    }

    /// Decides one hour's allocation. Same contract as
    /// [`crate::BillCapper::decide_hour`].
    pub fn decide_hour(
        &mut self,
        offered: f64,
        premium_offered: f64,
        background_mw: &[f64],
        hourly_budget: f64,
    ) -> Result<HourDecision, CoreError> {
        decide_hour_impl(
            &mut self.core,
            &self.system,
            offered,
            premium_offered,
            background_mw,
            hourly_budget,
        )
    }
}

impl EngineCore {
    /// Per-site kept-level parameters for this hour's background vector.
    fn level_params(system: &DataCenterSystem, background_mw: &[f64]) -> Vec<Vec<LevelParam>> {
        system
            .sites
            .iter()
            .enumerate()
            .map(|(i, site)| site_level_params(site, system.policy(i), background_mw[i]))
            .collect()
    }

    fn kept_key(params: &[Vec<LevelParam>]) -> Vec<Vec<usize>> {
        params
            .iter()
            .map(|ps| ps.iter().map(|p| p.k).collect())
            .collect()
    }

    /// Rewrites the interval-row `z` coefficients of `step` to this
    /// hour's values. Only called when the kept key matches, so every
    /// `(site, slot)` pair lines up with a retained `(q, z)` pair.
    fn sync_levels(step: &mut StepModel, params: &[Vec<LevelParam>]) -> Result<(), CoreError> {
        for (i, site_params) in params.iter().enumerate() {
            for (p, &(_, _, _, z)) in site_params.iter().zip(&step.vars.levels[i]) {
                let k = p.k;
                step.im
                    .set_coeff(&format!("lvl_hi_{i}_{k}"), z, p.zcoef_hi)?;
                step.im
                    .set_coeff(&format!("lvl_lo_{i}_{k}"), z, p.zcoef_lo)?;
            }
        }
        Ok(())
    }

    /// Ensures the step-1/3 model exists and matches this hour's kept
    /// key, rebuilding from scratch otherwise. The rebuild mirrors
    /// [`crate::CostMinimizer::solve`] exactly (same construction
    /// order), with the demand RHS left for the caller to set.
    fn ensure_cost_min(
        &mut self,
        system: &DataCenterSystem,
        background_mw: &[f64],
        kept: &[Vec<usize>],
    ) -> Result<(), CoreError> {
        if let Some(step) = &self.cost_min {
            if step.kept == kept {
                return Ok(());
            }
        }
        let mut m = Model::new("cost_min", Sense::Minimize);
        let vars = build_piecewise_core(&mut m, system, background_mw, self.integral_servers);
        m.add_constraint(
            "demand",
            vars.lam.iter().map(|&v| (v, 1.0)).collect(),
            ConstraintOp::Eq,
            0.0,
        );
        let obj: Vec<(VarId, f64)> = vars
            .levels
            .iter()
            .flatten()
            .map(|&(_, r, q, _)| (q, r))
            .collect();
        m.set_objective(obj, 0.0);
        self.cost_min = Some(StepModel {
            im: IncrementalModel::new(m)?,
            vars,
            kept: kept.to_vec(),
        });
        Ok(())
    }

    /// Step-2 analogue of [`Self::ensure_cost_min`], mirroring
    /// [`crate::ThroughputMaximizer::solve`]; `offered` and `budget`
    /// RHS are left for the caller.
    fn ensure_thru_max(
        &mut self,
        system: &DataCenterSystem,
        background_mw: &[f64],
        kept: &[Vec<usize>],
    ) -> Result<(), CoreError> {
        if let Some(step) = &self.thru_max {
            if step.kept == kept {
                return Ok(());
            }
        }
        let mut m = Model::new("throughput_max", Sense::Maximize);
        let vars = build_piecewise_core(&mut m, system, background_mw, self.integral_servers);
        m.add_constraint(
            "offered",
            vars.lam.iter().map(|&v| (v, 1.0)).collect(),
            ConstraintOp::Le,
            0.0,
        );
        let cost_terms: Vec<(VarId, f64)> = vars
            .levels
            .iter()
            .flatten()
            .map(|&(_, r, q, _)| (q, r))
            .collect();
        m.add_constraint("budget", cost_terms, ConstraintOp::Le, 0.0);
        m.set_objective(vars.lam.iter().map(|&v| (v, 1.0)).collect(), 0.0);
        self.thru_max = Some(StepModel {
            im: IncrementalModel::new(m)?,
            vars,
            kept: kept.to_vec(),
        });
        Ok(())
    }
}

impl HourBackend for EngineCore {
    fn minimize(
        &mut self,
        system: &DataCenterSystem,
        lambda: f64,
        background_mw: &[f64],
    ) -> Result<Allocation, CoreError> {
        if background_mw.len() != system.len() {
            return Err(CoreError::Dimension {
                expected: system.len(),
                got: background_mw.len(),
            });
        }
        let capacity = system.total_capacity();
        if lambda > capacity {
            return Err(CoreError::InsufficientCapacity {
                demanded: lambda,
                capacity,
            });
        }
        let params = Self::level_params(system, background_mw);
        let kept = Self::kept_key(&params);
        self.ensure_cost_min(system, background_mw, &kept)?;
        let step = self.cost_min.as_mut().expect("ensured above"); // repolint-allow(unwrap): ensure_cost_min always fills the slot
        Self::sync_levels(step, &params)?;
        step.im.set_rhs("demand", lambda / RATE_SCALE)?;
        crate::speclint::lint_model_if_enabled(step.im.model())?;
        let sol = self.min_solver.solve(&step.im)?;
        crate::audit::certify_if_enabled(step.im.model(), &sol)?;
        Ok(extract_allocation(system, &step.vars, &sol))
    }

    fn maximize(
        &mut self,
        system: &DataCenterSystem,
        lambda: f64,
        background_mw: &[f64],
        budget: f64,
    ) -> Result<Allocation, CoreError> {
        if background_mw.len() != system.len() {
            return Err(CoreError::Dimension {
                expected: system.len(),
                got: background_mw.len(),
            });
        }
        let params = Self::level_params(system, background_mw);
        let kept = Self::kept_key(&params);
        self.ensure_thru_max(system, background_mw, &kept)?;
        let step = self.thru_max.as_mut().expect("ensured above"); // repolint-allow(unwrap): ensure_thru_max always fills the slot
        Self::sync_levels(step, &params)?;
        step.im.set_rhs("offered", lambda / RATE_SCALE)?;
        step.im.set_rhs("budget", budget.max(0.0))?;
        crate::speclint::lint_model_if_enabled(step.im.model())?;
        let sol = self.max_solver.solve(&step.im)?;
        crate::audit::certify_if_enabled(step.im.model(), &sol)?;
        Ok(extract_allocation(system, &step.vars, &sol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capper::{BillCapper, HourOutcome};
    use crate::spec::DataCenterSystem;

    /// Bitwise equality on everything deterministic in a decision
    /// (wall-clock ns fields are machine noise and excluded).
    fn assert_decisions_bitwise_equal(a: &HourDecision, b: &HourDecision, ctx: &str) {
        assert_eq!(a.outcome, b.outcome, "{ctx}: outcome");
        assert_eq!(a.offered.to_bits(), b.offered.to_bits(), "{ctx}: offered");
        assert_eq!(
            a.premium_served.to_bits(),
            b.premium_served.to_bits(),
            "{ctx}: premium_served"
        );
        assert_eq!(
            a.ordinary_served.to_bits(),
            b.ordinary_served.to_bits(),
            "{ctx}: ordinary_served"
        );
        assert_eq!(a.budget.to_bits(), b.budget.to_bits(), "{ctx}: budget");
        assert_eq!(a.trace.solves, b.trace.solves, "{ctx}: solves");
        assert_eq!(a.trace.nodes, b.trace.nodes, "{ctx}: nodes");
        assert_eq!(
            a.trace.lp_iterations, b.trace.lp_iterations,
            "{ctx}: lp_iterations"
        );
        let (x, y) = (&a.allocation, &b.allocation);
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&x.lambda), bits(&y.lambda), "{ctx}: lambda");
        assert_eq!(x.servers, y.servers, "{ctx}: servers");
        assert_eq!(bits(&x.power_mw), bits(&y.power_mw), "{ctx}: power");
        assert_eq!(bits(&x.price), bits(&y.price), "{ctx}: price");
        assert_eq!(x.level, y.level, "{ctx}: level");
        assert_eq!(bits(&x.cost), bits(&y.cost), "{ctx}: cost");
        assert_eq!(
            x.total_cost.to_bits(),
            y.total_cost.to_bits(),
            "{ctx}: total_cost"
        );
        assert_eq!(
            x.total_lambda.to_bits(),
            y.total_lambda.to_bits(),
            "{ctx}: total_lambda"
        );
    }

    /// A day-long sweep that exercises all three outcomes and drags
    /// site backgrounds across price breakpoints (forcing kept-level
    /// rebuilds between mutate-only hours). Budgets are anchored to the
    /// hour's actual minimized cost so the throttled branch really runs.
    fn sweep(sys: &DataCenterSystem) -> Vec<(f64, f64, Vec<f64>, f64)> {
        let minimizer = crate::minimize::CostMinimizer::default();
        let mut hours = Vec::new();
        for h in 0..24u32 {
            let t = f64::from(h);
            let offered = 4e8 + 3e8 * (t / 23.0);
            let premium = 0.6 * offered;
            // Site 0 crosses its 450-MW breakpoint mid-sweep; site 1
            // wanders within a level; site 2 crosses twice.
            let background = vec![
                330.0 + 10.0 * t,
                410.0 + 2.0 * t,
                280.0 + 25.0 * (t * 0.7).sin().abs() * t.min(8.0),
            ];
            let full_cost = minimizer
                .solve(sys, offered, &background)
                .unwrap()
                .total_cost;
            let budget = match h % 4 {
                0 => f64::INFINITY,
                1 => 0.93 * full_cost,
                2 => 0.8 * full_cost,
                _ => 1.0,
            };
            hours.push((offered, premium, background, budget));
        }
        hours
    }

    #[test]
    fn engine_matches_fresh_capper_bitwise() {
        let sys = DataCenterSystem::paper_system(1);
        let capper = BillCapper::default();
        let mut engine = DecisionEngine::new(sys.clone(), CapperConfig::default());
        let mut outcomes = [0usize; 3];
        for (h, (offered, premium, background, budget)) in sweep(&sys).into_iter().enumerate() {
            let fresh = capper
                .decide_hour(&sys, offered, premium, &background, budget)
                .unwrap();
            let served = engine
                .decide_hour(offered, premium, &background, budget)
                .unwrap();
            assert_decisions_bitwise_equal(&served, &fresh, &format!("hour {h}"));
            outcomes[match fresh.outcome {
                HourOutcome::WithinBudget => 0,
                HourOutcome::Throttled => 1,
                HourOutcome::PremiumOverride => 2,
            }] += 1;
        }
        assert!(
            outcomes.iter().all(|&c| c > 0),
            "sweep must exercise all outcomes, got {outcomes:?}"
        );
    }

    #[test]
    fn engine_matches_fresh_capper_with_integral_servers() {
        let sys = DataCenterSystem::paper_system(1);
        let config = CapperConfig {
            integral_servers: true,
        };
        let capper = BillCapper::new(config.clone());
        let mut engine = DecisionEngine::new(sys.clone(), config);
        for (h, (offered, premium, background, budget)) in
            sweep(&sys).into_iter().step_by(6).enumerate()
        {
            let fresh = capper
                .decide_hour(&sys, offered, premium, &background, budget)
                .unwrap();
            let served = engine
                .decide_hour(offered, premium, &background, budget)
                .unwrap();
            assert_decisions_bitwise_equal(&served, &fresh, &format!("integral hour {h}"));
        }
    }

    #[test]
    fn basis_reuse_preserves_the_decision_outcome() {
        let sys = DataCenterSystem::paper_system(1);
        let capper = BillCapper::default();
        let mut engine = DecisionEngine::new(sys.clone(), CapperConfig::default());
        engine.set_reuse_basis(true);
        assert!(engine.reuse_basis());
        for (offered, premium, background, budget) in sweep(&sys) {
            let fresh = capper
                .decide_hour(&sys, offered, premium, &background, budget)
                .unwrap();
            let served = engine
                .decide_hour(offered, premium, &background, budget)
                .unwrap();
            assert_eq!(served.outcome, fresh.outcome);
            let scale = fresh.cost().abs().max(1.0);
            assert!(
                (served.cost() - fresh.cost()).abs() <= 1e-7 * scale,
                "cost {} vs {}",
                served.cost(),
                fresh.cost()
            );
            assert!(
                (served.allocation.total_lambda - fresh.allocation.total_lambda).abs()
                    <= 1e-6 * fresh.allocation.total_lambda.max(1.0)
            );
        }
    }

    #[test]
    fn engine_rejects_bad_inputs_like_the_capper() {
        let sys = DataCenterSystem::paper_system(1);
        let mut engine = DecisionEngine::new(sys.clone(), CapperConfig::default());
        let capacity = sys.total_capacity();
        assert!(matches!(
            engine.decide_hour(3.0 * capacity, 1.5 * capacity, &[330.0, 410.0, 280.0], 1e9),
            Err(CoreError::InsufficientCapacity { .. })
        ));
        assert!(matches!(
            engine.decide_hour(1e8, 5e7, &[330.0], 1e9),
            Err(CoreError::Dimension { .. })
        ));
        // The engine still works after the error paths.
        engine
            .decide_hour(4e8, 2e8, &[330.0, 410.0, 280.0], f64::INFINITY)
            .unwrap();
    }
}
