//! Step 2: throughput maximization within a cost budget (paper Section V).
//!
//! Invoked when the minimized cost exceeds the hour's budget: maximize the
//! admitted request rate `Σλ_i ≤ λ` subject to `Σ cost_i ≤ Cs`, reusing the
//! piecewise-price linearization of step 1. Admission control applies only
//! to ordinary customers — the caller ([`crate::BillCapper`]) compares the
//! achievable throughput against the premium rate and falls back to a
//! premium-only cost minimization when even that cannot fit the budget.

use crate::error::CoreError;
use crate::minimize::{build_piecewise_core, extract_allocation, Allocation, RATE_SCALE};
use crate::spec::DataCenterSystem;
use billcap_milp::{ConstraintOp, MipSolver, Model, Sense, VarId};

/// The Step-2 optimizer.
#[derive(Debug, Clone, Default)]
pub struct ThroughputMaximizer {
    /// The MILP solver.
    pub solver: MipSolver,
    /// Model server counts as integers inside the MILP (ablation mode).
    pub integral_servers: bool,
}

impl ThroughputMaximizer {
    /// Maximizes admitted throughput under `budget` ($/hour) for offered
    /// workload `lambda` (requests/hour) and background demand
    /// `background_mw`. The returned allocation may admit less than
    /// `lambda`; it never costs more than `budget`.
    pub fn solve(
        &self,
        system: &DataCenterSystem,
        lambda: f64,
        background_mw: &[f64],
        budget: f64,
    ) -> Result<Allocation, CoreError> {
        if background_mw.len() != system.len() {
            return Err(CoreError::Dimension {
                expected: system.len(),
                got: background_mw.len(),
            });
        }
        let mut m = Model::new("throughput_max", Sense::Maximize);
        let vars = build_piecewise_core(&mut m, system, background_mw, self.integral_servers);

        // Admit at most the offered workload (paper: the total assigned
        // requests may not exceed the arrivals).
        m.add_constraint(
            "offered",
            vars.lam.iter().map(|&v| (v, 1.0)).collect(),
            ConstraintOp::Le,
            lambda / RATE_SCALE,
        );

        // Budget: sum of r_ik * q_ik <= Cs over the reachable levels.
        let cost_terms: Vec<(VarId, f64)> = vars
            .levels
            .iter()
            .flatten()
            .map(|&(_, r, q, _)| (q, r))
            .collect();
        m.add_constraint("budget", cost_terms, ConstraintOp::Le, budget.max(0.0));

        // Objective: total admitted rate.
        m.set_objective(vars.lam.iter().map(|&v| (v, 1.0)).collect(), 0.0);

        crate::speclint::lint_model_if_enabled(&m)?;
        let sol = self.solver.solve(&m)?;
        crate::audit::certify_if_enabled(&m, &sol)?;
        Ok(extract_allocation(system, &vars, &sol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimize::CostMinimizer;
    use crate::spec::DataCenterSystem;

    fn background() -> Vec<f64> {
        vec![330.0, 410.0, 280.0]
    }

    #[test]
    fn generous_budget_admits_everything() {
        let sys = DataCenterSystem::paper_system(1);
        let lambda = 4e8;
        let alloc = ThroughputMaximizer::default()
            .solve(&sys, lambda, &background(), 1e9)
            .unwrap();
        assert!((alloc.total_lambda - lambda).abs() / lambda < 1e-6);
    }

    #[test]
    fn tight_budget_caps_cost() {
        let sys = DataCenterSystem::paper_system(1);
        let lambda = 8e8;
        // Find the unconstrained minimum cost, then offer half as budget.
        let min_alloc = CostMinimizer::default()
            .solve(&sys, lambda, &background())
            .unwrap();
        let budget = 0.5 * min_alloc.total_cost;
        let alloc = ThroughputMaximizer::default()
            .solve(&sys, lambda, &background(), budget)
            .unwrap();
        assert!(
            alloc.total_cost <= budget * (1.0 + 1e-6),
            "cost {} over budget {budget}",
            alloc.total_cost
        );
        assert!(alloc.total_lambda < lambda);
        assert!(alloc.total_lambda > 0.0);
    }

    #[test]
    fn throughput_monotone_in_budget() {
        let sys = DataCenterSystem::paper_system(1);
        let lambda = 8e8;
        let d = background();
        let min_cost = CostMinimizer::default()
            .solve(&sys, lambda, &d)
            .unwrap()
            .total_cost;
        let mut prev = -1.0;
        for frac in [0.2, 0.4, 0.6, 0.8, 1.0] {
            let alloc = ThroughputMaximizer::default()
                .solve(&sys, lambda, &d, frac * min_cost)
                .unwrap();
            assert!(
                alloc.total_lambda >= prev - 1e-3,
                "throughput decreased at budget fraction {frac}"
            );
            prev = alloc.total_lambda;
        }
        // At the full minimized cost, everything is admitted.
        assert!((prev - lambda).abs() / lambda < 1e-6);
    }

    #[test]
    fn zero_budget_serves_nothing_beyond_base() {
        // Base (QoS headroom) power still costs a little, so a zero budget
        // admits zero throughput only if base power is billed within it;
        // the formulation treats base power as unavoidable, so the solver
        // must squeeze throughput to zero and may still report base cost.
        let sys = DataCenterSystem::paper_system(1);
        let alloc = ThroughputMaximizer::default()
            .solve(&sys, 5e8, &background(), 0.0)
            .err();
        // Budget 0 < unavoidable base-power cost: infeasible is the honest
        // answer; the capper handles it by falling back to premium-only
        // minimization.
        assert!(alloc.is_some());
    }

    #[test]
    fn dimension_mismatch_detected() {
        let sys = DataCenterSystem::paper_system(1);
        let r = ThroughputMaximizer::default().solve(&sys, 1e8, &[100.0], 1e6);
        assert!(matches!(r, Err(CoreError::Dimension { .. })));
    }

    #[test]
    fn budget_binding_is_tight() {
        // When the budget binds, spending should be close to the budget
        // (the optimizer wrings out every dollar) — the paper reports
        // 98.5 % budget utilization.
        let sys = DataCenterSystem::paper_system(1);
        let lambda = 8e8;
        let d = background();
        let min_cost = CostMinimizer::default()
            .solve(&sys, lambda, &d)
            .unwrap()
            .total_cost;
        let budget = 0.6 * min_cost;
        let alloc = ThroughputMaximizer::default()
            .solve(&sys, lambda, &d, budget)
            .unwrap();
        assert!(
            alloc.total_cost > 0.9 * budget,
            "only used {} of {budget}",
            alloc.total_cost
        );
    }
}
