//! Static spec analyzer: paper invariants re-derived before any solve.
//!
//! [`lint_system`] checks a [`DataCenterSystem`] — sites, pricing
//! policies, and their interplay — against the invariants the paper's
//! formulation silently assumes, without building or solving a MILP.
//! Findings reuse the stable-coded [`Finding`] shape of
//! [`billcap_milp::lint`], with spec *field paths* as locations
//! (`sites[0].power_cap_mw`) so a bad scenario reads like a compiler
//! diagnostic.
//!
//! | code | severity | invariant |
//! |------|----------|-----------|
//! | S001 | Error   | step-price breakpoints strictly increasing, positive, finite |
//! | S002 | Error   | one more price than breakpoints; prices finite, ≥ 0 |
//! | S003 | Error   | budget weights sum to 1 and are non-negative |
//! | S004 | Error   | premium fraction ∈ (0, 1] |
//! | S005 | Error   | QoS target achievable at zero load (headroom exists) |
//! | S006 | Error   | power cap covers the idle (QoS headroom) power |
//! | S007 | Error   | one pricing policy per site |
//! | S008 | Warning | site has zero deliverable capacity |
//! | S009 | Info    | price level unreachable within the site's power cap |
//! | S010 | Error   | cap schedule malformed for the system, or derates a site below its idle power |
//!
//! The `BILLCAP_LINT` environment variable (or the CLI `--lint` flag)
//! arms a pre-flight inside both optimizers: `deny` refuses to solve a
//! model with Error-severity findings, `warn` prints them and proceeds.

use crate::error::CoreError;
use crate::spec::DataCenterSystem;
use billcap_milp::lint::{Finding, Severity};
use billcap_milp::{Model, SolveError};
use std::fmt;

/// Result of linting a spec: findings only (a spec has no coefficient
/// matrix to summarize). Same JSONL conventions as
/// [`billcap_milp::LintReport`].
#[derive(Debug, Clone, Default)]
pub struct SpecReport {
    /// All findings, in check order (S001 … S009).
    pub findings: Vec<Finding>,
}

impl SpecReport {
    /// Findings at [`Severity::Error`].
    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
    }

    /// Whether the report carries no `Error`-severity finding.
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }

    /// Whether any finding carries `code`.
    pub fn has(&self, code: &str) -> bool {
        self.findings.iter().any(|f| f.code == code)
    }

    /// Appends another report's findings.
    pub fn extend(&mut self, other: SpecReport) {
        self.findings.extend(other.findings);
    }

    /// The findings as JSONL (one object per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_json().render());
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for SpecReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        Ok(())
    }
}

/// Lints a full system spec: per-policy structure (S001/S002), per-site
/// physics (S005/S006/S008), the site↔policy pairing (S007), and
/// cross-checks between each site's cap and its policy's levels (S009).
/// Never panics, even on deliberately corrupted specs.
pub fn lint_system(system: &DataCenterSystem) -> SpecReport {
    let mut findings = Vec::new();

    if system.sites.len() != system.policies.policies.len() {
        findings.push(Finding {
            code: "S007",
            severity: Severity::Error,
            location: "policies".into(),
            message: format!(
                "{} sites but {} pricing policies; every site needs exactly one",
                system.sites.len(),
                system.policies.policies.len()
            ),
        });
    }

    for (i, policy) in system.policies.policies.iter().enumerate() {
        lint_policy(i, policy, &mut findings);
    }

    for (i, site) in system.sites.iter().enumerate() {
        let headroom = match site.queue.qos_headroom(site.response_target) {
            Ok(h) => h,
            Err(e) => {
                findings.push(Finding {
                    code: "S005",
                    severity: Severity::Error,
                    location: format!("sites[{i}].response_target"),
                    message: format!(
                        "QoS target {} h is unreachable even at zero load ({e}); \
                         raise the target above the bare service time {:.3e} h",
                        site.response_target,
                        site.queue.service_time()
                    ),
                });
                continue;
            }
        };
        let base_mw = site.power.watts_per_server() * headroom / 1e6;
        if !site.power_cap_mw.is_finite() || site.power_cap_mw < base_mw {
            findings.push(Finding {
                code: "S006",
                severity: Severity::Error,
                location: format!("sites[{i}].power_cap_mw"),
                message: format!(
                    "cap {} MW is below the idle (QoS headroom) power {base_mw:.6} MW; \
                     the site cannot even sit idle within its cap",
                    site.power_cap_mw
                ),
            });
            continue;
        }
        // Deliverable capacity, recomputed without panicking accessors.
        let a = site.mw_per_request();
        let by_servers = (site.max_servers as f64 - headroom).max(0.0) * site.queue.service_rate;
        let by_power = if a > 0.0 {
            ((site.power_cap_mw - base_mw) / a).max(0.0)
        } else {
            f64::INFINITY
        };
        if by_servers.min(by_power) <= 0.0 {
            findings.push(Finding {
                code: "S008",
                severity: Severity::Warning,
                location: format!("sites[{i}]"),
                message: format!(
                    "site can serve zero requests (server bound {by_servers:.3}, \
                     power bound {by_power:.3} req/h); it only burns idle power"
                ),
            });
        }
        // S009: levels this site can never reach on its own draw.
        if let Some(policy) = system.policies.policies.get(i) {
            let bps = policy.breakpoints();
            if policy.prices().len() == bps.len() + 1
                && bps.windows(2).all(|w| w[0] < w[1])
                && bps.iter().all(|&b| b > 0.0 && b.is_finite())
            {
                for (k, &lo) in bps.iter().enumerate() {
                    if lo > site.power_cap_mw {
                        findings.push(Finding {
                            code: "S009",
                            severity: Severity::Info,
                            location: format!("policies[{i}].breakpoints[{k}]"),
                            message: format!(
                                "level {} starts at {lo} MW, beyond the site's \
                                 {} MW cap; only background demand can reach it",
                                k + 1,
                                site.power_cap_mw
                            ),
                        });
                        break; // higher levels are unreachable a fortiori
                    }
                }
            }
        }
    }

    SpecReport { findings }
}

fn lint_policy(i: usize, policy: &billcap_market::StepPolicy, findings: &mut Vec<Finding>) {
    let bps = policy.breakpoints();
    let prices = policy.prices();
    if prices.len() != bps.len() + 1 {
        findings.push(Finding {
            code: "S002",
            severity: Severity::Error,
            location: format!("policies[{i}].prices"),
            message: format!(
                "{} breakpoints need exactly {} prices, got {}; \
                 levels and prices are misaligned",
                bps.len(),
                bps.len() + 1,
                prices.len()
            ),
        });
    }
    for (k, w) in bps.windows(2).enumerate() {
        // NaN breakpoints must also trip this check, so avoid `>=`.
        if w[0].partial_cmp(&w[1]) != Some(std::cmp::Ordering::Less) {
            findings.push(Finding {
                code: "S001",
                severity: Severity::Error,
                location: format!("policies[{i}].breakpoints[{}]", k + 1),
                message: format!(
                    "breakpoint {} MW does not exceed its predecessor {} MW; \
                     steps must be strictly increasing",
                    w[1], w[0]
                ),
            });
        }
    }
    for (k, &b) in bps.iter().enumerate() {
        if !(b > 0.0 && b.is_finite()) {
            findings.push(Finding {
                code: "S001",
                severity: Severity::Error,
                location: format!("policies[{i}].breakpoints[{k}]"),
                message: format!("breakpoint {b} MW must be positive and finite"),
            });
        }
    }
    for (k, &p) in prices.iter().enumerate() {
        if !(p.is_finite() && p >= 0.0) {
            findings.push(Finding {
                code: "S002",
                severity: Severity::Error,
                location: format!("policies[{i}].prices[{k}]"),
                message: format!("price {p} $/MWh must be finite and non-negative"),
            });
        }
    }
}

/// S003: budget weights must be non-negative and sum to 1 (they split a
/// weekly budget across hours; a bad sum silently re-scales the budget).
pub fn lint_budget_weights(weights: &[f64]) -> SpecReport {
    let mut findings = Vec::new();
    // detlint-allow(D006): sequential fixed-order sum over a short weight slice; bitwise-stable
    let sum: f64 = weights.iter().sum();
    if !sum.is_finite() || (sum - 1.0).abs() > 1e-6 {
        findings.push(Finding {
            code: "S003",
            severity: Severity::Error,
            location: "budgeter.weights".into(),
            message: format!(
                "weights sum to {sum:.9}, not 1; the weekly budget would be \
                 silently re-scaled by that factor"
            ),
        });
    }
    if let Some(k) = weights.iter().position(|w| *w < 0.0 || !w.is_finite()) {
        findings.push(Finding {
            code: "S003",
            severity: Severity::Error,
            location: format!("budgeter.weights[{k}]"),
            message: format!(
                "weight {} is negative or non-finite; hourly budgets must be ≥ 0",
                weights[k]
            ),
        });
    }
    SpecReport { findings }
}

/// S010: a [`CapSchedule`](crate::CapSchedule) must fit the system it
/// will re-cap — one cap per site — and must never derate a site below
/// its idle (QoS headroom) power, the time-varying analogue of S006: a
/// single under-idle hour makes that hour's step-1 model infeasible.
pub fn lint_cap_schedule(system: &DataCenterSystem, schedule: &crate::CapSchedule) -> SpecReport {
    let mut findings = Vec::new();
    if schedule.sites() != system.sites.len() {
        findings.push(Finding {
            code: "S010",
            severity: Severity::Error,
            location: "cap_schedule".into(),
            message: format!(
                "schedule covers {} sites but the system has {}; \
                 every site needs exactly one cap per hour",
                schedule.sites(),
                system.sites.len()
            ),
        });
        return SpecReport { findings };
    }
    let mins = schedule.min_caps();
    for (i, site) in system.sites.iter().enumerate() {
        let headroom = match site.queue.qos_headroom(site.response_target) {
            Ok(h) => h,
            // S005 territory; lint_system reports it.
            Err(_) => continue,
        };
        let base_mw = site.power.watts_per_server() * headroom / 1e6;
        if mins[i] < base_mw {
            findings.push(Finding {
                code: "S010",
                severity: Severity::Error,
                location: format!("cap_schedule.sites[{i}]"),
                message: format!(
                    "schedule derates site {i} to {} MW, below its idle \
                     (QoS headroom) power {base_mw:.6} MW; that hour's \
                     cost model is infeasible",
                    mins[i]
                ),
            });
        }
    }
    SpecReport { findings }
}

/// S004: the premium share of offered traffic must lie in `(0, 1]` — the
/// paper's premium class exists (> 0) and cannot exceed the total.
pub fn lint_premium_fraction(frac: f64) -> SpecReport {
    let mut findings = Vec::new();
    if !(frac > 0.0 && frac <= 1.0) {
        findings.push(Finding {
            code: "S004",
            severity: Severity::Error,
            location: "scenario.premium_fraction".into(),
            message: format!(
                "premium fraction {frac} outside (0, 1]; premium traffic is \
                 a share of the offered rate"
            ),
        });
    }
    SpecReport { findings }
}

/// How the `BILLCAP_LINT` pre-flight behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintMode {
    /// No pre-flight (the default).
    Off,
    /// Print Error-severity findings to stderr, then solve anyway.
    Warn,
    /// Refuse to solve a model with Error-severity findings.
    Deny,
}

/// The lint mode requested by the `BILLCAP_LINT` environment variable:
/// `deny` (or the CLI `--lint` flag, which sets it) refuses bad models,
/// `warn`/`1` prints and proceeds, anything else is off.
pub fn lint_env_mode() -> LintMode {
    // detlint-allow(D004): BILLCAP_LINT selects diagnostic strictness, not decision inputs
    match std::env::var("BILLCAP_LINT") {
        Ok(v) if v == "deny" => LintMode::Deny,
        Ok(v) if v == "warn" || v == "1" => LintMode::Warn,
        _ => LintMode::Off,
    }
}

/// Pre-flight hook both optimizers call before solving. Under
/// [`LintMode::Deny`], a model whose *only* Error finding is the `M007`
/// static-infeasibility proof maps to [`SolveError::Infeasible`] — the
/// same error the solver itself would return — so the capper's step-2
/// fallback (zero achievable throughput under a starvation budget) keeps
/// working; any other Error finding becomes [`CoreError::Lint`].
pub(crate) fn lint_model_if_enabled(model: &Model) -> Result<(), CoreError> {
    let mode = lint_env_mode();
    if mode == LintMode::Off {
        return Ok(());
    }
    let report = billcap_milp::lint_model(model);
    if report.is_clean() {
        return Ok(());
    }
    let errors: Vec<String> = report.errors().map(|f| f.to_string()).collect();
    match mode {
        LintMode::Off => unreachable!("handled above"),
        LintMode::Warn => {
            for e in &errors {
                eprintln!("lint: {e}");
            }
            Ok(())
        }
        LintMode::Deny => {
            if report.errors().all(|f| f.code == "M007") {
                return Err(CoreError::Solver(SolveError::Infeasible));
            }
            Err(CoreError::Lint(errors.join("; ")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use billcap_market::{PricingPolicySet, StepPolicy};

    fn paper() -> DataCenterSystem {
        DataCenterSystem::paper_system(1)
    }

    #[test]
    fn paper_systems_lint_clean() {
        for policy in 0..4 {
            let r = lint_system(&DataCenterSystem::paper_system(policy));
            assert!(r.is_clean(), "policy {policy}:\n{r}");
        }
        let r = lint_system(&DataCenterSystem::synthetic(10, 10));
        assert!(r.is_clean(), "synthetic:\n{r}");
    }

    #[test]
    fn flags_non_monotone_breakpoints() {
        let mut sys = paper();
        sys.policies.policies[1] =
            StepPolicy::new_unchecked(vec![450.0, 200.0, 600.0], vec![1.0, 2.0, 3.0, 4.0]);
        let r = lint_system(&sys);
        let f = r.findings.iter().find(|f| f.code == "S001").expect("S001");
        assert!(f.location.starts_with("policies[1].breakpoints"), "{f}");
        assert!(!r.is_clean());
    }

    #[test]
    fn flags_price_vector_mismatch() {
        let mut sys = paper();
        sys.policies.policies[0] = StepPolicy::new_unchecked(vec![200.0], vec![1.0, 2.0, 3.0]);
        let r = lint_system(&sys);
        assert!(r.has("S002"), "{r}");
    }

    #[test]
    fn flags_negative_price() {
        let mut sys = paper();
        sys.policies.policies[2] = StepPolicy::new_unchecked(vec![200.0], vec![10.0, -4.0]);
        let r = lint_system(&sys);
        let f = r.findings.iter().find(|f| f.code == "S002").expect("S002");
        assert_eq!(f.location, "policies[2].prices[1]");
    }

    #[test]
    fn flags_bad_weights() {
        let r = lint_budget_weights(&[0.5, 0.4]);
        assert!(r.has("S003") && !r.is_clean());
        let r = lint_budget_weights(&[1.5, -0.5]);
        assert!(r.has("S003"));
        let uniform = vec![1.0 / 168.0; 168];
        assert!(lint_budget_weights(&uniform).is_clean());
    }

    #[test]
    fn cap_schedule_lints() {
        use crate::CapSchedule;
        let sys = paper();
        // The paper caps, flat: clean.
        let flat = CapSchedule::constant_from(&sys);
        assert!(lint_cap_schedule(&sys, &flat).is_clean());
        // A 30% derate stays comfortably above idle power: clean.
        let caps: Vec<f64> = sys.sites.iter().map(|s| s.power_cap_mw).collect();
        let derate = CapSchedule::derating(&caps, 48, 0.3, 42);
        assert!(lint_cap_schedule(&sys, &derate).is_clean());
        // Wrong site count: S010.
        let wrong = CapSchedule::new(vec![vec![100.0, 50.0]]);
        let r = lint_cap_schedule(&sys, &wrong);
        assert!(r.has("S010") && !r.is_clean(), "{r}");
        // One hour derates a site below its idle draw: S010.
        let mut rows = vec![caps.clone(); 3];
        rows[1][1] = 1e-9;
        let starved = CapSchedule::new(rows);
        let r = lint_cap_schedule(&sys, &starved);
        let f = r.findings.iter().find(|f| f.code == "S010").expect("S010");
        assert_eq!(f.location, "cap_schedule.sites[1]");
    }

    #[test]
    fn flags_bad_premium_fraction() {
        assert!(!lint_premium_fraction(0.0).is_clean());
        assert!(!lint_premium_fraction(1.5).is_clean());
        assert!(!lint_premium_fraction(f64::NAN).is_clean());
        assert!(lint_premium_fraction(0.8).is_clean());
        assert!(lint_premium_fraction(1.0).is_clean());
    }

    #[test]
    fn flags_unreachable_qos_target() {
        let mut sys = paper();
        // Target below the bare service time: unreachable at any load.
        sys.sites[0].response_target = 0.1 / sys.sites[0].queue.service_rate;
        let r = lint_system(&sys);
        let f = r.findings.iter().find(|f| f.code == "S005").expect("S005");
        assert_eq!(f.location, "sites[0].response_target");
    }

    #[test]
    fn flags_cap_below_idle_power() {
        let mut sys = paper();
        sys.sites[1].power_cap_mw = 1e-9; // idle draw is a few kW
        let r = lint_system(&sys);
        let f = r.findings.iter().find(|f| f.code == "S006").expect("S006");
        assert_eq!(f.location, "sites[1].power_cap_mw");
        assert!(!r.is_clean());
    }

    #[test]
    fn flags_policy_count_mismatch() {
        let mut sys = paper();
        sys.policies = PricingPolicySet::policy1(2);
        let r = lint_system(&sys);
        assert!(r.has("S007"), "{r}");
    }

    #[test]
    fn flags_zero_capacity_site() {
        let mut sys = paper();
        sys.sites[2].max_servers = 0;
        let r = lint_system(&sys);
        assert!(r.has("S008"), "{r}");
        assert!(r.is_clean(), "S008 is a warning: {r}");
    }

    #[test]
    fn reports_unreachable_levels() {
        let mut sys = paper();
        // dc2's cap is 65 MW; its policy's upper breakpoints (200+) are
        // unreachable on the site's own draw.
        sys.sites[1].power_cap_mw = 65.0;
        let r = lint_system(&sys);
        assert!(r.has("S009"), "{r}");
        assert!(r.is_clean());
    }

    #[test]
    fn corrupt_spec_never_panics_the_linter() {
        let mut sys = paper();
        sys.sites[0].response_target = -1.0;
        sys.sites[1].power_cap_mw = f64::NAN;
        sys.sites[2].max_servers = 0;
        sys.policies.policies[0] = StepPolicy::new_unchecked(vec![], vec![]);
        sys.policies.policies[2] =
            StepPolicy::new_unchecked(vec![f64::INFINITY], vec![f64::NAN, 1.0]);
        let r = lint_system(&sys);
        assert!(!r.is_clean());
        assert!(r.findings.len() >= 4, "{r}");
    }

    #[test]
    fn jsonl_export_is_parseable() {
        let mut sys = paper();
        sys.sites[1].power_cap_mw = 0.0;
        let r = lint_system(&sys);
        for line in r.to_jsonl().lines() {
            let v = billcap_obs::json::Value::parse(line).expect("valid JSON");
            assert!(v.get("code").is_some());
        }
    }

    #[test]
    fn env_mode_parsing() {
        // Can't set env vars safely under the parallel test harness, so
        // exercise only the current (unset/inherited) state's contract:
        // the mode is one of the three variants and Off means no lint.
        let m = lint_env_mode();
        assert!(matches!(m, LintMode::Off | LintMode::Warn | LintMode::Deny));
    }
}
