//! N-class priority admission (generalizing the paper's premium/ordinary
//! split).
//!
//! The paper notes its 80/20 premium/ordinary proportion "is orthogonal to
//! our algorithm and other methods to define premium users can be easily
//! integrated". This module does that integration: any number of traffic
//! classes in strict priority order, with an arbitrary prefix marked
//! *guaranteed* (served regardless of budget, like the paper's premium
//! class). The budgeted throughput from the step-2 MILP is then handed
//! out in priority order.

use crate::capper::BillCapper;
use crate::error::CoreError;
use crate::minimize::Allocation;
use crate::spec::DataCenterSystem;
use billcap_milp::SolveError;

/// One traffic class.
#[derive(Debug, Clone, PartialEq)]
pub struct PriorityClass {
    /// Class name (for reports).
    pub name: String,
    /// Offered rate (requests/hour).
    pub rate: f64,
    /// Guaranteed classes are served in full even if the budget breaks.
    /// All guaranteed classes must precede non-guaranteed ones.
    pub guaranteed: bool,
}

impl PriorityClass {
    /// A guaranteed (paying) class.
    pub fn guaranteed(name: impl Into<String>, rate: f64) -> Self {
        Self {
            name: name.into(),
            rate,
            guaranteed: true,
        }
    }

    /// A best-effort class.
    pub fn best_effort(name: impl Into<String>, rate: f64) -> Self {
        Self {
            name: name.into(),
            rate,
            guaranteed: false,
        }
    }
}

/// Outcome of a multi-class hour.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDecision {
    /// Admitted rate per class (same order as the input).
    pub admitted: Vec<f64>,
    /// The enforced allocation.
    pub allocation: Allocation,
    /// True when guaranteed traffic forced the budget to be exceeded.
    pub budget_violated: bool,
}

impl BillCapper {
    /// Decides one hour for an ordered list of priority classes
    /// (highest priority first; guaranteed classes must form a prefix).
    ///
    /// Semantics generalize [`BillCapper::decide_hour`]:
    /// 1. minimize cost for the whole offered load — if it fits the
    ///    budget, everyone is served;
    /// 2. otherwise maximize throughput within the budget and hand it out
    ///    in priority order;
    /// 3. if even the guaranteed prefix does not fit, serve exactly the
    ///    guaranteed traffic at minimum cost and report a violation.
    pub fn decide_hour_classes(
        &self,
        system: &DataCenterSystem,
        classes: &[PriorityClass],
        background_mw: &[f64],
        hourly_budget: f64,
    ) -> Result<ClassDecision, CoreError> {
        assert!(!classes.is_empty(), "need at least one class");
        assert!(
            classes.iter().all(|c| c.rate >= 0.0),
            "class rates must be non-negative"
        );
        // Guaranteed prefix check.
        let first_best_effort = classes
            .iter()
            .position(|c| !c.guaranteed)
            .unwrap_or(classes.len());
        assert!(
            classes[first_best_effort..].iter().all(|c| !c.guaranteed),
            "guaranteed classes must form a prefix of the priority order"
        );

        let capacity = system.total_capacity();
        let guaranteed_rate: f64 = classes[..first_best_effort].iter().map(|c| c.rate).sum();
        if guaranteed_rate > capacity {
            return Err(CoreError::InsufficientCapacity {
                demanded: guaranteed_rate,
                capacity,
            });
        }
        let offered: f64 = classes.iter().map(|c| c.rate).sum::<f64>().min(capacity);

        // Step 1: full service.
        let step1 = self.minimizer.solve(system, offered, background_mw)?;
        if step1.total_cost <= hourly_budget {
            return Ok(ClassDecision {
                admitted: distribute(classes, offered),
                allocation: step1,
                budget_violated: false,
            });
        }

        // Step 2: budgeted throughput.
        let step2 = match self
            .maximizer
            .solve(system, offered, background_mw, hourly_budget)
        {
            Ok(a) => Some(a),
            Err(CoreError::Solver(SolveError::Infeasible)) => None,
            Err(e) => return Err(e),
        };
        if let Some(step2) = step2 {
            if step2.total_lambda >= guaranteed_rate - 1e-6 {
                return Ok(ClassDecision {
                    admitted: distribute(classes, step2.total_lambda),
                    allocation: step2,
                    budget_violated: false,
                });
            }
        }

        // Step 3: guaranteed override.
        let step3 = self
            .minimizer
            .solve(system, guaranteed_rate, background_mw)?;
        Ok(ClassDecision {
            admitted: distribute(classes, guaranteed_rate),
            allocation: step3,
            budget_violated: true,
        })
    }
}

/// Hands `throughput` out to classes in priority order.
fn distribute(classes: &[PriorityClass], throughput: f64) -> Vec<f64> {
    let mut remaining = throughput;
    classes
        .iter()
        .map(|c| {
            let take = c.rate.min(remaining.max(0.0));
            remaining -= take;
            take
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DataCenterSystem;

    fn background() -> Vec<f64> {
        vec![360.0, 410.0, 430.0]
    }

    fn classes() -> Vec<PriorityClass> {
        vec![
            PriorityClass::guaranteed("enterprise", 3e8),
            PriorityClass::guaranteed("pro", 2e8),
            PriorityClass::best_effort("free", 2e8),
            PriorityClass::best_effort("batch", 1e8),
        ]
    }

    #[test]
    fn generous_budget_serves_all_classes() {
        let sys = DataCenterSystem::paper_system(1);
        let d = BillCapper::default()
            .decide_hour_classes(&sys, &classes(), &background(), 1e9)
            .unwrap();
        assert_eq!(d.admitted, vec![3e8, 2e8, 2e8, 1e8]);
        assert!(!d.budget_violated);
    }

    #[test]
    fn tight_budget_sheds_lowest_priority_first() {
        let sys = DataCenterSystem::paper_system(1);
        let d = background();
        let capper = BillCapper::default();
        let full_cost = capper
            .decide_hour_classes(&sys, &classes(), &d, f64::INFINITY)
            .unwrap()
            .allocation
            .total_cost;
        let dec = capper
            .decide_hour_classes(&sys, &classes(), &d, 0.95 * full_cost)
            .unwrap();
        // Guaranteed classes intact.
        assert_eq!(dec.admitted[0], 3e8);
        assert_eq!(dec.admitted[1], 2e8);
        // Batch (lowest) sheds before free.
        assert!(dec.admitted[3] < 1e8 - 1.0, "batch {:?}", dec.admitted);
        if dec.admitted[3] > 0.0 {
            assert!((dec.admitted[2] - 2e8).abs() < 1.0, "free must fill first");
        }
        assert!(!dec.budget_violated);
    }

    #[test]
    fn starvation_budget_serves_exactly_the_guaranteed_prefix() {
        let sys = DataCenterSystem::paper_system(1);
        let dec = BillCapper::default()
            .decide_hour_classes(&sys, &classes(), &background(), 1.0)
            .unwrap();
        assert_eq!(dec.admitted, vec![3e8, 2e8, 0.0, 0.0]);
        assert!(dec.budget_violated);
    }

    #[test]
    fn two_classes_reduce_to_the_paper_scheme() {
        // premium/ordinary via the class API must match decide_hour.
        let sys = DataCenterSystem::paper_system(1);
        let d = background();
        let offered = 8e8;
        let premium = 0.8 * offered;
        let capper = BillCapper::default();
        for budget in [1.0, 2500.0, 1e9] {
            let classic = capper
                .decide_hour(&sys, offered, premium, &d, budget)
                .unwrap();
            let classy = capper
                .decide_hour_classes(
                    &sys,
                    &[
                        PriorityClass::guaranteed("premium", premium),
                        PriorityClass::best_effort("ordinary", offered - premium),
                    ],
                    &d,
                    budget,
                )
                .unwrap();
            assert!(
                (classy.admitted[0] - classic.premium_served).abs() < 1.0,
                "budget {budget}"
            );
            assert!(
                (classy.admitted[1] - classic.ordinary_served).abs() < 1.0,
                "budget {budget}: {} vs {}",
                classy.admitted[1],
                classic.ordinary_served
            );
        }
    }

    #[test]
    fn guaranteed_beyond_capacity_errors() {
        let sys = DataCenterSystem::paper_system(1);
        let too_much = vec![PriorityClass::guaranteed("big", 1e13)];
        assert!(matches!(
            BillCapper::default().decide_hour_classes(&sys, &too_much, &background(), 1e9),
            Err(CoreError::InsufficientCapacity { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "prefix")]
    fn interleaved_guarantees_rejected() {
        let sys = DataCenterSystem::paper_system(1);
        let bad = vec![
            PriorityClass::best_effort("free", 1e8),
            PriorityClass::guaranteed("paid", 1e8),
        ];
        let _ = BillCapper::default().decide_hour_classes(&sys, &bad, &background(), 1e9);
    }
}
