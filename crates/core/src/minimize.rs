//! Step 1: electricity-cost minimization (paper Section IV).
//!
//! Decision: per-site request rates `λ_i` with `Σλ_i = λ`, minimizing
//! `Σ Pr_i(p_i + d_i) · p_i` subject to site power caps and the G/G/m
//! response-time constraint. Power is affine in the rate
//! (`p_i = a_i λ_i + b_i`, from the linearized server/switch/cooling
//! chain), so the only nonlinearity is the step pricing policy. It is
//! linearized with the standard piecewise-affine technique the paper cites:
//!
//! * one binary `z_{ik}` per site `i` and price level `k`, with
//!   `Σ_k z_{ik} = 1`;
//! * one level-restricted power variable `q_{ik} >= 0` with
//!   `max(lo_k − d_i, 0)·z_{ik} <= q_{ik} <= min(hi_k − d_i, Ps_i)·z_{ik}`,
//!   so only the active level's variable can be nonzero and the regional
//!   load `p_i + d_i` must actually lie in that level;
//! * `Σ_k q_{ik} = p_i`, making the objective `Σ_{ik} r_{ik} q_{ik}`
//!   exactly the billed cost.
//!
//! Internally rates are scaled to millions of requests/hour so all MILP
//! coefficients sit within a few orders of magnitude of one.

use crate::error::CoreError;
use crate::spec::{DataCenterSpec, DataCenterSystem};
use billcap_market::StepPolicy;
use billcap_milp::{ConstraintOp, MipSolver, MipStats, Model, Sense, VarId, VarType};

/// Rate unit used inside the MILPs: one million requests/hour.
pub(crate) const RATE_SCALE: f64 = 1e6;

/// Slack kept below every price breakpoint (MW) so that ceil-rounded
/// realized power cannot tip a region into the next price level.
pub(crate) const BREAKPOINT_MARGIN_MW: f64 = 0.01;

/// A workload allocation decided by one of the optimizers.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Requests/hour dispatched to each site.
    pub lambda: Vec<f64>,
    /// Active servers started by each site's local optimizer.
    pub servers: Vec<u64>,
    /// Site power draw (MW) under the linearized model.
    pub power_mw: Vec<f64>,
    /// Electricity price ($/MWh) each site pays at the resulting load.
    pub price: Vec<f64>,
    /// Price level index selected at each site.
    pub level: Vec<usize>,
    /// Site electricity cost ($ for the hour).
    pub cost: Vec<f64>,
    /// Total cost ($ for the hour).
    pub total_cost: f64,
    /// Total admitted rate (requests/hour).
    pub total_lambda: f64,
    /// Branch-and-bound statistics of the MILP solve that produced this
    /// allocation. `None` when the allocation was not produced by a single
    /// MIP solve (e.g. the hierarchical decomposition, which stitches
    /// together many regional solves).
    pub stats: Option<MipStats>,
}

/// Shared MILP scaffolding between the two steps.
pub(crate) struct PiecewiseVars {
    pub lam: Vec<VarId>,
    /// Per site: the *reachable* price levels as
    /// `(level index, price, q var, z var)`. Levels the region can never
    /// land in (background already past them, or unreachable within the
    /// power cap) are pruned before the MILP sees them, which keeps the
    /// binary count small.
    pub levels: Vec<Vec<(usize, f64, VarId, VarId)>>,
}

/// One kept price level of a site at a given background demand, reduced to
/// the numbers the MILP actually uses: the `z` coefficients of the
/// `lvl_hi` / `lvl_lo` interval rows.
///
/// Both the from-scratch builder ([`build_piecewise_core`]) and the
/// incremental mutator ([`crate::engine::DecisionEngine`]) derive these
/// from this one function, so the two paths produce float-for-float
/// identical models whenever the kept-level sets match — the bitwise
/// reproducibility of the decision server rides on that.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct LevelParam {
    /// Price level index within the site's policy.
    pub k: usize,
    /// Price ($/MWh) of the level.
    pub price: f64,
    /// Coefficient of `z` in `lvl_hi_{i}_{k}`: `q + zcoef_hi * z <= 0`.
    pub zcoef_hi: f64,
    /// Coefficient of `z` in `lvl_lo_{i}_{k}`: `q + zcoef_lo * z >= 0`.
    pub zcoef_lo: f64,
}

/// Computes the kept (non-pruned) price levels of `site` under `policy`
/// with background demand `d`, and their interval-row coefficients.
pub(crate) fn site_level_params(
    site: &DataCenterSpec,
    policy: &StepPolicy,
    d: f64,
) -> Vec<LevelParam> {
    let b = site.base_power_mw();
    let cap = site.power_cap_mw;
    let mut out = Vec::new();
    for (k, (lo, hi, price)) in policy.levels().enumerate() {
        // Safety margin below each breakpoint: the MILP's linearized
        // power under-counts the realized draw by up to a few switches'
        // worth (ceil rounding), so sitting *exactly* on a breakpoint
        // would get billed at the next level. 10 kW of slack dwarfs the
        // rounding error at negligible cost.
        let hi_safe = if hi.is_finite() {
            hi - BREAKPOINT_MARGIN_MW
        } else {
            hi
        };
        let u = (hi_safe - d).min(cap);
        let l = (lo - d).max(0.0);
        // Prune levels the site can never land in: the region is
        // already past the level (u <= 0, but keep the level holding
        // the zero-power point so an idle site stays representable),
        // or the level starts beyond what the power cap can reach.
        let holds_zero = lo <= d && d < hi;
        // If the background sits inside the breakpoint margin, an idle
        // site must still be representable: widen this level's ceiling
        // just enough for the base (QoS headroom) power.
        let u = if holds_zero { u.max(b + 1e-3) } else { u };
        let reachable = u > 0.0 && l <= cap;
        if !(reachable || holds_zero) {
            continue;
        }
        out.push(LevelParam {
            k,
            price,
            // u may be negative, forbidding positive power in a level
            // kept only for the zero point.
            zcoef_hi: -u.max(0.0),
            zcoef_lo: -l,
        });
    }
    out
}

/// Builds the common variables and constraints of both optimization steps:
/// rate bounds, the power identity, level selection, and level-interval
/// restrictions. Returns the variable handles.
pub(crate) fn build_piecewise_core(
    m: &mut Model,
    system: &DataCenterSystem,
    background_mw: &[f64],
    integral_servers: bool,
) -> PiecewiseVars {
    let n = system.len();
    let mut lam = Vec::with_capacity(n);
    let mut site_levels = Vec::with_capacity(n);

    for (i, site) in system.sites.iter().enumerate() {
        let d = background_mw[i];
        let a = site.mw_per_request() * RATE_SCALE; // MW per Mreq/h
        let b = site.base_power_mw();
        let cap = site.power_cap_mw;
        let lam_ub = site.max_rate() / RATE_SCALE;
        let lam_i = m.add_cont(format!("lam_{i}"), 0.0, lam_ub);

        // Optional integral server count: n_i integer with
        // n_i >= lam/mu + headroom; power then rides on n_i.
        let power_terms: Vec<(VarId, f64)> = if integral_servers {
            let headroom = site
                .queue
                .qos_headroom(site.response_target)
                .expect("validated spec"); // repolint-allow(unwrap): spec checked at construction
            let n_i = m.add_var(
                format!("n_{i}"),
                VarType::Integer,
                0.0,
                site.max_servers as f64,
            );
            // n_i >= lambda/mu + headroom, with lambda = lam_i * RATE_SCALE.
            let servers_per_mreq = RATE_SCALE / site.queue.service_rate;
            m.add_constraint(
                format!("servers_{i}"),
                vec![(n_i, 1.0), (lam_i, -servers_per_mreq)],
                ConstraintOp::Ge,
                headroom,
            );
            let wps_mw = site.power.watts_per_server() / 1e6;
            vec![(n_i, wps_mw)]
        } else {
            vec![(lam_i, a)]
        };
        let power_const = if integral_servers { 0.0 } else { b };

        let mut levels_i = Vec::new();
        for p in site_level_params(site, system.policy(i), d) {
            let k = p.k;
            let q = m.add_cont(format!("q_{i}_{k}"), 0.0, cap.max(0.0));
            let z = m.add_binary(format!("z_{i}_{k}"));
            // q <= u * z.
            m.add_constraint(
                format!("lvl_hi_{i}_{k}"),
                vec![(q, 1.0), (z, p.zcoef_hi)],
                ConstraintOp::Le,
                0.0,
            );
            // q >= l * z.
            m.add_constraint(
                format!("lvl_lo_{i}_{k}"),
                vec![(q, 1.0), (z, p.zcoef_lo)],
                ConstraintOp::Ge,
                0.0,
            );
            levels_i.push((k, p.price, q, z));
        }
        debug_assert!(!levels_i.is_empty(), "policy levels tile [0, inf)");
        // Exactly one active level.
        m.add_constraint(
            format!("one_level_{i}"),
            levels_i.iter().map(|&(_, _, _, z)| (z, 1.0)).collect(),
            ConstraintOp::Eq,
            1.0,
        );
        // Power identity: sum_k q_ik - (a * lam_i [or wps*n_i]) = b.
        let mut terms: Vec<(VarId, f64)> = levels_i.iter().map(|&(_, _, q, _)| (q, 1.0)).collect();
        for &(v, c) in &power_terms {
            terms.push((v, -c));
        }
        m.add_constraint(format!("power_{i}"), terms, ConstraintOp::Eq, power_const);
        // Site power cap (each q is individually bounded by cap via its
        // level constraint; this row makes the cap explicit and guards the
        // integral-server mode where n_i drives power).
        m.add_constraint(
            format!("cap_{i}"),
            levels_i.iter().map(|&(_, _, q, _)| (q, 1.0)).collect(),
            ConstraintOp::Le,
            cap,
        );

        lam.push(lam_i);
        site_levels.push(levels_i);
    }

    PiecewiseVars {
        lam,
        levels: site_levels,
    }
}

/// Extracts an [`Allocation`] from a solved piecewise model.
pub(crate) fn extract_allocation(
    system: &DataCenterSystem,
    vars: &PiecewiseVars,
    sol: &billcap_milp::Solution,
) -> Allocation {
    let n = system.len();
    let mut lambda = Vec::with_capacity(n);
    let mut servers = Vec::with_capacity(n);
    let mut power_mw = Vec::with_capacity(n);
    let mut price = Vec::with_capacity(n);
    let mut level = Vec::with_capacity(n);
    let mut cost = Vec::with_capacity(n);
    let mut total_cost = 0.0;
    let mut total_lambda = 0.0;

    for i in 0..n {
        let lam = sol.value(vars.lam[i]).max(0.0) * RATE_SCALE;
        let p: f64 = vars.levels[i]
            .iter()
            .map(|&(_, _, q, _)| sol.value(q).max(0.0))
            .sum();
        let &(k, r, _, _) = vars.levels[i]
            .iter()
            .find(|&&(_, _, _, z)| sol.try_int_value(z) == Some(1))
            .expect("exactly one level is active"); // repolint-allow(unwrap): one_level row guarantees it
        let c = r * p;
        lambda.push(lam);
        servers.push(system.sites[i].servers_for_rate(lam));
        power_mw.push(p);
        price.push(r);
        level.push(k);
        cost.push(c);
        total_cost += c;
        total_lambda += lam;
    }

    Allocation {
        lambda,
        servers,
        power_mw,
        price,
        level,
        cost,
        total_cost,
        total_lambda,
        stats: sol.mip,
    }
}

/// The Step-1 optimizer.
#[derive(Debug, Clone, Default)]
pub struct CostMinimizer {
    /// The MILP solver.
    pub solver: MipSolver,
    /// Model server counts as integers inside the MILP (ablation mode;
    /// the default relaxes them and lets the local optimizer round up).
    pub integral_servers: bool,
}

impl CostMinimizer {
    /// Minimizes the hour's electricity cost for total workload `lambda`
    /// (requests/hour) with per-site background demand `background_mw`.
    pub fn solve(
        &self,
        system: &DataCenterSystem,
        lambda: f64,
        background_mw: &[f64],
    ) -> Result<Allocation, CoreError> {
        if background_mw.len() != system.len() {
            return Err(CoreError::Dimension {
                expected: system.len(),
                got: background_mw.len(),
            });
        }
        let capacity = system.total_capacity();
        if lambda > capacity {
            return Err(CoreError::InsufficientCapacity {
                demanded: lambda,
                capacity,
            });
        }

        let mut m = Model::new("cost_min", Sense::Minimize);
        let vars = build_piecewise_core(&mut m, system, background_mw, self.integral_servers);

        // All requests must be served (paper eq. 2a).
        m.add_constraint(
            "demand",
            vars.lam.iter().map(|&v| (v, 1.0)).collect(),
            ConstraintOp::Eq,
            lambda / RATE_SCALE,
        );

        // Objective: sum of r_ik * q_ik over the reachable levels.
        let obj: Vec<(VarId, f64)> = vars
            .levels
            .iter()
            .flatten()
            .map(|&(_, r, q, _)| (q, r))
            .collect();
        m.set_objective(obj, 0.0);

        crate::speclint::lint_model_if_enabled(&m)?;
        let sol = self.solver.solve(&m)?;
        crate::audit::certify_if_enabled(&m, &sol)?;
        Ok(extract_allocation(system, &vars, &sol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DataCenterSystem;

    fn background() -> Vec<f64> {
        vec![330.0, 410.0, 280.0]
    }

    #[test]
    fn serves_exactly_the_demand() {
        let sys = DataCenterSystem::paper_system(1);
        let lambda = 4e8;
        let alloc = CostMinimizer::default()
            .solve(&sys, lambda, &background())
            .unwrap();
        assert!((alloc.total_lambda - lambda).abs() / lambda < 1e-6);
    }

    #[test]
    fn respects_power_caps() {
        let sys = DataCenterSystem::paper_system(1);
        let alloc = CostMinimizer::default()
            .solve(&sys, 9e8, &background())
            .unwrap();
        for (i, &p) in alloc.power_mw.iter().enumerate() {
            assert!(
                p <= sys.sites[i].power_cap_mw + 1e-6,
                "site {i}: {p} MW over cap"
            );
        }
    }

    #[test]
    fn selected_price_matches_policy_at_realized_load() {
        let sys = DataCenterSystem::paper_system(1);
        let d = background();
        let alloc = CostMinimizer::default().solve(&sys, 6e8, &d).unwrap();
        for (i, &di) in d.iter().enumerate() {
            let expected = sys.policy(i).price_at(alloc.power_mw[i] + di);
            assert!(
                (alloc.price[i] - expected).abs() < 1e-9,
                "site {i}: milp price {} vs policy {expected}",
                alloc.price[i]
            );
        }
    }

    #[test]
    fn power_identity_holds() {
        let sys = DataCenterSystem::paper_system(1);
        let alloc = CostMinimizer::default()
            .solve(&sys, 5e8, &background())
            .unwrap();
        for i in 0..3 {
            let expected = sys.sites[i].power_for_rate_mw(alloc.lambda[i]);
            assert!(
                (alloc.power_mw[i] - expected).abs() < 1e-6,
                "site {i}: {} vs {expected}",
                alloc.power_mw[i]
            );
        }
    }

    #[test]
    fn cost_is_sum_of_site_costs() {
        let sys = DataCenterSystem::paper_system(1);
        let alloc = CostMinimizer::default()
            .solve(&sys, 5e8, &background())
            .unwrap();
        let sum: f64 = alloc.cost.iter().sum();
        assert!((alloc.total_cost - sum).abs() < 1e-9);
        for i in 0..3 {
            assert!((alloc.cost[i] - alloc.price[i] * alloc.power_mw[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn over_capacity_demand_is_rejected() {
        let sys = DataCenterSystem::paper_system(1);
        let result = CostMinimizer::default().solve(&sys, 1e12, &background());
        assert!(matches!(
            result,
            Err(CoreError::InsufficientCapacity { .. })
        ));
    }

    #[test]
    fn avoids_pushing_a_region_over_a_price_step() {
        // With one site near a breakpoint, the optimizer should prefer
        // spilling load elsewhere if that is cheaper overall than paying
        // the stepped-up price on the whole draw.
        let sys = DataCenterSystem::paper_system(1);
        // Site 0 background sits just below its 450-MW breakpoint.
        let d = vec![445.0, 410.0, 280.0];
        let alloc = CostMinimizer::default().solve(&sys, 6e8, &d).unwrap();
        // The chosen price at site 0 must still be consistent; and total
        // cost must beat (or match) the naive proportional split.
        let naive_share = 2e8;
        let naive_cost: f64 = (0..3)
            .map(|i| {
                let p = sys.sites[i].power_for_rate_mw(naive_share);
                sys.policy(i).price_at(p + d[i]) * p
            })
            .sum();
        assert!(
            alloc.total_cost <= naive_cost + 1e-6,
            "optimizer {} worse than naive {naive_cost}",
            alloc.total_cost
        );
    }

    #[test]
    fn flat_policy_zero_reduces_to_cheapest_rate_dispatch() {
        // Under Policy 0 prices don't move, so cost is linear and the
        // optimizer fills the cheapest-$/request sites first.
        let sys = DataCenterSystem::paper_system(0);
        let alloc = CostMinimizer::default()
            .solve(&sys, 3e8, &background())
            .unwrap();
        // $/req of site i = flat price * a_i; compute and verify the cheapest
        // site is saturated or carries everything.
        let mut unit: Vec<(usize, f64)> = (0..3)
            .map(|i| {
                (
                    i,
                    sys.policy(i).price_at(0.0) * sys.sites[i].mw_per_request(),
                )
            })
            .collect();
        unit.sort_by(|x, y| x.1.partial_cmp(&y.1).unwrap());
        let cheapest = unit[0].0;
        let second = unit[1].0;
        let max_cheapest = sys.sites[cheapest].max_rate();
        if 3e8 <= max_cheapest {
            assert!(
                (alloc.lambda[cheapest] - 3e8).abs() < 1e3,
                "cheapest site should take everything"
            );
        } else {
            assert!((alloc.lambda[cheapest] - max_cheapest).abs() < 1e3);
            assert!(alloc.lambda[second] > 0.0);
        }
    }

    #[test]
    fn integral_server_mode_close_to_relaxed() {
        let sys = DataCenterSystem::paper_system(1);
        let relaxed = CostMinimizer::default()
            .solve(&sys, 2e8, &background())
            .unwrap();
        let integral = CostMinimizer {
            integral_servers: true,
            ..Default::default()
        }
        .solve(&sys, 2e8, &background())
        .unwrap();
        // Integral server counts can only cost (a hair) more.
        assert!(integral.total_cost >= relaxed.total_cost - 1e-6);
        let rel = (integral.total_cost - relaxed.total_cost) / relaxed.total_cost;
        assert!(rel < 1e-3, "integrality gap {rel}");
    }

    #[test]
    fn zero_workload_costs_only_base_power() {
        let sys = DataCenterSystem::paper_system(1);
        let alloc = CostMinimizer::default()
            .solve(&sys, 0.0, &background())
            .unwrap();
        assert!(alloc.total_lambda.abs() < 1e-9);
        // Only the QoS headroom servers draw power: a few kW per site.
        assert!(alloc.total_cost < 50.0, "cost {}", alloc.total_cost);
    }
}
