//! Time-varying per-site power caps (`Ps_i(t)`).
//!
//! The paper treats each site's power cap as a constant, but real caps
//! move with the hour: cooling capacity falls on hot afternoons, feeder
//! headroom shrinks when the neighborhood peaks, and operators derate
//! proactively (the Climatik-style dynamic power-cap loop). A
//! [`CapSchedule`] is an hourly series of per-site caps that the sim
//! threads through the capper's step-1/step-2 models, the
//! [`PlanAuditor`](crate::PlanAuditor), and the S-lints by *mutating the
//! working copy of the spec* each hour — `DataCenterSpec::power_cap_mw`
//! is the single source every downstream consumer (deliverable
//! capacity, level pruning, `cap_i` row RHS, audit) derives from, so one
//! assignment per site per hour re-caps the entire pipeline.
//!
//! Schedules shorter than a run extend cyclically (a 168-hour weekly
//! schedule covers a 720-hour month), mirroring the budgeter's
//! hour-of-week convention.

use crate::spec::DataCenterSystem;
use billcap_rt::{Rng, Xoshiro256pp};

/// An hourly series of per-site power caps, in MW.
///
/// Invariants (enforced by [`CapSchedule::new`]): at least one hour,
/// every hour lists the same number of sites, every cap is finite and
/// positive. Whether the caps are *sufficient* (above each site's idle
/// draw) is a spec-lint question — see
/// [`lint_cap_schedule`](crate::speclint::lint_cap_schedule) (S010).
#[derive(Debug, Clone, PartialEq)]
pub struct CapSchedule {
    /// `hours[t][i]` = the cap for site `i` during hour `t`.
    hours: Vec<Vec<f64>>,
}

impl CapSchedule {
    /// Builds a schedule from an hour-major cap matrix.
    ///
    /// # Panics
    ///
    /// Panics when the matrix is empty, ragged, or contains a
    /// non-finite or non-positive cap — a malformed schedule is a
    /// construction bug, not a runtime condition.
    pub fn new(hours: Vec<Vec<f64>>) -> Self {
        assert!(!hours.is_empty(), "a cap schedule needs at least one hour");
        let sites = hours[0].len();
        assert!(sites > 0, "a cap schedule needs at least one site");
        for (t, row) in hours.iter().enumerate() {
            assert_eq!(
                row.len(),
                sites,
                "hour {t} lists {} sites, hour 0 lists {sites}",
                row.len()
            );
            for (i, &cap) in row.iter().enumerate() {
                assert!(
                    cap.is_finite() && cap > 0.0,
                    "cap for site {i} at hour {t} is {cap}; caps must be finite and positive"
                );
            }
        }
        Self { hours }
    }

    /// A flat schedule: the system's current static caps, repeated for
    /// one hour (cyclic extension makes the horizon irrelevant).
    pub fn constant_from(system: &DataCenterSystem) -> Self {
        Self::new(vec![system.sites.iter().map(|s| s.power_cap_mw).collect()])
    }

    /// A deterministic cooling-derate scenario generator.
    ///
    /// Starting from `base_caps`, each site's cap is derated by up to
    /// `depth` (a fraction in `[0, 1)`) on a diurnal profile peaking
    /// mid-afternoon (hour 15), with a per-site phase offset and a
    /// small seeded day-to-day severity jitter — the shape of a
    /// cooling-limited cap: full headroom at night, tightest in the
    /// afternoon heat. The same `(base_caps, hours, depth, seed)`
    /// reproduce the same schedule bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is outside `[0, 1)` or `hours` is zero.
    pub fn derating(base_caps: &[f64], hours: usize, depth: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&depth),
            "derate depth {depth} outside [0, 1)"
        );
        assert!(hours > 0, "a cap schedule needs at least one hour");
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0xcab5_c4ed);
        // Per-site phase offset (hours) and severity multiplier.
        let phases: Vec<f64> = base_caps
            .iter()
            .map(|_| rng.random_f64_in(-2.0, 2.0))
            .collect();
        let severity: Vec<f64> = base_caps
            .iter()
            .map(|_| rng.random_f64_in(0.7, 1.0))
            .collect();
        let mut rows = Vec::with_capacity(hours);
        for t in 0..hours {
            // One daily severity draw per hour-row keeps the stream
            // consumption independent of the site count ordering.
            let daily = rng.random_f64_in(0.85, 1.0);
            let row = base_caps
                .iter()
                .enumerate()
                .map(|(i, &cap)| {
                    let hour_of_day = t % 24;
                    let x =
                        (hour_of_day as f64 - 15.0 - phases[i]) * (std::f64::consts::TAU / 24.0);
                    // Heat factor in [0, 1]: 1 at the (phase-shifted)
                    // afternoon peak, 0 twelve hours away.
                    let heat = 0.5 * (1.0 + x.cos());
                    cap * (1.0 - depth * severity[i] * daily * heat)
                })
                .collect();
            rows.push(row);
        }
        Self::new(rows)
    }

    /// Number of sites per hour.
    pub fn sites(&self) -> usize {
        self.hours[0].len()
    }

    /// Schedule length before cyclic extension.
    pub fn horizon(&self) -> usize {
        self.hours.len()
    }

    /// The per-site caps for hour `t` (cyclic beyond the horizon).
    pub fn caps_at(&self, t: usize) -> &[f64] {
        &self.hours[t % self.hours.len()]
    }

    /// Applies hour `t`'s caps to a working copy of the system.
    ///
    /// # Panics
    ///
    /// Panics when the site counts disagree (a schedule for the wrong
    /// system).
    pub fn apply(&self, system: &mut DataCenterSystem, t: usize) {
        let caps = self.caps_at(t);
        assert_eq!(
            caps.len(),
            system.sites.len(),
            "schedule covers {} sites, system has {}",
            caps.len(),
            system.sites.len()
        );
        for (site, &cap) in system.sites.iter_mut().zip(caps) {
            site.power_cap_mw = cap;
        }
    }

    /// The tightest cap each site ever sees (used by lints and docs).
    pub fn min_caps(&self) -> Vec<f64> {
        let mut mins = self.hours[0].clone();
        for row in &self.hours[1..] {
            for (m, &c) in mins.iter_mut().zip(row) {
                if c < *m {
                    *m = c;
                }
            }
        }
        mins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule_round_trips() {
        let sys = DataCenterSystem::paper_system(1);
        let sched = CapSchedule::constant_from(&sys);
        assert_eq!(sched.sites(), sys.sites.len());
        for t in [0, 1, 24, 1000] {
            for (i, site) in sys.sites.iter().enumerate() {
                assert_eq!(sched.caps_at(t)[i], site.power_cap_mw);
            }
        }
    }

    #[test]
    fn apply_recaps_every_site() {
        let mut sys = DataCenterSystem::paper_system(1);
        let sched = CapSchedule::new(vec![vec![100.0, 50.0, 70.0], vec![90.0, 40.0, 60.0]]);
        sched.apply(&mut sys, 1);
        let caps: Vec<f64> = sys.sites.iter().map(|s| s.power_cap_mw).collect();
        assert_eq!(caps, vec![90.0, 40.0, 60.0]);
        // Cyclic extension: hour 2 wraps back to hour 0.
        sched.apply(&mut sys, 2);
        let caps: Vec<f64> = sys.sites.iter().map(|s| s.power_cap_mw).collect();
        assert_eq!(caps, vec![100.0, 50.0, 70.0]);
    }

    #[test]
    fn apply_changes_deliverable_capacity() {
        let mut sys = DataCenterSystem::paper_system(1);
        let full = sys.total_capacity();
        let half_caps: Vec<f64> = sys.sites.iter().map(|s| s.power_cap_mw * 0.5).collect();
        CapSchedule::new(vec![half_caps]).apply(&mut sys, 0);
        assert!(
            sys.total_capacity() < full,
            "halved caps must shrink capacity"
        );
    }

    #[test]
    fn derating_is_deterministic_and_bounded() {
        let base = [120.0, 65.0, 85.0];
        let a = CapSchedule::derating(&base, 48, 0.3, 42);
        let b = CapSchedule::derating(&base, 48, 0.3, 42);
        assert_eq!(a, b);
        for t in 0..48 {
            for (i, &cap) in a.caps_at(t).iter().enumerate() {
                assert!(
                    cap <= base[i] && cap >= base[i] * 0.7,
                    "t={t} i={i} cap={cap}"
                );
            }
        }
        let c = CapSchedule::derating(&base, 48, 0.3, 43);
        assert_ne!(a, c, "seed must matter");
    }

    #[test]
    fn derating_bites_hardest_in_the_afternoon() {
        let base = [120.0, 65.0, 85.0];
        let sched = CapSchedule::derating(&base, 24, 0.4, 7);
        let noon_ish: f64 = (13..18).map(|t| sched.caps_at(t)[0]).sum::<f64>() / 5.0;
        let night: f64 = (1..6).map(|t| sched.caps_at(t)[0]).sum::<f64>() / 5.0;
        assert!(
            noon_ish < night,
            "afternoon mean {noon_ish} should sit below night mean {night}"
        );
    }

    #[test]
    fn min_caps_finds_the_floor() {
        let sched = CapSchedule::new(vec![vec![10.0, 5.0], vec![8.0, 6.0], vec![9.0, 4.0]]);
        assert_eq!(sched.min_caps(), vec![8.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "hour 0 lists")]
    fn ragged_schedule_rejected() {
        CapSchedule::new(vec![vec![1.0, 2.0], vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn nan_cap_rejected() {
        CapSchedule::new(vec![vec![1.0, f64::NAN]]);
    }
}
