//! First-principles audit of capper output (the paper's invariants).
//!
//! [`crate::BillCapper`] promises a lot: every site stays under its power
//! cap, response times meet the G/G/m target, the billed price level is
//! the one the actual regional load lands in, budgets hold except for the
//! premium-overrun hour, and premium traffic is never shed. All of that
//! is currently enforced *inside* the MILP — so a formulation bug would
//! produce confidently wrong plans with nothing to catch them.
//!
//! [`PlanAuditor`] re-derives each invariant without the MILP:
//!
//! * **Power caps** — `p_i ≤ Ps_i` straight from the spec.
//! * **Response time** — an independent Allen–Cunneen recomputation at
//!   the *integer* server counts the local optimizer would start.
//! * **Power identity** — `p_i` agrees with the site's affine power model
//!   at `λ_i` (a made-up power split cannot certify).
//! * **Step pricing** — the binary-selected level's price matches the
//!   policy, and the actual load `p_i + d_i` lies inside that level
//!   (up to the formulation's deliberate breakpoint margin).
//! * **Cost arithmetic** — `cost_i = price_i · p_i` and the totals add up.
//! * **Decision invariants** — premium always served, served ≤ offered,
//!   conservation between the allocation and the served split, and
//!   budget compliance with the [`HourOutcome::PremiumOverride`]
//!   exception.
//!
//! Companion to [`billcap_milp::certify_solution`], which checks the
//! *solver's* arithmetic; this module checks the *formulation* against
//! the paper. Both are wired into solves and the sim runner behind the
//! `BILLCAP_AUDIT` env var / `--audit` CLI flag.

use crate::capper::{HourDecision, HourOutcome};
use crate::error::CoreError;
use crate::minimize::{Allocation, BREAKPOINT_MARGIN_MW};
use crate::spec::DataCenterSystem;
use billcap_milp::{certify_solution, Model, Solution};
use std::fmt;

/// True when the `BILLCAP_AUDIT` environment variable asks for auditing
/// (any non-empty value other than `0`). Tests set it to exercise the
/// certification layer on every solve; the CLI `--audit` flag forces it.
pub fn audit_env_enabled() -> bool {
    // detlint-allow(D004): BILLCAP_AUDIT toggles an advisory certification log, never the decision
    std::env::var("BILLCAP_AUDIT").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Certifies a MILP solution when [`audit_env_enabled`], turning a failed
/// certificate into a hard [`CoreError::Audit`]: a solve whose arithmetic
/// cannot be verified must not become a dispatch plan.
pub(crate) fn certify_if_enabled(model: &Model, sol: &Solution) -> Result<(), CoreError> {
    if audit_env_enabled() {
        let report = certify_solution(model, sol);
        if !report.certified() {
            return Err(CoreError::Audit(format!(
                "solve '{}' failed certification: {report}",
                model.name
            )));
        }
    }
    Ok(())
}

/// One violated paper invariant found by the [`PlanAuditor`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlanViolation {
    /// A per-site vector has the wrong length.
    Dimension {
        /// Which vector is mis-sized.
        what: String,
        /// Expected length (the number of sites).
        expected: usize,
        /// Actual length found.
        got: usize,
    },
    /// A reported quantity is NaN/infinite or negative where it cannot be.
    BadValue {
        /// Which quantity is bad.
        what: String,
        /// The offending value.
        value: f64,
    },
    /// Site power exceeds the supplier-imposed cap `Ps_i`.
    PowerCap {
        /// Site index.
        site: usize,
        /// Reported power draw (MW).
        power_mw: f64,
        /// The site's cap (MW).
        cap_mw: f64,
    },
    /// The reported power disagrees with the site's power model at `λ_i`.
    PowerIdentity {
        /// Site index.
        site: usize,
        /// Power the plan reports (MW).
        reported_mw: f64,
        /// Power the site model computes for the assigned rate (MW).
        expected_mw: f64,
    },
    /// Allen–Cunneen response time at the started servers misses `Rs_i`.
    ResponseTime {
        /// Site index.
        site: usize,
        /// Achieved mean response time (seconds).
        response: f64,
        /// The site's QoS target (seconds).
        target: f64,
    },
    /// More servers than the site hosts.
    ServerInventory {
        /// Site index.
        site: usize,
        /// Servers the plan starts.
        servers: u64,
        /// Servers the site actually hosts.
        max_servers: u64,
    },
    /// The reported price level index does not exist in the policy.
    UnknownLevel {
        /// Site index.
        site: usize,
        /// The nonexistent level index.
        level: usize,
    },
    /// The reported price is not the policy's price for the reported level.
    PriceValue {
        /// Site index.
        site: usize,
        /// Reported level index.
        level: usize,
        /// Price the plan reports ($/MWh).
        reported: f64,
        /// The policy's price for that level ($/MWh).
        expected: f64,
    },
    /// The actual regional load `p_i + d_i` lies outside the reported level.
    PriceLevel {
        /// Site index.
        site: usize,
        /// Reported level index.
        level: usize,
        /// Actual regional load (MW).
        load_mw: f64,
        /// Level lower breakpoint (MW).
        lo_mw: f64,
        /// Level upper breakpoint (MW).
        hi_mw: f64,
    },
    /// `cost_i != price_i * p_i`, or the totals do not add up.
    CostArithmetic {
        /// Which cost identity failed.
        what: String,
        /// Cost the plan reports ($).
        reported: f64,
        /// Cost recomputed from prices and powers ($).
        expected: f64,
    },
    /// Premium traffic was shed — never allowed by the paper.
    PremiumShed {
        /// Premium rate offered (requests/hour).
        offered: f64,
        /// Premium rate served (requests/hour).
        served: f64,
    },
    /// Served traffic exceeds what was offered.
    OverAdmission {
        /// Total rate served (requests/hour).
        served: f64,
        /// Total rate offered (requests/hour).
        offered: f64,
    },
    /// The allocation's admitted rate disagrees with the served split.
    Conservation {
        /// Rate the allocation admits (requests/hour).
        allocated: f64,
        /// Premium + ordinary served (requests/hour).
        served: f64,
    },
    /// Cost exceeds the hour's budget outside the premium-override hour.
    BudgetExceeded {
        /// Enforced cost ($).
        cost: f64,
        /// The hour's budget ($).
        budget: f64,
        /// The outcome branch that produced the decision.
        outcome: HourOutcome,
    },
    /// A within-budget hour failed to serve the full offered load.
    UnderServed {
        /// Total rate offered (requests/hour).
        offered: f64,
        /// Total rate served (requests/hour).
        served: f64,
    },
}

impl fmt::Display for PlanViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanViolation::Dimension {
                what,
                expected,
                got,
            } => write!(f, "{what} has length {got}, expected {expected}"),
            PlanViolation::BadValue { what, value } => write!(f, "{what} = {value} is invalid"),
            PlanViolation::PowerCap {
                site,
                power_mw,
                cap_mw,
            } => write!(f, "site {site}: power {power_mw} MW exceeds cap {cap_mw} MW"),
            PlanViolation::PowerIdentity {
                site,
                reported_mw,
                expected_mw,
            } => write!(
                f,
                "site {site}: reported power {reported_mw} MW but the power model gives {expected_mw} MW"
            ),
            PlanViolation::ResponseTime {
                site,
                response,
                target,
            } => write!(
                f,
                "site {site}: response time {response:.3e} h exceeds target {target:.3e} h"
            ),
            PlanViolation::ServerInventory {
                site,
                servers,
                max_servers,
            } => write!(f, "site {site}: {servers} servers > inventory {max_servers}"),
            PlanViolation::UnknownLevel { site, level } => {
                write!(f, "site {site}: price level {level} does not exist")
            }
            PlanViolation::PriceValue {
                site,
                level,
                reported,
                expected,
            } => write!(
                f,
                "site {site}: reported price {reported} but level {level} costs {expected}"
            ),
            PlanViolation::PriceLevel {
                site,
                level,
                load_mw,
                lo_mw,
                hi_mw,
            } => write!(
                f,
                "site {site}: load {load_mw} MW outside level {level} [{lo_mw}, {hi_mw}) MW"
            ),
            PlanViolation::CostArithmetic {
                what,
                reported,
                expected,
            } => write!(f, "{what}: reported {reported} but recomputed {expected}"),
            PlanViolation::PremiumShed { offered, served } => write!(
                f,
                "premium shed: {served} of {offered} req/h served"
            ),
            PlanViolation::OverAdmission { served, offered } => {
                write!(f, "served {served} req/h exceeds offered {offered} req/h")
            }
            PlanViolation::Conservation { allocated, served } => write!(
                f,
                "allocation admits {allocated} req/h but the served split sums to {served} req/h"
            ),
            PlanViolation::BudgetExceeded {
                cost,
                budget,
                outcome,
            } => write!(
                f,
                "cost {cost} exceeds budget {budget} under outcome {outcome:?}"
            ),
            PlanViolation::UnderServed { offered, served } => write!(
                f,
                "within-budget hour served {served} of {offered} req/h"
            ),
        }
    }
}

/// The outcome of auditing an allocation or an hour decision.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AuditReport {
    /// Every violated invariant.
    pub violations: Vec<PlanViolation>,
    /// Number of individual invariant checks performed.
    pub checks: usize,
}

impl AuditReport {
    /// True when every checked invariant holds.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    fn check(&mut self, ok: bool, v: impl FnOnce() -> PlanViolation) {
        self.checks += 1;
        if !ok {
            self.violations.push(v());
        }
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.passed() {
            return write!(f, "audit passed ({} checks)", self.checks);
        }
        write!(
            f,
            "{} of {} checks failed: ",
            self.violations.len(),
            self.checks
        )?;
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

/// Audits capper output against the paper's invariants, recomputed from
/// first principles (no MILP involved). See the module docs for the list.
#[derive(Debug, Clone)]
pub struct PlanAuditor {
    /// Relative tolerance for cost/rate comparisons.
    pub rel_tol: f64,
    /// Relative tolerance for the affine-power identity. Looser than
    /// `rel_tol`: the integral-server mode's ceil rounding moves power by
    /// up to one server's worth.
    pub power_rel_tol: f64,
    /// Slack (MW) allowed around a price level's interval. Must cover the
    /// formulation's deliberate breakpoint margin
    /// (`minimize::BREAKPOINT_MARGIN_MW`) plus the idle-site widening
    /// (a site's base power, a few kW).
    pub level_margin_mw: f64,
    /// Relative slack on the response-time target.
    pub qos_rel_tol: f64,
}

impl Default for PlanAuditor {
    fn default() -> Self {
        Self {
            rel_tol: 1e-6,
            power_rel_tol: 5e-3,
            level_margin_mw: 2.0 * BREAKPOINT_MARGIN_MW,
            qos_rel_tol: 1e-9,
        }
    }
}

impl PlanAuditor {
    /// Audits a single allocation (either optimizer's output) against the
    /// per-site invariants: power caps, the power identity, Allen–Cunneen
    /// response time, server inventory, step-pricing consistency and cost
    /// arithmetic.
    pub fn audit_allocation(
        &self,
        system: &DataCenterSystem,
        alloc: &Allocation,
        background_mw: &[f64],
    ) -> AuditReport {
        let mut report = AuditReport::default();
        let n = system.len();
        for (what, len) in [
            ("lambda", alloc.lambda.len()),
            ("servers", alloc.servers.len()),
            ("power_mw", alloc.power_mw.len()),
            ("price", alloc.price.len()),
            ("level", alloc.level.len()),
            ("cost", alloc.cost.len()),
            ("background_mw", background_mw.len()),
        ] {
            report.check(len == n, || PlanViolation::Dimension {
                what: what.to_string(),
                expected: n,
                got: len,
            });
        }
        if !report.passed() {
            return report; // per-site indexing would be meaningless
        }

        let mut total_cost = 0.0;
        let mut total_lambda = 0.0;
        for (i, site) in system.sites.iter().enumerate() {
            let lam = alloc.lambda[i];
            let p = alloc.power_mw[i];
            let servers = alloc.servers[i];

            report.check(lam.is_finite() && lam >= -self.rel_tol, || {
                PlanViolation::BadValue {
                    what: format!("site {i} lambda"),
                    value: lam,
                }
            });
            report.check(p.is_finite() && p >= -self.rel_tol, || {
                PlanViolation::BadValue {
                    what: format!("site {i} power"),
                    value: p,
                }
            });
            if !(lam.is_finite() && p.is_finite()) {
                continue;
            }

            // Power cap p_i <= Ps_i.
            let cap = site.power_cap_mw;
            report.check(p <= cap * (1.0 + self.rel_tol) + 1e-6, || {
                PlanViolation::PowerCap {
                    site: i,
                    power_mw: p,
                    cap_mw: cap,
                }
            });

            // Power identity: the reported power must come from the site's
            // own power model at lam — a fabricated split cannot pass.
            let expected_p = site.power_for_rate_mw(lam);
            report.check(
                (p - expected_p).abs() <= self.power_rel_tol * (1.0 + expected_p),
                || PlanViolation::PowerIdentity {
                    site: i,
                    reported_mw: p,
                    expected_mw: expected_p,
                },
            );

            // Server inventory and the independent Allen–Cunneen check at
            // the integer server count actually started.
            report.check(servers <= site.max_servers, || {
                PlanViolation::ServerInventory {
                    site: i,
                    servers,
                    max_servers: site.max_servers,
                }
            });
            let target = site.response_target;
            report.check(
                site.queue
                    .meets_target(servers, lam, target * (1.0 + self.qos_rel_tol)),
                || PlanViolation::ResponseTime {
                    site: i,
                    response: site
                        .queue
                        .response_time(servers, lam)
                        .unwrap_or(f64::INFINITY),
                    target,
                },
            );

            // Step-pricing consistency: reported level exists, its price is
            // the reported price, and the actual regional load lands in it.
            let k = alloc.level[i];
            let policy = system.policy(i);
            match policy.levels().nth(k) {
                None => report.check(false, || PlanViolation::UnknownLevel { site: i, level: k }),
                Some((lo, hi, price)) => {
                    report.check(
                        (alloc.price[i] - price).abs() <= self.rel_tol * (1.0 + price),
                        || PlanViolation::PriceValue {
                            site: i,
                            level: k,
                            reported: alloc.price[i],
                            expected: price,
                        },
                    );
                    let load = p + background_mw[i];
                    report.check(
                        load >= lo - self.level_margin_mw && load <= hi + self.level_margin_mw,
                        || PlanViolation::PriceLevel {
                            site: i,
                            level: k,
                            load_mw: load,
                            lo_mw: lo,
                            hi_mw: hi,
                        },
                    );
                }
            }

            // Cost arithmetic: cost_i = price_i * p_i.
            let expected_cost = alloc.price[i] * p;
            report.check(
                (alloc.cost[i] - expected_cost).abs() <= self.rel_tol * (1.0 + expected_cost.abs()),
                || PlanViolation::CostArithmetic {
                    what: format!("site {i} cost"),
                    reported: alloc.cost[i],
                    expected: expected_cost,
                },
            );
            total_cost += alloc.cost[i];
            total_lambda += lam;
        }

        report.check(
            (alloc.total_cost - total_cost).abs() <= self.rel_tol * (1.0 + total_cost.abs()),
            || PlanViolation::CostArithmetic {
                what: "total cost".to_string(),
                reported: alloc.total_cost,
                expected: total_cost,
            },
        );
        report.check(
            (alloc.total_lambda - total_lambda).abs() <= self.rel_tol * (1.0 + total_lambda),
            || PlanViolation::CostArithmetic {
                what: "total lambda".to_string(),
                reported: alloc.total_lambda,
                expected: total_lambda,
            },
        );
        report
    }

    /// Audits a full hour decision: the underlying allocation plus the
    /// decision-level invariants (premium-always-served, conservation,
    /// admission, and budget compliance with the premium-overrun
    /// exception).
    pub fn audit_decision(
        &self,
        system: &DataCenterSystem,
        decision: &HourDecision,
        background_mw: &[f64],
    ) -> AuditReport {
        let mut report = self.audit_allocation(system, &decision.allocation, background_mw);

        let served = decision.premium_served + decision.ordinary_served;
        let rate_tol = self.rel_tol * (1.0 + decision.offered);

        // Premium is never shed (the paper's revenue-protection rule).
        report.check(
            decision.premium_served >= decision.premium_offered - rate_tol,
            || PlanViolation::PremiumShed {
                offered: decision.premium_offered,
                served: decision.premium_served,
            },
        );
        // Cannot serve traffic nobody offered.
        report.check(served <= decision.offered + rate_tol, || {
            PlanViolation::OverAdmission {
                served,
                offered: decision.offered,
            }
        });
        // The served split must be the allocation actually dispatched.
        report.check(
            (decision.allocation.total_lambda - served).abs() <= rate_tol,
            || PlanViolation::Conservation {
                allocated: decision.allocation.total_lambda,
                served,
            },
        );
        // Budget compliance, with the premium-override exception.
        let cost = decision.cost();
        let budget_ok = cost <= decision.budget * (1.0 + self.rel_tol) + self.rel_tol;
        report.check(
            budget_ok || decision.outcome == HourOutcome::PremiumOverride,
            || PlanViolation::BudgetExceeded {
                cost,
                budget: decision.budget,
                outcome: decision.outcome,
            },
        );
        // A within-budget hour serves everything offered.
        if decision.outcome == HourOutcome::WithinBudget {
            report.check(served >= decision.offered - rate_tol, || {
                PlanViolation::UnderServed {
                    offered: decision.offered,
                    served,
                }
            });
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capper::BillCapper;
    use crate::minimize::CostMinimizer;
    use crate::spec::DataCenterSystem;

    fn background() -> Vec<f64> {
        vec![330.0, 410.0, 280.0]
    }

    #[test]
    fn genuine_allocation_passes() {
        let sys = DataCenterSystem::paper_system(1);
        let alloc = CostMinimizer::default()
            .solve(&sys, 5e8, &background())
            .unwrap();
        let report = PlanAuditor::default().audit_allocation(&sys, &alloc, &background());
        assert!(report.passed(), "{report}");
        assert!(report.checks > 20);
    }

    #[test]
    fn genuine_decisions_pass_across_outcomes() {
        let sys = DataCenterSystem::paper_system(1);
        let d = background();
        let capper = BillCapper::default();
        let auditor = PlanAuditor::default();
        let offered = 8e8;
        let premium = 0.8 * offered;
        let full_cost = capper
            .decide_hour(&sys, offered, premium, &d, f64::INFINITY)
            .unwrap()
            .cost();
        for budget in [f64::INFINITY, 0.93 * full_cost, 1.0] {
            let dec = capper
                .decide_hour(&sys, offered, premium, &d, budget)
                .unwrap();
            let report = auditor.audit_decision(&sys, &dec, &d);
            assert!(report.passed(), "budget {budget}: {report}");
        }
    }

    #[test]
    fn power_cap_violation_is_caught() {
        let sys = DataCenterSystem::paper_system(1);
        let d = background();
        let alloc = CostMinimizer::default().solve(&sys, 5e8, &d).unwrap();
        let mut bad = alloc.clone();
        bad.power_mw[0] = sys.sites[0].power_cap_mw + 5.0;
        let report = PlanAuditor::default().audit_allocation(&sys, &bad, &d);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, PlanViolation::PowerCap { site: 0, .. })));
    }

    #[test]
    fn wrong_price_level_is_caught() {
        let sys = DataCenterSystem::paper_system(1);
        let d = background();
        let alloc = CostMinimizer::default().solve(&sys, 5e8, &d).unwrap();
        let mut bad = alloc.clone();
        // Claim a cheaper adjacent level without moving any power.
        bad.level[0] = alloc.level[0].saturating_sub(1);
        bad.price[0] = sys
            .policy(0)
            .levels()
            .nth(bad.level[0])
            .map(|(_, _, r)| r)
            .unwrap();
        bad.cost[0] = bad.price[0] * bad.power_mw[0];
        bad.total_cost = bad.cost.iter().sum();
        let report = PlanAuditor::default().audit_allocation(&sys, &bad, &d);
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, PlanViolation::PriceLevel { site: 0, .. })),
            "{report}"
        );
    }

    #[test]
    fn qos_violation_is_caught() {
        let sys = DataCenterSystem::paper_system(1);
        let d = background();
        let alloc = CostMinimizer::default().solve(&sys, 5e8, &d).unwrap();
        let mut bad = alloc.clone();
        // Pretend a loaded site runs on a skeleton crew.
        let busiest = (0..sys.len())
            .max_by(|&a, &b| bad.lambda[a].total_cmp(&bad.lambda[b]))
            .unwrap();
        bad.servers[busiest] = (bad.lambda[busiest] / sys.sites[busiest].queue.service_rate) as u64;
        let report = PlanAuditor::default().audit_allocation(&sys, &bad, &d);
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, PlanViolation::ResponseTime { .. })),
            "{report}"
        );
    }

    #[test]
    fn fabricated_power_split_is_caught() {
        let sys = DataCenterSystem::paper_system(1);
        let d = background();
        let alloc = CostMinimizer::default().solve(&sys, 5e8, &d).unwrap();
        let mut bad = alloc.clone();
        // Shift claimed power between sites while keeping rates: the
        // affine power identity breaks at both ends.
        bad.power_mw[0] += 10.0;
        bad.power_mw[1] -= 10.0;
        let report = PlanAuditor::default().audit_allocation(&sys, &bad, &d);
        let identity_violations = report
            .violations
            .iter()
            .filter(|v| matches!(v, PlanViolation::PowerIdentity { .. }))
            .count();
        assert!(identity_violations >= 2, "{report}");
    }

    #[test]
    fn budget_bust_without_premium_exception_is_caught() {
        let sys = DataCenterSystem::paper_system(1);
        let d = background();
        let capper = BillCapper::default();
        let dec = capper
            .decide_hour(&sys, 8e8, 0.8 * 8e8, &d, f64::INFINITY)
            .unwrap();
        let mut bad = dec.clone();
        bad.budget = bad.cost() * 0.5; // claims WithinBudget while over it
        let report = PlanAuditor::default().audit_decision(&sys, &bad, &d);
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, PlanViolation::BudgetExceeded { .. })),
            "{report}"
        );

        // The same overrun under PremiumOverride is the sanctioned
        // exception and passes the budget check.
        let genuine_override = capper.decide_hour(&sys, 8e8, 0.8 * 8e8, &d, 1.0).unwrap();
        assert_eq!(genuine_override.outcome, HourOutcome::PremiumOverride);
        let report = PlanAuditor::default().audit_decision(&sys, &genuine_override, &d);
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn premium_shed_is_caught() {
        let sys = DataCenterSystem::paper_system(1);
        let d = background();
        let dec = BillCapper::default()
            .decide_hour(&sys, 8e8, 0.8 * 8e8, &d, f64::INFINITY)
            .unwrap();
        let mut bad = dec.clone();
        bad.premium_served = 0.5 * bad.premium_offered;
        let report = PlanAuditor::default().audit_decision(&sys, &bad, &d);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, PlanViolation::PremiumShed { .. })));
    }

    #[test]
    fn audit_env_flag_parses() {
        // The variable is process-global, so instead of mutating it the
        // test checks agreement with the documented rule for whatever
        // value the environment currently holds.
        let expected = std::env::var("BILLCAP_AUDIT").is_ok_and(|v| !v.is_empty() && v != "0");
        assert_eq!(audit_env_enabled(), expected);
    }
}
