//! Heterogeneous data centers (paper Section IX, future work).
//!
//! The paper assumes homogeneous servers per site and flags heterogeneity —
//! multiple server generations with different service rates and power
//! draws — as an open extension. This module implements the natural local
//! optimizer for that case: given a site-level request rate, activate
//! server classes in order of energy-per-request efficiency, and expose an
//! *effective* linearized power coefficient so the heterogeneous site can
//! participate in the same MILP formulation.

use billcap_queueing::GgmModel;

/// One class of servers inside a heterogeneous data center.
#[derive(Debug, Clone)]
pub struct ServerClass {
    /// Human-readable class name (e.g. a server generation).
    pub name: String,
    /// Per-server power at the packed operating point (W).
    pub watts: f64,
    /// Service rate (requests/hour/server).
    pub service_rate: f64,
    /// Installed count.
    pub count: u64,
}

impl ServerClass {
    /// Energy efficiency: watt-hours per request.
    pub fn watt_hours_per_request(&self) -> f64 {
        self.watts / self.service_rate
    }
}

/// A plan entry: how many servers of a class to activate and the rate they
/// carry.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivationEntry {
    /// Index into [`HeteroDataCenter::classes`].
    pub class_index: usize,
    /// Servers of that class to activate.
    pub servers: u64,
    /// Request rate those servers carry (requests/hour).
    pub rate: f64,
}

/// The local optimizer's activation plan for one hour.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ActivationPlan {
    /// Per-class activations, in activation (efficiency) order.
    pub entries: Vec<ActivationEntry>,
    /// Total server power (W).
    pub power_w: f64,
    /// Total rate carried (requests/hour).
    pub rate: f64,
}

/// A heterogeneous data center: several server classes sharing one G/G/m
/// response-time target.
#[derive(Debug, Clone)]
pub struct HeteroDataCenter {
    /// The site's server classes.
    pub classes: Vec<ServerClass>,
    /// Response-time target (hours), interpreted per class against its own
    /// service rate (a class whose bare service time exceeds the target is
    /// unusable and skipped).
    pub response_target: f64,
    /// Traffic variability `(C²_A + C²_B)/2` shared by all classes.
    pub variability: f64,
}

impl HeteroDataCenter {
    /// Creates a heterogeneous site.
    pub fn new(classes: Vec<ServerClass>, response_target: f64, variability: f64) -> Self {
        assert!(!classes.is_empty(), "need at least one server class");
        assert!(response_target > 0.0, "target must be positive");
        Self {
            classes,
            response_target,
            variability,
        }
    }

    /// Classes ordered most-efficient-first, excluding classes that cannot
    /// meet the response-time target at all.
    fn usable_order(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.classes.len())
            .filter(|&i| 1.0 / self.classes[i].service_rate < self.response_target)
            .collect();
        idx.sort_by(|&a, &b| {
            self.classes[a]
                .watt_hours_per_request()
                .total_cmp(&self.classes[b].watt_hours_per_request())
        });
        idx
    }

    /// G/G/m model for one class.
    fn class_queue(&self, i: usize) -> GgmModel {
        GgmModel::new(
            self.classes[i].service_rate,
            self.variability,
            self.variability,
        )
    }

    /// Maximum rate a class can carry within the QoS target.
    pub fn class_capacity(&self, i: usize) -> f64 {
        let q = self.class_queue(i);
        q.max_arrival_rate(self.classes[i].count, self.response_target)
            .unwrap_or(0.0)
    }

    /// Total rate the site can carry.
    pub fn capacity(&self) -> f64 {
        (0..self.classes.len())
            .map(|i| self.class_capacity(i))
            .sum()
    }

    /// Greedy efficiency-first activation: fill the most efficient class to
    /// its QoS capacity, then the next. Returns `None` when `rate` exceeds
    /// the site capacity.
    pub fn activate(&self, rate: f64) -> Option<ActivationPlan> {
        assert!(rate >= 0.0, "rate must be non-negative");
        let mut remaining = rate;
        let mut plan = ActivationPlan::default();
        for i in self.usable_order() {
            if remaining <= 0.0 {
                break;
            }
            let cap = self.class_capacity(i);
            let take = remaining.min(cap);
            if take <= 0.0 {
                continue;
            }
            let q = self.class_queue(i);
            let servers = q
                .min_servers(take, self.response_target)
                .ok()?
                .min(self.classes[i].count);
            plan.entries.push(ActivationEntry {
                class_index: i,
                servers,
                rate: take,
            });
            plan.power_w += servers as f64 * self.classes[i].watts;
            plan.rate += take;
            remaining -= take;
        }
        if remaining > 1e-9 {
            return None; // over capacity
        }
        Some(plan)
    }

    /// Effective marginal watts per (request/hour) at low load — the most
    /// efficient class's rate — usable as the site's linear coefficient in
    /// the MILP when the load mostly fits that class.
    pub fn marginal_watt_hours_per_request(&self) -> Option<f64> {
        self.usable_order()
            .first()
            .map(|&i| self.classes[i].watt_hours_per_request())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> HeteroDataCenter {
        HeteroDataCenter::new(
            vec![
                ServerClass {
                    name: "old".into(),
                    watts: 90.0,
                    service_rate: 400.0,
                    count: 1000,
                }, // 0.225 Wh/req
                ServerClass {
                    name: "new".into(),
                    watts: 60.0,
                    service_rate: 600.0,
                    count: 500,
                }, // 0.100 Wh/req
            ],
            1.5 / 400.0, // reachable by both classes
            1.0,
        )
    }

    #[test]
    fn efficiency_order_prefers_new_servers() {
        let s = site();
        let plan = s.activate(100_000.0).unwrap();
        assert_eq!(plan.entries[0].class_index, 1, "new servers first");
    }

    #[test]
    fn spills_to_less_efficient_class_when_full() {
        let s = site();
        let cap_new = s.class_capacity(1);
        let plan = s.activate(cap_new + 50_000.0).unwrap();
        assert_eq!(plan.entries.len(), 2);
        assert_eq!(plan.entries[1].class_index, 0);
        assert!((plan.rate - (cap_new + 50_000.0)).abs() < 1e-6);
    }

    #[test]
    fn over_capacity_returns_none() {
        let s = site();
        assert!(s.activate(s.capacity() * 1.01).is_none());
    }

    #[test]
    fn capacity_is_sum_of_class_capacities() {
        let s = site();
        let sum = s.class_capacity(0) + s.class_capacity(1);
        assert!((s.capacity() - sum).abs() < 1e-9);
    }

    #[test]
    fn power_grows_with_rate() {
        let s = site();
        let p1 = s.activate(50_000.0).unwrap().power_w;
        let p2 = s.activate(150_000.0).unwrap().power_w;
        assert!(p2 > p1);
    }

    #[test]
    fn unusable_class_is_skipped() {
        // A class too slow for the target gets no traffic.
        let s = HeteroDataCenter::new(
            vec![
                ServerClass {
                    name: "slow".into(),
                    watts: 10.0,
                    service_rate: 100.0,
                    count: 1000,
                },
                ServerClass {
                    name: "fast".into(),
                    watts: 80.0,
                    service_rate: 800.0,
                    count: 100,
                },
            ],
            1.2 / 800.0, // only the fast class can meet this
            1.0,
        );
        let plan = s.activate(10_000.0).unwrap();
        assert!(plan.entries.iter().all(|e| e.class_index == 1));
    }

    #[test]
    fn marginal_efficiency_is_best_class() {
        let s = site();
        assert!((s.marginal_watt_hours_per_request().unwrap() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn homogeneous_site_matches_ggm_sizing() {
        // With one class, activation must agree with the plain G/G/m
        // local optimizer.
        let s = HeteroDataCenter::new(
            vec![ServerClass {
                name: "only".into(),
                watts: 88.88,
                service_rate: 500.0,
                count: 100_000,
            }],
            1.5 / 500.0,
            1.0,
        );
        let rate = 1e7;
        let plan = s.activate(rate).unwrap();
        let q = GgmModel::new(500.0, 1.0, 1.0);
        let expect = q.min_servers(rate, 1.5 / 500.0).unwrap();
        assert_eq!(plan.entries[0].servers, expect);
    }
}
