//! Spec-hash decision cache.
//!
//! The serve daemon (and replay clients) see repeated decide-hour
//! requests: identical `(system, inputs)` tuples recur whenever a
//! workload trace revisits an operating point. Since
//! [`crate::BillCapper::decide_hour`] is a pure function of its inputs,
//! a finished [`HourDecision`] can be replayed verbatim for an exact
//! match — the cache keys on **raw bits**, never tolerances, so a hit
//! is bitwise-identical to a fresh solve by construction and two
//! almost-equal inputs never alias.
//!
//! The system itself is folded into the key as an FNV-1a fingerprint of
//! every number the MILPs read from it (site power/queueing parameters
//! and the full pricing schedule), so one cache instance can safely
//! serve requests that name different policies.

use crate::capper::HourDecision;
use crate::spec::DataCenterSystem;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

/// 64-bit FNV-1a over little-endian words.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        for &b in s.as_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Fingerprints every input the decision MILPs read from `system`:
/// per-site name, queueing/power coefficients, caps, and the full
/// price schedule. Two systems with equal fingerprints produce
/// identical models for identical hour inputs.
pub fn system_fingerprint(system: &DataCenterSystem) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(system.len() as u64);
    for (i, site) in system.sites.iter().enumerate() {
        h.write_str(&site.name);
        h.write_f64(site.mw_per_request());
        h.write_f64(site.base_power_mw());
        h.write_f64(site.max_rate());
        h.write_f64(site.response_target);
        h.write_f64(site.power_cap_mw);
        h.write_u64(site.max_servers);
        let policy = system.policy(i);
        for (lo, hi, price) in policy.levels() {
            h.write_f64(lo);
            h.write_f64(hi);
            h.write_f64(price);
        }
    }
    h.0
}

/// The exact-match key of one decide-hour request. All floats are
/// stored as raw bits ([`f64::to_bits`]); `-0.0` and `0.0`, or two
/// NaN payloads, are deliberately distinct.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DecisionKey {
    system: u64,
    integral_servers: bool,
    offered: u64,
    premium_offered: u64,
    background: Vec<u64>,
    budget: u64,
}

impl DecisionKey {
    /// Builds the key for one request against `system`.
    pub fn new(
        system: &DataCenterSystem,
        integral_servers: bool,
        offered: f64,
        premium_offered: f64,
        background_mw: &[f64],
        hourly_budget: f64,
    ) -> Self {
        Self {
            system: system_fingerprint(system),
            integral_servers,
            offered: offered.to_bits(),
            premium_offered: premium_offered.to_bits(),
            background: background_mw.iter().map(|d| d.to_bits()).collect(),
            budget: hourly_budget.to_bits(),
        }
    }
}

/// A bounded FIFO cache of finished decisions.
///
/// FIFO (not LRU) keeps eviction deterministic under concurrent
/// readers: the eviction order depends only on insertion order, never
/// on who happened to read an entry last.
#[derive(Debug)]
pub struct DecisionCache {
    map: HashMap<DecisionKey, HourDecision>,
    order: VecDeque<DecisionKey>,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl DecisionCache {
    /// Default capacity: a month of hourly decisions.
    pub const DEFAULT_CAPACITY: usize = 744;

    /// Creates a cache holding at most `capacity` decisions
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            map: HashMap::with_capacity(capacity.min(4096)),
            order: VecDeque::new(),
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up a decision, recording a hit or miss (mirrored to the
    /// `core.cache.hit` / `core.cache.miss` counters when tracing is
    /// enabled).
    pub fn get(&mut self, key: &DecisionKey) -> Option<HourDecision> {
        let found = self.map.get(key).cloned();
        if found.is_some() {
            self.hits += 1;
            if billcap_obs::enabled() {
                billcap_obs::counter("core.cache.hit", 1);
            }
        } else {
            self.misses += 1;
            if billcap_obs::enabled() {
                billcap_obs::counter("core.cache.miss", 1);
            }
        }
        found
    }

    /// Stores a decision, evicting the oldest entry when full.
    /// Re-inserting an existing key refreshes the value without
    /// growing the FIFO.
    pub fn insert(&mut self, key: DecisionKey, decision: HourDecision) {
        match self.map.entry(key.clone()) {
            Entry::Occupied(mut e) => {
                e.insert(decision);
                return;
            }
            Entry::Vacant(e) => {
                e.insert(decision);
                self.order.push_back(key);
            }
        }
        while self.map.len() > self.capacity {
            match self.order.pop_front() {
                Some(old) => {
                    self.map.remove(&old);
                    self.evictions += 1;
                    if billcap_obs::enabled() {
                        billcap_obs::counter("core.cache.evict", 1);
                    }
                }
                None => break,
            }
        }
    }

    /// Number of cached decisions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups answered from the cache since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that fell through since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Decisions evicted by the FIFO bound since construction
    /// (mirrored to `core.cache.evict` when tracing is enabled).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

impl Default for DecisionCache {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capper::BillCapper;
    use crate::spec::DataCenterSystem;

    fn decision(sys: &DataCenterSystem, offered: f64) -> HourDecision {
        BillCapper::default()
            .decide_hour(sys, offered, 0.5 * offered, &[330.0, 410.0, 280.0], 1e9)
            .unwrap()
    }

    #[test]
    fn hit_returns_the_stored_decision_bitwise() {
        let sys = DataCenterSystem::paper_system(1);
        let d = decision(&sys, 4e8);
        let key = DecisionKey::new(&sys, false, 4e8, 2e8, &[330.0, 410.0, 280.0], 1e9);
        let mut cache = DecisionCache::new(8);
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), d.clone());
        let hit = cache.get(&key).unwrap();
        assert_eq!(hit.cost().to_bits(), d.cost().to_bits());
        assert_eq!(hit.allocation, d.allocation);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn keys_are_exact_not_tolerant() {
        let sys = DataCenterSystem::paper_system(1);
        let base = DecisionKey::new(&sys, false, 4e8, 2e8, &[330.0, 410.0, 280.0], 1e9);
        let nudged = DecisionKey::new(
            &sys,
            false,
            4e8 * (1.0 + f64::EPSILON),
            2e8,
            &[330.0, 410.0, 280.0],
            1e9,
        );
        assert_ne!(base, nudged, "one-ulp input changes must miss");
        let negzero = DecisionKey::new(&sys, false, 4e8, 2e8, &[-0.0, 410.0, 280.0], 1e9);
        let poszero = DecisionKey::new(&sys, false, 4e8, 2e8, &[0.0, 410.0, 280.0], 1e9);
        assert_ne!(negzero, poszero);
        let integral = DecisionKey::new(&sys, true, 4e8, 2e8, &[330.0, 410.0, 280.0], 1e9);
        assert_ne!(base, integral);
    }

    #[test]
    fn different_systems_do_not_alias() {
        let p1 = DataCenterSystem::paper_system(1);
        let p2 = DataCenterSystem::paper_system(2);
        assert_ne!(system_fingerprint(&p1), system_fingerprint(&p2));
        let k1 = DecisionKey::new(&p1, false, 4e8, 2e8, &[330.0, 410.0, 280.0], 1e9);
        let k2 = DecisionKey::new(&p2, false, 4e8, 2e8, &[330.0, 410.0, 280.0], 1e9);
        assert_ne!(k1, k2);
    }

    #[test]
    fn fifo_eviction_drops_the_oldest() {
        let sys = DataCenterSystem::paper_system(1);
        let d = decision(&sys, 4e8);
        let mut cache = DecisionCache::new(2);
        let keys: Vec<DecisionKey> = (0..3)
            .map(|i| {
                DecisionKey::new(
                    &sys,
                    false,
                    4e8 + f64::from(i),
                    2e8,
                    &[330.0, 410.0, 280.0],
                    1e9,
                )
            })
            .collect();
        for k in &keys {
            cache.insert(k.clone(), d.clone());
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(&keys[0]).is_none(), "oldest must be evicted");
        assert!(cache.get(&keys[1]).is_some());
        assert!(cache.get(&keys[2]).is_some());
        // Re-inserting an existing key must not evict anything.
        cache.insert(keys[2].clone(), d.clone());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(&keys[1]).is_some());
    }
}
