//! Realized-cost evaluation: billing any allocation at true market prices.
//!
//! The baselines decide allocations under *wrong* assumptions (constant
//! prices, server-only power). What they actually pay is determined by the
//! real world: the local optimizer starts `ceil` servers, the full power
//! chain (servers + switches + cooling) draws watts, and the ISO bills at
//! the step price produced by the *actual* regional load. This module is
//! that real world.

use crate::spec::DataCenterSystem;

/// The realized (billed) outcome of running an allocation for one hour.
#[derive(Debug, Clone, PartialEq)]
pub struct RealizedCost {
    /// Active servers per site (local optimizer's ceil).
    pub servers: Vec<u64>,
    /// Exact site power (MW), integral switch counts and all.
    pub power_mw: Vec<f64>,
    /// Billed price per site ($/MWh) at the actual regional load.
    pub price: Vec<f64>,
    /// Billed cost per site ($).
    pub cost: Vec<f64>,
    /// Total billed cost ($).
    pub total_cost: f64,
}

/// Bills a per-site request allocation (`lambda[i]` requests/hour) at true
/// prices with the full power model and background demand `background_mw`.
///
/// Panics if the vectors' lengths disagree with the system.
pub fn evaluate_allocation(
    system: &DataCenterSystem,
    lambda: &[f64],
    background_mw: &[f64],
) -> RealizedCost {
    assert_eq!(lambda.len(), system.len(), "lambda length");
    assert_eq!(background_mw.len(), system.len(), "background length");
    let mut servers = Vec::with_capacity(system.len());
    let mut power_mw = Vec::with_capacity(system.len());
    let mut price = Vec::with_capacity(system.len());
    let mut cost = Vec::with_capacity(system.len());
    let mut total_cost = 0.0;
    for (i, site) in system.sites.iter().enumerate() {
        let n = site.servers_for_rate(lambda[i]);
        let p = site.power.total_mw(n);
        let r = system.policy(i).price_at(p + background_mw[i]);
        let c = r * p;
        servers.push(n);
        power_mw.push(p);
        price.push(r);
        cost.push(c);
        total_cost += c;
    }
    RealizedCost {
        servers,
        power_mw,
        price,
        cost,
        total_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimize::CostMinimizer;
    use crate::spec::DataCenterSystem;

    fn background() -> Vec<f64> {
        vec![330.0, 410.0, 280.0]
    }

    #[test]
    fn realized_cost_close_to_milp_estimate() {
        // The MILP uses the linearized power model; realized cost uses the
        // exact one. They must agree to a fraction of a percent.
        let sys = DataCenterSystem::paper_system(1);
        let d = background();
        let alloc = CostMinimizer::default().solve(&sys, 5e8, &d).unwrap();
        let real = evaluate_allocation(&sys, &alloc.lambda, &d);
        let rel = (real.total_cost - alloc.total_cost).abs() / alloc.total_cost;
        assert!(rel < 5e-3, "relative gap {rel}");
    }

    #[test]
    fn zero_allocation_bills_near_zero() {
        let sys = DataCenterSystem::paper_system(1);
        let real = evaluate_allocation(&sys, &[0.0, 0.0, 0.0], &background());
        // Only QoS headroom servers and their switch/cooling overhead.
        assert!(real.total_cost < 50.0, "cost {}", real.total_cost);
    }

    #[test]
    fn price_comes_from_actual_regional_load() {
        let sys = DataCenterSystem::paper_system(1);
        // Background at site 0 placed just below the 450 MW breakpoint:
        // a large allocation must tip it into the next price level.
        let d = vec![449.0, 410.0, 280.0];
        let small = evaluate_allocation(&sys, &[1e6, 0.0, 0.0], &d);
        let large = evaluate_allocation(&sys, &[3e8, 0.0, 0.0], &d);
        assert!(large.price[0] > small.price[0]);
    }

    #[test]
    fn cost_monotone_in_allocation() {
        let sys = DataCenterSystem::paper_system(1);
        let d = background();
        let a = evaluate_allocation(&sys, &[1e8, 1e8, 1e8], &d);
        let b = evaluate_allocation(&sys, &[2e8, 2e8, 2e8], &d);
        assert!(b.total_cost > a.total_cost);
    }

    #[test]
    #[should_panic(expected = "lambda length")]
    fn length_mismatch_panics() {
        let sys = DataCenterSystem::paper_system(1);
        evaluate_allocation(&sys, &[1.0], &background());
    }
}
