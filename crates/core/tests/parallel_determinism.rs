//! Parallel branch-and-bound determinism on the paper's MILP.
//!
//! The acceptance contract for the parallel solver: solving the same
//! step-pricing instance with 1 worker and with 8 must return
//! *bitwise-identical* objective values. The instances come from
//! [`DataCenterSystem::synthetic`], whose per-site price perturbations
//! make the optimum unique and separated by far more than the solver's
//! gap tolerance — the precondition under which exploration order
//! cannot change the returned objective (see
//! `billcap-milp/src/branch/parallel.rs`).

use billcap_core::{CostMinimizer, DataCenterSystem};
use billcap_milp::MipSolver;

fn minimizer(threads: usize) -> CostMinimizer {
    CostMinimizer {
        solver: MipSolver {
            threads,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn parallel_and_sequential_objectives_are_bitwise_identical() {
    let sys = DataCenterSystem::synthetic(10, 10);
    let background: Vec<f64> = (0..sys.len()).map(|i| 5.0 + 3.0 * i as f64).collect();
    for load_frac in [0.2, 0.45] {
        let lambda = load_frac * sys.total_capacity();
        let seq = minimizer(1).solve(&sys, lambda, &background).unwrap();
        let par = minimizer(8).solve(&sys, lambda, &background).unwrap();
        assert_eq!(
            seq.total_cost.to_bits(),
            par.total_cost.to_bits(),
            "load {load_frac}: sequential {} vs parallel {}",
            seq.total_cost,
            par.total_cost
        );
        // The allocations themselves agree too: the search's incumbent
        // reduction is deterministic, not merely objective-stable.
        assert_eq!(seq.lambda, par.lambda, "load {load_frac}");
    }
}

#[test]
fn thread_count_sweep_is_stable() {
    let sys = DataCenterSystem::synthetic(10, 10);
    let background: Vec<f64> = (0..sys.len()).map(|i| 8.0 + 2.0 * i as f64).collect();
    let lambda = 0.35 * sys.total_capacity();
    let reference = minimizer(1).solve(&sys, lambda, &background).unwrap();
    for threads in [4, 8] {
        let par = minimizer(threads).solve(&sys, lambda, &background).unwrap();
        assert_eq!(
            reference.total_cost.to_bits(),
            par.total_cost.to_bits(),
            "threads {threads}: {} vs {}",
            reference.total_cost,
            par.total_cost
        );
    }
}
