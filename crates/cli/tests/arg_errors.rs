//! Argument-error coverage through the real binary: every subcommand —
//! including `serve` and `replay` — must reject unknown flags, missing
//! values, and unparseable numbers with a non-zero exit and a message
//! naming the offending flag, before doing any work (no hanging on
//! stdin, no solver runs).

use std::process::{Command, Output, Stdio};

/// Runs the built `billcap` binary with `args`, stdin closed, and
/// returns the completed output. Closing stdin matters for `serve`:
/// argument errors must surface before the daemon would block reading.
fn billcap(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_billcap"))
        .args(args)
        .stdin(Stdio::null())
        .output()
        .expect("spawn billcap")
}

/// Asserts the invocation fails and mentions `needle` on stderr.
fn assert_fails_mentioning(args: &[&str], needle: &str) {
    let out = billcap(args);
    assert!(
        !out.status.success(),
        "billcap {args:?} unexpectedly succeeded"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(needle),
        "billcap {args:?}: stderr {stderr:?} does not mention {needle:?}"
    );
}

#[test]
fn unknown_flag_is_rejected_everywhere() {
    for cmd in [
        vec!["decide-hour", "--offered", "6e8", "--budget", "1e9"],
        vec!["simulate-month", "--quiet"],
        vec!["derive-policies"],
        vec!["export-trace"],
        vec!["analyze-trace", "x.jsonl"],
        vec!["diff-trace", "a.jsonl", "b.jsonl"],
        vec!["solve-lp", "x.lp"],
        vec!["lint-model", "x.lp"],
        vec!["lint-spec"],
        vec!["serve"],
        vec!["replay"],
    ] {
        let mut args = cmd.clone();
        args.push("--frobnicate");
        args.push("1");
        assert_fails_mentioning(&args, "--frobnicate");
    }
}

#[test]
fn missing_required_value_is_rejected() {
    // `--offered` immediately followed by another flag parses as a
    // switch, so the required value is missing.
    assert_fails_mentioning(&["decide-hour", "--offered", "--budget"], "offered");
    assert_fails_mentioning(&["decide-hour", "--budget", "1e9"], "offered");
    assert_fails_mentioning(&["analyze-trace"], "trace file");
    assert_fails_mentioning(&["solve-lp"], "file path");
}

#[test]
fn unparseable_numbers_are_rejected() {
    assert_fails_mentioning(
        &["decide-hour", "--offered", "lots", "--budget", "1e9"],
        "--offered",
    );
    assert_fails_mentioning(&["simulate-month", "--hours", "nope"], "--hours");
    assert_fails_mentioning(&["replay", "--hours", "nope"], "--hours");
    assert_fails_mentioning(&["replay", "--seed", "3.5"], "--seed");
    assert_fails_mentioning(&["replay", "--budget", "much"], "--budget");
    assert_fails_mentioning(&["serve", "--workers", "two"], "--workers");
    assert_fails_mentioning(&["export-trace", "--hours", "-3"], "--hours");
}

#[test]
fn out_of_range_values_are_rejected() {
    assert_fails_mentioning(&["replay", "--hours", "0"], "--hours");
    assert_fails_mentioning(&["replay", "--workers", "0"], "--workers");
    assert_fails_mentioning(&["replay", "--policy", "9"], "--policy");
    assert_fails_mentioning(&["serve", "--workers", "0"], "--workers");
    assert_fails_mentioning(&["serve", "--once"], "--socket");
    assert_fails_mentioning(&["replay", "--budget", "1e6", "--uncapped"], "exclusive");
    assert_fails_mentioning(
        &[
            "decide-hour",
            "--offered",
            "1e8",
            "--budget",
            "1",
            "--policy",
            "7",
        ],
        "--policy",
    );
}

#[test]
fn serve_on_closed_stdin_exits_cleanly() {
    // With stdin at EOF the daemon sees a clean end-of-stream: zero
    // requests, exit 0, stats on stderr. This is the regression guard
    // against the reader blocking forever on an empty pipe.
    let out = billcap(&["serve", "--workers", "1"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("0 decisions"), "stderr: {stderr}");
}

#[test]
fn unknown_subcommand_suggests_help() {
    assert_fails_mentioning(&["frobnicate"], "billcap help");
}
