//! Minimal flag parser (no external dependencies): `--name value` flags,
//! `--name` booleans, and positional arguments, with typed accessors and
//! helpful error messages.

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: HashMap<String, String>,
    switches: Vec<String>,
    positional: Vec<String>,
}

/// A user-facing argument error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses a token stream. A token starting with `--` is a flag; if the
    /// next token exists and does not start with `--`, it is the flag's
    /// value, otherwise the flag is a boolean switch.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Self {
        let mut out = Args::default();
        let mut iter = tokens.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(name) = tok.strip_prefix("--") {
                let takes_value = iter
                    .peek()
                    .map(|next| !next.starts_with("--"))
                    .unwrap_or(false);
                if takes_value {
                    out.flags.insert(name.to_string(), iter.next().unwrap());
                } else {
                    out.switches.push(name.to_string());
                }
            } else {
                out.positional.push(tok);
            }
        }
        out
    }

    /// Positional arguments in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// True when the boolean switch was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// String flag, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Typed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError(format!("--{name}: cannot parse {raw:?}"))),
        }
    }

    /// Required typed flag.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgError> {
        let raw = self
            .flags
            .get(name)
            .ok_or_else(|| ArgError(format!("missing required flag --{name}")))?;
        raw.parse()
            .map_err(|_| ArgError(format!("--{name}: cannot parse {raw:?}")))
    }

    /// Rejects any flag or switch not in `allowed` (names without the
    /// `--` prefix). Every subcommand calls this first, so a typo like
    /// `--sed 42` fails loudly instead of silently using the default.
    pub fn check_known(&self, allowed: &[&str]) -> Result<(), ArgError> {
        let mut unknown: Vec<&str> = self
            .flags
            .keys()
            .map(String::as_str)
            .chain(self.switches.iter().map(String::as_str))
            .filter(|name| !allowed.contains(name))
            .collect();
        if unknown.is_empty() {
            return Ok(());
        }
        unknown.sort_unstable();
        unknown.dedup();
        let list: Vec<String> = unknown.iter().map(|n| format!("--{n}")).collect();
        Err(ArgError(format!(
            "unknown flag(s) {}; try `billcap help`",
            list.join(", ")
        )))
    }

    /// Comma-separated list of floats (e.g. `--background 360,410,430`).
    pub fn get_f64_list(&self, name: &str) -> Result<Option<Vec<f64>>, ArgError> {
        match self.flags.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .split(',')
                .map(|p| {
                    p.trim()
                        .parse()
                        .map_err(|_| ArgError(format!("--{name}: bad number {p:?}")))
                })
                .collect::<Result<Vec<f64>, _>>()
                .map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn flags_values_and_switches() {
        let a = parse("cmd --budget 2000 --verbose --seed 42");
        assert_eq!(a.positional(), ["cmd"]);
        assert_eq!(a.get("budget"), Some("2000"));
        assert!(a.has("verbose"));
        assert_eq!(a.get_or::<u64>("seed", 0).unwrap(), 42);
    }

    #[test]
    fn defaults_and_requirements() {
        let a = parse("x --rate 5.5");
        assert_eq!(a.get_or::<f64>("rate", 0.0).unwrap(), 5.5);
        assert_eq!(a.get_or::<f64>("missing", 7.0).unwrap(), 7.0);
        assert!(a.require::<f64>("absent").is_err());
        assert!(a.get_or::<u64>("rate", 0).is_err()); // 5.5 is not a u64
    }

    #[test]
    fn float_lists() {
        let a = parse("x --background 360,410,430");
        assert_eq!(
            a.get_f64_list("background").unwrap(),
            Some(vec![360.0, 410.0, 430.0])
        );
        assert_eq!(a.get_f64_list("none").unwrap(), None);
        let bad = parse("x --background 1,two,3");
        assert!(bad.get_f64_list("background").is_err());
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        // "-5" does not start with "--", so it is a value.
        let a = parse("x --offset -5");
        assert_eq!(a.get_or::<f64>("offset", 0.0).unwrap(), -5.0);
    }

    #[test]
    fn unknown_flags_are_rejected_deterministically() {
        let a = parse("cmd --seed 42 --verbose");
        assert!(a.check_known(&["seed", "verbose"]).is_ok());
        let err = a.check_known(&["seed"]).unwrap_err();
        assert!(err.0.contains("--verbose"), "{err}");
        // Multiple unknowns are all reported, sorted.
        let b = parse("cmd --zeta 1 --alpha 2");
        let err = b.check_known(&[]).unwrap_err();
        assert!(err.0.contains("--alpha, --zeta"), "{err}");
    }

    #[test]
    fn trailing_switch() {
        let a = parse("x --quiet");
        assert!(a.has("quiet"));
        assert_eq!(a.get("quiet"), None);
    }
}
