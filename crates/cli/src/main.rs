//! `billcap` — command-line interface to the bill-capping toolkit.
//!
//! ```text
//! billcap decide-hour --offered 6e8 --premium-frac 0.8 \
//!         --background 360,410,430 --budget 2000 [--policy 1]
//! billcap simulate-month --strategy capping [--budget 1.5e6] [--seed 42]
//!         [--policy 1] [--csv month.csv]
//! billcap derive-policies [--max-load 900] [--step 10]
//! billcap export-trace --kind workload [--hours 720] [--seed 42]
//! billcap analyze-trace month.jsonl [--flame out.folded] [--top 5]
//! billcap diff-trace base.jsonl current.jsonl [--threshold 10]
//! billcap simulate-risk [--samples 1000] [--seed 42] [--threads 4]
//!         [--cap-schedule derate:0.3] [--hours 168] [--json risk.jsonl]
//! billcap solve-lp model.lp
//! billcap serve [--socket /tmp/billcap.sock] [--workers 4]
//!         [--metrics-stream metrics.jsonl]
//! billcap replay [--hours 168] [--check]
//! billcap watch --socket /tmp/billcap.sock [--count 10] [--interval-ms 1000]
//! billcap analyze-series metrics.jsonl [--slo "request_us.p99<=5000"]
//! billcap help
//! ```

#![forbid(unsafe_code)]

mod args;

use args::{ArgError, Args};
use billcap_core::{audit_env_enabled, BillCapper, DataCenterSystem, HourOutcome, PlanAuditor};
use billcap_milp::{parse_lp, MipSolver};
use billcap_serve::{build_plan, run_replay, verify_replay, ServeConfig};
use billcap_sim::export::monthly_report_csv;
use billcap_sim::risk::to_jsonl;
use billcap_sim::{run_month_with, RiskConfig, RiskEngine, Scenario, ScheduleSpec, Strategy};
use billcap_workload::{BackgroundDemand, TemperatureModel, TraceConfig, TraceGenerator};
use std::process::ExitCode;

const HELP: &str = "\
billcap — electricity bill capping for cloud-scale data centers
(reproduction of Zhang, Wang & Wang, ICPP 2012)

USAGE:
  billcap decide-hour --offered R --premium-frac F --budget D
          [--background MW,MW,MW] [--policy 0..3] [--audit] [--lint]
          [--trace FILE]
      Decide one hour's workload dispatch for the paper's 3-site system.
      With --audit, re-verify the plan against the paper's invariants
      (power caps, G/G/m response time, step-price level, budget rules)
      and fail if any are violated.

  billcap simulate-month --strategy capping|min-only-avg|min-only-low
          [--budget DOLLARS] [--policy 0..3] [--seed N] [--csv FILE]
          [--hours N] [--quiet] [--audit] [--lint] [--trace FILE]
      Simulate the evaluation month and print the summary
      (optionally dumping the hourly series as CSV). With --audit, every
      capping hour is re-verified and the audit tally is reported.
      Setting BILLCAP_AUDIT=1 additionally certifies each MILP solve
      (feasibility, integrality, dual bounds) inside the optimizers.

      With --trace FILE, solver tracing is enabled for the run and the
      merged trace (per-hour spans, B&B node counters, price-level
      histograms) is written to FILE as JSONL. Setting BILLCAP_TRACE to
      a path does the same without the flag; BILLCAP_TRACE=1 enables
      collection only. With --hours N, only the first N hours of the
      month are simulated (--budget then covers just those hours).

  billcap simulate-risk [--samples N] [--seed N] [--threads N]
          [--cap-schedule none|derate|derate:DEPTH] [--hours N]
          [--budget DOLLARS | --uncapped] [--policy 0..3] [--audit]
          [--json FILE] [--quiet]
      Monte-Carlo risk run: N perturbed-seed month simulations (workload
      level/growth jitter, extra flash crowds, background-demand shifts,
      predictor error on the budgeting history) fanned across the worker
      pool, aggregated into P50/P95/P99 bill and violation distributions
      for the capper next to the Min-Only baseline. Sample i is seeded
      from a SplitMix64 seed stream, so results are bitwise identical at
      any --threads value. With --hours N only the first N hours of each
      month run (the default budget is scaled to match); --cap-schedule
      derate:D applies an afternoon-peaked thermal derating of depth D
      to every site's power cap. --json FILE writes per-sample JSONL
      plus a summary line; --quiet prints one machine-friendly line
      (P50 P95 P99 violation-probability digest).

  billcap analyze-trace FILE [--flame OUT] [--top N]
      Reconstruct the span tree from a JSONL trace and print a profile:
      per-node call counts, inclusive/self time, the hot path, and the
      top N self-time nodes (default 5). With --flame OUT, also write
      collapsed stacks (`a;b;c N`) for flamegraph.pl / inferno.

  billcap diff-trace BASE CURRENT [--threshold PCT]
          [--count-threshold PCT] [--warn-only]
      Compare two JSONL traces: span times and histogram means gate on
      --threshold (default 10%), deterministic work counters (B&B
      nodes, LP iterations) on --count-threshold (default 0% = exact).
      Exits non-zero on regressions; --warn-only downgrades timing
      regressions (work-counter regressions still fail — they are
      deterministic, never noise).

  billcap derive-policies [--max-load MW] [--step MW]
      Derive the locational step pricing policies from the PJM
      five-bus system (the paper's Figure 1).

  billcap export-trace --kind workload|background0|background1|background2|
          temperature0|temperature1|temperature2
          [--hours N] [--seed N] [--mean-rate R]
      Print a synthetic trace as CSV.

  billcap solve-lp FILE
      Solve a CPLEX LP-format model with the built-in MILP solver.

  billcap lint-model FILE [--json]
      Statically analyze a CPLEX LP-format model without solving it:
      coefficient conditioning, loose big-M rows, broken exactly-one
      groups, duplicate/contradictory rows, dangling variables, and
      bound-propagation infeasibility proofs (codes M001–M010). Exits
      non-zero on Error-severity findings; --json emits JSONL.

  billcap lint-spec [--policy 0..3 | --synthetic N,L]
          [--premium-frac F] [--json]
      Re-derive the paper's spec invariants for a system without
      solving: step-price monotonicity, price-vector shape, budget
      weights, premium fraction, QoS reachability, cap-vs-idle power,
      site/policy pairing (codes S001–S009). Exits non-zero on
      Error-severity findings; --json emits JSONL.

  billcap serve [--socket PATH [--once]] [--workers N] [--no-cache]
          [--warm-basis] [--integral] [--metrics-stream FILE]
          [--window-requests N] [--no-telemetry]
      Run the decide-hour daemon. Clients send framed JSON requests
      (4-byte big-endian length prefix + JSON body) on stdin and read
      framed responses on stdout; with --socket PATH a Unix socket is
      served instead (--once exits after the first connection).
      Requests shard across N decision workers (default: BILLCAP_THREADS
      or the CPU count), each reusing incrementally-updated MILP models.
      --no-cache disables the shared decision cache; --warm-basis
      carries simplex bases across solves (faster, but answers are no
      longer guaranteed bitwise-identical to the fresh solver).

      The server answers in-band `{\"op\":\"metrics\"}` and
      `{\"op\":\"health\"}` control frames from the reader thread without
      occupying a decision worker. With --metrics-stream FILE, one
      metrics document is appended to FILE as JSONL every
      --window-requests requests (default 64), ready for
      `analyze-series`. --no-telemetry disables latency recording and
      window rotation (work counters are always kept).

  billcap watch --socket PATH [--count N] [--interval-ms MS] [--json]
      Attach to a running daemon and scrape its `metrics` control frame
      periodically, rendering a live table of work counters and latency
      quantiles (microseconds). --count N stops after N scrapes
      (default 0 = until the server closes the connection); --json
      prints raw metrics documents as JSONL instead of the table —
      pipe-able straight into `analyze-series`.

  billcap analyze-series FILE [--slo SPEC]
      Analyze a streamed metrics log (JSONL of per-window metrics
      documents, as written by `serve --metrics-stream` or captured by
      `watch --json`): per-window table plus totals. With
      --slo \"SERIES.QUANTILE<=THRESHOLD [over N] [allow F]\" (e.g.
      \"request_us.p99<=5000 over 12 allow 0.1\"), evaluate SLO burn
      over the windows, print a machine-readable verdict line, and exit
      non-zero when the burn exceeds the allowance.

  billcap replay [--hours N] [--seed N] [--policy 0..3] [--workers N]
          [--budget DOLLARS | --uncapped] [--no-cache] [--check]
      Fire a simulated month (default: 168 hours, the paper's stringent
      monthly budget) through an in-process decision server and report
      throughput. With --check, verify every response bitwise against
      the sequential fresh-model decisions and fail on any mismatch.

  billcap help
      Show this message.

Setting BILLCAP_LINT=deny (or passing --lint to decide-hour /
simulate-month) additionally runs the model linter inside the
optimizers before every solve and refuses models with Error findings;
BILLCAP_LINT=warn prints them and proceeds.
";

fn main() -> ExitCode {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    match run(tokens) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(tokens: Vec<String>) -> Result<(), String> {
    let args = Args::parse(tokens);
    let command = args.positional().first().map(String::as_str);
    match command {
        Some("decide-hour") => decide_hour(&args).map_err(stringify),
        Some("simulate-month") => simulate_month(&args).map_err(stringify),
        Some("simulate-risk") => simulate_risk(&args).map_err(stringify),
        Some("derive-policies") => derive_policies(&args).map_err(stringify),
        Some("export-trace") => export_trace(&args).map_err(stringify),
        Some("analyze-trace") => analyze_trace(&args).map_err(stringify),
        Some("diff-trace") => diff_trace(&args).map_err(stringify),
        Some("solve-lp") => solve_lp(&args),
        Some("lint-model") => lint_model_cmd(&args),
        Some("lint-spec") => lint_spec_cmd(&args),
        Some("serve") => serve_cmd(&args).map_err(stringify),
        Some("replay") => replay_cmd(&args).map_err(stringify),
        Some("watch") => watch_cmd(&args).map_err(stringify),
        Some("analyze-series") => analyze_series_cmd(&args).map_err(stringify),
        Some("help") | None => {
            println!("{HELP}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}; try `billcap help`")),
    }
}

fn stringify(e: ArgError) -> String {
    e.0
}

/// Arms the optimizers' pre-solve lint gate when `--lint` is passed
/// (equivalent to `BILLCAP_LINT=deny` in the environment).
fn arm_lint(args: &Args) {
    if args.has("lint") {
        std::env::set_var("BILLCAP_LINT", "deny");
    }
}

/// Resolves the trace output path (`--trace FILE`, or a path-valued
/// `BILLCAP_TRACE`) and enables global tracing when one is found.
fn begin_trace(args: &Args) -> Option<String> {
    let path = args
        .get("trace")
        .map(String::from)
        .or_else(billcap_obs::env_trace_path);
    if path.is_some() {
        billcap_obs::set_enabled(true);
    }
    path
}

/// Writes the global trace snapshot to `path` as JSONL.
fn write_trace(path: &str) -> Result<(), ArgError> {
    let snap = billcap_obs::snapshot();
    std::fs::write(path, billcap_obs::export::to_jsonl(&snap))
        .map_err(|e| ArgError(format!("writing trace {path:?}: {e}")))?;
    eprintln!(
        "trace written to {path} ({} span events, {} counters)",
        snap.events.len(),
        snap.counters.len()
    );
    Ok(())
}

fn policy_arg(args: &Args) -> Result<usize, ArgError> {
    let p: usize = args.get_or("policy", 1)?;
    if p > 3 {
        return Err(ArgError("--policy must be 0..=3".into()));
    }
    Ok(p)
}

fn decide_hour(args: &Args) -> Result<(), ArgError> {
    args.check_known(&[
        "offered",
        "premium-frac",
        "budget",
        "background",
        "policy",
        "audit",
        "lint",
        "trace",
    ])?;
    let offered: f64 = args.require("offered")?;
    let premium_frac: f64 = args.get_or("premium-frac", 0.8)?;
    if !(0.0..=1.0).contains(&premium_frac) {
        return Err(ArgError("--premium-frac must be in [0, 1]".into()));
    }
    let budget: f64 = args.require("budget")?;
    arm_lint(args);
    let trace_path = begin_trace(args);
    let background = args
        .get_f64_list("background")?
        .unwrap_or_else(|| vec![360.0, 410.0, 430.0]);
    let system = DataCenterSystem::paper_system(policy_arg(args)?);
    if background.len() != system.len() {
        return Err(ArgError(format!(
            "--background needs {} comma-separated values",
            system.len()
        )));
    }
    let decision = BillCapper::default()
        .decide_hour(
            &system,
            offered,
            premium_frac * offered,
            &background,
            budget,
        )
        .map_err(|e| ArgError(e.to_string()))?;
    let outcome = match decision.outcome {
        HourOutcome::WithinBudget => "within budget",
        HourOutcome::Throttled => "throttled",
        HourOutcome::PremiumOverride => "premium override (budget violated)",
    };
    println!("outcome: {outcome}");
    println!(
        "served: premium {:.3e} req/h, ordinary {:.3e} req/h",
        decision.premium_served, decision.ordinary_served
    );
    for (i, site) in system.sites.iter().enumerate() {
        println!(
            "  {:<14} {:>10.3e} req/h  {:>8.2} MW  ${:>6.2}/MWh  ${:>10.2}",
            site.name,
            decision.allocation.lambda[i],
            decision.allocation.power_mw[i],
            decision.allocation.price[i],
            decision.allocation.cost[i]
        );
    }
    println!("hour cost ${:.2} vs budget ${budget:.2}", decision.cost());
    if args.has("audit") {
        let report = PlanAuditor::default().audit_decision(&system, &decision, &background);
        println!("audit: {report}");
        if !report.passed() {
            return Err(ArgError(format!("plan audit failed: {report}")));
        }
    }
    if let Some(path) = &trace_path {
        write_trace(path)?;
    }
    Ok(())
}

fn simulate_month(args: &Args) -> Result<(), ArgError> {
    args.check_known(&[
        "strategy", "budget", "policy", "seed", "csv", "hours", "quiet", "audit", "lint", "trace",
    ])?;
    let strategy = match args.get("strategy").unwrap_or("capping") {
        "capping" => Strategy::CostCapping,
        "min-only-avg" => Strategy::MinOnlyAvg,
        "min-only-low" => Strategy::MinOnlyLow,
        other => {
            return Err(ArgError(format!(
                "unknown strategy {other:?} (capping|min-only-avg|min-only-low)"
            )))
        }
    };
    let seed: u64 = args.get_or("seed", 42)?;
    let budget: Option<f64> = match args.get("budget") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| ArgError(format!("--budget: cannot parse {raw:?}")))?,
        ),
        None => None,
    };
    let audit = args.has("audit") || audit_env_enabled();
    arm_lint(args);
    let trace_path = begin_trace(args);
    let mut scenario = Scenario::paper_default(policy_arg(args)?, seed);
    if let Some(raw) = args.get("hours") {
        let hours: usize = raw
            .parse()
            .map_err(|_| ArgError(format!("--hours: cannot parse {raw:?}")))?;
        if hours == 0 || hours > scenario.horizon() {
            return Err(ArgError(format!(
                "--hours must be in 1..={}",
                scenario.horizon()
            )));
        }
        scenario.workload = scenario.workload.slice(0, hours);
        scenario.background = scenario
            .background
            .iter()
            .map(|b| b.slice(0, hours))
            .collect();
    }
    let report =
        run_month_with(&scenario, strategy, budget, audit).map_err(|e| ArgError(e.to_string()))?;
    if let Some(path) = &trace_path {
        write_trace(path)?;
    }
    if args.has("quiet") {
        // Machine-friendly single line: cost, premium tput, ordinary tput.
        println!(
            "{:.2} {:.6} {:.6}",
            report.total_cost(),
            report.premium_throughput(),
            report.ordinary_throughput()
        );
        if let Some(path) = args.get("csv") {
            std::fs::write(path, monthly_report_csv(&report))
                .map_err(|e| ArgError(format!("writing {path:?}: {e}")))?;
        }
        if let Some((hour, a)) = report.first_audit_failure() {
            return Err(ArgError(format!(
                "plan audit failed at hour {hour}: {}",
                a.failures.join("; ")
            )));
        }
        return Ok(());
    }
    println!("strategy: {}", report.strategy_name);
    println!("monthly cost: ${:.2}", report.total_cost());
    println!(
        "throughput: premium {:.1}%, ordinary {:.1}%",
        100.0 * report.premium_throughput(),
        100.0 * report.ordinary_throughput()
    );
    if let Some(util) = report.budget_utilization() {
        println!(
            "budget: ${:.0} (utilization {:.1}%, {} hourly violations)",
            budget.unwrap_or(f64::NAN),
            100.0 * util,
            report.hourly_violations()
        );
    }
    if let Some(path) = args.get("csv") {
        std::fs::write(path, monthly_report_csv(&report))
            .map_err(|e| ArgError(format!("writing {path:?}: {e}")))?;
        println!("hourly series written to {path}");
    }
    if audit {
        let audited = report.audited_hours();
        let failures = report.audit_failures();
        println!(
            "audit: {}/{audited} audited hours passed",
            audited - failures
        );
        if let Some((hour, a)) = report.first_audit_failure() {
            return Err(ArgError(format!(
                "plan audit failed at hour {hour}: {}",
                a.failures.join("; ")
            )));
        }
    }
    Ok(())
}

fn simulate_risk(args: &Args) -> Result<(), ArgError> {
    args.check_known(&[
        "samples",
        "seed",
        "threads",
        "cap-schedule",
        "hours",
        "budget",
        "uncapped",
        "policy",
        "audit",
        "json",
        "quiet",
    ])?;
    let samples: usize = args.get_or("samples", 100)?;
    if samples == 0 {
        return Err(ArgError("--samples must be at least 1".into()));
    }
    let root_seed: u64 = args.get_or("seed", 42)?;
    let threads: usize = args.get_or("threads", 0)?;
    let hours: usize = args.get_or("hours", 0)?;
    if hours > 30 * 24 {
        return Err(ArgError(format!("--hours must be in 0..={}", 30 * 24)));
    }
    let schedule =
        ScheduleSpec::parse(args.get("cap-schedule").unwrap_or("none")).map_err(ArgError)?;
    // The default budget covers the simulated horizon: the full-month
    // stringent budget, pro-rated when --hours truncates the run.
    let horizon_frac = if hours == 0 {
        1.0
    } else {
        hours as f64 / (30.0 * 24.0)
    };
    let monthly_budget = if args.has("uncapped") {
        if args.get("budget").is_some() {
            return Err(ArgError("--budget and --uncapped are exclusive".into()));
        }
        None
    } else {
        Some(args.get_or("budget", Scenario::STRINGENT_BUDGET * horizon_frac)?)
    };
    let config = RiskConfig {
        samples,
        root_seed,
        threads,
        policy: policy_arg(args)?,
        hours,
        monthly_budget,
        schedule,
        audit: args.has("audit") || audit_env_enabled(),
        ..RiskConfig::default()
    };
    let (sample_results, summary) = RiskEngine::new(config)
        .run()
        .map_err(|e| ArgError(e.to_string()))?;
    if let Some(path) = args.get("json") {
        std::fs::write(path, to_jsonl(&sample_results, &summary))
            .map_err(|e| ArgError(format!("writing {path:?}: {e}")))?;
        if !args.has("quiet") {
            eprintln!("per-sample JSONL written to {path}");
        }
    }
    if args.has("quiet") {
        // Machine-friendly: bill quantiles, violation probability, and
        // the bitwise digest (what the CI determinism smoke compares).
        println!(
            "{:.2} {:.2} {:.2} {:.4} {}",
            summary.bill.p50,
            summary.bill.p95,
            summary.bill.p99,
            summary.violation_probability,
            summary.digest()
        );
    } else {
        print!("{}", summary.render_table());
        println!("digest: {}", summary.digest());
    }
    Ok(())
}

fn derive_policies(args: &Args) -> Result<(), ArgError> {
    args.check_known(&["max-load", "step"])?;
    let max_load: f64 = args.get_or("max-load", 900.0)?;
    let step: f64 = args.get_or("step", 10.0)?;
    let derived = billcap_market::fivebus::derive_policies(max_load, step)
        .map_err(|e| ArgError(e.to_string()))?;
    for (consumer, _, policy) in &derived {
        let levels: Vec<String> = policy
            .levels()
            .map(|(lo, hi, p)| {
                if hi.is_finite() {
                    format!("[{lo:.0},{hi:.0}):{p:.2}")
                } else {
                    format!("[{lo:.0},inf):{p:.2}")
                }
            })
            .collect();
        println!("{consumer:?}: {}", levels.join("  "));
    }
    Ok(())
}

fn export_trace(args: &Args) -> Result<(), ArgError> {
    args.check_known(&["kind", "hours", "seed", "mean-rate"])?;
    let kind = args.get("kind").unwrap_or("workload");
    let hours: usize = args.get_or("hours", 720)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let mean_rate: f64 = args.get_or("mean-rate", Scenario::MEAN_RATE)?;
    let trace = match kind {
        "workload" => {
            TraceGenerator::new(TraceConfig::wikipedia_like(mean_rate, seed)).generate(hours)
        }
        "background0" => BackgroundDemand::reco_like(0, seed).generate(hours),
        "background1" => BackgroundDemand::reco_like(1, seed).generate(hours),
        "background2" => BackgroundDemand::reco_like(2, seed).generate(hours),
        "temperature0" => TemperatureModel::paper_location(0, seed).generate(hours),
        "temperature1" => TemperatureModel::paper_location(1, seed).generate(hours),
        "temperature2" => TemperatureModel::paper_location(2, seed).generate(hours),
        other => {
            return Err(ArgError(format!(
                "unknown trace kind {other:?} (workload|background0..2|temperature0..2)"
            )))
        }
    };
    print!("{}", trace.to_csv());
    Ok(())
}

/// Reads and parses a JSONL trace, with one-line actionable errors for
/// missing files and malformed lines.
fn read_trace_snapshot(path: &str) -> Result<billcap_obs::TraceSnapshot, ArgError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ArgError(format!("reading trace {path:?}: {e}")))?;
    billcap_obs::export::parse_jsonl(&text)
        .map_err(|e| ArgError(format!("parsing trace {path:?}: {e}")))
}

fn analyze_trace(args: &Args) -> Result<(), ArgError> {
    args.check_known(&["flame", "top"])?;
    let path = args
        .positional()
        .get(1)
        .ok_or_else(|| ArgError("analyze-trace needs a trace file (JSONL)".into()))?;
    let top: usize = args.get_or("top", 5)?;
    let snap = read_trace_snapshot(path)?;
    let profile = billcap_obs_analyze::Profile::from_snapshot(&snap);
    if profile.root().children.is_empty() {
        return Err(ArgError(format!(
            "trace {path:?} contains no spans; was it recorded with tracing enabled?"
        )));
    }
    print!("{}", profile.to_table());
    let hot: Vec<&str> = profile.hot_path().iter().map(|n| n.name.as_str()).collect();
    println!("\nhot path: {}", hot.join(" > "));
    println!("top {top} by self time:");
    for node in profile.top_self(top) {
        println!(
            "  {:<28} {:>10}  ({} calls)",
            node.path,
            billcap_obs_analyze::fmt_ns(node.self_ns),
            node.count
        );
    }
    if !profile.counters.is_empty() {
        println!("counters:");
        for (name, value) in &profile.counters {
            println!("  {name:<28} {value:>12}");
        }
    }
    if let Some(out) = args.get("flame") {
        std::fs::write(out, billcap_obs_analyze::to_collapsed(&profile))
            .map_err(|e| ArgError(format!("writing flamegraph stacks {out:?}: {e}")))?;
        println!("collapsed stacks written to {out}");
    }
    Ok(())
}

fn diff_trace(args: &Args) -> Result<(), ArgError> {
    args.check_known(&["threshold", "count-threshold", "warn-only"])?;
    let base_path = args
        .positional()
        .get(1)
        .ok_or_else(|| ArgError("diff-trace needs BASE and CURRENT trace files".into()))?;
    let cur_path = args
        .positional()
        .get(2)
        .ok_or_else(|| ArgError("diff-trace needs BASE and CURRENT trace files".into()))?;
    let time_pct: f64 = args.get_or("threshold", 10.0)?;
    let count_pct: f64 = args.get_or("count-threshold", 0.0)?;
    if time_pct < 0.0 || count_pct < 0.0 {
        return Err(ArgError(
            "thresholds must be non-negative percentages".into(),
        ));
    }
    let base = read_trace_snapshot(base_path)?;
    let cur = read_trace_snapshot(cur_path)?;
    let cfg = billcap_obs_analyze::DiffConfig {
        time_rel: time_pct / 100.0,
        count_rel: count_pct / 100.0,
        ..Default::default()
    };
    let report = billcap_obs_analyze::diff_snapshots(&base, &cur, &cfg);
    print!("{}", report.render());
    if report.has_regressions() {
        // --warn-only forgives wall-clock jitter only; work counters
        // are deterministic for a fixed seed, so those always fail.
        let work = report
            .regressed()
            .iter()
            .filter(|e| !e.kind.is_wall_clock())
            .count();
        if !args.has("warn-only") {
            return Err(ArgError(format!(
                "{} metrics regressed past the threshold (see above; pass --warn-only to \
                 downgrade timing regressions)",
                report.regressed().len()
            )));
        }
        if work > 0 {
            return Err(ArgError(format!(
                "{work} deterministic work metric(s) regressed (--warn-only covers timing \
                 metrics only; see above)"
            )));
        }
        eprintln!("warning: timing regressions past the threshold (warn-only mode)");
    }
    Ok(())
}

fn solve_lp(args: &Args) -> Result<(), String> {
    args.check_known(&[]).map_err(stringify)?;
    let path = args
        .positional()
        .get(1)
        .ok_or_else(|| "solve-lp needs a file path".to_string())?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path:?}: {e}"))?;
    let model = parse_lp(&text).map_err(|e| e.to_string())?;
    let sol = MipSolver::default()
        .solve(&model)
        .map_err(|e| e.to_string())?;
    println!("status: {:?}", sol.status);
    println!("objective: {}", sol.objective);
    for (v, value) in model.variables().iter().zip(&sol.values) {
        println!("  {} = {}", v.name, value);
    }
    if let Some(stats) = sol.mip {
        println!(
            "nodes: {}, lp iterations: {}, gap: {:.2e}",
            stats.nodes, stats.lp_iterations, stats.gap
        );
    }
    Ok(())
}

fn lint_model_cmd(args: &Args) -> Result<(), String> {
    args.check_known(&["json"]).map_err(stringify)?;
    let path = args
        .positional()
        .get(1)
        .ok_or_else(|| "lint-model needs a file path".to_string())?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path:?}: {e}"))?;
    let model = parse_lp(&text).map_err(|e| e.to_string())?;
    let report = billcap_milp::lint_model(&model);
    if args.has("json") {
        print!("{}", report.to_jsonl());
    } else {
        print!("{report}");
    }
    let errors = report.errors().count();
    if errors == 0 {
        Ok(())
    } else {
        Err(format!("{errors} error-severity finding(s)"))
    }
}

fn lint_spec_cmd(args: &Args) -> Result<(), String> {
    args.check_known(&["policy", "synthetic", "premium-frac", "json"])
        .map_err(stringify)?;
    let system = if let Some(spec) = args.get("synthetic") {
        let (n, l) = spec
            .split_once(',')
            .and_then(|(n, l)| Some((n.parse::<usize>().ok()?, l.parse::<usize>().ok()?)))
            .ok_or_else(|| "--synthetic needs N,L (sites, price levels)".to_string())?;
        DataCenterSystem::synthetic(n, l)
    } else {
        DataCenterSystem::paper_system(policy_arg(args).map_err(stringify)?)
    };
    let mut report = billcap_core::lint_system(&system);
    // The default month-long budgeter's hour-of-week weights (S003).
    let budgeter = billcap_workload::Budgeter::uniform(1.0, 720);
    report.extend(billcap_core::lint_budget_weights(budgeter.weights()));
    let premium_frac: f64 = args.get_or("premium-frac", 0.8).map_err(stringify)?;
    report.extend(billcap_core::lint_premium_fraction(premium_frac));
    if args.has("json") {
        print!("{}", report.to_jsonl());
    } else if report.findings.is_empty() {
        println!("spec lint: clean ({} sites)", system.len());
    } else {
        print!("{report}");
    }
    let errors = report.errors().count();
    if errors == 0 {
        Ok(())
    } else {
        Err(format!("{errors} error-severity finding(s)"))
    }
}

/// Builds a [`ServeConfig`] from the flags `serve` and `replay` share.
fn serve_config(args: &Args) -> Result<ServeConfig, ArgError> {
    let mut cfg = ServeConfig::default();
    if let Some(raw) = args.get("workers") {
        let workers: usize = raw
            .parse()
            .map_err(|_| ArgError(format!("--workers: cannot parse {raw:?}")))?;
        if workers == 0 {
            return Err(ArgError("--workers must be at least 1".into()));
        }
        cfg.workers = workers;
    }
    cfg.cache = !args.has("no-cache");
    cfg.reuse_basis = args.has("warm-basis");
    cfg.integral_servers = args.has("integral");
    cfg.telemetry = !args.has("no-telemetry");
    cfg.window_requests = args.get_or("window-requests", cfg.window_requests)?;
    if let Some(path) = args.get("metrics-stream") {
        cfg.metrics_stream = Some(std::path::PathBuf::from(path));
    }
    Ok(cfg)
}

/// The flags [`serve_config`] consumes, shared by `serve` and `replay`.
const SERVE_CONFIG_FLAGS: [&str; 7] = [
    "workers",
    "no-cache",
    "warm-basis",
    "integral",
    "no-telemetry",
    "window-requests",
    "metrics-stream",
];

fn serve_cmd(args: &Args) -> Result<(), ArgError> {
    let mut known = vec!["socket", "once"];
    known.extend_from_slice(&SERVE_CONFIG_FLAGS);
    args.check_known(&known)?;
    let cfg = serve_config(args)?;
    if let Some(path) = args.get("socket") {
        #[cfg(unix)]
        {
            let stats =
                billcap_serve::serve_unix(&cfg, std::path::Path::new(path), args.has("once"))
                    .map_err(|e| ArgError(format!("serving on {path:?}: {e}")))?;
            for (i, s) in stats.iter().enumerate() {
                eprintln!(
                    "connection {i}: {} requests, {} decisions ({} cached), {} errors",
                    s.requests, s.decisions, s.cache_hits, s.errors
                );
            }
            return Ok(());
        }
        #[cfg(not(unix))]
        {
            return Err(ArgError(format!(
                "--socket {path:?}: Unix sockets are not available on this platform"
            )));
        }
    }
    if args.has("once") {
        return Err(ArgError("--once requires --socket".into()));
    }
    // The unlocked handles: the lock guards are not Send, and the
    // server moves reader/writer onto pool threads.
    let stats = billcap_serve::serve(&cfg, std::io::stdin(), std::io::stdout());
    eprintln!(
        "served {} requests: {} decisions ({} cached), {} errors",
        stats.requests, stats.decisions, stats.cache_hits, stats.errors
    );
    if let Some(fe) = stats.frame_error {
        return Err(ArgError(format!("stream terminated: {fe}")));
    }
    Ok(())
}

fn replay_cmd(args: &Args) -> Result<(), ArgError> {
    let mut known = vec!["hours", "seed", "policy", "budget", "uncapped", "check"];
    known.extend_from_slice(&SERVE_CONFIG_FLAGS);
    args.check_known(&known)?;
    let hours: usize = args.get_or("hours", 168)?;
    if hours == 0 {
        return Err(ArgError("--hours must be at least 1".into()));
    }
    let seed: u64 = args.get_or("seed", 42)?;
    let policy = policy_arg(args)?;
    let budget = if args.has("uncapped") {
        if args.get("budget").is_some() {
            return Err(ArgError("--budget and --uncapped are exclusive".into()));
        }
        None
    } else {
        Some(args.get_or("budget", Scenario::STRINGENT_BUDGET)?)
    };
    let cfg = serve_config(args)?;

    eprintln!("building {hours}-hour plan (policy {policy}, seed {seed})...");
    let plan = build_plan(policy, seed, hours, budget).map_err(|e| ArgError(e.to_string()))?;
    let outcome = run_replay(&cfg, &plan).map_err(ArgError)?;
    println!(
        "replayed {} hours on {} workers: {:.1} decisions/sec ({} cached, {} errors)",
        outcome.decisions.len(),
        cfg.workers,
        outcome.decisions_per_sec(),
        outcome.stats.cache_hits,
        outcome.errors.len()
    );
    if args.has("check") {
        verify_replay(&plan, &outcome).map_err(ArgError)?;
        println!(
            "check: all {} decisions bitwise-identical to the fresh solver",
            outcome.decisions.len()
        );
    } else if !outcome.errors.is_empty() {
        return Err(ArgError(format!(
            "{} request(s) failed; first: {:?}",
            outcome.errors.len(),
            outcome.errors[0]
        )));
    }
    Ok(())
}

/// Table header shared by `watch` and `analyze-series`.
const SERIES_HEADER: &str =
    "  tick   uptime  requests decisions errors  queue        request_us           solve_us\n\
     \u{20}                                                 p50/p95/p99 (us)    p50/p95/p99 (us)";

/// One table row for a metrics document.
fn series_row(doc: &billcap_obs::MetricsDoc) -> String {
    let c = |k: &str| doc.counters.get(k).copied().unwrap_or(0);
    let q = |k: &str| match doc.latency.get(k) {
        Some(q) if q.count > 0 => format!("{:>5.0}/{:>5.0}/{:>5.0}", q.p50, q.p95, q.p99),
        _ => "    -/    -/    -".into(),
    };
    format!(
        "{:>6} {:>7.1}s {:>9} {:>9} {:>6} {:>6.0}  {:>17}   {:>17}",
        doc.tick,
        doc.uptime_ns as f64 / 1e9,
        c("serve.requests"),
        c("serve.decisions"),
        c("serve.errors"),
        doc.gauges.get("serve.queue_depth").copied().unwrap_or(0.0),
        q("request_us"),
        q("solve_us"),
    )
}

fn watch_cmd(args: &Args) -> Result<(), ArgError> {
    args.check_known(&["socket", "count", "interval-ms", "json"])?;
    #[cfg(unix)]
    {
        use billcap_serve::{read_frame, write_frame, ControlMsg, Response, MAX_FRAME};
        use std::io::Write as _;

        let path: String = args.require("socket")?;
        let count: u64 = args.get_or("count", 0)?;
        let interval_ms: u64 = args.get_or("interval-ms", 1_000)?;
        let json = args.has("json");

        let mut stream = std::os::unix::net::UnixStream::connect(&path)
            .map_err(|e| ArgError(format!("connecting to {path:?}: {e}")))?;
        if !json {
            println!("{SERIES_HEADER}");
        }
        let mut scrapes = 0u64;
        while count == 0 || scrapes < count {
            if scrapes > 0 && interval_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(interval_ms));
            }
            let payload = ControlMsg::Metrics { id: Some(scrapes) }
                .to_value()
                .render();
            write_frame(&mut stream, payload.as_bytes())
                .and_then(|()| stream.flush())
                .map_err(|e| ArgError(format!("scraping {path:?}: {e}")))?;
            let frame = match read_frame(&mut stream, MAX_FRAME) {
                Ok(Some(frame)) => frame,
                Ok(None) => break, // server closed the connection
                Err(e) => return Err(ArgError(format!("reading from {path:?}: {e}"))),
            };
            match Response::parse(&frame).map_err(ArgError)? {
                Response::Metrics { doc, .. } => {
                    if json {
                        println!("{}", doc.render_json());
                    } else {
                        println!("{}", series_row(&doc));
                    }
                }
                other => {
                    return Err(ArgError(format!(
                        "unexpected response to a metrics scrape: {other:?}"
                    )))
                }
            }
            scrapes += 1;
        }
        Ok(())
    }
    #[cfg(not(unix))]
    {
        Err(ArgError(
            "watch needs Unix sockets, which are not available on this platform".into(),
        ))
    }
}

fn analyze_series_cmd(args: &Args) -> Result<(), ArgError> {
    args.check_known(&["slo"])?;
    let path = args
        .positional()
        .get(1)
        .ok_or_else(|| ArgError("analyze-series needs a metrics log (JSONL)".into()))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| ArgError(format!("reading metrics log {path:?}: {e}")))?;
    let series = billcap_obs_analyze::MetricsSeries::parse_jsonl(&text)
        .map_err(|e| ArgError(format!("parsing {path:?}: {e}")))?;
    if series.is_empty() {
        return Err(ArgError(format!(
            "{path:?} contains no metrics documents; was the server run with --metrics-stream?"
        )));
    }

    println!("{SERIES_HEADER}");
    for doc in &series.docs {
        println!("{}", series_row(doc));
    }
    let requests = series.counter_deltas("serve.requests");
    println!(
        "\n{} windows, {} requests total",
        series.len(),
        requests.iter().sum::<u64>()
    );

    if let Some(spec) = args.get("slo") {
        let spec = billcap_obs_analyze::SloSpec::parse(spec).map_err(ArgError)?;
        let report = spec.evaluate(&series);
        println!("{}", report.render_json());
        if !report.ok {
            return Err(ArgError(format!(
                "SLO violated: {} of {} windows over threshold (burn {:.3} > allow {})",
                report.violations, report.windows, report.burn, spec.allow
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(s: &str) -> Result<(), String> {
        run(s.split_whitespace().map(String::from).collect())
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run_str("help").is_ok());
        assert!(run(vec![]).is_ok());
        assert!(run_str("frobnicate").is_err());
    }

    #[test]
    fn decide_hour_happy_path() {
        assert!(run_str("decide-hour --offered 6e8 --premium-frac 0.8 --budget 1e9").is_ok());
    }

    #[test]
    fn decide_hour_audited() {
        assert!(
            run_str("decide-hour --offered 6e8 --premium-frac 0.8 --budget 1e9 --audit").is_ok()
        );
        // A starvation budget takes the premium-override branch; the audit
        // must accept the sanctioned overrun.
        assert!(run_str("decide-hour --offered 6e8 --premium-frac 0.8 --budget 1 --audit").is_ok());
    }

    #[test]
    fn decide_hour_validation() {
        assert!(run_str("decide-hour --budget 1").is_err()); // missing --offered
        assert!(run_str("decide-hour --offered 1e8 --budget 1 --premium-frac 2.0").is_err());
        assert!(run_str("decide-hour --offered 1e8 --budget 1e9 --background 1,2").is_err()); // wrong arity
        assert!(run_str("decide-hour --offered 1e8 --budget 1e9 --policy 7").is_err());
    }

    #[test]
    fn derive_policies_runs() {
        assert!(run_str("derive-policies --max-load 700 --step 100").is_ok());
    }

    #[test]
    fn export_trace_kinds() {
        assert!(run_str("export-trace --kind workload --hours 24").is_ok());
        assert!(run_str("export-trace --kind temperature1 --hours 24").is_ok());
        assert!(run_str("export-trace --kind nope").is_err());
    }

    #[test]
    fn solve_lp_roundtrip() {
        let dir = std::env::temp_dir().join("billcap_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.lp");
        std::fs::write(
            &path,
            "Minimize\n obj: 2 a + 3 b\nSubject To\n c1: a + b >= 4\nBounds\n a >= 0\n b >= 0\nEnd\n",
        )
        .unwrap();
        assert!(run_str(&format!("solve-lp {}", path.display())).is_ok());
        assert!(run_str("solve-lp /nonexistent/file.lp").is_err());
        assert!(run_str("solve-lp").is_err());
    }

    #[test]
    fn lint_spec_committed_systems_are_clean() {
        for p in 0..4 {
            assert!(run_str(&format!("lint-spec --policy {p}")).is_ok());
        }
        assert!(run_str("lint-spec --synthetic 6,4 --json").is_ok());
        assert!(run_str("lint-spec --synthetic nope").is_err());
        // An impossible premium fraction is an Error-severity finding.
        assert!(run_str("lint-spec --premium-frac 1.5").is_err());
    }

    #[test]
    fn lint_model_flags_contradictory_rows() {
        let dir = std::env::temp_dir().join("billcap_cli_lint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let clean = dir.join("clean.lp");
        std::fs::write(
            &clean,
            "Minimize\n obj: 2 a + 3 b\nSubject To\n c1: a + b >= 4\nBounds\n a >= 0\n b >= 0\nEnd\n",
        )
        .unwrap();
        assert!(run_str(&format!("lint-model {}", clean.display())).is_ok());
        assert!(run_str(&format!("lint-model {} --json", clean.display())).is_ok());

        // x >= 4 and x <= 1 cannot both hold: bound propagation proves it.
        let bad = dir.join("bad.lp");
        std::fs::write(
            &bad,
            "Minimize\n obj: a\nSubject To\n c1: a >= 4\n c2: a <= 1\nBounds\n a >= 0\nEnd\n",
        )
        .unwrap();
        assert!(run_str(&format!("lint-model {}", bad.display())).is_err());
        assert!(run_str("lint-model /nonexistent/file.lp").is_err());
        assert!(run_str("lint-model").is_err());
    }

    #[test]
    fn simulate_month_validation() {
        assert!(run_str("simulate-month --strategy bogus").is_err());
    }

    #[test]
    fn unknown_flags_fail_on_every_subcommand() {
        for cmd in [
            "decide-hour --offered 6e8 --budget 1e9 --bogus 1",
            "simulate-month --quiet --bogus 1",
            "simulate-risk --quiet --bogus 1",
            "derive-policies --bogus 1",
            "export-trace --bogus 1",
            "analyze-trace x.jsonl --bogus 1",
            "diff-trace a.jsonl b.jsonl --bogus 1",
            "solve-lp x.lp --bogus 1",
            "lint-model x.lp --bogus 1",
            "lint-spec --bogus 1",
            "serve --bogus 1",
            "replay --bogus 1",
            "watch --socket /tmp/x.sock --bogus 1",
            "analyze-series x.jsonl --bogus 1",
        ] {
            let err = run_str(cmd).unwrap_err();
            assert!(err.contains("--bogus"), "{cmd}: {err}");
        }
    }

    #[test]
    fn replay_short_run_checks_bitwise() {
        assert!(
            run_str("replay --hours 2 --workers 2 --seed 7 --check").is_ok(),
            "short replay with --check must verify"
        );
    }

    #[test]
    fn replay_validation() {
        assert!(run_str("replay --hours 0").is_err());
        assert!(run_str("replay --hours nope").is_err());
        assert!(run_str("replay --workers 0").is_err());
        assert!(run_str("replay --policy 9").is_err());
        assert!(run_str("replay --budget 1e6 --uncapped").is_err());
    }

    #[test]
    fn serve_validation() {
        assert!(run_str("serve --once").is_err()); // --once needs --socket
        assert!(run_str("serve --workers 0").is_err());
        assert!(run_str("serve --workers nope").is_err());
    }

    #[test]
    fn analyze_and_diff_trace_round_trip() {
        let dir = std::env::temp_dir().join("billcap_cli_analyze_test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("hour.jsonl");
        let flame = dir.join("hour.folded");
        assert!(run_str(&format!(
            "decide-hour --offered 6e8 --premium-frac 0.8 --budget 1e9 --trace {}",
            trace.display()
        ))
        .is_ok());

        assert!(run_str(&format!(
            "analyze-trace {} --top 3 --flame {}",
            trace.display(),
            flame.display()
        ))
        .is_ok());
        // The collapsed stacks re-parse into a profile with spans.
        let folded = std::fs::read_to_string(&flame).unwrap();
        let profile = billcap_obs_analyze::parse_collapsed(&folded).unwrap();
        assert!(!profile.root().children.is_empty());

        // A trace diffed against itself has no regressions.
        assert!(run_str(&format!(
            "diff-trace {} {}",
            trace.display(),
            trace.display()
        ))
        .is_ok());
    }

    #[test]
    fn analyze_trace_file_errors_are_actionable() {
        let err = run_str("analyze-trace /nonexistent/trace.jsonl").unwrap_err();
        assert!(err.contains("/nonexistent/trace.jsonl"), "{err}");
        assert!(run_str("analyze-trace").is_err()); // missing positional

        // A corrupt trace reports the offending line.
        let dir = std::env::temp_dir().join("billcap_cli_analyze_test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.jsonl");
        std::fs::write(&bad, "{\"type\":\"counter\",\"name\":}\n").unwrap();
        let err = run_str(&format!("analyze-trace {}", bad.display())).unwrap_err();
        assert!(err.contains("line 1"), "{err}");

        // An empty (span-less) trace is rejected with a hint.
        let empty = dir.join("empty.jsonl");
        std::fs::write(&empty, "").unwrap();
        let err = run_str(&format!("analyze-trace {}", empty.display())).unwrap_err();
        assert!(err.contains("no spans"), "{err}");
    }

    #[test]
    fn diff_trace_validation() {
        assert!(run_str("diff-trace").is_err()); // needs two files
        assert!(run_str("diff-trace one.jsonl").is_err());
        let err = run_str("diff-trace /missing/a.jsonl /missing/b.jsonl").unwrap_err();
        assert!(err.contains("/missing/a.jsonl"), "{err}");
    }

    #[test]
    fn diff_trace_warn_only_still_fails_on_work_regressions() {
        let dir = std::env::temp_dir().join("billcap_cli_warnonly_test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.jsonl");
        run_str(&format!(
            "decide-hour --offered 6e8 --premium-frac 0.8 --budget 1e9 --trace {}",
            base.display()
        ))
        .unwrap();
        let snap =
            billcap_obs::export::parse_jsonl(&std::fs::read_to_string(&base).unwrap()).unwrap();

        // Inflated wall time alone is forgiven under --warn-only (and
        // still fails without it).
        let mut slow = snap.clone();
        for s in slow.spans.values_mut() {
            s.total_ns += 50_000_000; // past the 1 ms abs floor and 10% rel
        }
        let slow_path = dir.join("slow.jsonl");
        std::fs::write(&slow_path, billcap_obs::export::to_jsonl(&slow)).unwrap();
        assert!(run_str(&format!(
            "diff-trace {} {} --warn-only",
            base.display(),
            slow_path.display()
        ))
        .is_ok());
        assert!(run_str(&format!(
            "diff-trace {} {}",
            base.display(),
            slow_path.display()
        ))
        .is_err());

        // An inflated deterministic work counter is never forgiven.
        let mut inflated = snap.clone();
        *inflated.counters.get_mut("milp.bnb.nodes").unwrap() *= 2;
        let bad = dir.join("inflated.jsonl");
        std::fs::write(&bad, billcap_obs::export::to_jsonl(&inflated)).unwrap();
        let err = run_str(&format!(
            "diff-trace {} {} --warn-only",
            base.display(),
            bad.display()
        ))
        .unwrap_err();
        assert!(err.contains("work metric"), "{err}");
    }

    #[test]
    fn simulate_risk_validation() {
        assert!(run_str("simulate-risk --samples 0").is_err());
        assert!(run_str("simulate-risk --hours 999999").is_err());
        assert!(run_str("simulate-risk --cap-schedule bogus").is_err());
        assert!(run_str("simulate-risk --cap-schedule derate:2.0").is_err());
        assert!(run_str("simulate-risk --budget 1e6 --uncapped").is_err());
        assert!(run_str("simulate-risk --policy 9").is_err());
    }

    #[test]
    fn simulate_risk_writes_jsonl() {
        let dir = std::env::temp_dir().join("billcap_cli_risk_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("risk.jsonl");
        assert!(run_str(&format!(
            "simulate-risk --samples 2 --hours 24 --threads 2 --quiet --json {}",
            path.display()
        ))
        .is_ok());
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3); // 2 samples + 1 summary
        let last = billcap_obs::json::Value::parse(lines[2]).unwrap();
        assert_eq!(last.get("kind").unwrap().as_str(), Some("summary"));
        assert!(last.get("digest").is_some());
    }

    #[test]
    fn simulate_month_hours_validation() {
        assert!(run_str("simulate-month --hours 0 --quiet").is_err());
        assert!(run_str("simulate-month --hours 999999 --quiet").is_err());
        assert!(run_str("simulate-month --hours nope --quiet").is_err());
    }

    #[test]
    fn decide_hour_trace_writes_jsonl() {
        let dir = std::env::temp_dir().join("billcap_cli_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hour.jsonl");
        assert!(run_str(&format!(
            "decide-hour --offered 6e8 --premium-frac 0.8 --budget 1e9 --trace {}",
            path.display()
        ))
        .is_ok());
        let text = std::fs::read_to_string(&path).unwrap();
        let snap = billcap_obs::export::parse_jsonl(&text).unwrap();
        assert!(snap.spans.keys().any(|p| p.contains("step1")));
        assert!(snap.counters.contains_key("milp.bnb.nodes"));
    }

    #[test]
    fn watch_validation() {
        let err = run_str("watch").unwrap_err();
        assert!(err.contains("--socket"), "got: {err}");
        assert!(run_str("watch --socket /nonexistent/billcap.sock --count 1").is_err());
        assert!(run_str("watch --socket /tmp/x.sock --count nope").is_err());
    }

    /// Builds a small metrics JSONL log whose `request_us` latency sits
    /// around `center_us` in every window.
    fn write_series_fixture(path: &std::path::Path, centers: &[f64]) {
        use billcap_obs::{MetricsDoc, QuantileSummary, WindowedHistogram};
        let mut text = String::new();
        for (i, &center) in centers.iter().enumerate() {
            let mut doc = MetricsDoc::new(i as u64, (i as u64 + 1) * 1_000_000);
            doc.counters
                .insert("serve.requests".into(), (i as u64 + 1) * 16);
            doc.gauges.insert("serve.queue_depth".into(), 1.0);
            let mut h = WindowedHistogram::new(&[100.0, 1_000.0, 10_000.0, 100_000.0], 1);
            for k in 0..10 {
                h.record(center + k as f64);
            }
            doc.latency.insert(
                "request_us".into(),
                QuantileSummary::from_histogram(&h.merged()),
            );
            text.push_str(&doc.render_json());
            text.push('\n');
        }
        std::fs::write(path, text).unwrap();
    }

    #[test]
    fn analyze_series_evaluates_slo_burn() {
        let dir = std::env::temp_dir().join("billcap_cli_series_test");
        std::fs::create_dir_all(&dir).unwrap();

        let clean = dir.join("clean.jsonl");
        write_series_fixture(&clean, &[200.0, 250.0, 300.0]);
        // No SLO: plain table, success.
        assert!(run_str(&format!("analyze-series {}", clean.display())).is_ok());
        // Clean baseline passes its SLO.
        assert!(run(vec![
            "analyze-series".into(),
            clean.display().to_string(),
            "--slo".into(),
            "request_us.p99<=100000".into(),
        ])
        .is_ok());

        // An injected violation window flips the verdict.
        let burned = dir.join("burned.jsonl");
        write_series_fixture(&burned, &[200.0, 50_000.0, 200.0]);
        let err = run(vec![
            "analyze-series".into(),
            burned.display().to_string(),
            "--slo".into(),
            "request_us.p99<=10000".into(),
        ])
        .unwrap_err();
        assert!(err.contains("SLO violated"), "got: {err}");
        // ... unless the error budget allows it.
        assert!(run(vec![
            "analyze-series".into(),
            burned.display().to_string(),
            "--slo".into(),
            "request_us.p99<=10000 allow 0.5".into(),
        ])
        .is_ok());
    }

    #[test]
    fn analyze_series_file_errors_are_actionable() {
        assert!(run_str("analyze-series").is_err()); // missing positional
        assert!(run_str("analyze-series /nonexistent/metrics.jsonl").is_err());
        let dir = std::env::temp_dir().join("billcap_cli_series_test");
        std::fs::create_dir_all(&dir).unwrap();
        let empty = dir.join("empty.jsonl");
        std::fs::write(&empty, "").unwrap();
        let err = run_str(&format!("analyze-series {}", empty.display())).unwrap_err();
        assert!(err.contains("no metrics documents"), "got: {err}");
        let clean = dir.join("spec.jsonl");
        write_series_fixture(&clean, &[200.0]);
        let err = run(vec![
            "analyze-series".into(),
            clean.display().to_string(),
            "--slo".into(),
            "request_us.p42<=1".into(),
        ])
        .unwrap_err();
        assert!(err.contains("quantile"), "got: {err}");
    }

    /// End-to-end: a live `serve --socket` daemon scraped by `watch`.
    #[cfg(unix)]
    #[test]
    fn watch_scrapes_a_live_socket_server() {
        let sock =
            std::env::temp_dir().join(format!("billcap-cli-watch-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&sock);
        let sock_server = sock.clone();
        let watch_result: std::sync::Mutex<Option<Result<(), String>>> =
            std::sync::Mutex::new(None);
        billcap_rt::run_workers(2, |w| {
            if w == 0 {
                let cfg = ServeConfig {
                    workers: 1,
                    ..ServeConfig::default()
                };
                billcap_serve::serve_unix(&cfg, &sock_server, true).expect("server binds");
            } else {
                // The listener creates the socket file at bind time. Be
                // very patient: on a loaded single-core runner the
                // server thread can be starved for seconds.
                let mut tries = 0u32;
                while !sock.exists() && tries < 60_000 {
                    tries += 1;
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                let res = if sock.exists() {
                    run(vec![
                        "watch".into(),
                        "--socket".into(),
                        sock.display().to_string(),
                        "--count".into(),
                        "2".into(),
                        "--interval-ms".into(),
                        "1".into(),
                    ])
                } else {
                    Err(format!("server never bound {sock:?}"))
                };
                if res.is_err() {
                    // Never panic here before the server's accept() has
                    // returned: a dummy connection unblocks it so the
                    // pool can join, and the failure is asserted below.
                    let _ = std::os::unix::net::UnixStream::connect(&sock);
                }
                *watch_result.lock().unwrap_or_else(|e| e.into_inner()) = Some(res);
            }
        });
        let _ = std::fs::remove_file(&sock);
        watch_result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("client ran")
            .expect("watch scrapes");
    }
}
